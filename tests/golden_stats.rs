//! Golden differential tests for the unified air-scheme layer.
//!
//! The `QueryStats` below were captured from the **pre-refactor** query
//! engines (PR 2 state: per-index tuner plumbing, single channel) at small
//! N, for a lossless and a lossy channel. With `C = 1` and zero switch
//! cost, the ported schemes must reproduce every latency/tuning pair
//! bit-for-bit — the unified driver and channel layer are pure refactors
//! of the single-channel path, down to the per-packet RNG draw sequence.

use dsi::bptree::{BpAir, BpAirConfig};
use dsi::broadcast::{ChannelConfig, DynScheme, LossModel, Placement, Query, QueryOutcome};
use dsi::core::{DsiAir, DsiConfig, DsiScheme, KnnStrategy};
use dsi::datagen::{knn_points, uniform, window_queries, SpatialDataset};
use dsi::rtree::{RTreeAir, RtreeAirConfig};
use dsi::{Point, Rect};

/// (scheme, loss, query kind, query index, latency_packets, tuning_packets)
/// captured from the pre-refactor engines (see module docs).
const GOLDEN: &[(&str, &str, &str, usize, u64, u64)] = &[
    ("dsi", "none", "window", 0, 4585, 177),
    ("dsi", "none", "window", 1, 3846, 215),
    ("dsi", "none", "window", 2, 3367, 243),
    ("dsi", "none", "window", 3, 2792, 215),
    ("dsi", "none", "knn", 0, 3143, 307),
    ("dsi", "none", "knn", 1, 3412, 305),
    ("dsi", "none", "knn", 2, 4325, 301),
    ("dsi", "none", "knn", 3, 2478, 240),
    ("rtree", "none", "window", 0, 6284, 170),
    ("rtree", "none", "window", 1, 6319, 207),
    ("rtree", "none", "window", 2, 3046, 262),
    ("rtree", "none", "window", 3, 5235, 220),
    ("rtree", "none", "knn", 0, 4536, 886),
    ("rtree", "none", "knn", 1, 3939, 890),
    ("rtree", "none", "knn", 2, 4204, 700),
    ("rtree", "none", "knn", 3, 3156, 503),
    ("hci", "none", "window", 0, 3462, 158),
    ("hci", "none", "window", 1, 3945, 184),
    ("hci", "none", "window", 2, 3824, 239),
    ("hci", "none", "window", 3, 4199, 183),
    ("hci", "none", "knn", 0, 7220, 97),
    ("hci", "none", "knn", 1, 9207, 156),
    ("hci", "none", "knn", 2, 10454, 128),
    ("hci", "none", "knn", 3, 9309, 398),
    ("dsi", "iid30", "window", 0, 4585, 184),
    ("dsi", "iid30", "window", 1, 3846, 237),
    ("dsi", "iid30", "window", 2, 3367, 243),
    ("dsi", "iid30", "window", 3, 2792, 213),
    ("dsi", "iid30", "knn", 0, 3143, 416),
    ("dsi", "iid30", "knn", 1, 3412, 359),
    ("dsi", "iid30", "knn", 2, 4409, 312),
    ("dsi", "iid30", "knn", 3, 2478, 393),
    ("rtree", "iid30", "window", 0, 31374, 191),
    ("rtree", "iid30", "window", 1, 18919, 243),
    ("rtree", "iid30", "window", 2, 21883, 280),
    ("rtree", "iid30", "window", 3, 27194, 256),
    ("rtree", "iid30", "knn", 0, 23373, 625),
    ("rtree", "iid30", "knn", 1, 20876, 458),
    ("rtree", "iid30", "knn", 2, 16237, 356),
    ("rtree", "iid30", "knn", 3, 13582, 299),
    ("hci", "iid30", "window", 0, 8862, 163),
    ("hci", "iid30", "window", 1, 25545, 199),
    ("hci", "iid30", "window", 2, 14456, 242),
    ("hci", "iid30", "window", 3, 9599, 191),
    ("hci", "iid30", "knn", 0, 7220, 102),
    ("hci", "iid30", "knn", 1, 36207, 172),
    ("hci", "iid30", "knn", 2, 32470, 140),
    ("hci", "iid30", "knn", 3, 19947, 348),
];

const K: usize = 5;

fn dataset() -> SpatialDataset {
    SpatialDataset::build(&uniform(300, 42), 9)
}

fn schemes(ds: &SpatialDataset, chan: &ChannelConfig) -> Vec<(&'static str, Box<dyn DynScheme>)> {
    let pts: Vec<(u32, Point)> = ds.objects().iter().map(|o| (o.id, o.pos)).collect();
    vec![
        (
            "dsi",
            Box::new(DsiScheme {
                air: DsiAir::build_channels(
                    ds,
                    DsiConfig::paper_reorganized().with_capacity(64),
                    chan.clone(),
                ),
                strategy: KnnStrategy::Conservative,
            }) as Box<dyn DynScheme>,
        ),
        (
            "rtree",
            Box::new(RTreeAir::build_channels(
                &pts,
                RtreeAirConfig::new(64),
                chan.clone(),
            )),
        ),
        (
            "hci",
            Box::new(BpAir::build_channels(
                ds,
                BpAirConfig::new(64),
                chan.clone(),
            )),
        ),
    ]
}

fn run(
    scheme: &dyn DynScheme,
    loss: LossModel,
    kind: &str,
    qi: usize,
    windows: &[Rect],
    points: &[Point],
) -> QueryOutcome {
    let cycle = scheme.cycle_packets();
    match kind {
        "window" => scheme.drive(
            (qi as u64 * 7919) % cycle,
            loss,
            qi as u64,
            &Query::Window(windows[qi]),
        ),
        _ => scheme.drive(
            (qi as u64 * 6151) % cycle,
            loss,
            qi as u64,
            &Query::Knn(points[qi], K),
        ),
    }
}

#[test]
fn single_channel_unified_path_reproduces_pre_refactor_stats() {
    let ds = dataset();
    let windows = window_queries(4, 0.2, 3);
    let points = knn_points(4, 9);
    let schemes = schemes(&ds, &ChannelConfig::single());
    for &(scheme_name, loss_name, kind, qi, latency, tuning) in GOLDEN {
        let loss = match loss_name {
            "none" => LossModel::None,
            _ => LossModel::iid(0.3),
        };
        let (_, scheme) = schemes
            .iter()
            .find(|(n, _)| *n == scheme_name)
            .expect("scheme exists");
        let out = run(scheme.as_ref(), loss, kind, qi, &windows, &points);
        assert_eq!(
            (out.stats.latency_packets, out.stats.tuning_packets),
            (latency, tuning),
            "{scheme_name}/{loss_name}/{kind} query {qi} diverged from the pre-refactor oracle"
        );
        // Single channel: no switches, all tuning on channel 0.
        assert_eq!(out.channels.switches, 0);
        assert_eq!(out.channels.tuning_packets, vec![out.stats.tuning_packets]);
        // Answers stay exact.
        let want = match kind {
            "window" => ds.brute_window(&windows[qi]),
            _ => ds.brute_knn(points[qi], K),
        };
        assert_eq!(out.ids, want);
    }
}

#[test]
fn multi_channel_answers_stay_exact() {
    let ds = dataset();
    let windows = window_queries(4, 0.2, 3);
    let points = knn_points(4, 9);
    for chan in [
        ChannelConfig::striped(2, 1),
        ChannelConfig::striped(4, 2),
        ChannelConfig {
            channels: 3,
            placement: Placement::IndexData { index_channels: 1 },
            switch_cost: 2,
        },
    ] {
        for (name, scheme) in schemes(&ds, &chan) {
            for (loss_name, loss) in [("none", LossModel::None), ("iid30", LossModel::iid(0.3))] {
                for kind in ["window", "knn"] {
                    for qi in 0..4 {
                        let out = run(scheme.as_ref(), loss.clone(), kind, qi, &windows, &points);
                        let want = match kind {
                            "window" => ds.brute_window(&windows[qi]),
                            _ => ds.brute_knn(points[qi], K),
                        };
                        assert_eq!(
                            out.ids, want,
                            "{name} C={} {loss_name} {kind} q{qi}",
                            chan.channels
                        );
                        assert_eq!(out.channels.tuning_packets.len(), chan.channels as usize);
                        assert_eq!(
                            out.channels.tuning_packets.iter().sum::<u64>(),
                            out.stats.tuning_packets
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn blocked_channels_shorten_latency_for_window_queries() {
    // More block-contiguous channels → shorter per-channel cycles while
    // frame scans keep their locality → lower access latency on average.
    // Assert the direction for the DSI scheme with free switches.
    let ds = dataset();
    let windows = window_queries(8, 0.2, 3);
    let mut means = Vec::new();
    for c in [1u32, 4] {
        let schemes = schemes(&ds, &ChannelConfig::blocked(c, 0));
        let (_, dsi) = &schemes[0];
        let mut total = 0u64;
        for (qi, w) in windows.iter().enumerate() {
            let out = dsi.drive(
                (qi as u64 * 7919) % dsi.cycle_packets(),
                LossModel::None,
                qi as u64,
                &Query::Window(*w),
            );
            total += out.stats.latency_packets;
        }
        means.push(total as f64 / windows.len() as f64);
    }
    assert!(
        means[1] < means[0],
        "4-channel striping should beat single-channel latency: {means:?}"
    );
}

#[test]
fn drive_reports_channel_switches_under_split() {
    // Index/data split: every object retrieval forces a hop off the index
    // channel, so switches must be non-zero and index tuning must land on
    // channel 0.
    let ds = dataset();
    let windows = window_queries(4, 0.2, 3);
    let chan = ChannelConfig::index_data(2, 1, 1);
    for (name, scheme) in schemes(&ds, &chan) {
        let out = scheme.drive(17, LossModel::None, 5, &Query::Window(windows[0]));
        assert_eq!(out.ids, ds.brute_window(&windows[0]), "{name}");
        assert!(out.channels.switches > 0, "{name}: no switches recorded");
        assert!(
            out.channels.tuning_packets[0] > 0,
            "{name}: no index-channel tuning"
        );
    }
}
