//! Mutation corpus for the static verifier: every class of structural
//! corruption — flipped pointers, skewed claims, units split across
//! channels, dropped table entries, orphaned data units — must be
//! rejected by `dsi::verify`, while every program the conformance grid
//! builds passes clean. Schemes, channel layouts, and mutation picks are
//! property-sampled so the corpus keeps probing new (program, defect)
//! pairs.

use dsi::broadcast::ChannelConfig;
use dsi::datagen::SpatialDataset;
use dsi::sim::{Engine, Scheme};
use dsi::verify::{EdgeClaim, StaticModel, UnitKind};
use dsi::KnnStrategy;
use proptest::prelude::*;

fn scheme(pick: u8) -> Scheme {
    match pick % 4 {
        0 => Scheme::dsi_reorganized(64),
        1 => Scheme::dsi_original(64, KnnStrategy::Conservative),
        2 => Scheme::RTree,
        _ => Scheme::Hci,
    }
}

fn channels(pick: u8) -> ChannelConfig {
    match pick % 4 {
        0 => ChannelConfig::single(),
        1 => ChannelConfig::blocked(2, 1),
        2 => ChannelConfig::striped_frames(3, 1),
        _ => ChannelConfig::index_data(2, 1, 2),
    }
}

/// Retargets one edge at a unit of the kind its claim forbids: a local
/// pointer at an index unit, a table entry or subtree pointer at a data
/// unit. Always a claim violation when applicable.
fn flip_pointer(m: &mut StaticModel, pick: usize) -> bool {
    let edges: Vec<(usize, usize)> = m
        .edges
        .iter()
        .enumerate()
        .flat_map(|(u, es)| (0..es.len()).map(move |ei| (u, ei)))
        .collect();
    if edges.is_empty() {
        return false;
    }
    let (u, ei) = edges[pick % edges.len()];
    let want_kind = match m.edges[u][ei].claim {
        EdgeClaim::Local => UnitKind::Index,
        EdgeClaim::MinKey(_) | EdgeClaim::Covers { .. } => UnitKind::Data,
    };
    let cands: Vec<u64> = m
        .units
        .iter()
        .filter(|t| t.kind == want_kind)
        .map(|t| t.start)
        .collect();
    if cands.is_empty() {
        return false;
    }
    m.edges[u][ei].target = cands[pick % cands.len()];
    true
}

/// Bumps one navigational claim off its true value (a wrong minimum key
/// or a coverage range one too wide). Always a claim violation.
fn skew_claim(m: &mut StaticModel, pick: usize) -> bool {
    let edges: Vec<(usize, usize)> = m
        .edges
        .iter()
        .enumerate()
        .flat_map(|(u, es)| {
            es.iter()
                .enumerate()
                .filter(|(_, e)| !matches!(e.claim, EdgeClaim::Local))
                .map(move |(ei, _)| (u, ei))
        })
        .collect();
    if edges.is_empty() {
        return false;
    }
    let (u, ei) = edges[pick % edges.len()];
    m.edges[u][ei].claim = match m.edges[u][ei].claim {
        EdgeClaim::MinKey(k) => EdgeClaim::MinKey(k.wrapping_add(1)),
        EdgeClaim::Covers { lo, hi } => EdgeClaim::Covers { lo, hi: hi + 1 },
        EdgeClaim::Local => unreachable!("filtered above"),
    };
    true
}

/// Moves the tail packet of a multi-packet unit to another channel — the
/// one thing a placement must never do. Breaks the channel map or the
/// unit-contiguity invariant.
fn split_unit(m: &mut StaticModel, pick: usize) -> bool {
    if m.n_channels < 2 {
        return false;
    }
    let cands: Vec<usize> = m
        .units
        .iter()
        .enumerate()
        .filter(|(_, un)| un.len >= 2)
        .map(|(u, _)| u)
        .collect();
    if cands.is_empty() {
        return false;
    }
    let un = &m.units[cands[pick % cands.len()]];
    let tail = (un.start + un.len - 1) as usize;
    m.chan_of[tail] = (m.chan_of[tail] + 1) % m.n_channels;
    true
}

/// Deletes one edge from a unit with a fixed schema-derived edge count
/// (a DSI table dropping an index entry). Always a count mismatch.
fn drop_edge(m: &mut StaticModel, pick: usize) -> bool {
    let cands: Vec<usize> = m
        .units
        .iter()
        .enumerate()
        .filter(|(u, un)| un.expected_edges.is_some() && !m.edges[*u].is_empty())
        .map(|(u, _)| u)
        .collect();
    if cands.is_empty() {
        return false;
    }
    let u = cands[pick % cands.len()];
    let ei = pick % m.edges[u].len();
    m.edges[u].remove(ei);
    true
}

/// Removes every local announcement of one data unit: the object is
/// still on air but no index unit ever names it. Always an orphan.
fn orphan_data(m: &mut StaticModel, pick: usize) -> bool {
    let cands: Vec<u64> = m
        .units
        .iter()
        .filter(|t| t.kind == UnitKind::Data)
        .map(|t| t.start)
        .collect();
    if cands.is_empty() {
        return false;
    }
    let victim = cands[pick % cands.len()];
    for es in &mut m.edges {
        es.retain(|e| !(e.claim == EdgeClaim::Local && e.target == victim));
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn verifier_rejects_every_mutant(
        scheme_pick in 0u8..4,
        chan_pick in 0u8..4,
        mutation in 0u8..5,
        pick in any::<u64>(),
        n in 140u64..260,
    ) {
        let pick = pick as usize;
        let ds = SpatialDataset::build(&dsi::datagen::uniform(n as usize, 42), 10);
        let engine = Engine::build_channels(scheme(scheme_pick), &ds, 64, channels(chan_pick));
        prop_assert!(
            engine.verify().is_ok(),
            "grid-valid program must verify clean before mutation"
        );
        let mut m = engine.static_model().clone();
        type Mutation = fn(&mut StaticModel, usize) -> bool;
        let mutations: [(&str, Mutation); 5] = [
            ("flip_pointer", flip_pointer),
            ("skew_claim", skew_claim),
            ("split_unit", split_unit),
            ("drop_edge", drop_edge),
            ("orphan_data", orphan_data),
        ];
        // Apply the chosen mutation; when it does not apply to this
        // program (e.g. split_unit on a single channel), fall through to
        // the next one — orphan_data applies everywhere.
        let mut applied = None;
        for off in 0..mutations.len() {
            let (name, f) = mutations[(mutation as usize + off) % mutations.len()];
            if f(&mut m, pick) {
                applied = Some(name);
                break;
            }
        }
        let applied = applied.expect("some mutation applies to every program");
        prop_assert!(
            dsi::verify::verify(&m).is_err(),
            "mutant ({applied}) must be rejected"
        );
    }
}
