//! Cross-scheme conformance suite for the channel-aware navigation and
//! multi-antenna tuner layer.
//!
//! One table-driven harness asserts, for every scheme × placement
//! (including the frame-granular `StripeFrames`) × C ∈ {1, 2, 4} ×
//! antennas ∈ {1, 2} × loss ∈ {0, 0.05} combination:
//!
//! (a) query answers are bit-identical to the brute-force oracle —
//!     antennas and placements change latency and tuning, never results;
//! (b) a single-antenna client reproduces the pre-refactor
//!     [`ChannelStats`] (switch counts and per-channel tuning) exactly —
//!     the goldens below were captured from the PR 3 code before the
//!     multi-antenna tuner existed;
//! (c) on the lossless path, a 2-antenna client is never slower than the
//!     single-antenna client on the batch (mean access latency per cell).
//!
//! A final regression test pins the PR 3 measured finding that motivated
//! this layer: at C = 4 unit-granular striping hurts the serial-scan DSI
//! client, `Blocked` beats it, and `StripeFrames` closes the gap.

use dsi::bptree::{BpAir, BpAirConfig};
use dsi::broadcast::optimize::{
    optimize_placement, read_runs, AccessProfile, OptimizeOptions, UnitSchema,
};
use dsi::broadcast::{
    AntennaConfig, ChannelConfig, DynScheme, GilbertElliott, LossModel, OutageSchedule,
    OutageWindow, Placement, Query, QueryOutcome,
};
use dsi::core::{DsiAir, DsiConfig, DsiScheme, KnnStrategy};
use dsi::datagen::{knn_points, uniform, window_queries, SpatialDataset};
use dsi::rtree::{RTreeAir, RtreeAirConfig};
use dsi::{Point, Rect};

const K: usize = 5;
const SWITCH_COST: u32 = 2;

fn dataset() -> SpatialDataset {
    SpatialDataset::build(&uniform(300, 42), 9)
}

/// Builds one scheme by name under a channel configuration (explicit
/// placements are per-scheme: unit counts differ, so an optimized
/// assignment only fits the scheme it was fitted for).
fn build_scheme(ds: &SpatialDataset, name: &str, chan: &ChannelConfig) -> Box<dyn DynScheme> {
    match name {
        "dsi" => Box::new(DsiScheme {
            air: DsiAir::build_channels(
                ds,
                DsiConfig::paper_reorganized().with_capacity(64),
                chan.clone(),
            ),
            strategy: KnnStrategy::Conservative,
        }),
        "rtree" => {
            let pts: Vec<(u32, Point)> = ds.objects().iter().map(|o| (o.id, o.pos)).collect();
            Box::new(RTreeAir::build_channels(
                &pts,
                RtreeAirConfig::new(64),
                chan.clone(),
            ))
        }
        "hci" => Box::new(BpAir::build_channels(
            ds,
            BpAirConfig::new(64),
            chan.clone(),
        )),
        other => panic!("unknown scheme {other}"),
    }
}

fn schemes(ds: &SpatialDataset, chan: &ChannelConfig) -> Vec<(&'static str, Box<dyn DynScheme>)> {
    ["dsi", "rtree", "hci"]
        .into_iter()
        .map(|name| (name, build_scheme(ds, name, chan)))
        .collect()
}

/// The channel grid: every placement × C ∈ {1, 2, 4}. C = 1 collapses all
/// placements to the classic single channel, so it appears once.
fn channel_grid() -> Vec<(String, ChannelConfig)> {
    let mut grid = vec![("C1".to_string(), ChannelConfig::single())];
    for c in [2u32, 4] {
        grid.push((
            format!("blocked{c}"),
            ChannelConfig::blocked(c, SWITCH_COST),
        ));
        grid.push((format!("stripe{c}"), ChannelConfig::striped(c, SWITCH_COST)));
        grid.push((
            format!("stripef{c}"),
            ChannelConfig::striped_frames(c, SWITCH_COST),
        ));
        grid.push((
            format!("split{c}"),
            ChannelConfig::index_data(c, 1, SWITCH_COST),
        ));
    }
    grid
}

fn run(
    scheme: &dyn DynScheme,
    loss: LossModel,
    antennas: AntennaConfig,
    kind: &str,
    qi: usize,
    windows: &[Rect],
    points: &[Point],
) -> QueryOutcome {
    let cycle = scheme.cycle_packets();
    match kind {
        "window" => scheme.drive_antennas(
            (qi as u64 * 7919) % cycle,
            loss,
            qi as u64,
            antennas,
            &Query::Window(windows[qi]),
        ),
        _ => scheme.drive_antennas(
            (qi as u64 * 6151) % cycle,
            loss,
            qi as u64,
            antennas,
            &Query::Knn(points[qi], K),
        ),
    }
}

/// (a) + (c): answers equal brute force over the full grid, and the
/// 2-antenna client's mean lossless latency never exceeds the 1-antenna
/// client's. Per-query latency dominance does not hold in general — the
/// navigation is greedy, so one earlier read can reorder the rest of the
/// plan — but every individual `arrival` is pointwise ≤ with more
/// antennas, which shows in the batch mean.
#[test]
fn answers_match_oracle_and_antennas_never_slow_the_batch() {
    const NQ: usize = 8;
    let ds = dataset();
    let windows = window_queries(NQ, 0.2, 3);
    let points = knn_points(NQ, 9);
    for (cname, chan) in channel_grid() {
        for (sname, scheme) in schemes(&ds, &chan) {
            // Mean lossless latency of the cell's whole workload (window
            // plus kNN queries), per antenna count.
            let mut mean_latency = [0.0f64; 2];
            for (lname, loss) in [("none", LossModel::None), ("iid5", LossModel::iid(0.05))] {
                for kind in ["window", "knn"] {
                    for (ai, antennas) in [AntennaConfig::single(), AntennaConfig::new(2)]
                        .into_iter()
                        .enumerate()
                    {
                        for qi in 0..NQ {
                            let out = run(
                                scheme.as_ref(),
                                loss.clone(),
                                antennas,
                                kind,
                                qi,
                                &windows,
                                &points,
                            );
                            let want = match kind {
                                "window" => ds.brute_window(&windows[qi]),
                                _ => ds.brute_knn(points[qi], K),
                            };
                            assert_eq!(
                                out.ids, want,
                                "{sname}/{cname}/k{}/{lname}/{kind} q{qi} diverged from oracle",
                                antennas.antennas
                            );
                            // Per-channel tuning always reconciles with the
                            // aggregate view.
                            assert_eq!(
                                out.channels.tuning_packets.iter().sum::<u64>(),
                                out.stats.tuning_packets
                            );
                            assert_eq!(
                                out.channels.tuning_packets.len() as u32,
                                chan.channels.max(1)
                            );
                            if matches!(loss, LossModel::None) {
                                mean_latency[ai] +=
                                    out.stats.latency_packets as f64 / (2 * NQ) as f64;
                            }
                        }
                    }
                }
            }
            // (c): the 2-antenna client is never slower on the cell's
            // lossless workload. Per-query dominance cannot hold in
            // general — navigation is greedy, so one earlier read can
            // reorder the rest of the plan — but every individual
            // `arrival` is pointwise ≤ with more antennas, which shows
            // in the workload mean.
            assert!(
                mean_latency[1] <= mean_latency[0],
                "{sname}/{cname}: k=2 mean latency {} > k=1 {}",
                mean_latency[1],
                mean_latency[0]
            );
        }
    }
}

/// The fault-model loss axis of the robustness grid: one bursty
/// Gilbert–Elliott channel (mean fade 4 packets, 90% loss inside a
/// fade), one periodic two-channel outage schedule, and the keyed
/// per-(query, channel) i.i.d. streams.
fn fault_grid() -> Vec<(&'static str, LossModel)> {
    vec![
        (
            "gilbert",
            LossModel::Gilbert(GilbertElliott::new(0.02, 0.25, 0.9)),
        ),
        (
            // Prime period: a recurring packet's airing drifts through
            // every residue of the period (unless 509 divides the channel
            // cycle), so retries of an object caught by one window always
            // escape it eventually — no resonance livelock.
            "outage",
            LossModel::Outage(OutageSchedule::periodic(
                vec![
                    OutageWindow {
                        channel: 0,
                        start: 48,
                        len: 24,
                    },
                    OutageWindow {
                        channel: 1,
                        start: 304,
                        len: 24,
                    },
                ],
                509,
            )),
        ),
        ("keyed10", LossModel::keyed_iid(0.10)),
    ]
}

/// The robustness counterpart of the oracle test: under bursty
/// Gilbert–Elliott fades, scheduled whole-channel outages, and keyed
/// i.i.d. streams, every scheme × placement × C × antenna cell still
/// answers exactly the brute-force result, terminates (the livelock
/// guard would panic otherwise), and keeps its per-channel tuning
/// reconciled. Loss-aware retunes only ever happen on k = 2 clients
/// with somewhere to dodge to.
#[test]
fn answers_survive_bursty_faults_across_the_grid() {
    const NQ: usize = 4;
    let ds = dataset();
    let windows = window_queries(NQ, 0.2, 3);
    let points = knn_points(NQ, 9);
    for (cname, chan) in channel_grid() {
        for (sname, scheme) in schemes(&ds, &chan) {
            for (lname, loss) in fault_grid() {
                for kind in ["window", "knn"] {
                    for antennas in [AntennaConfig::single(), AntennaConfig::new(2)] {
                        for qi in 0..NQ {
                            let out = run(
                                scheme.as_ref(),
                                loss.clone(),
                                antennas,
                                kind,
                                qi,
                                &windows,
                                &points,
                            );
                            let want = match kind {
                                "window" => ds.brute_window(&windows[qi]),
                                _ => ds.brute_knn(points[qi], K),
                            };
                            assert_eq!(
                                out.ids, want,
                                "{sname}/{cname}/k{}/{lname}/{kind} q{qi} diverged from oracle",
                                antennas.antennas
                            );
                            assert_eq!(
                                out.channels.tuning_packets.iter().sum::<u64>(),
                                out.stats.tuning_packets
                            );
                            if antennas.antennas == 1 || chan.channels == 1 {
                                assert_eq!(
                                    out.stats.loss_retunes, 0,
                                    "{sname}/{cname}/{lname}: nowhere to dodge, yet retuned"
                                );
                            }
                            assert!(
                                out.stats.longest_stall_packets <= out.stats.latency_packets,
                                "stall cannot exceed the query's own span"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// (scheme, channel config, loss, query kind, query index,
/// latency_packets, tuning_packets, switches, per-channel tuning packets)
/// captured from the PR 3 code (single-receiver tuner, before the
/// multi-antenna refactor). The k = 1 path must reproduce every row
/// bit-for-bit, loss-draw sequences included.
type GoldenRow = (
    &'static str,
    &'static str,
    &'static str,
    &'static str,
    usize,
    u64,
    u64,
    u64,
    &'static [u64],
);

const CHANNEL_GOLDEN: &[GoldenRow] = &[
    (
        "dsi",
        "blocked2",
        "none",
        "window",
        0,
        2117,
        175,
        1,
        &[2, 173],
    ),
    (
        "dsi",
        "blocked2",
        "none",
        "window",
        1,
        3854,
        206,
        6,
        &[143, 63],
    ),
    ("dsi", "blocked2", "none", "knn", 0, 675, 218, 1, &[22, 196]),
    (
        "dsi",
        "blocked2",
        "none",
        "knn",
        1,
        3317,
        291,
        6,
        &[246, 45],
    ),
    (
        "dsi",
        "blocked2",
        "iid5",
        "window",
        0,
        2117,
        177,
        1,
        &[4, 173],
    ),
    (
        "dsi",
        "blocked2",
        "iid5",
        "window",
        1,
        3854,
        220,
        8,
        &[146, 74],
    ),
    (
        "dsi",
        "blocked2",
        "iid5",
        "knn",
        0,
        2886,
        351,
        3,
        &[128, 223],
    ),
    (
        "dsi",
        "blocked2",
        "iid5",
        "knn",
        1,
        3317,
        294,
        6,
        &[245, 49],
    ),
    (
        "rtree",
        "blocked2",
        "none",
        "window",
        0,
        3134,
        170,
        1,
        &[2, 168],
    ),
    (
        "rtree",
        "blocked2",
        "none",
        "window",
        1,
        3169,
        207,
        6,
        &[146, 61],
    ),
    (
        "rtree",
        "blocked2",
        "none",
        "knn",
        0,
        23436,
        319,
        9,
        &[86, 233],
    ),
    (
        "rtree",
        "blocked2",
        "none",
        "knn",
        1,
        30357,
        366,
        36,
        &[239, 127],
    ),
    (
        "rtree",
        "blocked2",
        "iid5",
        "window",
        0,
        3134,
        172,
        1,
        &[4, 168],
    ),
    (
        "rtree",
        "blocked2",
        "iid5",
        "window",
        1,
        5374,
        213,
        9,
        &[150, 63],
    ),
    (
        "rtree",
        "blocked2",
        "iid5",
        "knn",
        0,
        26586,
        329,
        13,
        &[76, 253],
    ),
    (
        "rtree",
        "blocked2",
        "iid5",
        "knn",
        1,
        27207,
        231,
        32,
        &[194, 37],
    ),
    (
        "hci",
        "blocked2",
        "none",
        "window",
        0,
        762,
        158,
        1,
        &[2, 156],
    ),
    (
        "hci",
        "blocked2",
        "none",
        "window",
        1,
        14745,
        184,
        10,
        &[161, 23],
    ),
    ("hci", "blocked2", "none", "knn", 0, 4520, 97, 2, &[96, 1]),
    (
        "hci",
        "blocked2",
        "none",
        "knn",
        1,
        3845,
        156,
        7,
        &[12, 144],
    ),
    (
        "hci",
        "blocked2",
        "iid5",
        "window",
        0,
        762,
        159,
        1,
        &[3, 156],
    ),
    (
        "hci",
        "blocked2",
        "iid5",
        "window",
        1,
        17353,
        187,
        12,
        &[163, 24],
    ),
    ("hci", "blocked2", "iid5", "knn", 0, 4520, 98, 2, &[97, 1]),
    (
        "hci",
        "blocked2",
        "iid5",
        "knn",
        1,
        23501,
        129,
        18,
        &[16, 113],
    ),
    (
        "dsi",
        "stripe2",
        "none",
        "window",
        0,
        28745,
        171,
        23,
        &[80, 91],
    ),
    (
        "dsi",
        "stripe2",
        "none",
        "window",
        1,
        41402,
        198,
        35,
        &[85, 113],
    ),
    (
        "dsi",
        "stripe2",
        "none",
        "knn",
        0,
        52063,
        357,
        42,
        &[167, 190],
    ),
    (
        "dsi",
        "stripe2",
        "none",
        "knn",
        1,
        90722,
        584,
        73,
        &[282, 302],
    ),
    (
        "dsi",
        "stripe2",
        "iid5",
        "window",
        0,
        28745,
        171,
        23,
        &[80, 91],
    ),
    (
        "dsi",
        "stripe2",
        "iid5",
        "window",
        1,
        52026,
        204,
        43,
        &[87, 117],
    ),
    (
        "dsi",
        "stripe2",
        "iid5",
        "knn",
        0,
        52063,
        418,
        42,
        &[197, 221],
    ),
    (
        "dsi",
        "stripe2",
        "iid5",
        "knn",
        1,
        90722,
        584,
        73,
        &[282, 302],
    ),
    (
        "rtree",
        "stripe2",
        "none",
        "window",
        0,
        15711,
        170,
        8,
        &[81, 89],
    ),
    (
        "rtree",
        "stripe2",
        "none",
        "window",
        1,
        19195,
        207,
        12,
        &[131, 76],
    ),
    (
        "rtree",
        "stripe2",
        "none",
        "knn",
        0,
        14829,
        272,
        16,
        &[203, 69],
    ),
    (
        "rtree",
        "stripe2",
        "none",
        "knn",
        1,
        14238,
        279,
        16,
        &[223, 56],
    ),
    (
        "rtree",
        "stripe2",
        "iid5",
        "window",
        0,
        15711,
        172,
        8,
        &[81, 91],
    ),
    (
        "rtree",
        "stripe2",
        "iid5",
        "window",
        1,
        19195,
        213,
        20,
        &[128, 85],
    ),
    (
        "rtree",
        "stripe2",
        "iid5",
        "knn",
        0,
        14829,
        248,
        18,
        &[181, 67],
    ),
    (
        "rtree",
        "stripe2",
        "iid5",
        "knn",
        1,
        14238,
        250,
        20,
        &[193, 57],
    ),
    (
        "hci",
        "stripe2",
        "none",
        "window",
        0,
        12528,
        158,
        7,
        &[73, 85],
    ),
    (
        "hci",
        "stripe2",
        "none",
        "window",
        1,
        23112,
        184,
        16,
        &[126, 58],
    ),
    ("hci", "stripe2", "none", "knn", 0, 17102, 97, 9, &[61, 36]),
    (
        "hci",
        "stripe2",
        "none",
        "knn",
        1,
        17736,
        156,
        16,
        &[80, 76],
    ),
    (
        "hci",
        "stripe2",
        "iid5",
        "window",
        0,
        12528,
        159,
        9,
        &[73, 86],
    ),
    (
        "hci",
        "stripe2",
        "iid5",
        "window",
        1,
        9612,
        187,
        14,
        &[128, 59],
    ),
    ("hci", "stripe2", "iid5", "knn", 0, 17102, 98, 9, &[61, 37]),
    (
        "hci",
        "stripe2",
        "iid5",
        "knn",
        1,
        17736,
        160,
        20,
        &[81, 79],
    ),
    (
        "dsi",
        "split2",
        "none",
        "window",
        0,
        9120,
        177,
        9,
        &[18, 159],
    ),
    (
        "dsi",
        "split2",
        "none",
        "window",
        1,
        15794,
        205,
        9,
        &[18, 187],
    ),
    ("dsi", "split2", "none", "knn", 0, 7857, 245, 15, &[28, 217]),
    (
        "dsi",
        "split2",
        "none",
        "knn",
        1,
        19849,
        387,
        23,
        &[24, 363],
    ),
    (
        "dsi",
        "split2",
        "iid5",
        "window",
        0,
        9120,
        177,
        9,
        &[18, 159],
    ),
    (
        "dsi",
        "split2",
        "iid5",
        "window",
        1,
        15794,
        210,
        11,
        &[18, 192],
    ),
    ("dsi", "split2", "iid5", "knn", 0, 12497, 292, 9, &[20, 272]),
    (
        "dsi",
        "split2",
        "iid5",
        "knn",
        1,
        19849,
        388,
        21,
        &[24, 364],
    ),
    (
        "rtree",
        "split2",
        "none",
        "window",
        0,
        4784,
        170,
        1,
        &[26, 144],
    ),
    (
        "rtree",
        "split2",
        "none",
        "window",
        1,
        4477,
        207,
        1,
        &[47, 160],
    ),
    (
        "rtree",
        "split2",
        "none",
        "knn",
        0,
        17856,
        225,
        5,
        &[113, 112],
    ),
    ("rtree", "split2", "none", "knn", 1, 4857, 159, 3, &[79, 80]),
    (
        "rtree",
        "split2",
        "iid5",
        "window",
        0,
        4784,
        172,
        1,
        &[28, 144],
    ),
    (
        "rtree",
        "split2",
        "iid5",
        "window",
        1,
        4477,
        215,
        1,
        &[55, 160],
    ),
    (
        "rtree",
        "split2",
        "iid5",
        "knn",
        0,
        22656,
        259,
        7,
        &[115, 144],
    ),
    ("rtree", "split2", "iid5", "knn", 1, 4857, 163, 3, &[83, 80]),
    (
        "hci",
        "split2",
        "none",
        "window",
        0,
        3072,
        158,
        1,
        &[14, 144],
    ),
    (
        "hci",
        "split2",
        "none",
        "window",
        1,
        4665,
        184,
        1,
        &[24, 160],
    ),
    ("hci", "split2", "none", "knn", 0, 1616, 97, 1, &[17, 80]),
    ("hci", "split2", "none", "knn", 1, 3297, 156, 1, &[28, 128]),
    (
        "hci",
        "split2",
        "iid5",
        "window",
        0,
        3072,
        159,
        1,
        &[15, 144],
    ),
    (
        "hci",
        "split2",
        "iid5",
        "window",
        1,
        4665,
        187,
        1,
        &[27, 160],
    ),
    ("hci", "split2", "iid5", "knn", 0, 1616, 98, 1, &[18, 80]),
    ("hci", "split2", "iid5", "knn", 1, 3297, 160, 1, &[32, 128]),
    (
        "dsi",
        "blocked4",
        "none",
        "window",
        0,
        887,
        173,
        2,
        &[2, 2, 0, 169],
    ),
    (
        "dsi",
        "blocked4",
        "none",
        "window",
        1,
        1340,
        209,
        5,
        &[9, 141, 0, 59],
    ),
    (
        "dsi",
        "blocked4",
        "none",
        "knn",
        0,
        675,
        292,
        2,
        &[22, 0, 190, 80],
    ),
    (
        "dsi",
        "blocked4",
        "none",
        "knn",
        1,
        2083,
        299,
        8,
        &[2, 246, 6, 45],
    ),
    (
        "dsi",
        "blocked4",
        "iid5",
        "window",
        0,
        887,
        173,
        2,
        &[2, 2, 0, 169],
    ),
    (
        "dsi",
        "blocked4",
        "iid5",
        "window",
        1,
        1340,
        221,
        5,
        &[19, 143, 0, 59],
    ),
    (
        "dsi",
        "blocked4",
        "iid5",
        "knn",
        0,
        675,
        281,
        2,
        &[84, 7, 190, 0],
    ),
    (
        "dsi",
        "blocked4",
        "iid5",
        "knn",
        1,
        2083,
        296,
        5,
        &[2, 251, 0, 43],
    ),
    (
        "rtree",
        "blocked4",
        "none",
        "window",
        0,
        1559,
        170,
        1,
        &[2, 0, 0, 168],
    ),
    (
        "rtree",
        "blocked4",
        "none",
        "window",
        1,
        11107,
        207,
        18,
        &[29, 117, 61, 0],
    ),
    (
        "rtree",
        "blocked4",
        "none",
        "knn",
        0,
        20286,
        193,
        20,
        &[56, 6, 114, 17],
    ),
    (
        "rtree",
        "blocked4",
        "none",
        "knn",
        1,
        17285,
        221,
        23,
        &[80, 119, 16, 6],
    ),
    (
        "rtree",
        "blocked4",
        "iid5",
        "window",
        0,
        1559,
        172,
        2,
        &[4, 0, 2, 166],
    ),
    (
        "rtree",
        "blocked4",
        "iid5",
        "window",
        1,
        2869,
        213,
        13,
        &[31, 117, 65, 0],
    ),
    (
        "rtree",
        "blocked4",
        "iid5",
        "knn",
        0,
        15561,
        234,
        24,
        &[72, 9, 141, 12],
    ),
    (
        "rtree",
        "blocked4",
        "iid5",
        "knn",
        1,
        18860,
        230,
        27,
        &[40, 167, 11, 12],
    ),
    (
        "hci",
        "blocked4",
        "none",
        "window",
        0,
        762,
        158,
        2,
        &[2, 0, 155, 1],
    ),
    (
        "hci",
        "blocked4",
        "none",
        "window",
        1,
        8751,
        184,
        15,
        &[108, 53, 0, 23],
    ),
    (
        "hci",
        "blocked4",
        "none",
        "knn",
        0,
        1820,
        97,
        4,
        &[4, 92, 1, 0],
    ),
    (
        "hci",
        "blocked4",
        "none",
        "knn",
        1,
        10557,
        156,
        16,
        &[7, 5, 33, 111],
    ),
    (
        "hci",
        "blocked4",
        "iid5",
        "window",
        0,
        762,
        159,
        2,
        &[3, 0, 155, 1],
    ),
    (
        "hci",
        "blocked4",
        "iid5",
        "window",
        1,
        10927,
        187,
        17,
        &[110, 54, 0, 23],
    ),
    (
        "hci",
        "blocked4",
        "iid5",
        "knn",
        0,
        1820,
        98,
        3,
        &[5, 93, 0, 0],
    ),
    (
        "hci",
        "blocked4",
        "iid5",
        "knn",
        1,
        12647,
        129,
        22,
        &[10, 6, 2, 111],
    ),
    (
        "dsi",
        "stripe4",
        "none",
        "window",
        0,
        15489,
        174,
        29,
        &[39, 20, 42, 73],
    ),
    (
        "dsi",
        "stripe4",
        "none",
        "window",
        1,
        23876,
        204,
        45,
        &[45, 60, 43, 56],
    ),
    (
        "dsi",
        "stripe4",
        "none",
        "knn",
        0,
        36363,
        465,
        64,
        &[83, 142, 122, 118],
    ),
    (
        "dsi",
        "stripe4",
        "none",
        "knn",
        1,
        42110,
        318,
        79,
        &[84, 97, 70, 67],
    ),
    (
        "dsi",
        "stripe4",
        "iid5",
        "window",
        0,
        14365,
        172,
        24,
        &[39, 20, 44, 69],
    ),
    (
        "dsi",
        "stripe4",
        "iid5",
        "window",
        1,
        23876,
        202,
        45,
        &[44, 60, 43, 55],
    ),
    (
        "dsi",
        "stripe4",
        "iid5",
        "knn",
        0,
        36363,
        525,
        64,
        &[98, 157, 137, 133],
    ),
    (
        "dsi",
        "stripe4",
        "iid5",
        "knn",
        1,
        44742,
        364,
        83,
        &[97, 100, 86, 81],
    ),
    (
        "rtree",
        "stripe4",
        "none",
        "window",
        0,
        12597,
        170,
        15,
        &[44, 72, 37, 17],
    ),
    (
        "rtree",
        "stripe4",
        "none",
        "window",
        1,
        16671,
        207,
        22,
        &[72, 42, 57, 36],
    ),
    (
        "rtree",
        "stripe4",
        "none",
        "knn",
        0,
        23181,
        264,
        35,
        &[100, 57, 37, 70],
    ),
    (
        "rtree",
        "stripe4",
        "none",
        "knn",
        1,
        19802,
        217,
        65,
        &[80, 68, 37, 32],
    ),
    (
        "rtree",
        "stripe4",
        "iid5",
        "window",
        0,
        12597,
        172,
        16,
        &[44, 72, 39, 17],
    ),
    (
        "rtree",
        "stripe4",
        "iid5",
        "window",
        1,
        16671,
        213,
        26,
        &[72, 43, 59, 39],
    ),
    (
        "rtree",
        "stripe4",
        "iid5",
        "knn",
        0,
        26331,
        259,
        38,
        &[99, 51, 53, 56],
    ),
    (
        "rtree",
        "stripe4",
        "iid5",
        "knn",
        1,
        8777,
        195,
        34,
        &[64, 55, 38, 38],
    ),
    (
        "hci",
        "stripe4",
        "none",
        "window",
        0,
        17064,
        158,
        19,
        &[6, 51, 66, 35],
    ),
    (
        "hci",
        "stripe4",
        "none",
        "window",
        1,
        15697,
        184,
        24,
        &[74, 37, 51, 22],
    ),
    (
        "hci",
        "stripe4",
        "none",
        "knn",
        0,
        9917,
        97,
        18,
        &[35, 5, 23, 34],
    ),
    (
        "hci",
        "stripe4",
        "none",
        "knn",
        1,
        15250,
        156,
        31,
        &[25, 56, 53, 22],
    ),
    (
        "hci",
        "stripe4",
        "iid5",
        "window",
        0,
        17064,
        159,
        20,
        &[6, 51, 66, 36],
    ),
    (
        "hci",
        "stripe4",
        "iid5",
        "window",
        1,
        12997,
        187,
        31,
        &[76, 37, 51, 23],
    ),
    (
        "hci",
        "stripe4",
        "iid5",
        "knn",
        0,
        9917,
        98,
        19,
        &[35, 5, 23, 35],
    ),
    (
        "hci",
        "stripe4",
        "iid5",
        "knn",
        1,
        13900,
        160,
        32,
        &[27, 56, 53, 24],
    ),
];

#[test]
fn single_antenna_reproduces_pre_refactor_channel_stats() {
    let ds = dataset();
    let windows = window_queries(4, 0.2, 3);
    let points = knn_points(4, 9);
    let configs: Vec<(&str, ChannelConfig)> = vec![
        ("blocked2", ChannelConfig::blocked(2, SWITCH_COST)),
        ("stripe2", ChannelConfig::striped(2, SWITCH_COST)),
        ("split2", ChannelConfig::index_data(2, 1, SWITCH_COST)),
        ("blocked4", ChannelConfig::blocked(4, SWITCH_COST)),
        ("stripe4", ChannelConfig::striped(4, SWITCH_COST)),
    ];
    for (cname, chan) in &configs {
        let built = schemes(&ds, chan);
        for &(sname, gc, lname, kind, qi, latency, tuning, switches, per_chan) in CHANNEL_GOLDEN {
            if gc != *cname {
                continue;
            }
            let (_, scheme) = built.iter().find(|(n, _)| *n == sname).expect("scheme");
            let loss = match lname {
                "none" => LossModel::None,
                _ => LossModel::iid(0.05),
            };
            let out = run(
                scheme.as_ref(),
                loss,
                AntennaConfig::single(),
                kind,
                qi,
                &windows,
                &points,
            );
            assert_eq!(
                (
                    out.stats.latency_packets,
                    out.stats.tuning_packets,
                    out.channels.switches,
                    out.channels.tuning_packets.as_slice(),
                ),
                (latency, tuning, switches, per_chan),
                "{sname}/{cname}/{lname}/{kind} q{qi} diverged from the pre-refactor oracle"
            );
        }
    }
}

/// Fits a workload-optimized explicit placement for one scheme: profiles
/// a training workload on the scheme's single-channel build and searches
/// the air-cost model (see `dsi::broadcast::optimize`).
fn optimized_chan(
    single: &dyn DynScheme,
    channels: u32,
    windows: &[Rect],
    points: &[Point],
) -> ChannelConfig {
    let flat = single.cycle_packets();
    let mut counts = vec![0u64; flat as usize];
    let mut per_query = vec![0u64; flat as usize];
    let mut samples = Vec::new();
    let queries: Vec<Query> = windows
        .iter()
        .map(|w| Query::Window(*w))
        .chain(points.iter().map(|p| Query::Knn(*p, K)))
        .collect();
    for (qi, q) in queries.iter().enumerate() {
        per_query.fill(0);
        let _ = single.drive_profiled(
            (qi as u64 * 101) % flat,
            LossModel::None,
            qi as u64,
            AntennaConfig::single(),
            q,
            &mut per_query,
        );
        samples.push(read_runs(&per_query));
        for (a, b) in counts.iter_mut().zip(&per_query) {
            *a += b;
        }
    }
    let schema = UnitSchema::from_unit_starts(&single.unit_starts());
    let profile = AccessProfile::from_counts(&counts, queries.len() as u64).with_samples(samples);
    let opt = optimize_placement(
        &schema,
        &profile,
        channels,
        SWITCH_COST,
        AntennaConfig::single(),
        &OptimizeOptions::default(),
    );
    opt.config(channels, SWITCH_COST)
}

/// The tentpole's end-to-end guarantee: a *workload-optimized* explicit
/// placement — profiled on a training workload drawn from the same
/// distribution as (but disjoint from) the evaluation queries, fitted by
/// the air-cost model — preserves answers against brute force across
/// scheme × C ∈ {2, 4} × antennas ∈ {1, 2} × loss ∈ {0, 0.05}, with
/// per-channel tuning reconciling against the aggregate view.
#[test]
fn optimized_placements_preserve_answers_across_the_grid() {
    const NQ: usize = 8;
    let ds = dataset();
    let windows = window_queries(NQ, 0.2, 3);
    let points = knn_points(NQ, 9);
    // Training draw: same families, different seeds.
    let train_windows = window_queries(NQ, 0.2, 31);
    let train_points = knn_points(NQ, 17);
    let singles = schemes(&ds, &ChannelConfig::single());
    for c in [2u32, 4] {
        for (sname, single) in &singles {
            let chan = optimized_chan(single.as_ref(), c, &train_windows, &train_points);
            let scheme = build_scheme(&ds, sname, &chan);
            for (lname, loss) in [("none", LossModel::None), ("iid5", LossModel::iid(0.05))] {
                for antennas in [AntennaConfig::single(), AntennaConfig::new(2)] {
                    for kind in ["window", "knn"] {
                        for qi in 0..NQ {
                            let out = run(
                                scheme.as_ref(),
                                loss.clone(),
                                antennas,
                                kind,
                                qi,
                                &windows,
                                &points,
                            );
                            let want = match kind {
                                "window" => ds.brute_window(&windows[qi]),
                                _ => ds.brute_knn(points[qi], K),
                            };
                            assert_eq!(
                                out.ids, want,
                                "{sname}/optimized-C{c}/k{}/{lname}/{kind} q{qi} diverged",
                                antennas.antennas
                            );
                            assert_eq!(
                                out.channels.tuning_packets.iter().sum::<u64>(),
                                out.stats.tuning_packets
                            );
                            assert_eq!(out.channels.tuning_packets.len() as u32, c);
                        }
                    }
                }
            }
        }
    }
}

/// Pins the PR 3 measured finding this PR exploits: at C = 4 with a real
/// switch cost, unit-granular `Stripe` placement hurts the serial-scan
/// DSI client (it misses each next unit's concurrent airing), `Blocked`
/// beats it, and frame-granular `StripeFrames` closes the gap — the
/// documented tradeoff is enforced, not just described.
#[test]
fn blocked_beats_unit_stripe_and_stripe_frames_closes_the_gap() {
    let ds = dataset();
    let windows = window_queries(8, 0.2, 3);
    let mean = |chan: &ChannelConfig| -> f64 {
        let dsi = build_scheme(&ds, "dsi", chan);
        let mut total = 0u64;
        for (qi, w) in windows.iter().enumerate() {
            let out = dsi.drive(
                (qi as u64 * 7919) % dsi.cycle_packets(),
                LossModel::None,
                qi as u64,
                &Query::Window(*w),
            );
            assert_eq!(out.ids, ds.brute_window(w));
            total += out.stats.latency_packets;
        }
        total as f64 / windows.len() as f64
    };
    let of = |placement: Placement| ChannelConfig {
        channels: 4,
        placement,
        switch_cost: SWITCH_COST,
    };
    let blocked = mean(&of(Placement::Blocked));
    let stripe = mean(&of(Placement::Stripe));
    let stripef = mean(&of(Placement::StripeFrames(1)));
    assert!(
        blocked < stripe,
        "blocked ({blocked}) must beat unit-granular stripe ({stripe}) at C=4"
    );
    assert!(
        stripef < stripe,
        "frame-granular striping ({stripef}) must close the gap to stripe ({stripe})"
    );
    // The workload-aware optimizer (trained on a disjoint draw of the
    // same workload families) must also beat the stripe pathology on the
    // measured evaluation batch — the fitted placement stays sane even
    // at this tiny scale.
    let single = build_scheme(&ds, "dsi", &ChannelConfig::single());
    let chan = optimized_chan(
        single.as_ref(),
        4,
        &window_queries(8, 0.2, 31),
        &knn_points(8, 17),
    );
    let optimized = mean(&chan);
    assert!(
        optimized < stripe,
        "optimized ({optimized}) must beat unit-granular stripe ({stripe}) at C=4"
    );
}
