//! Worst-case bound conformance: the static analyzer's derived latency
//! and tuning bounds must dominate every measured lossless query on the
//! scheme × placement grid (soundness, for single- and dual-antenna
//! clients — the conformance layer separately pins that more antennas
//! never slow a query down), while staying within a documented slack of
//! the measured maxima (anti-vacuity: a bound a thousand times off for a
//! contiguous placement is a bug in the bound, not a safe answer).
//!
//! Slack factors are per placement family and deliberately generous —
//! the bound prices every navigation hop and every sweep gap at its
//! worst-case channel-cycle cost, which interleaved placements (stripes,
//! index/data splits) only approach under adversarial alignment.

use dsi::broadcast::{AntennaConfig, ChannelConfig, LossModel, Query};
use dsi::datagen::{knn_points, window_queries, SpatialDataset};
use dsi::sim::{Engine, Scheme};
use dsi::KnnStrategy;

/// Documented anti-vacuity slack: `(latency, tuning)` multipliers the
/// bound may sit above the measured maximum, per placement family.
fn slack(interleaved: bool) -> (u64, u64) {
    if interleaved {
        // Striped and index/data-split placements alternate channels
        // between consecutive units, so the bound's per-gap channel-cycle
        // charge is structural; measured runs ride the stripe alignment.
        (4096, 2048)
    } else {
        (512, 1024)
    }
}

#[test]
fn bounds_dominate_measured_maxima_within_documented_slack() {
    let ds = SpatialDataset::build(&dsi::datagen::uniform(240, 42), 10);
    let schemes = [
        ("DSI-reorg", Scheme::dsi_reorganized(64)),
        ("DSI", Scheme::dsi_original(64, KnnStrategy::Aggressive)),
        ("R-tree", Scheme::RTree),
        ("HCI", Scheme::Hci),
    ];
    let configs = [
        ("C1", ChannelConfig::single(), false),
        ("C2-blocked", ChannelConfig::blocked(2, 1), false),
        ("C2-striped", ChannelConfig::striped(2, 1), true),
        ("C3-frames", ChannelConfig::striped_frames(3, 1), false),
        ("C2-split", ChannelConfig::index_data(2, 1, 2), true),
    ];
    let queries: Vec<Query> = window_queries(4, 0.18, 9)
        .into_iter()
        .map(Query::Window)
        .chain(knn_points(4, 10).into_iter().map(|p| Query::Knn(p, 5)))
        .collect();
    for (sname, scheme) in schemes {
        for (cname, cfg, interleaved) in &configs {
            let engine = Engine::build_channels(scheme, &ds, 64, cfg.clone());
            let report = engine
                .verify()
                .unwrap_or_else(|v| panic!("{sname} x {cname}: {v:?}"));
            let cycle = engine.cycle_packets();
            let mut max_lat = 0u64;
            let mut max_tun = 0u64;
            for (qi, q) in queries.iter().enumerate() {
                for s in 0..6u64 {
                    for antennas in [1u32, 2] {
                        let out = engine.drive_antennas(
                            s * cycle / 6,
                            LossModel::None,
                            qi as u64,
                            AntennaConfig::new(antennas),
                            q,
                        );
                        max_lat = max_lat.max(out.stats.latency_packets);
                        max_tun = max_tun.max(out.stats.tuning_packets);
                    }
                }
            }
            let b = &report.bounds;
            assert!(
                max_lat <= b.latency_packets && max_tun <= b.tuning_packets,
                "{sname} x {cname}: measured exceeds bound \
                 (latency {max_lat} vs {}, tuning {max_tun} vs {})",
                b.latency_packets,
                b.tuning_packets,
            );
            let (ls, ts) = slack(*interleaved);
            assert!(
                b.latency_packets <= ls * max_lat.max(1) && b.tuning_packets <= ts * max_tun.max(1),
                "{sname} x {cname}: bound is vacuously loose \
                 (latency {} vs {max_lat} (slack {ls}), tuning {} vs {max_tun} (slack {ts}))",
                b.latency_packets,
                b.tuning_packets,
            );
        }
    }
}
