//! Cross-crate integration tests: the full pipeline (dataset → broadcast
//! program → on-air query → validated answer + metrics) for all three
//! schemes, determinism, and metric sanity.

use dsi::broadcast::LossModel;
use dsi::core::KnnStrategy;
use dsi::datagen::{knn_points, uniform, window_queries, SpatialDataset};
use dsi::sim::{run_knn_batch, run_window_batch, BatchOptions, Engine, Scheme};

fn dataset() -> SpatialDataset {
    SpatialDataset::build(&uniform(1_200, 42), 10)
}

fn schemes() -> Vec<(&'static str, Scheme)> {
    vec![
        ("dsi-reorg", Scheme::dsi_reorganized(64)),
        (
            "dsi-aggressive",
            Scheme::dsi_original(64, KnnStrategy::Aggressive),
        ),
        ("rtree", Scheme::RTree),
        ("hci", Scheme::Hci),
    ]
}

#[test]
fn every_scheme_answers_both_query_types_correctly() {
    let ds = dataset();
    let windows = window_queries(10, 0.15, 3);
    let points = knn_points(10, 5);
    let opts = BatchOptions::default(); // validate = true
    for (name, scheme) in schemes() {
        let engine = Engine::build(scheme, &ds, 64);
        let w = run_window_batch(&engine, &ds, &windows, &opts);
        assert_eq!(w.queries, 10, "{name}");
        assert!(w.latency_bytes >= w.tuning_bytes, "{name}");
        let k = run_knn_batch(&engine, &ds, &points, 10, &opts);
        assert_eq!(k.queries, 10, "{name}");
        assert!(k.latency_bytes >= k.tuning_bytes, "{name}");
        // No scheme should need more than three cycles on a clean channel.
        assert!(
            w.latency_bytes <= 3.0 * engine.cycle_bytes() as f64,
            "{name} window latency > 3 cycles"
        );
        assert!(
            k.latency_bytes <= 3.0 * engine.cycle_bytes() as f64,
            "{name} kNN latency > 3 cycles"
        );
    }
}

#[test]
fn batches_are_reproducible_across_runs() {
    let ds = dataset();
    let windows = window_queries(8, 0.1, 9);
    let opts = BatchOptions::default();
    for (name, scheme) in schemes() {
        let e1 = Engine::build(scheme, &ds, 64);
        let e2 = Engine::build(scheme, &ds, 64);
        let a = run_window_batch(&e1, &ds, &windows, &opts);
        let b = run_window_batch(&e2, &ds, &windows, &opts);
        assert_eq!(
            a.latency_bytes, b.latency_bytes,
            "{name} latency not deterministic"
        );
        assert_eq!(
            a.tuning_bytes, b.tuning_bytes,
            "{name} tuning not deterministic"
        );
    }
}

#[test]
fn lossy_channels_cost_more_but_stay_correct() {
    let ds = dataset();
    let windows = window_queries(8, 0.15, 11);
    for (name, scheme) in schemes() {
        let engine = Engine::build(scheme, &ds, 64);
        let clean = run_window_batch(&engine, &ds, &windows, &BatchOptions::default());
        let lossy = run_window_batch(
            &engine,
            &ds,
            &windows,
            &BatchOptions {
                loss: LossModel::iid(0.5),
                ..BatchOptions::default()
            },
        );
        // Validation inside the runner guarantees identical answers; the
        // lossy channel must cost at least as much on average.
        assert!(
            lossy.latency_bytes >= clean.latency_bytes,
            "{name}: lossy latency {} < clean {}",
            lossy.latency_bytes,
            clean.latency_bytes
        );
    }
}

#[test]
fn dsi_beats_baselines_on_knn_latency() {
    // The paper's headline (Figure 11): DSI's kNN access latency is far
    // below both baselines. Checked at a reduced scale.
    let ds = SpatialDataset::build(&uniform(2_000, 42), 11);
    let points = knn_points(24, 5);
    let opts = BatchOptions::default();
    let dsi = run_knn_batch(
        &Engine::build(Scheme::dsi_reorganized(64), &ds, 64),
        &ds,
        &points,
        10,
        &opts,
    );
    let rtree = run_knn_batch(
        &Engine::build(Scheme::RTree, &ds, 64),
        &ds,
        &points,
        10,
        &opts,
    );
    let hci = run_knn_batch(
        &Engine::build(Scheme::Hci, &ds, 64),
        &ds,
        &points,
        10,
        &opts,
    );
    assert!(
        dsi.latency_bytes < rtree.latency_bytes,
        "DSI {} should beat R-tree {}",
        dsi.latency_bytes,
        rtree.latency_bytes
    );
    assert!(
        dsi.latency_bytes < 0.6 * hci.latency_bytes,
        "DSI {} should beat HCI {} by a wide margin",
        dsi.latency_bytes,
        hci.latency_bytes
    );
}

#[test]
fn umbrella_reexports_compose() {
    // The flat re-exports work together in one program.
    let ds = dsi::SpatialDataset::build(&uniform(150, 7), 9);
    let air = dsi::DsiAir::build(&ds, dsi::DsiConfig::paper_reorganized());
    let mut tuner = dsi::Tuner::tune_in(air.program(), 42, dsi::LossModel::None, 1);
    let w = dsi::Rect::new(0.1, 0.1, 0.6, 0.6);
    assert_eq!(air.window_query(&mut tuner, &w), ds.brute_window(&w));
}
