//! A minimal work-stealing thread pool, vendored for the offline build
//! image (no crates.io access).
//!
//! The design is the classic injector-plus-deques scheduler in safe Rust:
//!
//! - every worker owns a deque of jobs; the owner pushes and pops at the
//!   **back** (LIFO — freshly spawned subtasks stay cache-hot), thieves
//!   steal from the **front** (FIFO — the oldest, typically largest,
//!   pieces of work migrate first), which is the Chase–Lev discipline;
//! - jobs submitted from outside the pool land in a shared **injector**
//!   queue that workers drain between local pops and steals;
//! - idle workers park on a condition variable guarded by a push
//!   **epoch**: every enqueue bumps the epoch under the lock, and a
//!   worker only sleeps after re-scanning with the epoch pinned, so
//!   wakeups cannot be lost.
//!
//! The deques are `Mutex<VecDeque>`s rather than lock-free channels: the
//! workloads this pool exists for (the fleet engine's granule tasks in
//! `dsi-sim`) hand out hundreds-to-thousands of coarse tasks, where one
//! uncontended lock per transition is noise — and the workspace forbids
//! `unsafe`, which rules out a true lock-free Chase–Lev ring.
//!
//! # Thread-local state propagation
//!
//! Pool threads do **not** inherit the spawner's thread-locals. Callers
//! that rely on thread-local configuration — in this workspace, the
//! `dsi_core::hotpath` incremental/from-scratch switch — must install it
//! into every worker via [`Builder::on_thread_start`] (it runs once per
//! worker, before any job) and/or at the head of each spawned job. The
//! repo's `dsi-lint` `spawn` rule enforces the latter at spawn sites.
//!
//! # Determinism contract
//!
//! The pool itself guarantees only *execution*, not order: every job
//! spawned on a [`Batch`] runs exactly once, and [`Batch::join`] returns
//! after all of them (re-raising the first job panic). Callers that need
//! results independent of worker count and scheduling — the fleet engine
//! does — must make jobs pure functions of their inputs and merge results
//! keyed by the job's identity, never by completion order.
//!
//! # Panic containment
//!
//! Workers never die to a user panic: a panicking fire-and-forget job
//! or `on_thread_start` hook is caught, the first payload is parked in
//! the pool (see [`Pool::take_stray_panic`]), and the worker keeps
//! draining — so [`Batch::join`] cannot hang on a decimated pool.
//! [`Pool::drop`] re-raises an untaken stray payload once the queues
//! are drained and the workers joined.
//!
//! # Model checking
//!
//! All synchronization here goes through the `interleave` shims, which
//! are plain `std` re-exports in normal builds. Under
//! `RUSTFLAGS="--cfg dsi_model"` the `dsi-model` suite exhaustively
//! explores this pool's interleavings (spawn/steal/park/unpark, panic
//! propagation, shutdown races) within a preemption bound.

// Synchronization goes through the `interleave` shims: a pure
// `std::sync`/`std::thread` re-export in normal builds, the model
// scheduler under `RUSTFLAGS="--cfg dsi_model"` (see `dsi-model`).
// `Arc` stays `std` — it is not a scheduling-relevant primitive.
// dsi-lint: lock-order: locals < injector < epoch < pending < panic < stray
use interleave::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use interleave::sync::{Condvar, Mutex};
use interleave::thread::JoinHandle;
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Scheduler state shared by every worker and every handle.
struct Shared {
    /// Jobs submitted from outside the pool.
    injector: Mutex<VecDeque<Job>>,
    /// One deque per worker: owner pops the back, thieves the front.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Push epoch; bumped under the lock on every enqueue and at
    /// shutdown. Workers sleep only while the epoch they last scanned at
    /// is still current, which makes lost wakeups impossible.
    epoch: Mutex<u64>,
    /// Signalled on every epoch bump.
    available: Condvar,
    /// Cleared by [`Pool::drop`]; workers drain remaining jobs and exit.
    live: AtomicBool,
    /// Distinguishes nested pools in the worker thread-local.
    pool_id: usize,
    /// First panic from a fire-and-forget job or the start hook.
    /// Workers survive those panics (the pool keeps draining); the
    /// payload is re-raised by [`Pool::drop`] unless taken first via
    /// [`Pool::take_stray_panic`].
    stray: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

/// Records the first stray panic; later ones are dropped.
fn record_stray(shared: &Shared, payload: Box<dyn Any + Send + 'static>) {
    shared.stray.lock().unwrap().get_or_insert(payload);
}

thread_local! {
    /// `(pool id, worker index)` of the pool thread we are on, if any.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Monotonic id source for [`Shared::pool_id`].
static POOL_IDS: AtomicUsize = AtomicUsize::new(0);

/// Configures and builds a [`Pool`].
pub struct Builder {
    workers: usize,
    on_thread_start: Option<Arc<dyn Fn() + Send + Sync + 'static>>,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    /// A builder with as many workers as the host advertises.
    pub fn new() -> Self {
        Builder {
            workers: interleave::thread::available_parallelism().map_or(1, |n| n.get()),
            on_thread_start: None,
        }
    }

    /// Sets the worker count; `0` means one worker.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Installs a hook that runs once on every worker thread, before any
    /// job. This is the place to propagate thread-local configuration
    /// such as `dsi_core::hotpath::set_state_path` into the pool.
    pub fn on_thread_start(mut self, hook: impl Fn() + Send + Sync + 'static) -> Self {
        self.on_thread_start = Some(Arc::new(hook));
        self
    }

    /// Spawns the workers and returns the pool.
    pub fn build(self) -> Pool {
        let workers = self.workers.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            epoch: Mutex::new(0),
            available: Condvar::new(),
            live: AtomicBool::new(true),
            pool_id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            stray: Mutex::new(None),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                let hook = self.on_thread_start.clone();
                interleave::thread::Builder::new()
                    .name(format!("steal-worker-{me}"))
                    // dsi-lint: allow(spawn): workers run the caller's on_thread_start hook, where hotpath state is installed
                    .spawn(move || worker_main(shared, me, hook))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            workers: handles,
        }
    }
}

/// A work-stealing thread pool. Dropping it drains all queued jobs and
/// joins the workers.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// A pool with `n` workers (`0` means one) and no start hook.
    pub fn with_workers(n: usize) -> Self {
        Builder::new().workers(n).build()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.locals.len()
    }

    /// Fire-and-forget: runs `job` on some worker, exactly once. There is
    /// no completion signal; use a [`Batch`] to wait for results.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        enqueue(&self.shared, Box::new(job));
    }

    /// Takes the first panic raised by a fire-and-forget job or the
    /// `on_thread_start` hook, if any. Left in place, the payload is
    /// re-raised by [`Pool::drop`]; callers that treat such panics as
    /// recoverable take it first.
    pub fn take_stray_panic(&self) -> Option<Box<dyn Any + Send + 'static>> {
        self.shared.stray.lock().unwrap().take()
    }

    /// Opens a new join scope: spawn jobs on the returned [`Batch`], then
    /// [`Batch::join`] to wait for all of them.
    pub fn batch(&self) -> Batch {
        Batch {
            shared: Arc::clone(&self.shared),
            state: Arc::new(BatchState {
                pending: Mutex::new(0),
                done: Condvar::new(),
                panic: Mutex::new(None),
            }),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.live.store(false, Ordering::Release);
        {
            let mut e = self.shared.epoch.lock().unwrap();
            *e += 1;
            self.shared.available.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Surface the first hook / fire-and-forget panic now that the
        // queues are drained — silently eating it would let tests pass
        // on a half-initialized pool. Suppressed while unwinding.
        if !std::thread::panicking() {
            if let Some(payload) = self.shared.stray.lock().unwrap().take() {
                resume_unwind(payload);
            }
        }
    }
}

/// A group of jobs joined as a unit. Cloning yields another handle to
/// the same group (jobs may spawn siblings from inside the pool).
#[derive(Clone)]
pub struct Batch {
    shared: Arc<Shared>,
    state: Arc<BatchState>,
}

struct BatchState {
    /// Jobs spawned and not yet finished.
    pending: Mutex<usize>,
    /// Signalled when `pending` reaches zero.
    done: Condvar,
    /// First job panic, re-raised by [`Batch::join`].
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl Batch {
    /// Runs `job` on the pool, exactly once. May be called from outside
    /// the pool or from inside another job of the same pool (nested
    /// spawns go to the current worker's own deque and are stolen from
    /// there).
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        *self.state.pending.lock().unwrap() += 1;
        let state = Arc::clone(&self.state);
        enqueue(
            &self.shared,
            Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(job));
                if let Err(payload) = result {
                    // Keep the first panic; later ones are dropped.
                    state.panic.lock().unwrap().get_or_insert(payload);
                }
                let mut pending = state.pending.lock().unwrap();
                *pending -= 1;
                if *pending == 0 {
                    state.done.notify_all();
                }
            }),
        );
    }

    /// Waits until every job spawned on this batch (from any handle) has
    /// finished, then re-raises the first panic any of them hit. Must not
    /// be called from a worker of the same pool — that worker would wait
    /// on jobs only it could run.
    pub fn join(&self) {
        let on_own_pool =
            WORKER.with(|w| w.get().is_some_and(|(pid, _)| pid == self.shared.pool_id));
        assert!(
            !on_own_pool,
            "Batch::join called from a worker of the same pool (guaranteed deadlock)"
        );
        let mut pending = self.state.pending.lock().unwrap();
        while *pending > 0 {
            pending = self.state.done.wait(pending).unwrap();
        }
        drop(pending);
        if let Some(payload) = self.state.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
    }
}

/// Queues a job: onto the current worker's own deque when called from
/// inside this pool, onto the injector otherwise; then publishes the
/// push via the epoch.
fn enqueue(shared: &Shared, job: Job) {
    let on_worker = WORKER.with(|w| w.get());
    match on_worker {
        Some((pid, me)) if pid == shared.pool_id => {
            shared.locals[me].lock().unwrap().push_back(job);
        }
        _ => shared.injector.lock().unwrap().push_back(job),
    }
    let mut e = shared.epoch.lock().unwrap();
    *e += 1;
    shared.available.notify_all();
}

/// One attempt to acquire work: own deque (LIFO), injector (FIFO), then
/// steal round-robin from the other workers (FIFO).
fn find_job(shared: &Shared, me: usize) -> Option<Job> {
    if let Some(job) = shared.locals[me].lock().unwrap().pop_back() {
        return Some(job);
    }
    if let Some(job) = shared.injector.lock().unwrap().pop_front() {
        return Some(job);
    }
    let n = shared.locals.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        if let Some(job) = shared.locals[victim].lock().unwrap().pop_front() {
            return Some(job);
        }
    }
    None
}

fn worker_main(shared: Arc<Shared>, me: usize, hook: Option<Arc<dyn Fn() + Send + Sync>>) {
    WORKER.with(|w| w.set(Some((shared.pool_id, me))));
    if let Some(hook) = &hook {
        // A panicking hook must not cost the pool a worker: liveness
        // (draining the queues, batch completion) outranks the hook's
        // side effects, and the payload still surfaces at drop.
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| hook())) {
            record_stray(&shared, payload);
        }
    }
    loop {
        if let Some(job) = find_job(&shared, me) {
            // Same rule for fire-and-forget jobs: a panic is recorded,
            // not worker-fatal. (Batch jobs carry their own catch and
            // re-raise through `Batch::join`.)
            if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                record_stray(&shared, payload);
            }
            continue;
        }
        // Pin the epoch, re-scan, and only then sleep: any push between
        // the scan and the wait bumps the epoch under the same lock, so
        // the wait below returns immediately instead of missing it.
        let seen = *shared.epoch.lock().unwrap();
        if let Some(job) = find_job(&shared, me) {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                record_stray(&shared, payload);
            }
            continue;
        }
        let mut epoch = shared.epoch.lock().unwrap();
        if *epoch != seen {
            // A push (or the shutdown bump) landed after the re-scan;
            // its job may be sitting in a queue we already scanned.
            // Found by the dsi-model explorer: exiting on `!live` here
            // lost jobs enqueued in the scan-to-check window.
            continue;
        }
        if !shared.live.load(Ordering::Acquire) {
            // Queues were empty at `seen` and nothing has been pushed
            // since (the epoch is still pinned under its lock), so the
            // drain is genuinely complete.
            return;
        }
        while *epoch == seen && shared.live.load(Ordering::Acquire) {
            epoch = shared.available.wait(epoch).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn drop_with_idle_workers_terminates() {
        let pool = Pool::with_workers(3);
        assert_eq!(pool.workers(), 3);
        drop(pool);
    }

    #[test]
    fn fire_and_forget_runs() {
        let pool = Pool::with_workers(2);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..64 {
            let hits = Arc::clone(&hits);
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // drains all queued jobs before joining workers
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }
}
