//! Property tests for the vendored work-stealing pool: exactly-once
//! execution (including nested spawns), panic propagation through
//! `Batch::join`, the per-worker start hook, and actual work migration
//! between workers.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use steal::{Builder, Pool};

#[test]
fn every_task_runs_exactly_once() {
    let pool = Pool::with_workers(4);
    const TASKS: usize = 5_000;
    let runs: Arc<Vec<AtomicU8>> = Arc::new((0..TASKS).map(|_| AtomicU8::new(0)).collect());
    let batch = pool.batch();
    for i in 0..TASKS {
        let runs = Arc::clone(&runs);
        batch.spawn(move || {
            runs[i].fetch_add(1, Ordering::Relaxed);
        });
    }
    batch.join();
    for (i, r) in runs.iter().enumerate() {
        assert_eq!(
            r.load(Ordering::Relaxed),
            1,
            "task {i} did not run exactly once"
        );
    }
}

#[test]
fn nested_spawns_run_exactly_once_and_join_sees_them() {
    let pool = Pool::with_workers(3);
    let total = Arc::new(AtomicU64::new(0));
    let batch = pool.batch();
    for _ in 0..16 {
        let total = Arc::clone(&total);
        let nested = batch.clone();
        batch.spawn(move || {
            total.fetch_add(1, Ordering::Relaxed);
            for _ in 0..8 {
                let total = Arc::clone(&total);
                nested.spawn(move || {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }
    batch.join();
    assert_eq!(total.load(Ordering::Relaxed), 16 * 9);
}

#[test]
fn panics_propagate_through_join_and_pool_survives() {
    let pool = Pool::with_workers(2);
    let batch = pool.batch();
    for i in 0..8 {
        batch.spawn(move || {
            if i == 3 {
                panic!("task 3 exploded");
            }
        });
    }
    let err = catch_unwind(AssertUnwindSafe(|| batch.join()))
        .expect_err("join must re-raise the task panic");
    let msg = err
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(
        msg.contains("task 3 exploded"),
        "payload preserved, got {msg:?}"
    );

    // The worker that caught the panic is still alive and scheduling.
    let after = pool.batch();
    let ran = Arc::new(AtomicU64::new(0));
    for _ in 0..32 {
        let ran = Arc::clone(&ran);
        after.spawn(move || {
            ran.fetch_add(1, Ordering::Relaxed);
        });
    }
    after.join();
    assert_eq!(ran.load(Ordering::Relaxed), 32);
}

#[test]
fn start_hook_runs_on_every_worker_before_any_task() {
    thread_local! {
        static HOOKED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    }
    let hook_runs = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&hook_runs);
    let pool = Builder::new()
        .workers(3)
        .on_thread_start(move || {
            HOOKED.with(|h| h.set(true));
            counter.fetch_add(1, Ordering::Relaxed);
        })
        .build();
    let batch = pool.batch();
    let violations = Arc::new(AtomicUsize::new(0));
    for _ in 0..256 {
        let violations = Arc::clone(&violations);
        batch.spawn(move || {
            if !HOOKED.with(|h| h.get()) {
                violations.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
    batch.join();
    assert_eq!(
        violations.load(Ordering::Relaxed),
        0,
        "a task ran before its worker's hook"
    );
    assert_eq!(
        hook_runs.load(Ordering::Relaxed),
        3,
        "hook must run once per worker"
    );
}

#[test]
fn locally_spawned_work_is_stolen_by_other_workers() {
    // One task fans out children into its own worker's deque, then two of
    // those children rendezvous: each blocks until both are running. That
    // is only possible if a *second* worker stole one of them.
    let pool = Pool::with_workers(4);
    let batch = pool.batch();
    let gate = Arc::new((Mutex::new(0usize), Condvar::new()));
    let child_batch = batch.clone();
    let child_gate = Arc::clone(&gate);
    batch.spawn(move || {
        for _ in 0..2 {
            let gate = Arc::clone(&child_gate);
            child_batch.spawn(move || {
                let (count, cv) = &*gate;
                let mut inside = count.lock().unwrap();
                *inside += 1;
                cv.notify_all();
                let deadline = Duration::from_secs(30);
                while *inside < 2 {
                    let (next, timeout) = cv.wait_timeout(inside, deadline).unwrap();
                    inside = next;
                    assert!(
                        !timeout.timed_out(),
                        "no second worker stole the sibling task"
                    );
                }
            });
        }
    });
    batch.join();
    assert_eq!(*gate.0.lock().unwrap(), 2);
}
