//! Edge-schedule tests for the work-stealing pool: panics in hooks and
//! fire-and-forget jobs, stray-panic surfacing, shutdown racing spawns,
//! and nested spawns during the drop drain. These are the deterministic
//! `#[test]` companions to the exhaustive `dsi-model` explorations —
//! they pin the *contract* (workers survive, queues drain, panics
//! surface exactly once) on real threads, while the model suite checks
//! every interleaving of the same paths on virtual ones.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use steal::{Builder, Pool};

/// A fire-and-forget panic must not cost the pool its worker: jobs
/// queued after the panic still run, and the payload surfaces through
/// `take_stray_panic` instead of killing the drop.
#[test]
fn fire_and_forget_panic_keeps_worker_draining() {
    let pool = Pool::with_workers(1);
    let hits = Arc::new(AtomicU64::new(0));
    pool.spawn(|| panic!("stray job panic"));
    for _ in 0..16 {
        let hits = Arc::clone(&hits);
        pool.spawn(move || {
            hits.fetch_add(1, Ordering::Relaxed);
        });
    }
    // Wait for the queue to drain via a batch barrier on the same pool.
    let batch = pool.batch();
    batch.spawn(|| {});
    batch.join();
    while hits.load(Ordering::Relaxed) < 16 {
        std::thread::yield_now();
    }
    let payload = pool.take_stray_panic().expect("panic was recorded");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
    assert_eq!(msg, "stray job panic");
    // Taken payloads are gone: drop must not re-raise.
    drop(pool);
}

/// An untaken stray panic is re-raised by `Pool::drop` once the queues
/// are drained — silently eating it would let callers miss real bugs.
#[test]
fn untaken_stray_panic_reraises_on_drop() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let pool = Pool::with_workers(2);
        pool.spawn(|| panic!("must surface"));
        drop(pool);
    }));
    let payload = result.expect_err("drop re-raises the stray panic");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
    assert_eq!(msg, "must surface");
}

/// A panicking `on_thread_start` hook must not decimate the pool:
/// every worker keeps draining jobs, and only the FIRST hook payload is
/// kept (later ones are dropped, not accumulated).
#[test]
fn hook_panic_leaves_pool_functional() {
    let pool = Builder::new()
        .workers(2)
        .on_thread_start(|| panic!("hook down"))
        .build();
    let hits = Arc::new(AtomicU64::new(0));
    let batch = pool.batch();
    for _ in 0..32 {
        let hits = Arc::clone(&hits);
        batch.spawn(move || {
            hits.fetch_add(1, Ordering::Relaxed);
        });
    }
    batch.join();
    assert_eq!(hits.load(Ordering::Relaxed), 32);
    let payload = pool.take_stray_panic().expect("first hook panic kept");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
    assert_eq!(msg, "hook down");
    assert!(pool.take_stray_panic().is_none(), "payloads do not stack");
    drop(pool);
}

/// Batch panics travel through `Batch::join`, never through the stray
/// channel: the worker survives, join re-raises, and drop stays quiet.
#[test]
fn batch_panic_propagates_through_join_not_stray() {
    let pool = Pool::with_workers(2);
    let batch = pool.batch();
    batch.spawn(|| panic!("batch job panic"));
    batch.spawn(|| {});
    let result = catch_unwind(AssertUnwindSafe(|| batch.join()));
    let payload = result.expect_err("join re-raises the job panic");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
    assert_eq!(msg, "batch job panic");
    assert!(
        pool.take_stray_panic().is_none(),
        "batch panics are not stray panics"
    );
    drop(pool);
}

/// Jobs spawned *by other jobs* while the pool is being dropped still
/// run: drop drains until the queues are genuinely empty, not merely
/// empty at the moment `live` was cleared.
#[test]
fn nested_spawns_during_drop_are_drained() {
    let pool = Pool::with_workers(2);
    let hits = Arc::new(AtomicU64::new(0));
    let batch = pool.batch();
    for _ in 0..8 {
        let hits = Arc::clone(&hits);
        let inner = batch.clone();
        batch.spawn(move || {
            let hits = Arc::clone(&hits);
            inner.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
    }
    batch.join();
    assert_eq!(hits.load(Ordering::Relaxed), 8);
    drop(pool);
}

/// Spawning right up to the drop (steal racing shutdown): every job
/// submitted before `drop` returns has run by the time it does.
#[test]
fn spawns_racing_shutdown_all_execute() {
    for _ in 0..20 {
        let hits = Arc::new(AtomicU64::new(0));
        let pool = Pool::with_workers(3);
        for _ in 0..64 {
            let hits = Arc::clone(&hits);
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }
}

/// The worker's epoch re-scan path (job found between pinning the epoch
/// and parking) has the same panic containment as the main loop: flood
/// a single worker so some jobs are found on the re-scan, with every
/// job panicking — the pool must still drain and join cleanly.
#[test]
fn panics_on_rescan_path_do_not_kill_worker() {
    let pool = Pool::with_workers(1);
    for _ in 0..64 {
        pool.spawn(|| panic!("every job panics"));
    }
    let batch = pool.batch();
    batch.spawn(|| {});
    batch.join();
    let payload = pool.take_stray_panic().expect("first panic kept");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
    assert_eq!(msg, "every job panics");
    drop(pool);
}
