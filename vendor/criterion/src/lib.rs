//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the criterion API the workspace's benches use
//! (`bench_function`, `Bencher::iter`, `criterion_group!` /
//! `criterion_main!`, `black_box`) on top of a plain wall-clock harness:
//! per benchmark it warms up, picks an iteration count targeting a fixed
//! measurement window, and reports mean ns/iter over `sample_size`
//! samples. No statistics beyond mean/min/max, no HTML reports.
//!
//! When invoked with `--test` (as `cargo test` does for `harness = false`
//! bench targets) every benchmark body runs exactly once as a smoke test.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample measurement window the harness aims for.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Benchmark runner configuration and registry.
pub struct Criterion {
    sample_size: usize,
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke_test = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 20,
            smoke_test,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Defines and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        if self.smoke_test {
            f(&mut b);
            println!("bench {name}: ok (smoke test)");
            return self;
        }
        // Warm-up / calibration: double the iteration count until one
        // sample fills the target window.
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= TARGET_SAMPLE || b.iters >= (1 << 24) {
                break;
            }
            let grow = (TARGET_SAMPLE.as_secs_f64() / b.elapsed.as_secs_f64().max(1e-9)).min(64.0);
            b.iters = ((b.iters as f64 * grow).ceil() as u64).max(b.iters + 1);
        }
        let mut samples_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        samples_ns.sort_unstable_by(|a, b| a.partial_cmp(b).expect("durations are never NaN"));
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        println!(
            "bench {name}: {:>12}/iter (min {}, max {}, {} iters x {} samples)",
            fmt_ns(mean),
            fmt_ns(samples_ns[0]),
            fmt_ns(*samples_ns.last().expect("sample_size > 0")),
            b.iters,
            self.sample_size,
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, executed `iters` times back to back.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        c.smoke_test = true; // keep the unit test instant
        let mut runs = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs >= 1);
    }

    #[test]
    fn calibration_terminates_on_fast_bodies() {
        let mut c = Criterion {
            sample_size: 2,
            smoke_test: false,
        };
        c.bench_function("fast", |b| b.iter(|| black_box(1u64 + 1)));
    }
}
