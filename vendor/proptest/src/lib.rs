//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`Just`], [`any`], weighted
//! [`prop_oneof!`], `prop::collection::vec`, the [`proptest!`] test macro
//! with `#![proptest_config(...)]`, and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with its case index; cases
//!   are derived deterministically from the test name, so failures
//!   reproduce exactly on re-run.
//! * Sampling distributions are uniform over the requested domain rather
//!   than proptest's bias-toward-edge-cases regimes.

#![forbid(unsafe_code)]

/// Deterministic generator used to drive strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for case `case` of the test seeded by `seed`.
    pub fn for_case(seed: u64, case: u32) -> Self {
        Self {
            state: seed ^ (case as u64).wrapping_mul(0xA24B_AED4_963E_E407),
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// FNV-1a hash of a test name, used as its deterministic base seed.
pub fn fnv(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Per-run configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy derived from each produced value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// Object-safe sampling view used by [`Union`] (and thus `prop_oneof!`).
pub trait SampleDyn<V> {
    /// Draws one value.
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> SampleDyn<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Weighted union of boxed strategies; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn SampleDyn<V>>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, Box<dyn SampleDyn<V>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Self { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.sample_dyn(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum covered above")
    }
}

/// Boxes one `prop_oneof!` arm. A function (rather than an `as` cast in
/// the macro) so integer-literal inference unifies across arms.
pub fn union_arm<S>(weight: u32, strategy: S) -> (u32, Box<dyn SampleDyn<S::Value>>)
where
    S: Strategy + 'static,
{
    (weight, Box::new(strategy))
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: core::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `Vec` strategy over `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Each `#[test] fn name(arg in strategy, ...)`
/// block becomes a standard test running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @config($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config($config:expr)
     $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let seed = $crate::fnv(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::TestRng::for_case(seed, case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)*
                    let run = || -> () { $body };
                    run();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition
/// (upstream rejects and resamples; this stand-in simply ends the case,
/// which preserves semantics at the cost of running fewer effective
/// cases — fine for the workspace's generous case counts).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Builds a (possibly weighted) union strategy from alternatives that
/// share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::union_arm($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::union_arm(1u32, $strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_sample_in_domain() {
        let mut rng = crate::TestRng::for_case(1, 0);
        for _ in 0..1000 {
            let v = (3u32..7).sample(&mut rng);
            assert!((3..7).contains(&v));
            let f = (0.25..0.75f64).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let (a, b) = ((0u64..4), Just(9u8)).sample(&mut rng);
            assert!(a < 4 && b == 9);
            let m = (0u32..5).prop_map(|x| x * 2).sample(&mut rng);
            assert!(m % 2 == 0 && m < 10);
        }
    }

    #[test]
    fn oneof_respects_zero_weight_arms() {
        let mut rng = crate::TestRng::for_case(2, 0);
        let s = prop_oneof![1 => Just(1u8), 0 => Just(2u8)];
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), 1);
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let mut rng = crate::TestRng::for_case(3, 0);
        let s = (1u64..5).prop_flat_map(|n| (Just(n), 0u64..n));
        for _ in 0..1000 {
            let (n, v) = s.sample(&mut rng);
            assert!(v < n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_runnable_tests(x in 0u32..10, (a, b) in (0u64..5, any::<bool>())) {
            prop_assert!(x < 10);
            prop_assert!(a < 5);
            let _ = b;
            prop_assert_eq!(x + 1, 1 + x);
        }
    }
}
