//! `interleave` — cfg-gated synchronization shims plus an exhaustive
//! interleaving explorer for the workspace's concurrency layer.
//!
//! The crate has two personalities, selected at build time:
//!
//! - **Normal builds**: [`sync`] and [`thread`] are pure re-exports of
//!   `std::sync` / `std::thread`. Code written against them compiles to
//!   exactly the std types — zero cost, bit-identical behaviour.
//! - **`RUSTFLAGS="--cfg dsi_model"` builds**: the same names resolve
//!   to instrumented types that route every synchronization event
//!   through a controlled scheduler ([`explore`]) which serializes the
//!   program and depth-first explores its interleavings under a
//!   preemption bound, recording an [`Event`] stream per execution for
//!   race / deadlock / lost-wakeup analysis (see the `dsi-model`
//!   crate).
//!
//! Consumers (`vendor/steal`, `dsi_core::share`) port by swapping
//! `use std::sync::{...}` for `use interleave::sync::{...}` — the API
//! surface is the `std` subset they use, nothing more.
//!
//! Model caveats (documented divergences from `std` under the cfg):
//! no lock poisoning, no spurious condvar wakeups, all atomics
//! effectively `SeqCst`, and `notify_one` wakes the longest waiter
//! deterministically. None of these are observable under the normal
//! cfg, which is what ships.

#![warn(missing_docs)]

mod cell;
pub mod event;
#[cfg(dsi_model)]
mod explore;
pub mod sync;
pub mod thread;

pub use cell::SharedCell;
pub use event::{BlockedOn, Event, Execution, ObjId, ObjKind, TaskId, Violation};
#[cfg(dsi_model)]
pub use explore::{explore, explore_with, Options, Report};
