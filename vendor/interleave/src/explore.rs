//! The controlled scheduler: DFS exploration of thread interleavings.
//!
//! One OS thread per model task, but the scheduler keeps exactly one
//! task runnable at a time, so every execution is a serialization of
//! the program. At every *switch point* (mutex acquire attempt, atomic
//! op, [`crate::SharedCell`] access) the scheduler either replays a
//! recorded choice or records the untried alternatives, then depth-first
//! explores them across repeated executions of the closure.
//!
//! Partial-order reduction is op-level and coarse: releases, notifies,
//! spawns and join entries update state without branching — their
//! reorderings are observable only through subsequent acquire/atomic
//! branch points, which do branch. Preemption bounding keeps the
//! schedule count tractable: continuing the running task is free, while
//! switching away from a still-runnable task costs one unit of the
//! budget ([`Options::preemption_bound`]); forced switches (the running
//! task blocked or finished) are always free and always fully explored.

use std::any::Any;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool as StdAtomicBool, Ordering as StdOrdering};
use std::sync::{
    Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once, PoisonError,
};

use crate::event::{BlockedOn, Event, Execution, ObjId, ObjKind, TaskId, Violation};

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct Options {
    /// Maximum number of *preemptions* per execution: switches away
    /// from a task that could have kept running. 0 explores only
    /// cooperative schedules; 2 is already strong in practice (most
    /// concurrency bugs need at most two preemptions to manifest).
    pub preemption_bound: usize,
    /// Safety valve on the number of executions; exceeding it returns
    /// a [`Report`] with `complete == false` instead of running
    /// forever. The model suite asserts `complete`.
    pub max_executions: usize,
    /// Safety valve on scheduling steps within one execution; a
    /// livelocked scenario trips [`Violation::StepLimit`].
    pub max_steps: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            preemption_bound: 2,
            max_executions: 500_000,
            max_steps: 20_000,
        }
    }
}

impl Options {
    /// Options with the given preemption bound and the default valves.
    pub fn with_bound(preemption_bound: usize) -> Self {
        Options {
            preemption_bound,
            ..Options::default()
        }
    }
}

/// The outcome of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Number of executions (distinct schedules) run.
    pub executions: usize,
    /// `true` when the bounded state space was exhausted: every
    /// schedule within the preemption bound was run and none violated.
    /// `false` when a violation stopped exploration early or
    /// [`Options::max_executions`] was hit.
    pub complete: bool,
    /// The first violation found, if any.
    pub violation: Option<Violation>,
    /// The execution that produced the violation (its `schedule` is the
    /// counterexample: the task picked at every switch point).
    pub counterexample: Option<Execution>,
}

impl Report {
    /// Panics with a readable counterexample if the exploration was
    /// incomplete or found a violation.
    pub fn assert_ok(&self) {
        if let Some(v) = &self.violation {
            let sched = self
                .counterexample
                .as_ref()
                .map(|e| format!("{:?}", e.schedule))
                .unwrap_or_else(|| "<none>".into());
            panic!(
                "model violation after {} executions: {v}\n  counterexample schedule: {sched}",
                self.executions
            );
        }
        assert!(
            self.complete,
            "exploration incomplete: hit max_executions at {}",
            self.executions
        );
    }
}

/// Panic payload used to unwind every model task once a violation
/// aborts the execution. Swallowed by the harness and by the quiet
/// panic hook; user `catch_unwind` that traps it will re-trip on the
/// next shim operation.
pub(crate) struct ModelAbort;

thread_local! {
    /// The execution this OS thread belongs to, if it is a model task.
    static CURRENT: RefCell<Option<(Arc<Exec>, TaskId)>> = const { RefCell::new(None) };
}

/// The (execution, task id) of the calling thread, if registered.
pub(crate) fn current() -> Option<(Arc<Exec>, TaskId)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(v: Option<(Arc<Exec>, TaskId)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// `&T as usize`, the raw identity the per-execution object table keys
/// on (dense ids are assigned in first-use order).
pub(crate) fn addr_of<T: ?Sized>(r: &T) -> usize {
    r as *const T as *const () as usize
}

/// Unwind the calling task out of an aborted execution.
pub(crate) fn abort_unwind() -> ! {
    std::panic::panic_any(ModelAbort)
}

fn panic_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    BlockedLock(ObjId),
    BlockedCondvar(ObjId),
    BlockedJoin(TaskId),
    Finished,
}

/// One scheduling decision plus the alternatives not yet explored.
#[derive(Debug)]
struct TraceEntry {
    chosen: TaskId,
    alts: Vec<TaskId>,
}

struct ExecState {
    status: Vec<Status>,
    os_handles: Vec<Option<std::thread::JoinHandle<()>>>,
    active: TaskId,
    step: usize,
    trace: Vec<TraceEntry>,
    schedule: Vec<TaskId>,
    preemptions: usize,
    events: Vec<Event>,
    objs: BTreeMap<usize, ObjId>,
    obj_kinds: Vec<ObjKind>,
    lock_owner: BTreeMap<ObjId, TaskId>,
    cv_waiters: BTreeMap<ObjId, Vec<TaskId>>,
    abort: bool,
    violation: Option<Violation>,
    all_done: bool,
}

/// One execution's scheduler. Shared by every task of the execution.
pub(crate) struct Exec {
    state: StdMutex<ExecState>,
    cond: StdCondvar,
    abort_flag: StdAtomicBool,
    preemption_bound: usize,
    max_steps: usize,
}

impl Exec {
    fn new(opts: &Options, trace: Vec<TraceEntry>) -> Self {
        Exec {
            state: StdMutex::new(ExecState {
                status: vec![Status::Runnable],
                os_handles: vec![None],
                active: 0,
                step: 0,
                trace,
                schedule: Vec::new(),
                preemptions: 0,
                events: Vec::new(),
                objs: BTreeMap::new(),
                obj_kinds: Vec::new(),
                lock_owner: BTreeMap::new(),
                cv_waiters: BTreeMap::new(),
                abort: false,
                violation: None,
                all_done: false,
            }),
            cond: StdCondvar::new(),
            abort_flag: StdAtomicBool::new(false),
            preemption_bound: opts.preemption_bound,
            max_steps: opts.max_steps,
        }
    }

    fn lock_state(&self) -> StdMutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Fast abort check usable without the state lock.
    pub(crate) fn aborting(&self) -> bool {
        self.abort_flag.load(StdOrdering::SeqCst)
    }

    fn obj_id(st: &mut ExecState, addr: usize, kind: ObjKind) -> ObjId {
        if let Some(&id) = st.objs.get(&addr) {
            return id;
        }
        let id = st.obj_kinds.len();
        st.obj_kinds.push(kind);
        st.objs.insert(addr, id);
        id
    }

    /// Drops an object's address → id mapping (its memory may be
    /// reused by a later allocation within the same execution).
    pub(crate) fn forget_obj(&self, addr: usize) {
        let mut st = self.lock_state();
        st.objs.remove(&addr);
    }

    fn trigger_abort(&self, st: &mut ExecState, v: Violation) {
        st.abort = true;
        self.abort_flag.store(true, StdOrdering::SeqCst);
        if st.violation.is_none() {
            st.violation = Some(v);
        }
        self.cond.notify_all();
    }

    /// Chooses the next active task. `voluntary` means the caller is
    /// still runnable (a branch point: switching away costs a
    /// preemption); otherwise the caller just blocked or finished and
    /// the switch is forced (free, all alternatives recorded).
    fn pick(&self, st: &mut ExecState, me: TaskId, voluntary: bool) {
        if st.abort {
            return;
        }
        if st.step >= self.max_steps {
            let steps = st.step;
            self.trigger_abort(st, Violation::StepLimit { steps });
            return;
        }
        let runnable: Vec<TaskId> = st
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Status::Runnable))
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.status.iter().all(|s| *s == Status::Finished) {
                st.all_done = true;
                self.cond.notify_all();
                return;
            }
            let blocked = st
                .status
                .iter()
                .enumerate()
                .filter_map(|(t, s)| match *s {
                    Status::BlockedLock(l) => Some((t, BlockedOn::Lock(l))),
                    Status::BlockedCondvar(c) => Some((t, BlockedOn::Condvar(c))),
                    Status::BlockedJoin(j) => Some((t, BlockedOn::Join(j))),
                    _ => None,
                })
                .collect();
            self.trigger_abort(st, Violation::Deadlock { blocked });
            return;
        }
        let step = st.step;
        st.step += 1;
        let chosen = if step < st.trace.len() {
            st.trace[step].chosen
        } else {
            let (default, alts) = if voluntary {
                let alts = if st.preemptions < self.preemption_bound {
                    runnable.iter().copied().filter(|&t| t != me).collect()
                } else {
                    Vec::new()
                };
                (me, alts)
            } else {
                (runnable[0], runnable[1..].to_vec())
            };
            st.trace.push(TraceEntry {
                chosen: default,
                alts,
            });
            default
        };
        debug_assert!(matches!(st.status[chosen], Status::Runnable));
        if voluntary && chosen != me {
            st.preemptions += 1;
        }
        st.schedule.push(chosen);
        st.active = chosen;
        self.cond.notify_all();
    }

    /// Parks until this task is the active one (or the execution
    /// aborts, in which case it unwinds).
    fn wait_for_turn(&self, mut st: StdMutexGuard<'_, ExecState>, me: TaskId) {
        loop {
            if st.abort {
                drop(st);
                abort_unwind();
            }
            if st.active == me && matches!(st.status[me], Status::Runnable) {
                return;
            }
            st = self.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A voluntary branch point: the scheduler may preempt here.
    pub(crate) fn switch(&self, me: TaskId) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            abort_unwind();
        }
        self.pick(&mut st, me, true);
        self.wait_for_turn(st, me);
    }

    /// Blocking mutex acquisition (branch point at every attempt).
    pub(crate) fn acquire(&self, me: TaskId, addr: usize) -> ObjId {
        self.switch(me);
        loop {
            let mut st = self.lock_state();
            if st.abort {
                drop(st);
                abort_unwind();
            }
            let lock = Self::obj_id(&mut st, addr, ObjKind::Mutex);
            if !st.lock_owner.contains_key(&lock) {
                st.lock_owner.insert(lock, me);
                st.events.push(Event::Acquire { task: me, lock });
                return lock;
            }
            st.status[me] = Status::BlockedLock(lock);
            self.pick(&mut st, me, false);
            self.wait_for_turn(st, me);
            // Released and rescheduled: loop to retry the acquisition.
        }
    }

    /// Mutex release: wakes the contenders, no branch point.
    pub(crate) fn release(&self, me: TaskId, lock: ObjId) {
        let mut st = self.lock_state();
        if st.abort {
            return;
        }
        st.lock_owner.remove(&lock);
        st.events.push(Event::Release { task: me, lock });
        for s in st.status.iter_mut() {
            if *s == Status::BlockedLock(lock) {
                *s = Status::Runnable;
            }
        }
    }

    /// Condvar wait entry: atomically releases `lock`, registers as a
    /// waiter and blocks until notified. The caller re-acquires the
    /// mutex afterwards via [`Exec::acquire`]. Returns the condvar id.
    pub(crate) fn cv_wait(&self, me: TaskId, cv_addr: usize, lock: ObjId) -> ObjId {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            abort_unwind();
        }
        let cv = Self::obj_id(&mut st, cv_addr, ObjKind::Condvar);
        st.events.push(Event::CvWait { task: me, cv, lock });
        st.lock_owner.remove(&lock);
        for s in st.status.iter_mut() {
            if *s == Status::BlockedLock(lock) {
                *s = Status::Runnable;
            }
        }
        st.cv_waiters.entry(cv).or_default().push(me);
        st.status[me] = Status::BlockedCondvar(cv);
        self.pick(&mut st, me, false);
        self.wait_for_turn(st, me);
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            abort_unwind();
        }
        st.events.push(Event::CvWake { task: me, cv });
        cv
    }

    /// Notify: wakes one or all waiters, no branch point (the wake
    /// *order* is explored at the waiters' subsequent re-acquires).
    pub(crate) fn notify(&self, me: TaskId, cv_addr: usize, all: bool) {
        let mut st = self.lock_state();
        if st.abort {
            return;
        }
        let cv = Self::obj_id(&mut st, cv_addr, ObjKind::Condvar);
        let woken = {
            let waiters = st.cv_waiters.entry(cv).or_default();
            if all {
                std::mem::take(waiters)
            } else if waiters.is_empty() {
                Vec::new()
            } else {
                vec![waiters.remove(0)]
            }
        };
        for &t in &woken {
            st.status[t] = Status::Runnable;
        }
        st.events.push(Event::Notify {
            task: me,
            cv,
            waiters: woken.len(),
            all,
        });
    }

    /// Branch point plus event for an atomic or cell access. The caller
    /// performs the real operation right after (still serialized).
    pub(crate) fn access(&self, me: TaskId, addr: usize, kind: ObjKind, write: bool) {
        self.switch(me);
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            abort_unwind();
        }
        let obj = Self::obj_id(&mut st, addr, kind);
        let ev = match (kind, write) {
            (ObjKind::Cell, false) => Event::CellRead {
                task: me,
                cell: obj,
            },
            (ObjKind::Cell, true) => Event::CellWrite {
                task: me,
                cell: obj,
            },
            (_, false) => Event::AtomicLoad { task: me, obj },
            (_, true) => Event::AtomicStore { task: me, obj },
        };
        st.events.push(ev);
    }

    /// Allocates a task id for a child about to be spawned.
    pub(crate) fn register_child(&self, parent: TaskId) -> TaskId {
        let mut st = self.lock_state();
        let child = st.status.len();
        st.status.push(Status::Runnable);
        st.os_handles.push(None);
        if !st.abort {
            st.events.push(Event::Spawn { parent, child });
        }
        child
    }

    /// Stores the OS handle of a spawned child (drained by the harness
    /// if the user never joins).
    pub(crate) fn attach_handle(&self, child: TaskId, h: std::thread::JoinHandle<()>) {
        let mut st = self.lock_state();
        st.os_handles[child] = Some(h);
    }

    /// Marks a freshly spawned child as failed-to-spawn (rare).
    pub(crate) fn cancel_child(&self, child: TaskId) {
        let mut st = self.lock_state();
        st.status[child] = Status::Finished;
    }

    /// First park of a spawned task: waits to be scheduled.
    pub(crate) fn first_turn(&self, me: TaskId) {
        let st = self.lock_state();
        self.wait_for_turn(st, me);
    }

    /// Registers the calling OS thread as model task `me`.
    pub(crate) fn adopt(self: &Arc<Self>, me: TaskId) {
        set_current(Some((Arc::clone(self), me)));
    }

    /// Clears the calling OS thread's registration.
    pub(crate) fn retire() {
        set_current(None);
    }

    /// Task termination: wakes joiners and hands the schedule on.
    pub(crate) fn exit_task(&self, me: TaskId) {
        let mut st = self.lock_state();
        st.status[me] = Status::Finished;
        if !st.abort {
            st.events.push(Event::ThreadExit { task: me });
        }
        for s in st.status.iter_mut() {
            if *s == Status::BlockedJoin(me) {
                *s = Status::Runnable;
            }
        }
        if st.status.iter().all(|s| *s == Status::Finished) {
            st.all_done = true;
            self.cond.notify_all();
            return;
        }
        if st.abort {
            self.cond.notify_all();
        } else {
            self.pick(&mut st, me, false);
        }
    }

    /// Join entry: blocks until `target` finishes, then yields its OS
    /// handle for the real join.
    pub(crate) fn join_task(
        &self,
        me: TaskId,
        target: TaskId,
    ) -> Option<std::thread::JoinHandle<()>> {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            abort_unwind();
        }
        st.events.push(Event::JoinEnter { task: me, target });
        if st.status[target] != Status::Finished {
            st.status[me] = Status::BlockedJoin(target);
            self.pick(&mut st, me, false);
            self.wait_for_turn(st, me);
            st = self.lock_state();
            if st.abort {
                drop(st);
                abort_unwind();
            }
        }
        st.os_handles[target].take()
    }

    /// Degraded handle take for joins that run during an abort.
    pub(crate) fn take_handle(&self, target: TaskId) -> Option<std::thread::JoinHandle<()>> {
        let mut st = self.lock_state();
        st.os_handles[target].take()
    }

    fn finish_main(&self, panicked: Option<Box<dyn Any + Send>>) {
        if let Some(p) = panicked {
            let mut st = self.lock_state();
            if !p.is::<ModelAbort>() && !st.abort {
                let v = Violation::UserPanic {
                    task: 0,
                    message: panic_message(p.as_ref()),
                };
                self.trigger_abort(&mut st, v);
            }
        }
        self.exit_task(0);
    }

    fn wait_all_done(&self) {
        let mut st = self.lock_state();
        while !st.all_done {
            st = self.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Extracts the run's artifacts and any handles the user leaked.
    #[allow(clippy::type_complexity)]
    fn take_results(
        &self,
    ) -> (
        Vec<TraceEntry>,
        Vec<Event>,
        Vec<TaskId>,
        Vec<ObjKind>,
        Option<Violation>,
        Vec<std::thread::JoinHandle<()>>,
    ) {
        let mut st = self.lock_state();
        let stray = st.os_handles.iter_mut().filter_map(Option::take).collect();
        (
            std::mem::take(&mut st.trace),
            std::mem::take(&mut st.events),
            std::mem::take(&mut st.schedule),
            std::mem::take(&mut st.obj_kinds),
            st.violation.take(),
            stray,
        )
    }
}

static QUIET_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that silences the abort
/// sentinel and panics raised on registered model tasks — those are
/// either scheduled teardown or captured as [`Violation::UserPanic`] —
/// while delegating everything else to the previous hook.
fn install_quiet_panic_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<ModelAbort>() {
                return;
            }
            let registered = CURRENT
                .try_with(|c| c.try_borrow().map(|b| b.is_some()).unwrap_or(true))
                .unwrap_or(false);
            if registered {
                return;
            }
            prev(info);
        }));
    });
}

/// Exhaustively explores the interleavings of `f` within the bounds of
/// `opts`. See [`explore_with`] for the per-execution callback variant.
pub fn explore<F: Fn()>(opts: &Options, f: F) -> Report {
    explore_with(opts, f, |_| {})
}

/// Like [`explore`], but invokes `per_exec` with every finished
/// [`Execution`] (events + schedule) so analyzers can replay the
/// stream. The callback runs on the exploring thread, outside the
/// model.
pub fn explore_with<F, C>(opts: &Options, f: F, mut per_exec: C) -> Report
where
    F: Fn(),
    C: FnMut(&Execution),
{
    install_quiet_panic_hook();
    assert!(
        current().is_none(),
        "nested interleave::explore is not supported"
    );
    let mut trace: Vec<TraceEntry> = Vec::new();
    let mut executions = 0usize;
    loop {
        let exec = Arc::new(Exec::new(opts, std::mem::take(&mut trace)));
        exec.adopt(0);
        let r = catch_unwind(AssertUnwindSafe(&f));
        exec.finish_main(r.err());
        exec.wait_all_done();
        Exec::retire();
        let (tr, events, schedule, obj_kinds, violation, stray) = exec.take_results();
        for h in stray {
            let _ = h.join();
        }
        let execution = Execution {
            index: executions,
            events,
            schedule,
            obj_kinds,
        };
        executions += 1;
        per_exec(&execution);
        if let Some(v) = violation {
            return Report {
                executions,
                complete: false,
                violation: Some(v),
                counterexample: Some(execution),
            };
        }
        trace = tr;
        loop {
            match trace.last_mut() {
                None => {
                    return Report {
                        executions,
                        complete: true,
                        violation: None,
                        counterexample: None,
                    }
                }
                Some(e) => {
                    if let Some(a) = e.alts.pop() {
                        e.chosen = a;
                        break;
                    }
                    trace.pop();
                }
            }
        }
        if executions >= opts.max_executions {
            return Report {
                executions,
                complete: false,
                violation: None,
                counterexample: None,
            };
        }
    }
}
