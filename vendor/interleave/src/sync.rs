//! Drop-in `std::sync` subset: `Mutex`, `Condvar` and the atomics the
//! workspace's concurrency layer uses.
//!
//! Under the normal cfg this module is a pure re-export of `std::sync`
//! — zero cost, bit-identical behaviour. Under `--cfg dsi_model` the
//! types are instrumented: every acquire, release, wait, notify and
//! atomic access on a thread registered with [`crate::explore`] becomes
//! a scheduler event (and usually a branch point). Unregistered threads
//! fall through to plain `std` behaviour, so code built with the cfg
//! still works outside an exploration.
//!
//! Model semantics intentionally diverge from `std` in three documented
//! ways: lock poisoning is not modelled (`lock()` always returns `Ok`),
//! `Condvar` has no spurious wakeups, and every atomic is treated as
//! `SeqCst` (executions are serialized, so nothing weaker is
//! observable; weak memory orderings are out of scope).

#[cfg(not(dsi_model))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

/// Atomic types routed through the model scheduler under
/// `--cfg dsi_model`; plain `std::sync::atomic` otherwise.
#[cfg(not(dsi_model))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(dsi_model)]
pub use model::{atomic, Condvar, Mutex, MutexGuard};

#[cfg(dsi_model)]
mod model {
    use std::ops::{Deref, DerefMut};
    use std::sync::{LockResult, PoisonError, TryLockError};

    use crate::explore::{abort_unwind, addr_of, current};

    /// A mutex with the `std::sync::Mutex` API whose acquisitions are
    /// scheduler branch points inside an exploration.
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Creates the mutex (const, usable in statics).
        pub const fn new(t: T) -> Self {
            Mutex {
                inner: std::sync::Mutex::new(t),
            }
        }

        /// Acquires the mutex. Inside an exploration this is a branch
        /// point and may block (in model time) on the owner; poisoning
        /// is not modelled, so the result is always `Ok`.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            match current() {
                Some((exec, me)) if !exec.aborting() => {
                    let id = exec.acquire(me, addr_of(&self.inner));
                    let g = match self.inner.try_lock() {
                        Ok(g) => g,
                        Err(TryLockError::Poisoned(p)) => p.into_inner(),
                        // The model owner bookkeeping says we own it;
                        // reaching here means a non-model thread held
                        // the std mutex. Degrade to a real block.
                        Err(TryLockError::WouldBlock) => {
                            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
                        }
                    };
                    Ok(MutexGuard {
                        mutex: self,
                        model: Some((exec, me, id)),
                        inner: Some(g),
                    })
                }
                Some((_, _)) if !std::thread::panicking() => abort_unwind(),
                _ => Ok(MutexGuard {
                    mutex: self,
                    model: None,
                    inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
                }),
            }
        }
    }

    impl<T> Drop for Mutex<T> {
        fn drop(&mut self) {
            if let Some((exec, _)) = current() {
                if !exec.aborting() {
                    exec.forget_obj(addr_of(&self.inner));
                }
            }
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mutex").finish_non_exhaustive()
        }
    }

    /// Guard returned by [`Mutex::lock`]; releasing it wakes model
    /// contenders without a branch point.
    pub struct MutexGuard<'a, T> {
        mutex: &'a Mutex<T>,
        model: Option<(std::sync::Arc<crate::explore::Exec>, usize, usize)>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard taken")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Drop the real guard before the bookkeeping so a contender
            // scheduled next finds the std mutex free.
            let _ = self.inner.take();
            if let Some((exec, me, id)) = self.model.take() {
                if !exec.aborting() {
                    exec.release(me, id);
                }
            }
        }
    }

    /// A condition variable with the `std::sync::Condvar` API. The
    /// model has no spurious wakeups: every wakeup is caused by a
    /// notify, which is exactly what lost-wakeup analysis needs.
    pub struct Condvar {
        inner: std::sync::Condvar,
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Condvar {
        /// Creates the condvar (const, usable in statics).
        pub const fn new() -> Self {
            Condvar {
                inner: std::sync::Condvar::new(),
            }
        }

        /// Atomically releases the guard's mutex and waits for a
        /// notify, then re-acquires the mutex (a fresh branch point).
        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            match (current(), guard.model.take()) {
                (Some((exec, me)), Some((_, _, lock_id))) if !exec.aborting() => {
                    let mutex = guard.mutex;
                    // Free the real mutex before parking in the
                    // scheduler; a contender scheduled while we wait
                    // must find it unlocked.
                    let _ = guard.inner.take();
                    drop(guard);
                    exec.cv_wait(me, addr_of(&self.inner), lock_id);
                    mutex.lock()
                }
                (Some((exec, _)), model) if !std::thread::panicking() && exec.aborting() => {
                    guard.model = model;
                    drop(guard);
                    abort_unwind()
                }
                (_, model) => {
                    // Unregistered thread (or degraded teardown): real
                    // wait when unregistered, immediate return during
                    // an abort so unwinding code cannot hang.
                    if model.is_some() {
                        // Aborting + panicking: keep the guard as-is.
                        guard.model = model;
                        return Ok(guard);
                    }
                    let mutex = guard.mutex;
                    let g = guard.inner.take().expect("guard taken");
                    drop(guard);
                    let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
                    Ok(MutexGuard {
                        mutex,
                        model: None,
                        inner: Some(g),
                    })
                }
            }
        }

        /// Wakes one waiter (the longest-waiting, deterministically).
        pub fn notify_one(&self) {
            self.notify(false);
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            self.notify(true);
        }

        fn notify(&self, all: bool) {
            match current() {
                Some((exec, me)) if !exec.aborting() => {
                    exec.notify(me, addr_of(&self.inner), all);
                }
                Some((exec, _)) if !std::thread::panicking() && exec.aborting() => abort_unwind(),
                _ => {
                    if all {
                        self.inner.notify_all();
                    } else {
                        self.inner.notify_one();
                    }
                }
            }
        }
    }

    impl Drop for Condvar {
        fn drop(&mut self) {
            if let Some((exec, _)) = current() {
                if !exec.aborting() {
                    exec.forget_obj(addr_of(&self.inner));
                }
            }
        }
    }

    impl std::fmt::Debug for Condvar {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Condvar").finish_non_exhaustive()
        }
    }

    /// Instrumented atomics: every access is a scheduler branch point.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        use crate::event::ObjKind;
        use crate::explore::{abort_unwind, addr_of, current};

        fn note(addr: usize, write: bool) {
            if let Some((exec, me)) = current() {
                if exec.aborting() {
                    if !std::thread::panicking() {
                        abort_unwind();
                    }
                } else {
                    exec.access(me, addr, ObjKind::Atomic, write);
                }
            }
        }

        macro_rules! model_atomic {
            ($(#[$doc:meta])* $name:ident, $std:ident, $t:ty) => {
                $(#[$doc])*
                pub struct $name {
                    inner: std::sync::atomic::$std,
                }

                impl $name {
                    /// Creates the atomic (const, usable in statics).
                    pub const fn new(v: $t) -> Self {
                        Self {
                            inner: std::sync::atomic::$std::new(v),
                        }
                    }

                    /// Atomic load (model: branch point, `SeqCst`).
                    pub fn load(&self, order: Ordering) -> $t {
                        note(addr_of(&self.inner), false);
                        self.inner.load(order)
                    }

                    /// Atomic store (model: branch point, `SeqCst`).
                    pub fn store(&self, v: $t, order: Ordering) {
                        note(addr_of(&self.inner), true);
                        self.inner.store(v, order)
                    }

                    /// Atomic swap (model: branch point, `SeqCst`).
                    pub fn swap(&self, v: $t, order: Ordering) -> $t {
                        note(addr_of(&self.inner), true);
                        self.inner.swap(v, order)
                    }
                }

                impl Drop for $name {
                    fn drop(&mut self) {
                        if let Some((exec, _)) = current() {
                            if !exec.aborting() {
                                exec.forget_obj(addr_of(&self.inner));
                            }
                        }
                    }
                }

                impl Default for $name {
                    fn default() -> Self {
                        Self::new(<$t>::default())
                    }
                }

                impl std::fmt::Debug for $name {
                    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        f.debug_struct(stringify!($name)).finish_non_exhaustive()
                    }
                }
            };
        }

        macro_rules! model_atomic_int {
            ($name:ident, $t:ty) => {
                impl $name {
                    /// Atomic add, returning the previous value
                    /// (model: branch point, `SeqCst`).
                    pub fn fetch_add(&self, v: $t, order: Ordering) -> $t {
                        note(addr_of(&self.inner), true);
                        self.inner.fetch_add(v, order)
                    }

                    /// Atomic subtract, returning the previous value
                    /// (model: branch point, `SeqCst`).
                    pub fn fetch_sub(&self, v: $t, order: Ordering) -> $t {
                        note(addr_of(&self.inner), true);
                        self.inner.fetch_sub(v, order)
                    }
                }
            };
        }

        model_atomic!(
            /// `AtomicBool` routed through the model scheduler.
            AtomicBool,
            AtomicBool,
            bool
        );
        model_atomic!(
            /// `AtomicUsize` routed through the model scheduler.
            AtomicUsize,
            AtomicUsize,
            usize
        );
        model_atomic!(
            /// `AtomicU64` routed through the model scheduler.
            AtomicU64,
            AtomicU64,
            u64
        );
        model_atomic_int!(AtomicUsize, usize);
        model_atomic_int!(AtomicU64, u64);
    }
}
