//! Drop-in `std::thread` subset: `spawn`, `Builder`, `JoinHandle`,
//! `available_parallelism`.
//!
//! Normal cfg: pure re-exports of `std::thread`. Under `--cfg
//! dsi_model`, threads spawned from a registered model task become
//! model tasks themselves: the child parks until the scheduler picks
//! it, every join is a blocking scheduler event, and
//! `available_parallelism` reports a deterministic 2. Spawns from
//! unregistered threads fall through to real `std` threads.

#[cfg(not(dsi_model))]
pub use std::thread::{available_parallelism, spawn, Builder, JoinHandle, Result};

#[cfg(dsi_model)]
pub use model::{available_parallelism, spawn, Builder, JoinHandle};

#[cfg(dsi_model)]
/// `std::thread::Result`, re-exported for spawn/join signatures.
pub use std::thread::Result;

#[cfg(dsi_model)]
mod model {
    use std::num::NonZeroUsize;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex as StdMutex, PoisonError};

    use crate::explore::{abort_unwind, current, Exec, ModelAbort};

    /// Configures a thread before spawning it (name only — the stack
    /// size knob is accepted nowhere in this workspace).
    #[derive(Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        /// A builder with no name set.
        pub fn new() -> Self {
            Builder::default()
        }

        /// Names the thread (carried through to the real OS thread for
        /// debuggability; the model identifies tasks by id).
        pub fn name(mut self, name: String) -> Self {
            self.name = Some(name);
            self
        }

        /// Spawns the thread. Inside an exploration the child becomes
        /// a model task that runs only when scheduled.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            let mut b = std::thread::Builder::new();
            if let Some(n) = &self.name {
                b = b.name(n.clone());
            }
            match current() {
                Some((exec, me)) if !exec.aborting() => {
                    let child = exec.register_child(me);
                    let slot: Slot<T> = Arc::new(StdMutex::new(None));
                    let (exec2, slot2) = (Arc::clone(&exec), Arc::clone(&slot));
                    // dsi-lint: allow(spawn): model-task wrapper; the user closure carries its own state installs
                    let res = b.spawn(move || {
                        exec2.adopt(child);
                        let r = catch_unwind(AssertUnwindSafe(|| {
                            exec2.first_turn(child);
                            f()
                        }));
                        let store = match r {
                            Ok(v) => Some(Ok(v)),
                            Err(p) if p.is::<ModelAbort>() => None,
                            Err(p) => Some(Err(p)),
                        };
                        *slot2.lock().unwrap_or_else(PoisonError::into_inner) = store;
                        exec2.exit_task(child);
                        Exec::retire();
                    });
                    match res {
                        Ok(h) => {
                            exec.attach_handle(child, h);
                            Ok(JoinHandle {
                                inner: Inner::Model {
                                    exec,
                                    task: child,
                                    slot,
                                },
                            })
                        }
                        Err(e) => {
                            exec.cancel_child(child);
                            Err(e)
                        }
                    }
                }
                Some((_, _)) if !std::thread::panicking() => abort_unwind(),
                _ => {
                    // dsi-lint: allow(spawn): passthrough outside an exploration; call sites carry their own installs
                    b.spawn(f).map(|h| JoinHandle {
                        inner: Inner::Std(h),
                    })
                }
            }
        }
    }

    type Slot<T> = Arc<StdMutex<Option<std::thread::Result<T>>>>;

    /// Spawns an unnamed thread; see [`Builder::spawn`].
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        // dsi-lint: allow(spawn): shim front door; routes through Builder::spawn which registers the model task
        Builder::new().spawn(f).expect("spawn model thread")
    }

    /// Deterministic 2 inside an exploration; the real value otherwise.
    pub fn available_parallelism() -> std::io::Result<NonZeroUsize> {
        match current() {
            Some(_) => Ok(NonZeroUsize::new(2).expect("nonzero")),
            None => std::thread::available_parallelism(),
        }
    }

    enum Inner<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            exec: Arc<Exec>,
            task: usize,
            slot: Slot<T>,
        },
    }

    /// Handle to a spawned thread; `join` blocks (in model time) until
    /// the task finishes and returns its closure's result, `Err` when
    /// it panicked — same contract as `std::thread::JoinHandle`.
    pub struct JoinHandle<T> {
        inner: Inner<T>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its result.
        pub fn join(self) -> std::thread::Result<T> {
            match self.inner {
                Inner::Std(h) => h.join(),
                Inner::Model { exec, task, slot } => {
                    let registered_same = current().is_some_and(|(e, _)| Arc::ptr_eq(&e, &exec));
                    if registered_same && exec.aborting() && !std::thread::panicking() {
                        abort_unwind();
                    }
                    let os = if registered_same && !exec.aborting() {
                        let me = current().expect("registered").1;
                        exec.join_task(me, task)
                    } else {
                        // Degraded (teardown) or cross-exec join: the
                        // child terminates on its own once the abort
                        // wakes it, so a real join suffices.
                        exec.take_handle(task)
                    };
                    if let Some(h) = os {
                        let _ = h.join();
                    }
                    slot.lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .take()
                        .unwrap_or_else(|| Err(Box::new(ModelAbort)))
                }
            }
        }
    }
}
