//! A deliberately lock-free-looking shared cell for race scenarios.

/// A shared mutable cell whose accesses carry **no** lock in the model:
/// the lockset analyzer decides, per schedule, whether concurrent
/// accesses were protected by a common mutex. Storage is a private
/// `std::sync::Mutex` (the workspace denies `unsafe`), so a real data
/// race never occurs — races are *detected* from the event stream, not
/// provoked in memory.
///
/// Under the normal cfg this is just a mutex-backed cell with no
/// instrumentation.
pub struct SharedCell<T> {
    inner: std::sync::Mutex<T>,
}

impl<T: Clone> SharedCell<T> {
    /// Creates the cell (const, usable in statics).
    pub const fn new(v: T) -> Self {
        SharedCell {
            inner: std::sync::Mutex::new(v),
        }
    }

    /// Reads the value (model: a branch point and a `CellRead` event).
    pub fn get(&self) -> T {
        self.note(false);
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Replaces the value (model: a branch point and a `CellWrite`
    /// event).
    pub fn set(&self, v: T) {
        self.note(true);
        *self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = v;
    }

    /// Read-modify-write (model: a read event, a branch point, then a
    /// write event — the classic racy increment shape when unguarded).
    pub fn update(&self, f: impl FnOnce(T) -> T) {
        let v = self.get();
        self.set(f(v));
    }

    #[cfg(dsi_model)]
    fn note(&self, write: bool) {
        if let Some((exec, me)) = crate::explore::current() {
            if exec.aborting() {
                if !std::thread::panicking() {
                    crate::explore::abort_unwind();
                }
            } else {
                exec.access(
                    me,
                    crate::explore::addr_of(&self.inner),
                    crate::event::ObjKind::Cell,
                    write,
                );
            }
        }
    }

    #[cfg(not(dsi_model))]
    fn note(&self, _write: bool) {}
}

#[cfg(dsi_model)]
impl<T> Drop for SharedCell<T> {
    fn drop(&mut self) {
        if let Some((exec, _)) = crate::explore::current() {
            if !exec.aborting() {
                exec.forget_obj(crate::explore::addr_of(&self.inner));
            }
        }
    }
}
