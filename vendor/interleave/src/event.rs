//! The synchronization event vocabulary shared by the explorer and the
//! analyzers.
//!
//! Every instrumented operation performed inside [`crate::explore`]
//! appends one [`Event`] to the execution's stream, in the exact order
//! the serialized scheduler ran them. Analyzers (lockset race detection,
//! lock-order graphs, lost-wakeup classification — see the `dsi-model`
//! crate) replay that stream; because executions are serialized, the
//! stream is a *total* order and no vector clocks are needed.
//!
//! This module is compiled under both cfgs so analyzers stay
//! unit-testable in tier-1 builds (synthetic streams), even though only
//! `--cfg dsi_model` builds ever *produce* events.

/// Dense per-execution task index. Task `0` is the closure passed to
/// [`crate::explore`]; spawned threads get ids in spawn order, which is
/// deterministic under replay.
pub type TaskId = usize;

/// Dense per-execution object index (mutex, condvar, atomic or cell),
/// assigned in first-use order, which is deterministic under replay.
pub type ObjId = usize;

/// What kind of synchronization object an [`ObjId`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjKind {
    /// An `interleave::sync::Mutex`.
    Mutex,
    /// An `interleave::sync::Condvar`.
    Condvar,
    /// One of the `interleave::sync::atomic` types.
    Atomic,
    /// An `interleave::SharedCell` (unsynchronized by design; the
    /// lockset analyzer decides whether accesses were protected).
    Cell,
}

/// One synchronization event, in serialized execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `parent` spawned `child` via `interleave::thread`.
    Spawn {
        /// Spawning task.
        parent: TaskId,
        /// Newly created task.
        child: TaskId,
    },
    /// `task` acquired mutex `lock` (the acquisition succeeded; a
    /// blocked attempt emits nothing until it eventually succeeds).
    Acquire {
        /// Acquiring task.
        task: TaskId,
        /// The mutex.
        lock: ObjId,
    },
    /// `task` released mutex `lock`.
    Release {
        /// Releasing task.
        task: TaskId,
        /// The mutex.
        lock: ObjId,
    },
    /// `task` entered `Condvar::wait` on `cv`, atomically releasing
    /// `lock`. A matching [`Event::CvWake`] follows when it is signalled
    /// (the re-acquisition of `lock` is a separate [`Event::Acquire`]).
    CvWait {
        /// Waiting task.
        task: TaskId,
        /// The condition variable.
        cv: ObjId,
        /// The mutex released for the duration of the wait.
        lock: ObjId,
    },
    /// `task` was woken from a wait on `cv` (before re-acquiring the
    /// guard mutex). The model has no spurious wakeups: every `CvWake`
    /// is caused by a notify.
    CvWake {
        /// Woken task.
        task: TaskId,
        /// The condition variable.
        cv: ObjId,
    },
    /// `task` notified `cv`. `waiters` is how many tasks were blocked on
    /// the condvar at that instant (0 means the signal fell on the
    /// floor — the raw material of lost-wakeup analysis).
    Notify {
        /// Notifying task.
        task: TaskId,
        /// The condition variable.
        cv: ObjId,
        /// Number of tasks woken by this notify.
        waiters: usize,
        /// `true` for `notify_all`, `false` for `notify_one`.
        all: bool,
    },
    /// `task` performed an atomic load of `obj`.
    AtomicLoad {
        /// Loading task.
        task: TaskId,
        /// The atomic.
        obj: ObjId,
    },
    /// `task` performed an atomic store or read-modify-write of `obj`.
    AtomicStore {
        /// Storing task.
        task: TaskId,
        /// The atomic.
        obj: ObjId,
    },
    /// `task` read an [`crate::SharedCell`].
    CellRead {
        /// Reading task.
        task: TaskId,
        /// The cell.
        cell: ObjId,
    },
    /// `task` wrote an [`crate::SharedCell`].
    CellWrite {
        /// Writing task.
        task: TaskId,
        /// The cell.
        cell: ObjId,
    },
    /// `task` entered `JoinHandle::join` on `target`.
    JoinEnter {
        /// Joining task.
        task: TaskId,
        /// Task being joined.
        target: TaskId,
    },
    /// `task`'s closure returned (or unwound); the task is finished.
    ThreadExit {
        /// Exiting task.
        task: TaskId,
    },
}

impl Event {
    /// The task that performed this event.
    pub fn task(&self) -> TaskId {
        match *self {
            Event::Spawn { parent, .. } => parent,
            Event::Acquire { task, .. }
            | Event::Release { task, .. }
            | Event::CvWait { task, .. }
            | Event::CvWake { task, .. }
            | Event::Notify { task, .. }
            | Event::AtomicLoad { task, .. }
            | Event::AtomicStore { task, .. }
            | Event::CellRead { task, .. }
            | Event::CellWrite { task, .. }
            | Event::JoinEnter { task, .. }
            | Event::ThreadExit { task } => task,
        }
    }
}

/// What a task was blocked on when an execution could no longer make
/// progress. Reported in [`crate::Violation::Deadlock`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockedOn {
    /// Blocked acquiring this mutex.
    Lock(ObjId),
    /// Blocked in `Condvar::wait` on this condvar.
    Condvar(ObjId),
    /// Blocked in `JoinHandle::join` on this task.
    Join(TaskId),
}

/// A violation detected by the explorer itself (analyzers in `dsi-model`
/// layer their own findings on top of the event stream).
#[derive(Debug, Clone)]
pub enum Violation {
    /// No task was runnable but some tasks had not finished: a deadlock
    /// (possibly a lost wakeup — `dsi-model` classifies it from the
    /// event stream).
    Deadlock {
        /// Every unfinished task and what it was blocked on.
        blocked: Vec<(TaskId, BlockedOn)>,
    },
    /// The scenario closure (or a spawned task) panicked with a payload
    /// that was not the explorer's own abort sentinel — i.e. a plain
    /// assertion failure inside the model under some schedule.
    UserPanic {
        /// The task that panicked.
        task: TaskId,
        /// Stringified panic payload, when it was a `&str`/`String`.
        message: String,
    },
    /// One execution exceeded the per-execution scheduling-step valve
    /// (`Options::max_steps`): the scenario is livelocked or far larger
    /// than the model is meant for.
    StepLimit {
        /// Steps taken when the valve tripped.
        steps: usize,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Deadlock { blocked } => {
                write!(f, "deadlock; blocked tasks:")?;
                for (t, on) in blocked {
                    match on {
                        BlockedOn::Lock(l) => write!(f, " task {t} on mutex #{l};")?,
                        BlockedOn::Condvar(c) => write!(f, " task {t} in wait on condvar #{c};")?,
                        BlockedOn::Join(j) => write!(f, " task {t} joining task {j};")?,
                    }
                }
                Ok(())
            }
            Violation::UserPanic { task, message } => {
                write!(f, "panic on task {task}: {message}")
            }
            Violation::StepLimit { steps } => {
                write!(f, "step limit exceeded ({steps} scheduling steps)")
            }
        }
    }
}

/// One fully explored execution: the event stream plus the schedule
/// (the task chosen at every switch point) that produced it.
#[derive(Debug, Clone)]
pub struct Execution {
    /// 0-based index of this execution within the exploration.
    pub index: usize,
    /// The serialized synchronization events.
    pub events: Vec<Event>,
    /// Task id chosen at each scheduling decision, in order. Replaying
    /// these choices reproduces the execution exactly.
    pub schedule: Vec<TaskId>,
    /// Kind of every object sighted this execution, indexed by [`ObjId`].
    pub obj_kinds: Vec<ObjKind>,
}
