//! Explorer smoke tests. The whole file is compiled only under
//! `RUSTFLAGS="--cfg dsi_model"`; the real model suite lives in
//! `crates/model/tests/`.
#![cfg(dsi_model)]

use std::sync::Arc;

use interleave::sync::Mutex;
use interleave::{explore, thread, Options, SharedCell, Violation};

#[test]
fn serial_closure_explores_once() {
    let report = explore(&Options::with_bound(2), || {
        let m = Mutex::new(0u32);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 1);
    });
    report.assert_ok();
    assert_eq!(report.executions, 1, "no concurrency, no alternatives");
}

#[test]
fn two_tasks_guarded_counter_is_deterministic() {
    let report = explore(&Options::with_bound(2), || {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    *m.lock().unwrap() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock().unwrap(), 2);
    });
    report.assert_ok();
    assert!(
        report.executions > 1,
        "two tasks under a preemption budget must yield several schedules, got {}",
        report.executions
    );
}

#[test]
fn racy_read_modify_write_is_caught_as_lost_update() {
    // Unguarded get-then-set: some schedule interleaves the two
    // updates and loses one; the closure's assert fires and explore
    // reports it with a counterexample schedule.
    let report = explore(&Options::with_bound(2), || {
        let c = Arc::new(SharedCell::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || c.update(|v| v + 1))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 2, "lost update");
    });
    match report.violation {
        Some(Violation::UserPanic { ref message, .. }) => {
            assert!(message.contains("lost update"), "got: {message}");
        }
        ref v => panic!("expected the lost-update assert to fire, got {v:?}"),
    }
    assert!(report.counterexample.is_some());
}

#[test]
fn opposite_lock_orders_deadlock_is_found() {
    let report = explore(&Options::with_bound(2), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let h = thread::spawn(move || {
            let _g1 = b2.lock().unwrap();
            let _g2 = a2.lock().unwrap();
        });
        {
            let _g1 = a.lock().unwrap();
            let _g2 = b.lock().unwrap();
        }
        let _ = h.join();
    });
    match report.violation {
        Some(Violation::Deadlock { ref blocked }) => assert_eq!(blocked.len(), 2),
        ref v => panic!("expected a deadlock, got {v:?}"),
    }
}

#[test]
fn panicking_spawned_task_reports_err_on_join() {
    let report = explore(&Options::with_bound(1), || {
        let h = thread::spawn(|| panic!("job blew up"));
        assert!(h.join().is_err(), "panic must surface as join Err");
    });
    report.assert_ok();
}

#[test]
fn condvar_roundtrip_works_in_every_schedule() {
    use interleave::sync::Condvar;
    let report = explore(&Options::with_bound(2), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock().unwrap();
            *ready = true;
            cv.notify_all();
            drop(ready);
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        h.join().unwrap();
    });
    report.assert_ok();
}

#[test]
fn check_then_sleep_bug_deadlocks() {
    // The bug the steal pool's epoch pinning prevents: test the flag,
    // then park — with the signal allowed to land in between.
    let report = explore(&Options::with_bound(2), || {
        use interleave::sync::Condvar;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock().unwrap() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let ready = { *m.lock().unwrap() };
        if !ready {
            // BUG: parks on the *stale* check — the lock was dropped
            // between the check and the wait, so the signal can fire
            // in the gap and the park sleeps through it.
            let guard = m.lock().unwrap();
            let _ = cv.wait(guard);
        }
        let _ = h.join();
    });
    match report.violation {
        Some(Violation::Deadlock { .. }) => {}
        ref v => panic!("expected a lost-wakeup deadlock, got {v:?}"),
    }
}
