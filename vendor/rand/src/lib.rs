//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this vendored crate implements exactly the API subset the workspace
//! uses: `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_bool` and
//! `Rng::gen_range`. The generator is SplitMix64 — statistically solid for
//! simulation workloads and fully deterministic per seed, which is all the
//! experiment harness requires (it never promises bitwise compatibility
//! with upstream `rand` streams).

#![forbid(unsafe_code)]

/// Types that can be sampled uniformly from a generator's raw output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a generator can sample from uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from the range; panics if the range is empty.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the modulo bias
                // of a 64-bit state over simulation-sized spans is far below
                // anything the experiments could observe, so plain widening
                // multiply is enough here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng: Sized {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` uniformly (`f64` in `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }

    /// Samples uniformly from `range`.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

/// Seeding interface (the workspace only uses `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64).
    ///
    /// A drop-in for `rand::rngs::StdRng` within this workspace; streams
    /// differ from upstream but determinism-per-seed is preserved.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            Self {
                // Pre-mix so that small consecutive seeds diverge instantly.
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl super::Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let seq = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..8).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
        assert_ne!(seq(0), seq(1));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(5);
        assert!((0..64).all(|_| !r.gen_bool(0.0)));
        assert!((0..64).all(|_| r.gen_bool(1.0)));
    }
}
