//! Property tests for the channel substrate: occurrence arithmetic,
//! tuner accounting, and the multi-antenna tuner surface (batch arrival
//! planning, monitored-set bounds, switch-cost accounting vs a
//! step-by-step reference tuner).

use dsi_broadcast::optimize::{AccessProfile, CostModel, UnitSchema};
use dsi_broadcast::{
    drive, AirScheme, AntennaConfig, ChannelConfig, GilbertElliott, LossModel, OutageWindow,
    PacketClass, Payload, Placement, Program, Query, Tuner,
};
use dsi_geom::{Point, Rect};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq)]
struct P(u64);
impl Payload for P {
    fn class(&self) -> PacketClass {
        if self.0.is_multiple_of(3) {
            PacketClass::Index
        } else if self.0 % 3 == 1 {
            PacketClass::ObjectHeader
        } else {
            PacketClass::ObjectPayload
        }
    }
}

/// Packet type with explicit unit boundaries, for the layout round-trip
/// and cost-model properties.
#[derive(Debug, Clone, PartialEq)]
struct B {
    unit: u32,
    start: bool,
}
impl Payload for B {
    fn class(&self) -> PacketClass {
        PacketClass::Index
    }
    fn unit_start(&self) -> bool {
        self.start
    }
}

/// A toy air scheme whose every query reads exactly one unit (`goto` its
/// first packet, then read it to the end): the one workload whose
/// expected latency the cost model predicts *exactly*, making
/// model-vs-measured comparable bit-for-float.
struct OneUnit<'a> {
    program: &'a Program<B>,
    flat: u64,
    len: u64,
}
impl AirScheme for OneUnit<'_> {
    type Packet = B;
    fn program(&self) -> &Program<B> {
        self.program
    }
    fn window(&self, tuner: &mut Tuner<'_, B>, _w: &Rect) -> Vec<u32> {
        tuner.goto(self.flat);
        for _ in 0..self.len {
            let _ = tuner.read();
        }
        Vec::new()
    }
    fn knn(&self, tuner: &mut Tuner<'_, B>, _q: Point, _k: usize) -> Vec<u32> {
        self.window(tuner, &Rect::new(0.0, 0.0, 1.0, 1.0))
    }
}

/// A step-by-step reference model of the multi-antenna tuner: arrivals by
/// scanning instants one at a time, the monitored set as an explicit
/// most-recently-focused-first list with LRU eviction, one switch charged
/// per retune.
struct RefTuner {
    pos: u64,
    switches: u64,
    monitored: Vec<u32>,
    antennas: u32,
}

impl RefTuner {
    fn new(start: u64, antennas: u32, n_channels: u32) -> Self {
        Self {
            pos: start,
            switches: 0,
            monitored: vec![0],
            antennas: antennas.min(n_channels),
        }
    }

    fn arrival(&self, prog: &Program<P>, flat: u64) -> u64 {
        let ch = prog.channel_of(flat);
        let mut t = if self.monitored.contains(&ch) {
            self.pos
        } else {
            self.pos + prog.switch_cost() as u64
        };
        // Scan forward one instant at a time until the packet airs.
        while prog.flat_at(ch, t) != flat {
            t += 1;
        }
        t
    }

    fn goto(&mut self, prog: &Program<P>, flat: u64) -> u64 {
        let t = self.arrival(prog, flat);
        let ch = prog.channel_of(flat);
        if let Some(i) = self.monitored.iter().position(|&c| c == ch) {
            self.monitored.remove(i);
        } else {
            self.switches += 1;
            if self.monitored.len() as u32 >= self.antennas {
                self.monitored.pop();
            }
        }
        self.monitored.insert(0, ch);
        self.pos = t;
        t
    }
}

fn multi_channel_program(len: u64, cfg: ChannelConfig) -> Program<P> {
    Program::with_channels(16, (0..len).map(P).collect(), cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn next_occurrence_is_minimal(len in 1u64..200, from in 0u64..10_000, pos in 0u64..200) {
        let pos = pos % len;
        let prog = Program::new(16, (0..len).map(P).collect());
        let t = prog.next_occurrence(from, pos);
        prop_assert!(t >= from);
        prop_assert_eq!(t % len, pos);
        prop_assert!(t - from < len, "not the first occurrence");
    }

    #[test]
    fn tuner_accounting_is_exact(
        len in 2u64..100,
        start in 0u64..1_000,
        steps in prop::collection::vec((0u64..30, any::<bool>()), 1..40),
    ) {
        let prog = Program::new(16, (0..len).map(P).collect());
        let mut t = Tuner::tune_in(&prog, start, LossModel::None, 1);
        let mut expected_reads = 0u64;
        let mut expected_pos = start;
        for (skip, read) in steps {
            expected_pos += skip;
            t.doze_to(expected_pos);
            if read {
                let _ = t.read();
                expected_reads += 1;
                expected_pos += 1;
            }
        }
        let s = t.stats();
        prop_assert_eq!(s.tuning_packets, expected_reads);
        prop_assert_eq!(s.latency_packets, expected_pos - start);
    }

    #[test]
    fn arrival_earliest_agrees_with_min_over_arrival(
        len in 8u64..60,
        channels in 2u32..5,
        switch_cost in 0u32..4,
        antennas in 1u32..4,
        blocked in any::<bool>(),
        start in 0u64..1_000,
        warmup in prop::collection::vec(0u64..60, 0..8),
        targets in prop::collection::vec(0u64..60, 1..12),
    ) {
        let cfg = if blocked {
            ChannelConfig::blocked(channels, switch_cost)
        } else {
            ChannelConfig::striped(channels, switch_cost)
        };
        let prog = multi_channel_program(len, cfg);
        let mut t = Tuner::tune_in_with(
            &prog, start, LossModel::None, 1, AntennaConfig::new(antennas),
        );
        for w in warmup {
            t.goto(w % len);
        }
        let flats: Vec<u64> = targets.into_iter().map(|x| x % len).collect();
        let (i, at) = t.arrival_earliest(&flats).expect("non-empty");
        // Agrees with the min over per-position arrivals, ties to the
        // lowest index.
        let arrivals: Vec<u64> = flats.iter().map(|&f| t.arrival(f)).collect();
        let min = arrivals.iter().copied().min().expect("non-empty");
        prop_assert_eq!(at, min);
        prop_assert_eq!(arrivals[i], min);
        prop_assert!(arrivals[..i].iter().all(|&a| a > min), "not the first minimum");
    }

    #[test]
    fn monitored_set_bounded_and_reference_tuner_agrees(
        len in 8u64..60,
        channels in 2u32..5,
        switch_cost in 0u32..4,
        antennas in 1u32..4,
        blocked in any::<bool>(),
        start in 0u64..1_000,
        ops in prop::collection::vec((0u64..60, any::<bool>()), 1..40),
    ) {
        let cfg = if blocked {
            ChannelConfig::blocked(channels, switch_cost)
        } else {
            ChannelConfig::striped(channels, switch_cost)
        };
        let prog = multi_channel_program(len, cfg);
        let mut t = Tuner::tune_in_with(
            &prog, start, LossModel::None, 1, AntennaConfig::new(antennas),
        );
        let mut r = RefTuner::new(start, antennas, prog.n_channels());
        for (target, read) in ops {
            let flat = target % len;
            // Arrival and goto agree with the step-by-step reference at
            // every step.
            prop_assert_eq!(t.arrival(flat), r.arrival(&prog, flat));
            prop_assert_eq!(t.goto(flat), r.goto(&prog, flat));
            prop_assert_eq!(t.pos(), r.pos);
            prop_assert_eq!(t.monitored_channels(), r.monitored.as_slice());
            if read {
                let _ = t.read();
                r.pos += 1;
            }
            // The monitored set never exceeds the antenna count, holds no
            // duplicates, and leads with the active channel.
            let mon = t.monitored_channels();
            prop_assert!(mon.len() as u32 <= antennas.min(prog.n_channels()));
            let mut dedup = mon.to_vec();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), mon.len(), "duplicate monitored channel");
            prop_assert_eq!(mon[0], t.channel());
        }
        // Switch-cost accounting matches the reference exactly.
        prop_assert_eq!(t.channel_stats().switches, r.switches);
    }

    #[test]
    fn single_antenna_matches_legacy_switch_model(
        len in 8u64..60,
        channels in 2u32..5,
        switch_cost in 0u32..4,
        start in 0u64..1_000,
        ops in prop::collection::vec(0u64..60, 1..30),
    ) {
        // k = 1 through the antenna-aware tuner must equal the classic
        // single-receiver accounting: a switch whenever the target's
        // channel differs from the current one.
        let prog = multi_channel_program(len, ChannelConfig::striped(channels, switch_cost));
        let mut t = Tuner::tune_in(&prog, start, LossModel::None, 1);
        let mut channel = 0u32;
        let mut switches = 0u64;
        let mut pos = start;
        for target in ops {
            let flat = target % len;
            let ch = prog.channel_of(flat);
            let ready = if ch == channel { pos } else { pos + prog.switch_cost() as u64 };
            let want = prog.next_occurrence_on(ready, flat);
            prop_assert_eq!(t.goto(flat), want);
            if ch != channel {
                switches += 1;
                channel = ch;
            }
            pos = want;
        }
        prop_assert_eq!(t.channel_stats().switches, switches);
    }

    #[test]
    fn plan_earliest_picks_the_cheaper_order_under_any_switch_cost(
        len in 8u64..60,
        channels in 2u32..5,
        // Deliberately includes costs far beyond a channel cycle: the
        // deferred candidate's re-occurrence must be charged the retune
        // like any arrival, which only shows at large costs.
        switch_cost in 0u32..150,
        antennas in 1u32..3,
        blocked in any::<bool>(),
        start in 0u64..1_000,
        warmup in prop::collection::vec(0u64..60, 0..6),
        targets in prop::collection::vec((0u64..60, 1u64..12), 2..10),
    ) {
        let cfg = if blocked {
            ChannelConfig::blocked(channels, switch_cost)
        } else {
            ChannelConfig::striped(channels, switch_cost)
        };
        let prog = multi_channel_program(len, cfg);
        let mut t = Tuner::tune_in_with(
            &prog, start, LossModel::None, 1, AntennaConfig::new(antennas),
        );
        for w in warmup {
            t.goto(w % len);
        }
        let flats: Vec<u64> = targets.iter().map(|&(x, _)| x % len).collect();
        let durs: Vec<u64> = targets.iter().map(|&(_, d)| d).collect();
        let (pick, at) = t.plan_earliest(&flats, |i| durs[i]).expect("non-empty");
        prop_assert_eq!(at, t.arrival(flats[pick]));
        // Reference model: arrivals per candidate; earliest is x. If the
        // runner-up y airs before x's read completes, both orders are
        // costed by the completion of the later read, charging the
        // deferred read's re-occurrence exactly like an arrival (retune
        // delay when its channel is on no antenna); the cheaper order's
        // first read wins, ties to x, earlier index on arrival ties.
        let arrivals: Vec<u64> = flats.iter().map(|&f| t.arrival(f)).collect();
        let x = (0..flats.len())
            .min_by_key(|&i| (arrivals[i], i))
            .expect("non-empty");
        let y = (0..flats.len())
            .filter(|&i| i != x)
            .min_by_key(|&i| (arrivals[i], i))
            .expect("two candidates");
        let charged = |from: u64, i: usize| -> u64 {
            let ch = prog.channel_of(flats[i]);
            let monitored = if t.monitored_channels().is_empty() {
                ch == t.channel()
            } else {
                t.monitored_channels().contains(&ch)
            };
            let ready = if monitored { from } else { from + switch_cost as u64 };
            prog.next_occurrence_on(ready, flats[i])
        };
        let mut want = x;
        if arrivals[y] < arrivals[x] + durs[x] {
            let y_after_x = charged(arrivals[x] + durs[x], y) + durs[y];
            let x_after_y = charged(arrivals[y] + durs[y], x) + durs[x];
            if x_after_y < y_after_x {
                want = y;
            }
        }
        prop_assert_eq!(pick, want, "flats {:?} durs {:?}", &flats, &durs);
    }

    #[test]
    fn explicit_layout_round_trips_through_build(
        unit_lens in prop::collection::vec(1u32..5, 2..24),
        channels in 2u32..5,
        assign_raw in prop::collection::vec(0u32..4, 24..25),
        switch_cost in 0u32..4,
    ) {
        // Derive a valid assignment: channel ids in range, every channel
        // hit at least once (walk the raw values, forcing the first
        // `channels` units onto distinct channels).
        let n_units = unit_lens.len();
        prop_assume!(n_units >= channels as usize);
        let assignment: Vec<u32> = (0..n_units)
            .map(|u| if u < channels as usize { u as u32 } else { assign_raw[u % assign_raw.len()] % channels })
            .collect();
        // Materialize the packet cycle: unit u spans unit_lens[u] packets.
        let mut packets = Vec::new();
        for (u, &l) in unit_lens.iter().enumerate() {
            for i in 0..l {
                packets.push(B { unit: u as u32, start: i == 0 });
            }
        }
        let cfg = ChannelConfig {
            channels,
            placement: Placement::Explicit(assignment.clone()),
            switch_cost,
        };
        let prog = Program::with_channels(64, packets, cfg);
        // Round trip: every unit lands intact on its assigned channel —
        // all packets of unit u on channel assignment[u], in consecutive
        // per-channel slots — no channel is empty, and flat order is
        // preserved within each channel.
        let mut flat = 0u64;
        for (u, &l) in unit_lens.iter().enumerate() {
            let ch = assignment[u];
            let t0 = prog.next_occurrence_on(0, flat);
            for k in 0..l as u64 {
                prop_assert_eq!(prog.channel_of(flat + k), ch, "unit {} split", u);
                // Consecutive packets of the unit air at consecutive
                // instants of the channel.
                prop_assert_eq!(prog.flat_at(ch, t0 + k), flat + k);
            }
            flat += l as u64;
        }
        let total: u64 = (0..channels).map(|c| prog.channel_len(c)).sum();
        prop_assert_eq!(total, prog.len());
        for c in 0..channels {
            prop_assert!(prog.channel_len(c) > 0, "channel {} empty", c);
            // Flat order preserved: the channel's slots are increasing
            // in flat position.
            let slots: Vec<u64> = (0..prog.channel_len(c)).map(|s| prog.flat_at(c, s)).collect();
            prop_assert!(slots.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn cost_model_matches_measured_drive_latency(
        unit_lens in prop::collection::vec(1u32..4, 2..16),
        channels in 2u32..4,
        assign_raw in prop::collection::vec(0u32..4, 16..17),
    ) {
        // Zero switch cost: the model's expected wait for reading one
        // unit from a uniform random tune-in is exact, so the mean
        // measured `drive()` latency over one full channel period must
        // equal the model's per-unit prediction bit-for-float.
        let n_units = unit_lens.len();
        prop_assume!(n_units >= channels as usize);
        let assignment: Vec<u32> = (0..n_units)
            .map(|u| if u < channels as usize { u as u32 } else { assign_raw[u % assign_raw.len()] % channels })
            .collect();
        let mut packets = Vec::new();
        let mut starts = Vec::new();
        for (u, &l) in unit_lens.iter().enumerate() {
            starts.push(packets.len() as u64);
            for i in 0..l {
                packets.push(B { unit: u as u32, start: i == 0 });
            }
        }
        let n_flat = packets.len();
        let cfg = ChannelConfig {
            channels,
            placement: Placement::Explicit(assignment.clone()),
            switch_cost: 0,
        };
        let prog = Program::with_channels(64, packets, cfg);
        let schema = UnitSchema::from_unit_starts(
            &(0..n_flat).map(|i| starts.binary_search(&(i as u64)).is_ok()).collect::<Vec<_>>(),
        );
        for (u, &l) in unit_lens.iter().enumerate() {
            // Profile of a workload that reads exactly unit u per query.
            let mut counts = vec![0u64; n_flat];
            for k in 0..l as u64 {
                counts[(starts[u] + k) as usize] = 1;
            }
            let profile = AccessProfile::from_counts(&counts, 1);
            let model = CostModel::new(&schema, &profile, channels, 0, AntennaConfig::single());
            let predicted = model.predicted_latency_packets(&assignment);
            // Measure through the real driver: the toy scheme reads unit
            // u and nothing else; average over one period of the unit's
            // channel (latency is periodic in it).
            let scheme = OneUnit { program: &prog, flat: starts[u], len: l as u64 };
            let period = prog.channel_len(assignment[u]);
            let mean = (0..period)
                .map(|s| drive(&scheme, s, LossModel::None, 1, &Query::Window(Rect::new(0.0, 0.0, 1.0, 1.0))).stats.latency_packets as f64)
                .sum::<f64>() / period as f64;
            prop_assert!(
                (mean - predicted).abs() < 1e-9,
                "unit {}: measured {} model {}", u, mean, predicted
            );
        }
    }

    #[test]
    fn planning_never_peeks_at_the_fault_model(
        len in 8u64..60,
        channels in 2u32..5,
        switch_cost in 0u32..4,
        antennas in 1u32..4,
        blocked in any::<bool>(),
        start in 0u64..1_000,
        model_sel in 0u8..5,
        theta in 0.05..0.9f64,
        seed in any::<u64>(),
        targets in prop::collection::vec(0u64..60, 2..10),
    ) {
        let cfg = if blocked {
            ChannelConfig::blocked(channels, switch_cost)
        } else {
            ChannelConfig::striped(channels, switch_cost)
        };
        let prog = multi_channel_program(len, cfg);
        let loss = match model_sel {
            0 => LossModel::None,
            1 => LossModel::iid(theta),
            2 => LossModel::keyed_iid(theta),
            3 => LossModel::Gilbert(GilbertElliott::new(0.2, 0.3, theta)),
            _ => LossModel::outage(vec![OutageWindow { channel: 0, start, len: 16 }]),
        };
        let flats: Vec<u64> = targets.iter().map(|&x| x % len).collect();
        let dur = |i: usize| (i as u64 % 3) + 1;

        // The loss-blind planners decide identically under every fault
        // model: swapping the model changes nothing about planning.
        let lossless = Tuner::tune_in_with(
            &prog, start, LossModel::None, seed, AntennaConfig::new(antennas),
        );
        let lossy = Tuner::tune_in_with(
            &prog, start, loss.clone(), seed, AntennaConfig::new(antennas),
        );
        prop_assert_eq!(lossless.arrival_earliest(&flats), lossy.arrival_earliest(&flats));
        prop_assert_eq!(lossless.plan_earliest(&flats, dur), lossy.plan_earliest(&flats, dur));

        // And planning consumes no loss draws: interleaving planner calls
        // (including the resilient wrappers) between reads leaves the
        // loss outcome of every subsequent read untouched.
        let run = |plan: bool| {
            let mut t = Tuner::tune_in_with(
                &prog, start, loss.clone(), seed, AntennaConfig::new(antennas),
            );
            (0..24)
                .map(|_| {
                    if plan {
                        let _ = t.arrival_earliest(&flats);
                        let _ = t.plan_earliest(&flats, dur);
                        let _ = t.earliest_resilient(&flats);
                        let _ = t.plan_resilient(&flats, dur);
                    }
                    t.read().is_ok()
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(false), run(true), "a planner consumed a loss draw");
    }

    #[test]
    fn loss_rate_respects_scope(theta in 0.1..0.9f64, seed in any::<u64>()) {
        let prog = Program::new(16, (0..300u64).map(P).collect());
        let loss = LossModel::Iid { theta, scope: dsi_broadcast::LossScope::IndexOnly };
        let mut t = Tuner::tune_in(&prog, 0, loss, seed);
        let mut object_losses = 0;
        for i in 0..300u64 {
            let lost = t.read().is_err();
            if lost && P(i).class() != PacketClass::Index {
                object_losses += 1;
            }
        }
        prop_assert_eq!(object_losses, 0, "object packets must never be lost under IndexOnly");
    }
}
