//! Property tests for the channel substrate: occurrence arithmetic and
//! tuner accounting.

use dsi_broadcast::{LossModel, PacketClass, Payload, Program, Tuner};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq)]
struct P(u64);
impl Payload for P {
    fn class(&self) -> PacketClass {
        if self.0.is_multiple_of(3) {
            PacketClass::Index
        } else if self.0 % 3 == 1 {
            PacketClass::ObjectHeader
        } else {
            PacketClass::ObjectPayload
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn next_occurrence_is_minimal(len in 1u64..200, from in 0u64..10_000, pos in 0u64..200) {
        let pos = pos % len;
        let prog = Program::new(16, (0..len).map(P).collect());
        let t = prog.next_occurrence(from, pos);
        prop_assert!(t >= from);
        prop_assert_eq!(t % len, pos);
        prop_assert!(t - from < len, "not the first occurrence");
    }

    #[test]
    fn tuner_accounting_is_exact(
        len in 2u64..100,
        start in 0u64..1_000,
        steps in prop::collection::vec((0u64..30, any::<bool>()), 1..40),
    ) {
        let prog = Program::new(16, (0..len).map(P).collect());
        let mut t = Tuner::tune_in(&prog, start, LossModel::None, 1);
        let mut expected_reads = 0u64;
        let mut expected_pos = start;
        for (skip, read) in steps {
            expected_pos += skip;
            t.doze_to(expected_pos);
            if read {
                let _ = t.read();
                expected_reads += 1;
                expected_pos += 1;
            }
        }
        let s = t.stats();
        prop_assert_eq!(s.tuning_packets, expected_reads);
        prop_assert_eq!(s.latency_packets, expected_pos - start);
    }

    #[test]
    fn loss_rate_respects_scope(theta in 0.1..0.9f64, seed in any::<u64>()) {
        let prog = Program::new(16, (0..300u64).map(P).collect());
        let loss = LossModel::Iid { theta, scope: dsi_broadcast::LossScope::IndexOnly };
        let mut t = Tuner::tune_in(&prog, 0, loss, seed);
        let mut object_losses = 0;
        for i in 0..300u64 {
            let lost = t.read().is_err();
            if lost && P(i).class() != PacketClass::Index {
                object_losses += 1;
            }
        }
        prop_assert_eq!(object_losses, 0, "object packets must never be lost under IndexOnly");
    }
}
