//! Property tests for the channel substrate: occurrence arithmetic,
//! tuner accounting, and the multi-antenna tuner surface (batch arrival
//! planning, monitored-set bounds, switch-cost accounting vs a
//! step-by-step reference tuner).

use dsi_broadcast::{
    AntennaConfig, ChannelConfig, LossModel, PacketClass, Payload, Program, Tuner,
};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq)]
struct P(u64);
impl Payload for P {
    fn class(&self) -> PacketClass {
        if self.0.is_multiple_of(3) {
            PacketClass::Index
        } else if self.0 % 3 == 1 {
            PacketClass::ObjectHeader
        } else {
            PacketClass::ObjectPayload
        }
    }
}

/// A step-by-step reference model of the multi-antenna tuner: arrivals by
/// scanning instants one at a time, the monitored set as an explicit
/// most-recently-focused-first list with LRU eviction, one switch charged
/// per retune.
struct RefTuner {
    pos: u64,
    switches: u64,
    monitored: Vec<u32>,
    antennas: u32,
}

impl RefTuner {
    fn new(start: u64, antennas: u32, n_channels: u32) -> Self {
        Self {
            pos: start,
            switches: 0,
            monitored: vec![0],
            antennas: antennas.min(n_channels),
        }
    }

    fn arrival(&self, prog: &Program<P>, flat: u64) -> u64 {
        let ch = prog.channel_of(flat);
        let mut t = if self.monitored.contains(&ch) {
            self.pos
        } else {
            self.pos + prog.switch_cost() as u64
        };
        // Scan forward one instant at a time until the packet airs.
        while prog.flat_at(ch, t) != flat {
            t += 1;
        }
        t
    }

    fn goto(&mut self, prog: &Program<P>, flat: u64) -> u64 {
        let t = self.arrival(prog, flat);
        let ch = prog.channel_of(flat);
        if let Some(i) = self.monitored.iter().position(|&c| c == ch) {
            self.monitored.remove(i);
        } else {
            self.switches += 1;
            if self.monitored.len() as u32 >= self.antennas {
                self.monitored.pop();
            }
        }
        self.monitored.insert(0, ch);
        self.pos = t;
        t
    }
}

fn multi_channel_program(len: u64, cfg: ChannelConfig) -> Program<P> {
    Program::with_channels(16, (0..len).map(P).collect(), cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn next_occurrence_is_minimal(len in 1u64..200, from in 0u64..10_000, pos in 0u64..200) {
        let pos = pos % len;
        let prog = Program::new(16, (0..len).map(P).collect());
        let t = prog.next_occurrence(from, pos);
        prop_assert!(t >= from);
        prop_assert_eq!(t % len, pos);
        prop_assert!(t - from < len, "not the first occurrence");
    }

    #[test]
    fn tuner_accounting_is_exact(
        len in 2u64..100,
        start in 0u64..1_000,
        steps in prop::collection::vec((0u64..30, any::<bool>()), 1..40),
    ) {
        let prog = Program::new(16, (0..len).map(P).collect());
        let mut t = Tuner::tune_in(&prog, start, LossModel::None, 1);
        let mut expected_reads = 0u64;
        let mut expected_pos = start;
        for (skip, read) in steps {
            expected_pos += skip;
            t.doze_to(expected_pos);
            if read {
                let _ = t.read();
                expected_reads += 1;
                expected_pos += 1;
            }
        }
        let s = t.stats();
        prop_assert_eq!(s.tuning_packets, expected_reads);
        prop_assert_eq!(s.latency_packets, expected_pos - start);
    }

    #[test]
    fn arrival_earliest_agrees_with_min_over_arrival(
        len in 8u64..60,
        channels in 2u32..5,
        switch_cost in 0u32..4,
        antennas in 1u32..4,
        blocked in any::<bool>(),
        start in 0u64..1_000,
        warmup in prop::collection::vec(0u64..60, 0..8),
        targets in prop::collection::vec(0u64..60, 1..12),
    ) {
        let cfg = if blocked {
            ChannelConfig::blocked(channels, switch_cost)
        } else {
            ChannelConfig::striped(channels, switch_cost)
        };
        let prog = multi_channel_program(len, cfg);
        let mut t = Tuner::tune_in_with(
            &prog, start, LossModel::None, 1, AntennaConfig::new(antennas),
        );
        for w in warmup {
            t.goto(w % len);
        }
        let flats: Vec<u64> = targets.into_iter().map(|x| x % len).collect();
        let (i, at) = t.arrival_earliest(&flats).expect("non-empty");
        // Agrees with the min over per-position arrivals, ties to the
        // lowest index.
        let arrivals: Vec<u64> = flats.iter().map(|&f| t.arrival(f)).collect();
        let min = arrivals.iter().copied().min().expect("non-empty");
        prop_assert_eq!(at, min);
        prop_assert_eq!(arrivals[i], min);
        prop_assert!(arrivals[..i].iter().all(|&a| a > min), "not the first minimum");
    }

    #[test]
    fn monitored_set_bounded_and_reference_tuner_agrees(
        len in 8u64..60,
        channels in 2u32..5,
        switch_cost in 0u32..4,
        antennas in 1u32..4,
        blocked in any::<bool>(),
        start in 0u64..1_000,
        ops in prop::collection::vec((0u64..60, any::<bool>()), 1..40),
    ) {
        let cfg = if blocked {
            ChannelConfig::blocked(channels, switch_cost)
        } else {
            ChannelConfig::striped(channels, switch_cost)
        };
        let prog = multi_channel_program(len, cfg);
        let mut t = Tuner::tune_in_with(
            &prog, start, LossModel::None, 1, AntennaConfig::new(antennas),
        );
        let mut r = RefTuner::new(start, antennas, prog.n_channels());
        for (target, read) in ops {
            let flat = target % len;
            // Arrival and goto agree with the step-by-step reference at
            // every step.
            prop_assert_eq!(t.arrival(flat), r.arrival(&prog, flat));
            prop_assert_eq!(t.goto(flat), r.goto(&prog, flat));
            prop_assert_eq!(t.pos(), r.pos);
            prop_assert_eq!(t.monitored_channels(), r.monitored.as_slice());
            if read {
                let _ = t.read();
                r.pos += 1;
            }
            // The monitored set never exceeds the antenna count, holds no
            // duplicates, and leads with the active channel.
            let mon = t.monitored_channels();
            prop_assert!(mon.len() as u32 <= antennas.min(prog.n_channels()));
            let mut dedup = mon.to_vec();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), mon.len(), "duplicate monitored channel");
            prop_assert_eq!(mon[0], t.channel());
        }
        // Switch-cost accounting matches the reference exactly.
        prop_assert_eq!(t.channel_stats().switches, r.switches);
    }

    #[test]
    fn single_antenna_matches_legacy_switch_model(
        len in 8u64..60,
        channels in 2u32..5,
        switch_cost in 0u32..4,
        start in 0u64..1_000,
        ops in prop::collection::vec(0u64..60, 1..30),
    ) {
        // k = 1 through the antenna-aware tuner must equal the classic
        // single-receiver accounting: a switch whenever the target's
        // channel differs from the current one.
        let prog = multi_channel_program(len, ChannelConfig::striped(channels, switch_cost));
        let mut t = Tuner::tune_in(&prog, start, LossModel::None, 1);
        let mut channel = 0u32;
        let mut switches = 0u64;
        let mut pos = start;
        for target in ops {
            let flat = target % len;
            let ch = prog.channel_of(flat);
            let ready = if ch == channel { pos } else { pos + prog.switch_cost() as u64 };
            let want = prog.next_occurrence_on(ready, flat);
            prop_assert_eq!(t.goto(flat), want);
            if ch != channel {
                switches += 1;
                channel = ch;
            }
            pos = want;
        }
        prop_assert_eq!(t.channel_stats().switches, switches);
    }

    #[test]
    fn loss_rate_respects_scope(theta in 0.1..0.9f64, seed in any::<u64>()) {
        let prog = Program::new(16, (0..300u64).map(P).collect());
        let loss = LossModel::Iid { theta, scope: dsi_broadcast::LossScope::IndexOnly };
        let mut t = Tuner::tune_in(&prog, 0, loss, seed);
        let mut object_losses = 0;
        for i in 0..300u64 {
            let lost = t.read().is_err();
            if lost && P(i).class() != PacketClass::Index {
                object_losses += 1;
            }
        }
        prop_assert_eq!(object_losses, 0, "object packets must never be lost under IndexOnly");
    }
}
