//! Wireless data broadcast channel simulator.
//!
//! The paper's evaluation runs on "a simulation model [that] consists of a
//! base station, an arbitrary number of clients, and a broadcast channel"
//! (§4). This crate is that substrate, independent of any particular air
//! index:
//!
//! * [`Program`] — one broadcast *cycle*: a sequence of fixed-capacity
//!   packets that the base station repeats forever. Packets are the atomic
//!   unit of transmission; all byte metrics are `packets × capacity`,
//!   exactly the unit the paper reports ("with a known packet capacity,
//!   conversion between the number of packets and total bytes is
//!   straightforward").
//! * [`Tuner`] — a mobile client's view of the channel: it can [`Tuner::read`]
//!   the packet at the current instant (active mode, costs tuning time) or
//!   [`Tuner::doze_to`] a future instant (doze mode, costs latency only).
//!   Time only moves forward; a pointer into the past means waiting for the
//!   next cycle, which is how the cost of mis-ordered tree traversals
//!   emerges naturally.
//! * [`LossModel`] — the error-prone environment: the paper's §5 i.i.d.
//!   per-packet loss (optionally scoped to index information; see
//!   DESIGN.md §3.2 for why the data payload is assumed FEC-protected),
//!   plus the resilience-testing fault models — per-channel keyed i.i.d.
//!   streams, a bursty Gilbert–Elliott chain per channel, scheduled
//!   whole-channel outages, and scripted [`FaultTrace`] replay (see the
//!   [`loss`] module docs for the catalogue and compatibility
//!   guarantees).
//! * [`ChannelConfig`] / [`Placement`] — the multi-channel scheduler: the
//!   flat cycle's indivisible units spread over `C` lockstep channels,
//!   with a configurable per-switch latency cost and per-channel metrics
//!   ([`ChannelStats`]). `C = 1` is bit-identical to the classic
//!   single-channel broadcast.
//! * [`AirScheme`] / [`DynScheme`] / [`drive`] — the unified scheme
//!   layer: every air index exposes its program and window/kNN search
//!   algorithms through one trait, and one driver owns the
//!   tune-in/loss/stats loop for all of them.
//! * [`optimize`] — the workload-aware server-side placement optimizer:
//!   measure an access-probability profile over the flat schema
//!   ([`drive_profiled`]), price candidate unit→channel assignments with
//!   a closed-form air-cost model, and hill-climb to a
//!   [`Placement::Explicit`] layout that fits the workload.
//!
//! The simulator is deterministic under a fixed seed: every stochastic
//! choice (loss draws) comes from the tuner's own RNG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
pub mod loss;
pub mod optimize;
mod program;
mod scheme;
mod stats;
mod tuner;

pub use channel::{AntennaConfig, ChannelConfig, ChannelStats, LayoutError, Placement, Resilience};
pub use loss::{
    FaultTrace, GilbertElliott, LossModel, LossScope, OutageSchedule, OutageWindow, TraceEntry,
};
pub use program::{PacketClass, Payload, Program};
pub use scheme::{
    drive, drive_antennas, drive_profiled, drive_traced, AirScheme, DynScheme, Query, QueryOutcome,
};
pub use stats::{DistSummary, Distribution, MeanStats, QueryStats};
pub use tuner::{PacketLost, Tuner};
