//! The link-error model of the paper's §5.

use crate::program::PacketClass;

/// Which packets a loss draw applies to.
///
/// The paper applies θ to "link errors in the broadcast system" and reports
/// moderate deterioration even at θ = 0.7, which is only consistent with
/// data-object records surviving (a 1024-byte object spans 16 packets at
/// 64 B; with independent per-packet loss at θ = 0.7 a clean transfer has
/// probability 0.3¹⁶ ≈ 4·10⁻⁹ and *no* index could finish a query). We
/// therefore default to scoping loss to **index information** — the part
/// whose recovery §5 is about: DSI resumes at the next frame's table,
/// trees wait for node rebroadcasts — and treat object records (header
/// and payload alike) as protected by link-layer FEC/ARQ. `All` is
/// provided for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossScope {
    /// Loss applies to every packet.
    All,
    /// Loss applies to [`PacketClass::Index`] packets only.
    IndexOnly,
}

impl LossScope {
    /// Whether a packet of `class` is subject to loss under this scope.
    #[inline]
    pub fn applies_to(self, class: PacketClass) -> bool {
        match self {
            LossScope::All => true,
            LossScope::IndexOnly => matches!(class, PacketClass::Index),
        }
    }
}

/// Per-packet i.i.d. loss model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// The ideal channel of §4: no interference, no packet loss.
    None,
    /// Error-prone channel: each received packet (within `scope`) is
    /// corrupted independently with probability `theta`.
    Iid {
        /// Loss probability θ ∈ [0, 1).
        theta: f64,
        /// Which packet classes are affected.
        scope: LossScope,
    },
}

impl LossModel {
    /// Convenience constructor for the paper's Table 1 configuration.
    pub fn iid(theta: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0, 1), got {theta}"
        );
        if theta == 0.0 {
            LossModel::None
        } else {
            LossModel::Iid {
                theta,
                scope: LossScope::IndexOnly,
            }
        }
    }

    /// The loss probability for a packet of the given class.
    #[inline]
    pub fn theta_for(&self, class: PacketClass) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Iid { theta, scope } => {
                if scope.applies_to(class) {
                    theta
                } else {
                    0.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_theta_collapses_to_none() {
        assert_eq!(LossModel::iid(0.0), LossModel::None);
    }

    #[test]
    fn scope_filters_classes() {
        let m = LossModel::Iid {
            theta: 0.5,
            scope: LossScope::IndexOnly,
        };
        assert_eq!(m.theta_for(PacketClass::Index), 0.5);
        assert_eq!(m.theta_for(PacketClass::ObjectHeader), 0.0);
        assert_eq!(m.theta_for(PacketClass::ObjectPayload), 0.0);
        let all = LossModel::Iid {
            theta: 0.2,
            scope: LossScope::All,
        };
        assert_eq!(all.theta_for(PacketClass::ObjectPayload), 0.2);
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn theta_one_rejected() {
        let _ = LossModel::iid(1.0);
    }
}
