//! The link-error models: the paper's §5 i.i.d. channel plus bursty and
//! scheduled fault models for resilience testing.
//!
//! # Model catalogue
//!
//! * [`LossModel::None`] — the ideal channel of §4.
//! * [`LossModel::Iid`] — the paper's §5 channel: every packet (within a
//!   [`LossScope`]) corrupted independently with probability θ, drawn from
//!   **one** RNG stream shared by all channels in client read order. This
//!   is the historical model; its draw sequence is frozen bit-for-bit (the
//!   golden differential tests depend on it) and must never change.
//! * [`LossModel::KeyedIid`] — the same marginal distribution, but the
//!   draws are keyed per (query, channel): each channel consumes its own
//!   RNG stream, so adding channels or antennas to a run cannot perturb
//!   another channel's draw sequence (see *Stream keying* below).
//! * [`LossModel::Gilbert`] — a two-state Gilbert–Elliott Markov chain per
//!   channel: bursts of loss in the *bad* state, (near-)clean runs in the
//!   *good* state. Chains are independent across channels and evolve over
//!   absolute broadcast time, so a channel's good/bad trajectory is a pure
//!   function of (seed, channel) — replayable regardless of when or how
//!   often the client listens.
//! * [`LossModel::Outage`] — scheduled whole-channel fades: a channel is
//!   dark (every packet lost, regardless of scope) for explicit packet
//!   spans. Fully deterministic; consumes no RNG draws.
//! * [`LossModel::Trace`] — a scripted [`FaultTrace`] replaying the exact
//!   per-read loss outcomes of a recorded run (see
//!   `Tuner::enable_fault_recording`), for deterministic reproduction of a
//!   failure independent of any RNG.
//!
//! # Stream keying
//!
//! The keyed models ([`LossModel::KeyedIid`], [`LossModel::Gilbert`])
//! derive one RNG stream per (query seed, channel, purpose):
//!
//! ```text
//! stream_seed(seed, channel, salt) =
//!     seed ^ (channel + 1) · 0x9E37_79B9_7F4A_7C15 ^ salt
//! ```
//!
//! where `seed` is the per-query loss seed the driver already derives from
//! the batch seed, and `salt` distinguishes the keyed-iid draw stream, the
//! Gilbert–Elliott state-trajectory stream, and its loss-draw stream. The
//! per-channel keying is the compatibility guarantee: a channel's draw
//! sequence depends only on (seed, channel) and the client's reads **on
//! that channel** — never on reads interleaved on other channels, the
//! total channel count, or the antenna count.
//!
//! # i.i.d. golden compatibility
//!
//! [`LossModel::None`] and [`LossModel::Iid`] are evaluated on the
//! historical path: one shared `StdRng` seeded directly from the query
//! seed, one `gen_bool(θ)` draw per read whose scoped θ is positive, in
//! read order. All new models are new enum variants with their own state,
//! so every pre-existing draw sequence — and thus the k = 1 `ChannelStats`
//! goldens and `golden_stats.rs` — reproduces bit-for-bit.

use std::sync::Arc;

use crate::program::PacketClass;

/// Which packets a loss draw applies to.
///
/// The paper applies θ to "link errors in the broadcast system" and reports
/// moderate deterioration even at θ = 0.7, which is only consistent with
/// data-object records surviving (a 1024-byte object spans 16 packets at
/// 64 B; with independent per-packet loss at θ = 0.7 a clean transfer has
/// probability 0.3¹⁶ ≈ 4·10⁻⁹ and *no* index could finish a query). We
/// therefore default to scoping loss to **index information** — the part
/// whose recovery §5 is about: DSI resumes at the next frame's table,
/// trees wait for node rebroadcasts — and treat object records (header
/// and payload alike) as protected by link-layer FEC/ARQ. `All` is
/// provided for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossScope {
    /// Loss applies to every packet.
    All,
    /// Loss applies to [`PacketClass::Index`] packets only.
    IndexOnly,
}

impl LossScope {
    /// Whether a packet of `class` is subject to loss under this scope.
    #[inline]
    pub fn applies_to(self, class: PacketClass) -> bool {
        match self {
            LossScope::All => true,
            LossScope::IndexOnly => matches!(class, PacketClass::Index),
        }
    }
}

/// Parameters of the two-state Gilbert–Elliott channel.
///
/// The chain alternates between a *good* and a *bad* state; sojourn times
/// are geometric (the discrete-time chain leaves the good state with
/// probability `p_gb` per packet instant and the bad state with `p_bg`),
/// so the mean burst length is `1 / p_bg` packets. Within a state, packets
/// in `scope` are lost i.i.d. with that state's θ. Each channel runs an
/// independent chain over absolute broadcast time (see the module docs for
/// the stream keying).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Per-instant probability of leaving the good state (entering a burst).
    pub p_gb: f64,
    /// Per-instant probability of leaving the bad state (burst ends).
    pub p_bg: f64,
    /// Loss probability while in the good state (usually 0 or tiny).
    pub theta_good: f64,
    /// Loss probability while in the bad state (the burst severity).
    pub theta_bad: f64,
    /// Which packet classes are affected (state evolves regardless).
    pub scope: LossScope,
}

impl GilbertElliott {
    /// A clean-good-state chain: `theta_good = 0`, loss scoped to index
    /// packets (the module default; see [`LossScope`]).
    pub fn new(p_gb: f64, p_bg: f64, theta_bad: f64) -> Self {
        let ge = Self {
            p_gb,
            p_bg,
            theta_good: 0.0,
            theta_bad,
            scope: LossScope::IndexOnly,
        };
        ge.validate();
        ge
    }

    /// Sets the good-state loss probability (background noise).
    pub fn with_theta_good(mut self, theta_good: f64) -> Self {
        self.theta_good = theta_good;
        self.validate();
        self
    }

    /// Sets the loss scope (e.g. [`LossScope::All`] for whole-stream fades).
    pub fn with_scope(mut self, scope: LossScope) -> Self {
        self.scope = scope;
        self
    }

    fn validate(&self) {
        assert!(
            self.p_gb > 0.0 && self.p_gb <= 1.0,
            "p_gb must be in (0, 1], got {}",
            self.p_gb
        );
        assert!(
            self.p_bg > 0.0 && self.p_bg <= 1.0,
            "p_bg must be in (0, 1], got {}",
            self.p_bg
        );
        assert!(
            (0.0..=1.0).contains(&self.theta_good) && (0.0..=1.0).contains(&self.theta_bad),
            "state loss probabilities must be in [0, 1], got good {} bad {}",
            self.theta_good,
            self.theta_bad
        );
    }

    /// The loss probability of the given state for a packet of `class`.
    #[inline]
    pub fn theta_in(&self, bad: bool, class: PacketClass) -> f64 {
        if !self.scope.applies_to(class) {
            0.0
        } else if bad {
            self.theta_bad
        } else {
            self.theta_good
        }
    }
}

/// One scheduled whole-channel fade: channel `channel` is dark for
/// `len` packet instants starting at absolute instant `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// Faded channel.
    pub channel: u32,
    /// First dark packet instant (absolute; cycle-relative if the owning
    /// schedule repeats with a period).
    pub start: u64,
    /// Number of dark instants.
    pub len: u64,
}

/// A deterministic schedule of whole-channel [`OutageWindow`]s.
///
/// With `period == 0` the windows are one-shot spans of absolute
/// broadcast time (the channel is clean forever after the last window —
/// the shape the bounded-recovery property needs). With `period > 0`
/// each window repeats every `period` instants: a window is evaluated
/// against `instant % period`, modelling e.g. a jammed slot of every
/// broadcast cycle. Consumes no RNG draws.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutageSchedule {
    windows: Arc<Vec<OutageWindow>>,
    period: u64,
}

impl OutageSchedule {
    /// A one-shot schedule over absolute instants.
    pub fn new(windows: Vec<OutageWindow>) -> Self {
        Self {
            windows: Arc::new(windows),
            period: 0,
        }
    }

    /// A periodic schedule: windows repeat every `period` instants.
    pub fn periodic(windows: Vec<OutageWindow>, period: u64) -> Self {
        assert!(period > 0, "a periodic schedule needs period > 0");
        Self {
            windows: Arc::new(windows),
            period,
        }
    }

    /// The scheduled windows.
    pub fn windows(&self) -> &[OutageWindow] {
        &self.windows
    }

    /// Repeat period in instants (0 = one-shot).
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Whether `channel` is dark at `instant`.
    #[inline]
    pub fn is_dark(&self, channel: u32, instant: u64) -> bool {
        let t = if self.period > 0 {
            instant % self.period
        } else {
            instant
        };
        self.windows
            .iter()
            .any(|w| w.channel == channel && t >= w.start && t - w.start < w.len)
    }

    /// The last dark instant across all windows plus one — i.e. the
    /// instant from which every channel is clean forever. `None` when the
    /// schedule is periodic (it never goes permanently clean) — unless it
    /// has no windows.
    pub fn clean_after(&self) -> Option<u64> {
        if self.period > 0 && !self.windows.is_empty() {
            return None;
        }
        Some(
            self.windows
                .iter()
                .map(|w| w.start + w.len)
                .max()
                .unwrap_or(0),
        )
    }
}

/// One recorded read outcome: at absolute `instant`, listening on
/// `channel`, the packet was lost (`lost`) or received.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Channel the client was listening on.
    pub channel: u32,
    /// Absolute packet instant of the read.
    pub instant: u64,
    /// Whether the link-error model corrupted the packet.
    pub lost: bool,
}

/// A scripted per-read loss sequence for deterministic replay.
///
/// Recorded by `Tuner::enable_fault_recording` under any model, then
/// replayed with [`LossModel::Trace`]: a read at (channel, instant) is
/// lost iff the trace's next matching entry says so; reads the trace does
/// not cover are received cleanly. Replay consumes no RNG draws, so a
/// recorded failure reproduces exactly on any machine from the trace file
/// alone.
///
/// # Replay text format
///
/// ```text
/// dsi-fault-trace v1
/// <channel> <instant> <0|1>
/// ...
/// ```
///
/// One entry per line after the header, in the recorded read order;
/// `1` = lost. Parsed by [`FaultTrace::from_text`], written by
/// [`FaultTrace::to_text`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultTrace {
    entries: Arc<Vec<TraceEntry>>,
}

/// Header line of the trace text format.
const TRACE_HEADER: &str = "dsi-fault-trace v1";

impl FaultTrace {
    /// Wraps recorded entries.
    pub fn new(entries: Vec<TraceEntry>) -> Self {
        Self {
            entries: Arc::new(entries),
        }
    }

    /// The recorded entries, in read order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Serializes to the replay text format (see the type docs).
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(16 + self.entries.len() * 12);
        s.push_str(TRACE_HEADER);
        s.push('\n');
        for e in self.entries.iter() {
            s.push_str(&format!(
                "{} {} {}\n",
                e.channel,
                e.instant,
                u8::from(e.lost)
            ));
        }
        s
    }

    /// Parses the replay text format; `None` on a malformed document.
    pub fn from_text(text: &str) -> Option<Self> {
        let mut lines = text.lines();
        if lines.next()?.trim() != TRACE_HEADER {
            return None;
        }
        let mut entries = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let channel: u32 = it.next()?.parse().ok()?;
            let instant: u64 = it.next()?.parse().ok()?;
            let lost = match it.next()? {
                "0" => false,
                "1" => true,
                _ => return None,
            };
            if it.next().is_some() {
                return None;
            }
            entries.push(TraceEntry {
                channel,
                instant,
                lost,
            });
        }
        Some(Self::new(entries))
    }
}

/// The link-error model of a run. `None`/`Iid` are the historical §5
/// models (frozen draw sequences); the remaining variants are the
/// resilience-testing fault models — see the module docs for the
/// catalogue, the stream keying, and the golden-compatibility guarantee.
#[derive(Debug, Clone, PartialEq)]
pub enum LossModel {
    /// The ideal channel of §4: no interference, no packet loss.
    None,
    /// Error-prone channel: each received packet (within `scope`) is
    /// corrupted independently with probability `theta`, drawn from one
    /// RNG stream shared across channels (the historical draw order).
    Iid {
        /// Loss probability θ ∈ [0, 1).
        theta: f64,
        /// Which packet classes are affected.
        scope: LossScope,
    },
    /// [`Iid`](LossModel::Iid) with per-(query, channel) keyed draw
    /// streams: channel count and antenna count cannot perturb another
    /// channel's draws.
    KeyedIid {
        /// Loss probability θ ∈ [0, 1).
        theta: f64,
        /// Which packet classes are affected.
        scope: LossScope,
    },
    /// Bursty two-state Gilbert–Elliott chain, independent per channel.
    Gilbert(GilbertElliott),
    /// Scheduled whole-channel fades (deterministic, scope-independent).
    Outage(OutageSchedule),
    /// Scripted replay of a recorded per-read loss sequence.
    Trace(FaultTrace),
}

impl LossModel {
    /// Convenience constructor for the paper's Table 1 configuration.
    pub fn iid(theta: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0, 1), got {theta}"
        );
        if theta == 0.0 {
            LossModel::None
        } else {
            LossModel::Iid {
                theta,
                scope: LossScope::IndexOnly,
            }
        }
    }

    /// [`LossModel::iid`] with per-(query, channel) keyed draw streams.
    pub fn keyed_iid(theta: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0, 1), got {theta}"
        );
        if theta == 0.0 {
            LossModel::None
        } else {
            LossModel::KeyedIid {
                theta,
                scope: LossScope::IndexOnly,
            }
        }
    }

    /// A Gilbert–Elliott bursty channel (see [`GilbertElliott::new`]).
    pub fn gilbert(p_gb: f64, p_bg: f64, theta_bad: f64) -> Self {
        LossModel::Gilbert(GilbertElliott::new(p_gb, p_bg, theta_bad))
    }

    /// A one-shot outage schedule.
    pub fn outage(windows: Vec<OutageWindow>) -> Self {
        LossModel::Outage(OutageSchedule::new(windows))
    }

    /// The loss probability for a packet of the given class, for the
    /// *stateless* models. The stateful models (Gilbert–Elliott, outage,
    /// trace) decide loss from per-channel state inside the tuner and
    /// report 0 here.
    #[inline]
    pub fn theta_for(&self, class: PacketClass) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Iid { theta, scope } | LossModel::KeyedIid { theta, scope } => {
                if scope.applies_to(class) {
                    theta
                } else {
                    0.0
                }
            }
            LossModel::Gilbert(_) | LossModel::Outage(_) | LossModel::Trace(_) => 0.0,
        }
    }
}

/// Multiplier that decorrelates per-channel streams (SplitMix64's golden
/// gamma, the same pre-mix constant the vendored `StdRng` uses).
const STREAM_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Salt of the keyed-iid per-channel draw streams.
pub(crate) const KEYED_DRAW_SALT: u64 = 0x1D1D_0DA7_A5EE_D001;

/// Salt of the Gilbert–Elliott per-channel state-trajectory streams.
pub(crate) const GE_STATE_SALT: u64 = 0x6E57_A7E0_5EED_0002;

/// Salt of the Gilbert–Elliott per-channel loss-draw streams.
pub(crate) const GE_DRAW_SALT: u64 = 0x6EDD_0A35_5EED_0003;

/// The per-(query, channel, purpose) stream seed of the module docs.
#[inline]
pub(crate) fn stream_seed(seed: u64, channel: u32, salt: u64) -> u64 {
    seed ^ (channel as u64 + 1).wrapping_mul(STREAM_GAMMA) ^ salt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_theta_collapses_to_none() {
        assert_eq!(LossModel::iid(0.0), LossModel::None);
        assert_eq!(LossModel::keyed_iid(0.0), LossModel::None);
    }

    #[test]
    fn scope_filters_classes() {
        let m = LossModel::Iid {
            theta: 0.5,
            scope: LossScope::IndexOnly,
        };
        assert_eq!(m.theta_for(PacketClass::Index), 0.5);
        assert_eq!(m.theta_for(PacketClass::ObjectHeader), 0.0);
        assert_eq!(m.theta_for(PacketClass::ObjectPayload), 0.0);
        let all = LossModel::Iid {
            theta: 0.2,
            scope: LossScope::All,
        };
        assert_eq!(all.theta_for(PacketClass::ObjectPayload), 0.2);
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn theta_one_rejected() {
        let _ = LossModel::iid(1.0);
    }

    #[test]
    fn gilbert_state_thetas_respect_scope() {
        let ge = GilbertElliott::new(0.01, 0.1, 0.9).with_theta_good(0.05);
        assert_eq!(ge.theta_in(true, PacketClass::Index), 0.9);
        assert_eq!(ge.theta_in(false, PacketClass::Index), 0.05);
        assert_eq!(ge.theta_in(true, PacketClass::ObjectPayload), 0.0);
        let all = ge.with_scope(LossScope::All);
        assert_eq!(all.theta_in(true, PacketClass::ObjectPayload), 0.9);
    }

    #[test]
    #[should_panic(expected = "p_bg must be in")]
    fn gilbert_rejects_absorbing_bad_state() {
        let _ = GilbertElliott::new(0.01, 0.0, 0.9);
    }

    #[test]
    fn outage_windows_darken_exact_spans() {
        let s = OutageSchedule::new(vec![
            OutageWindow {
                channel: 1,
                start: 10,
                len: 5,
            },
            OutageWindow {
                channel: 0,
                start: 0,
                len: 2,
            },
        ]);
        assert!(s.is_dark(0, 0) && s.is_dark(0, 1) && !s.is_dark(0, 2));
        assert!(!s.is_dark(1, 9) && s.is_dark(1, 10) && s.is_dark(1, 14) && !s.is_dark(1, 15));
        assert!(!s.is_dark(2, 12), "other channels stay clean");
        assert_eq!(s.clean_after(), Some(15));
    }

    #[test]
    fn periodic_outage_repeats_and_never_goes_clean() {
        let s = OutageSchedule::periodic(
            vec![OutageWindow {
                channel: 0,
                start: 3,
                len: 2,
            }],
            10,
        );
        assert!(s.is_dark(0, 3) && s.is_dark(0, 13) && s.is_dark(0, 104));
        assert!(!s.is_dark(0, 5) && !s.is_dark(0, 15));
        assert_eq!(s.clean_after(), None);
    }

    #[test]
    fn trace_text_round_trips() {
        let t = FaultTrace::new(vec![
            TraceEntry {
                channel: 0,
                instant: 5,
                lost: true,
            },
            TraceEntry {
                channel: 2,
                instant: 9,
                lost: false,
            },
        ]);
        let text = t.to_text();
        assert!(text.starts_with("dsi-fault-trace v1\n"));
        assert_eq!(FaultTrace::from_text(&text), Some(t));
        assert_eq!(FaultTrace::from_text("bogus"), None);
        assert_eq!(FaultTrace::from_text("dsi-fault-trace v1\n0 1 7\n"), None);
    }

    #[test]
    fn stream_seeds_differ_per_channel_and_purpose() {
        let a = stream_seed(7, 0, KEYED_DRAW_SALT);
        let b = stream_seed(7, 1, KEYED_DRAW_SALT);
        let c = stream_seed(7, 0, GE_STATE_SALT);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
