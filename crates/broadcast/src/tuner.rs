//! The mobile client's channel interface.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::channel::{AntennaConfig, ChannelStats, Resilience};
use crate::loss::{
    stream_seed, FaultTrace, GilbertElliott, LossModel, TraceEntry, GE_DRAW_SALT, GE_STATE_SALT,
    KEYED_DRAW_SALT,
};
use crate::program::{PacketClass, Payload, Program};
use crate::stats::QueryStats;

/// Error returned by [`Tuner::read`] when the packet was corrupted by the
/// link-error model. The client has still *listened* (tuning time accrues)
/// and the instant has passed (latency accrues); recovery strategy is up to
/// the index's search algorithm — this asymmetry between DSI (resume at
/// next frame) and tree indexes (wait for a new root/index segment) is the
/// heart of the paper's §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketLost;

/// A client tuned into a broadcast channel.
///
/// The tuner owns the client-side clock: `pos` is the absolute packet
/// instant about to be broadcast. Reading consumes the instant actively;
/// dozing skips ahead without listening. Both metrics of the paper fall out
/// of this bookkeeping:
///
/// * access latency = `pos - tune-in instant`
/// * tuning time   = number of `read` calls
///
/// With a multi-antenna [`AntennaConfig`] the client keeps up to `k`
/// channels tuned concurrently: [`Tuner::arrival`] and [`Tuner::goto`]
/// treat every monitored channel as reachable without a retune delay, and
/// a retune (evicting the least-recently-used antenna) is charged only
/// when the target channel is on none of them.
pub struct Tuner<'a, P> {
    program: &'a Program<P>,
    start: u64,
    pos: u64,
    tuning: u64,
    loss: LossModel,
    rng: StdRng,
    /// Channel currently listened to (clients tune in on channel 0, the
    /// first index channel under every placement policy).
    channel: u32,
    /// Number of concurrently tunable receivers (capped at the channel
    /// count).
    antennas: u32,
    /// Channels the antennas are currently tuned to, most recently focused
    /// first (`monitored[0] == channel`); a retune evicts the tail. Left
    /// empty on single-channel programs so the classic tuner stays
    /// allocation-free.
    monitored: Vec<u32>,
    switches: u64,
    /// Per-channel tuning counters; left empty on single-channel programs
    /// (the aggregate counter covers channel 0), so the classic
    /// single-channel tuner stays allocation-free and pays nothing per
    /// read.
    tuning_by_channel: Vec<u64>,
    /// Per-flat-position read counters, empty unless
    /// [`Tuner::enable_profiling`] was called. Feeds the workload-aware
    /// placement optimizer ([`crate::optimize`]): the counts over a
    /// training workload are its access-probability profile.
    access_counts: Vec<u64>,
    /// Per-model fault state (the [`LossModel::None`]/[`LossModel::Iid`]
    /// arm is the frozen historical draw path; see the loss module docs).
    fault: FaultDriver,
    /// Loss-resilience policy (from the [`AntennaConfig`]).
    resilience: Resilience,
    /// Total reads corrupted by the link-error model.
    lost_reads: u64,
    /// Consecutive lost reads (reset by any successful read).
    burst: u32,
    /// Instant of the first lost read of the open burst.
    stall_start: u64,
    /// Longest loss stall observed, in packets of broadcast time.
    longest_stall: u64,
    /// Retunes forced by loss (resilient planner deviated from the
    /// loss-blind pick).
    loss_retunes: u64,
    /// Per-read fault journal, recorded when
    /// [`Tuner::enable_fault_recording`] was called.
    record: Option<Vec<TraceEntry>>,
}

/// Per-model fault state behind [`Tuner::read`]'s loss decision.
enum FaultDriver {
    /// `None`/`Iid`: the historical path — one shared RNG, one draw per
    /// scoped read, in read order. Frozen bit-for-bit.
    Classic,
    /// `KeyedIid`: one draw stream per channel.
    Keyed { rngs: Vec<StdRng> },
    /// `Gilbert`: one independent two-state chain per channel.
    Ge { chains: Vec<GeChain> },
    /// `Outage`: pure schedule lookup, no state.
    Outage,
    /// `Trace`: replay cursor over the recorded entries.
    Trace { cursor: usize },
}

/// One channel's Gilbert–Elliott chain. The state trajectory is sampled
/// lazily over absolute broadcast time from its own keyed stream (one
/// geometric sojourn draw per transition), so where the chain is at
/// instant `t` is a pure function of (seed, channel, t) — independent of
/// when or how often the client reads.
struct GeChain {
    /// Currently in the bad (burst) state?
    bad: bool,
    /// Absolute instant at which the current state's sojourn ends.
    until: u64,
    /// Sojourn-length stream (`GE_STATE_SALT`).
    state_rng: StdRng,
    /// Within-state loss-draw stream (`GE_DRAW_SALT`).
    draw_rng: StdRng,
}

impl GeChain {
    fn new(seed: u64, channel: u32, ge: &GilbertElliott) -> Self {
        let mut state_rng = StdRng::seed_from_u64(stream_seed(seed, channel, GE_STATE_SALT));
        // Chains start in the good state; the first transition instant is
        // the initial good sojourn.
        let until = sojourn(&mut state_rng, ge.p_gb);
        Self {
            bad: false,
            until,
            state_rng,
            draw_rng: StdRng::seed_from_u64(stream_seed(seed, channel, GE_DRAW_SALT)),
        }
    }

    /// Advances the chain to instant `t` (amortized O(1): one geometric
    /// draw per state transition).
    fn advance(&mut self, t: u64, ge: &GilbertElliott) {
        while self.until <= t {
            self.bad = !self.bad;
            let leave = if self.bad { ge.p_bg } else { ge.p_gb };
            self.until += sojourn(&mut self.state_rng, leave);
        }
    }
}

/// One geometric sojourn length (≥ 1 instants) for a state left with
/// per-instant probability `leave`.
fn sojourn(rng: &mut StdRng, leave: f64) -> u64 {
    if leave >= 1.0 {
        return 1;
    }
    let u: f64 = rng.gen();
    let len = 1.0 + ((1.0 - u).ln() / (1.0 - leave).ln()).floor();
    (len as u64).clamp(1, 1 << 32)
}

impl<'a, P: Payload> Tuner<'a, P> {
    /// Tunes in at the absolute packet instant `start` (the initial probe
    /// happens at the first subsequent `read`), on channel 0, with a
    /// single antenna.
    pub fn tune_in(program: &'a Program<P>, start: u64, loss: LossModel, seed: u64) -> Self {
        Self::tune_in_with(program, start, loss, seed, AntennaConfig::single())
    }

    /// Tunes in with an explicit receiver configuration: all `antennas`
    /// start parked on channel 0 conceptually, but only channel 0 counts
    /// as monitored until the client actually spreads out (so an unused
    /// second antenna changes nothing).
    pub fn tune_in_with(
        program: &'a Program<P>,
        start: u64,
        loss: LossModel,
        seed: u64,
        antennas: AntennaConfig,
    ) -> Self {
        assert!(
            antennas.antennas >= 1,
            "a client needs at least one antenna"
        );
        let n_channels = program.n_channels();
        let fault = match &loss {
            LossModel::None | LossModel::Iid { .. } => FaultDriver::Classic,
            LossModel::KeyedIid { .. } => FaultDriver::Keyed {
                rngs: (0..n_channels)
                    .map(|c| StdRng::seed_from_u64(stream_seed(seed, c, KEYED_DRAW_SALT)))
                    .collect(),
            },
            LossModel::Gilbert(ge) => FaultDriver::Ge {
                chains: (0..n_channels).map(|c| GeChain::new(seed, c, ge)).collect(),
            },
            LossModel::Outage(_) => FaultDriver::Outage,
            LossModel::Trace(_) => FaultDriver::Trace { cursor: 0 },
        };
        Self {
            program,
            start,
            pos: start,
            tuning: 0,
            loss,
            rng: StdRng::seed_from_u64(seed),
            channel: 0,
            antennas: antennas.antennas.min(n_channels),
            monitored: if n_channels > 1 { vec![0] } else { Vec::new() },
            switches: 0,
            tuning_by_channel: if n_channels > 1 {
                vec![0; n_channels as usize]
            } else {
                Vec::new()
            },
            access_counts: Vec::new(),
            fault,
            resilience: antennas.resilience,
            lost_reads: 0,
            burst: 0,
            stall_start: 0,
            longest_stall: 0,
            loss_retunes: 0,
            record: None,
        }
    }

    /// Starts journaling every read's loss outcome; retrieve the script
    /// with [`Tuner::fault_trace`] and replay it via [`LossModel::Trace`].
    pub fn enable_fault_recording(&mut self) {
        self.record = Some(Vec::new());
    }

    /// The fault journal recorded since [`Tuner::enable_fault_recording`]
    /// (empty if recording was never enabled).
    pub fn fault_trace(&self) -> FaultTrace {
        FaultTrace::new(self.record.clone().unwrap_or_default())
    }

    /// Starts counting reads per flat schema position (one counter per
    /// packet of the cycle, retrievable via [`Tuner::access_counts`]).
    /// Off by default so the hot read path pays nothing for it.
    pub fn enable_profiling(&mut self) {
        self.access_counts = vec![0; self.program.len() as usize];
    }

    /// Reads per flat schema position since [`Tuner::enable_profiling`];
    /// empty if profiling was never enabled.
    pub fn access_counts(&self) -> &[u64] {
        &self.access_counts
    }

    /// The broadcast program being listened to.
    #[inline]
    pub fn program(&self) -> &'a Program<P> {
        self.program
    }

    /// Absolute instant of the next packet to be broadcast.
    #[inline]
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Cycle-relative position of the next packet **on the listened
    /// channel**: each channel repeats its own cycle of
    /// [`Program::channel_len`] packets, so the slot about to air on the
    /// current channel is `pos % channel_len(channel)`. On a
    /// single-channel program this is the classic flat cycle position.
    /// (It used to be `pos % program.len()`, which on `C > 1` programs
    /// was neither the channel slot nor a flat position.)
    #[inline]
    pub fn cycle_pos(&self) -> u64 {
        self.pos % self.program.channel_len(self.channel)
    }

    /// Channel currently listened to.
    #[inline]
    pub fn channel(&self) -> u32 {
        self.channel
    }

    /// Number of usable antennas (the configured count capped at the
    /// program's channel count).
    #[inline]
    pub fn antennas(&self) -> u32 {
        self.antennas
    }

    /// Channels currently monitored by the antennas, most recently focused
    /// first. Empty on single-channel programs (the one channel is
    /// implicitly monitored).
    #[inline]
    pub fn monitored_channels(&self) -> &[u32] {
        &self.monitored
    }

    /// Whether an antenna is currently tuned to `ch` (reads from it need
    /// no retune delay).
    #[inline]
    fn is_monitored(&self, ch: u32) -> bool {
        if self.monitored.is_empty() {
            ch == self.channel
        } else {
            self.monitored.contains(&ch)
        }
    }

    /// Makes `ch` the actively decoded channel: free if an antenna is
    /// already tuned to it, otherwise a retune of the least-recently-used
    /// antenna (one switch).
    fn focus(&mut self, ch: u32) {
        if ch == self.channel {
            return;
        }
        if let Some(i) = self.monitored.iter().position(|&c| c == ch) {
            // Already tuned by another antenna: selecting its stream is
            // free, just refresh the recency order.
            self.monitored.remove(i);
        } else {
            self.switches += 1;
            if self.monitored.len() as u32 >= self.antennas {
                self.monitored.pop();
            }
        }
        self.monitored.insert(0, ch);
        self.channel = ch;
    }

    /// Flat cycle position of the packet about to air on the current
    /// channel — "where in the schema" the client is listening. Equal to
    /// [`Tuner::cycle_pos`] on a single channel.
    #[inline]
    pub fn flat_pos(&self) -> u64 {
        self.program.flat_at(self.channel, self.pos)
    }

    /// The packet about to air on the current channel (schema knowledge;
    /// reading it still costs a [`Tuner::read`]).
    #[inline]
    pub fn current_packet(&self) -> &'a P {
        self.program.packet_at(self.channel, self.pos)
    }

    /// The earliest instant at which the packet at flat schema position
    /// `flat_pos` can be **read** from here: its next airing on its
    /// channel, no earlier than a retune (if no antenna monitors that
    /// channel yet) allows.
    #[inline]
    pub fn arrival(&self, flat_pos: u64) -> u64 {
        self.arrival_from(self.pos, flat_pos)
    }

    /// [`Tuner::arrival`] from a hypothetical future instant `from`: the
    /// earliest the packet at `flat_pos` could be read if the client were
    /// free at `from`, charging the retune delay if no antenna currently
    /// monitors the target's channel. This is the costing primitive of
    /// [`Tuner::plan_earliest`]'s conflict model.
    #[inline]
    fn arrival_from(&self, from: u64, flat_pos: u64) -> u64 {
        let ready = if self.is_monitored(self.program.channel_of(flat_pos)) {
            from
        } else {
            from + self.program.switch_cost() as u64
        };
        self.program.next_occurrence_on(ready, flat_pos)
    }

    /// The batch arrival planner: the earliest-arriving position among
    /// `flats` and its arrival instant (ties go to the lowest index).
    /// Equals the minimum over per-position [`Tuner::arrival`] calls;
    /// `None` on an empty slice. This is how channel-aware clients pick
    /// their next read across candidate targets airing on parallel
    /// channels.
    #[inline]
    pub fn arrival_earliest(&self, flats: &[u64]) -> Option<(usize, u64)> {
        let mut best: Option<(usize, u64)> = None;
        for (i, &flat) in flats.iter().enumerate() {
            let t = self.arrival(flat);
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((i, t));
            }
        }
        best
    }

    /// The duration-aware batch planner: like [`Tuner::arrival_earliest`],
    /// but accounts for reads occupying the receiver. A read of candidate
    /// `i` holds the receiver for `dur(i)` packets, so blindly taking the
    /// earliest airing can trample the runner-up's airing and push it a
    /// full channel cycle out. When the runner-up airs before the
    /// leader's read completes, both orders are costed by the completion
    /// of the later read — the deferred read's re-occurrence charged
    /// exactly like [`Tuner::arrival`] (retune delay included when its
    /// channel is on no antenna) — and the cheaper order's first read
    /// wins. Arrivals are computed once per candidate; `dur` is only
    /// consulted for the top two. Ties go to the lowest index.
    pub fn plan_earliest(&self, flats: &[u64], dur: impl Fn(usize) -> u64) -> Option<(usize, u64)> {
        let mut best: Option<(usize, u64)> = None;
        let mut second: Option<(usize, u64)> = None;
        for (i, &flat) in flats.iter().enumerate() {
            let t = self.arrival(flat);
            if best.is_none_or(|(_, bt)| t < bt) {
                second = best;
                best = Some((i, t));
            } else if second.is_none_or(|(_, st)| t < st) {
                second = Some((i, t));
            }
        }
        let (x, t_x) = best?;
        if let Some((y, t_y)) = second {
            let dx = dur(x);
            if t_y < t_x + dx {
                let dy = dur(y);
                // The deferred read re-occurs under the same charging
                // rules as any other arrival: if its channel is
                // unmonitored, the retune delay applies. Costing it with
                // a bare `next_occurrence_on` (the pre-fix behaviour)
                // understated the deferred side by the switch cost, so a
                // large `switch_cost` could flip the decision the wrong
                // way.
                let y_after_x = self.arrival_from(t_x + dx, flats[y]) + dy;
                let x_after_y = self.arrival_from(t_y + dy, flats[x]) + dx;
                if x_after_y < y_after_x {
                    return Some((y, t_y));
                }
            }
        }
        Some((x, t_x))
    }

    /// Consecutive lost reads of the currently open burst (0 after any
    /// successful read).
    #[inline]
    pub fn current_burst(&self) -> u32 {
        self.burst
    }

    /// Total reads corrupted by the link-error model since tune-in.
    #[inline]
    pub fn lost_reads(&self) -> u64 {
        self.lost_reads
    }

    /// Whether the resilient planners are currently biasing picks away
    /// from the listened channel: a burst of at least
    /// [`Resilience::burst_threshold`] losses is open, loss-aware retune
    /// is enabled, and the client has a spare antenna on a multi-channel
    /// program to dodge with.
    #[inline]
    fn fade_active(&self) -> bool {
        self.resilience.loss_retune
            && self.antennas > 1
            && self.program.n_channels() > 1
            && self.burst >= self.resilience.burst_threshold
    }

    /// Loss-aware [`Tuner::arrival_earliest`]: identical (and loss-blind —
    /// it consumes no RNG draws) until burst detection declares a fade on
    /// the listened channel, then candidates on that channel are costed
    /// with an exponential backoff (`2^min(burst, 6)` instants) so an
    /// airing on another monitored channel wins instead of waiting out
    /// the fade. Deviations from the loss-blind pick are counted in
    /// [`QueryStats::loss_retunes`]. The returned instant is always the
    /// chosen candidate's *true* arrival.
    pub fn earliest_resilient(&mut self, flats: &[u64]) -> Option<(usize, u64)> {
        if !self.fade_active() {
            return self.arrival_earliest(flats);
        }
        self.pick_avoiding_fade(flats)
    }

    /// Loss-aware [`Tuner::plan_earliest`]: identical until a fade is
    /// declared (see [`Tuner::earliest_resilient`]); under a fade the
    /// dodge dominates duration-conflict costing, so the biased arrival
    /// pick is used directly.
    pub fn plan_resilient(
        &mut self,
        flats: &[u64],
        dur: impl Fn(usize) -> u64,
    ) -> Option<(usize, u64)> {
        if !self.fade_active() {
            return self.plan_earliest(flats, dur);
        }
        self.pick_avoiding_fade(flats)
    }

    /// The fade-biased pick: cost candidates on the fading (listened)
    /// channel as if the client backed off exponentially in the burst
    /// length before retrying there; candidates on other channels keep
    /// their true arrivals. The dodge only ever diverts to a *different*
    /// channel: when the biased winner still lives on the fading channel
    /// there is nowhere to escape to, and the loss-blind pick stands —
    /// reordering reads *within* the fading channel would defer each
    /// skipped candidate by a whole channel cycle for no loss-avoidance
    /// gain at all.
    fn pick_avoiding_fade(&mut self, flats: &[u64]) -> Option<(usize, u64)> {
        let fading = self.channel;
        let backoff = 1u64 << self.burst.min(6);
        let mut naive: Option<(usize, u64)> = None;
        let mut best: Option<(usize, u64, u64)> = None;
        for (i, &flat) in flats.iter().enumerate() {
            let real = self.arrival(flat);
            if naive.is_none_or(|(_, nt)| real < nt) {
                naive = Some((i, real));
            }
            let biased = if self.program.channel_of(flat) == fading {
                self.arrival_from(self.pos + backoff, flat)
            } else {
                real
            };
            if best.is_none_or(|(_, bb, _)| biased < bb) {
                best = Some((i, biased, real));
            }
        }
        let (i, _, real) = best?;
        if naive.map(|(j, _)| j) == Some(i) {
            return Some((i, real));
        }
        if self.program.channel_of(flats[i]) == fading {
            return naive;
        }
        self.loss_retunes += 1;
        Some((i, real))
    }

    /// Dozes (and re-tunes an antenna, if no antenna monitors the target's
    /// channel) to the arrival of flat schema position `flat_pos`,
    /// returning the instant reached; the next [`Tuner::read`] receives
    /// exactly that packet. Switch cost accrues as latency, never as
    /// tuning.
    #[inline]
    pub fn goto(&mut self, flat_pos: u64) -> u64 {
        let t = self.arrival(flat_pos);
        self.focus(self.program.channel_of(flat_pos));
        self.pos = t;
        t
    }

    /// Receives the packet at the current instant (active mode).
    ///
    /// Always advances time and accrues one packet of tuning; returns
    /// `Err(PacketLost)` if the link-error model corrupted the packet.
    #[inline]
    pub fn read(&mut self) -> Result<&'a P, PacketLost> {
        let packet = self.program.packet_at(self.channel, self.pos);
        if !self.access_counts.is_empty() {
            let flat = self.program.flat_at(self.channel, self.pos) as usize;
            self.access_counts[flat] += 1;
        }
        let instant = self.pos;
        self.pos += 1;
        self.tuning += 1;
        if let Some(c) = self.tuning_by_channel.get_mut(self.channel as usize) {
            *c += 1;
        }
        let lost = self.decide_loss(packet.class(), instant);
        if let Some(rec) = self.record.as_mut() {
            rec.push(TraceEntry {
                channel: self.channel,
                instant,
                lost,
            });
        }
        if lost {
            self.lost_reads += 1;
            if self.burst == 0 {
                self.stall_start = instant;
            }
            self.burst += 1;
            let stall = self.pos - self.stall_start;
            if stall > self.longest_stall {
                self.longest_stall = stall;
            }
            // The livelock guard: a retry set that stops shrinking shows
            // up as an unbounded run of consecutive lost reads (each
            // retry re-reads at the next occurrence and loses again).
            // Abort with a diagnostic instead of spinning forever — e.g.
            // under an outage schedule that never frees this packet.
            if self.burst > self.resilience.retry_cap {
                panic!(
                    "livelock guard: {} consecutive lost reads (cap {}) on channel {} \
                     at instant {} ({} losses total, monitored {:?}) under {:?} — \
                     the fault schedule never frees this read",
                    self.burst,
                    self.resilience.retry_cap,
                    self.channel,
                    instant,
                    self.lost_reads,
                    self.monitored,
                    self.loss
                );
            }
            Err(PacketLost)
        } else {
            self.burst = 0;
            Ok(packet)
        }
    }

    /// One read's loss verdict at `instant` on the listened channel.
    /// The `Classic` arm is the frozen historical draw path (`None`/
    /// `Iid`): θ-gated single draws from the shared RNG in read order.
    fn decide_loss(&mut self, class: PacketClass, instant: u64) -> bool {
        match &mut self.fault {
            FaultDriver::Classic => {
                let theta = self.loss.theta_for(class);
                theta > 0.0 && self.rng.gen_bool(theta)
            }
            FaultDriver::Keyed { rngs } => {
                let theta = self.loss.theta_for(class);
                theta > 0.0 && rngs[self.channel as usize].gen_bool(theta)
            }
            FaultDriver::Ge { chains } => {
                let LossModel::Gilbert(ge) = &self.loss else {
                    unreachable!("Ge driver is only built for Gilbert models")
                };
                let chain = &mut chains[self.channel as usize];
                chain.advance(instant, ge);
                let theta = ge.theta_in(chain.bad, class);
                // A full fade (θ = 1) consumes no draw, so a channel's
                // draw stream stays aligned across fade severities.
                theta > 0.0 && (theta >= 1.0 || chain.draw_rng.gen_bool(theta))
            }
            FaultDriver::Outage => {
                let LossModel::Outage(schedule) = &self.loss else {
                    unreachable!("Outage driver is only built for Outage models")
                };
                schedule.is_dark(self.channel, instant)
            }
            FaultDriver::Trace { cursor } => {
                let LossModel::Trace(trace) = &self.loss else {
                    unreachable!("Trace driver is only built for Trace models")
                };
                let entries = trace.entries();
                if let Some(off) = entries[*cursor..]
                    .iter()
                    .position(|e| e.channel == self.channel && e.instant == instant)
                {
                    let lost = entries[*cursor + off].lost;
                    *cursor += off + 1;
                    lost
                } else {
                    false
                }
            }
        }
    }

    /// Switches to doze mode until absolute instant `abs` (latency accrues,
    /// tuning does not).
    ///
    /// # Panics
    ///
    /// Panics if `abs` is in the past — broadcast time is monotonic; use
    /// [`Program::next_occurrence`] to roll cycle positions forward.
    pub fn doze_to(&mut self, abs: u64) {
        assert!(
            abs >= self.pos,
            "cannot doze into the past: now {} target {abs}",
            self.pos
        );
        self.pos = abs;
    }

    /// Dozes (re-tuning if needed) to the next occurrence of flat cycle
    /// position `cycle_pos` and reads the packet there.
    pub fn read_at_cycle_pos(&mut self, cycle_pos: u64) -> Result<&'a P, PacketLost> {
        self.goto(cycle_pos);
        self.read()
    }

    /// Metrics accrued since tune-in.
    pub fn stats(&self) -> QueryStats {
        QueryStats {
            latency_packets: self.pos - self.start,
            tuning_packets: self.tuning,
            capacity: self.program.capacity(),
            lost_packets: self.lost_reads,
            longest_stall_packets: self.longest_stall,
            loss_retunes: self.loss_retunes,
        }
    }

    /// Channel-aware metrics accrued since tune-in: switch count and
    /// per-channel tuning.
    pub fn channel_stats(&self) -> ChannelStats {
        ChannelStats {
            switches: self.switches,
            tuning_packets: if self.tuning_by_channel.is_empty() {
                vec![self.tuning]
            } else {
                self.tuning_by_channel.clone()
            },
            capacity: self.program.capacity(),
            loss_retunes: self.loss_retunes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{LossScope, OutageWindow};
    use crate::program::PacketClass;

    #[derive(Debug, Clone, PartialEq)]
    enum P {
        Idx(u32),
        Hdr,
        Pay,
    }
    impl Payload for P {
        fn class(&self) -> PacketClass {
            match self {
                P::Idx(_) => PacketClass::Index,
                P::Hdr => PacketClass::ObjectHeader,
                P::Pay => PacketClass::ObjectPayload,
            }
        }
    }

    fn program() -> Program<P> {
        Program::new(
            64,
            vec![
                P::Idx(0),
                P::Hdr,
                P::Pay,
                P::Pay,
                P::Idx(1),
                P::Hdr,
                P::Pay,
                P::Pay,
            ],
        )
    }

    #[test]
    fn read_advances_and_accounts() {
        let prog = program();
        let mut t = Tuner::tune_in(&prog, 2, LossModel::None, 1);
        assert_eq!(t.read().unwrap(), &P::Pay);
        assert_eq!(t.read().unwrap(), &P::Pay);
        let s = t.stats();
        assert_eq!(s.latency_packets, 2);
        assert_eq!(s.tuning_packets, 2);
    }

    #[test]
    fn doze_costs_latency_only() {
        let prog = program();
        let mut t = Tuner::tune_in(&prog, 0, LossModel::None, 1);
        t.doze_to(6);
        assert_eq!(t.read().unwrap(), &P::Pay);
        let s = t.stats();
        assert_eq!(s.latency_packets, 7);
        assert_eq!(s.tuning_packets, 1);
    }

    #[test]
    fn read_at_cycle_pos_wraps() {
        let prog = program();
        let mut t = Tuner::tune_in(&prog, 5, LossModel::None, 1);
        // Position 4 is behind → next cycle (abs 12).
        assert_eq!(t.read_at_cycle_pos(4).unwrap(), &P::Idx(1));
        assert_eq!(t.pos(), 13);
        assert_eq!(t.stats().latency_packets, 8);
    }

    #[test]
    fn cycle_pos_is_the_listened_channels_slot() {
        use crate::channel::ChannelConfig;
        // Seven one-packet units striped over 3 channels: channel 0
        // carries flats {0,3,6} (3 slots), channel 2 carries {2,5} (2).
        let prog = Program::with_channels(
            64,
            (0..7).map(P::Idx).collect(),
            ChannelConfig::striped(3, 1),
        );
        let mut t = Tuner::tune_in(&prog, 7, LossModel::None, 1);
        assert_eq!(t.channel(), 0);
        // The listened channel's cycle is 3 packets, not the flat 7.
        assert_eq!(t.cycle_pos(), 7 % 3);
        assert_eq!(prog.flat_at(t.channel(), t.cycle_pos()), t.flat_pos());
        assert_ne!(t.cycle_pos(), t.pos() % prog.len(), "pre-fix value");
        t.goto(5);
        assert_eq!(t.channel(), 2);
        assert_eq!(t.pos(), 9);
        assert_eq!(t.cycle_pos(), 9 % prog.channel_len(2));
        assert_eq!(prog.flat_at(t.channel(), t.cycle_pos()), 5);
        assert_ne!(t.cycle_pos(), t.pos() % prog.len(), "pre-fix value");
    }

    #[test]
    fn plan_earliest_charges_retune_on_the_deferred_read() {
        use crate::channel::ChannelConfig;
        // Sixteen one-packet units blocked over 2 channels (flats 0..8 on
        // channel 0, 8..16 on channel 1), switch cost 6. From a fresh
        // client (monitoring channel 0 only): flat 14 airs at t = 6
        // (retune + slot 6), flat 7 at t = 7 — reading 14 first tramples
        // 7's airing. Deferring 14 costs a *second* retune; the pre-fix
        // costing ignored it (completion 16 < 17) and wrongly deferred
        // the leader, while the arrival-style charge (completion 24)
        // keeps it first.
        let prog = Program::with_channels(
            64,
            (0..16).map(P::Idx).collect(),
            ChannelConfig::blocked(2, 6),
        );
        let t = Tuner::tune_in(&prog, 0, LossModel::None, 1);
        assert_eq!(t.arrival(14), 6);
        assert_eq!(t.arrival(7), 7);
        assert_eq!(t.plan_earliest(&[14, 7], |_| 2), Some((0, 6)));
    }

    #[test]
    fn profiling_counts_reads_per_flat_position() {
        let prog = program();
        let mut t = Tuner::tune_in(&prog, 2, LossModel::None, 1);
        assert!(t.access_counts().is_empty(), "off by default");
        t.enable_profiling();
        let _ = t.read(); // flat 2
        let _ = t.read(); // flat 3
        t.goto(2);
        let _ = t.read(); // flat 2 again
        assert_eq!(t.access_counts(), &[0, 0, 2, 1, 0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "doze into the past")]
    fn dozing_backwards_panics() {
        let prog = program();
        let mut t = Tuner::tune_in(&prog, 5, LossModel::None, 1);
        t.doze_to(3);
    }

    #[test]
    fn loss_scope_spares_payload() {
        let prog = program();
        let loss = LossModel::Iid {
            theta: 0.999_999,
            scope: LossScope::IndexOnly,
        };
        let mut t = Tuner::tune_in(&prog, 0, loss, 42);
        // Index packet: virtually always lost.
        assert_eq!(t.read(), Err(PacketLost));
        // Header and payload packets: never lost under IndexOnly (object
        // records are assumed FEC-protected; see the loss module docs).
        assert_eq!(t.read().unwrap(), &P::Hdr);
        assert_eq!(t.read().unwrap(), &P::Pay);
        assert_eq!(t.read().unwrap(), &P::Pay);
        // Tuning counted losses too: the client listened.
        assert_eq!(t.stats().tuning_packets, 4);
    }

    #[test]
    fn deterministic_under_seed() {
        let prog = program();
        let loss = LossModel::iid(0.5);
        let run = |seed| {
            let mut t = Tuner::tune_in(&prog, 0, loss.clone(), seed);
            (0..16).map(|_| t.read().is_ok()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }

    /// A cycle of index-class one-packet units (every read draws under
    /// index-scoped models).
    fn index_program() -> Program<P> {
        Program::new(64, (0..8).map(P::Idx).collect())
    }

    #[test]
    fn gilbert_is_deterministic_and_bursty() {
        let prog = index_program();
        // Certain loss inside a fade: the loss pattern is exactly the
        // bad-state trajectory, so runs of losses are fades by construction.
        let ge = GilbertElliott::new(0.2, 0.3, 1.0);
        let run = |seed| {
            let mut t = Tuner::tune_in(&prog, 0, LossModel::Gilbert(ge), seed);
            let seen: Vec<bool> = (0..64).map(|_| t.read().is_ok()).collect();
            (seen, t.stats())
        };
        let (a, sa) = run(3);
        assert_eq!((a.clone(), sa), run(3), "replayable under its seed");
        let lost = a.iter().filter(|ok| !**ok).count() as u64;
        assert_eq!(sa.lost_packets, lost);
        assert!(lost > 0, "fades hit within 64 reads");
        assert!(
            a.windows(2).any(|w| w == [false, false]),
            "losses arrive in bursts, not singletons only"
        );
        assert!(sa.longest_stall_packets >= 2, "stall spans the burst");
        assert_ne!(a, run(4).0, "different seeds diverge");
    }

    #[test]
    fn outage_darkens_exact_instants() {
        let prog = index_program();
        let loss = LossModel::outage(vec![OutageWindow {
            channel: 0,
            start: 2,
            len: 3,
        }]);
        let mut t = Tuner::tune_in(&prog, 0, loss, 9);
        let seen: Vec<bool> = (0..8).map(|_| t.read().is_ok()).collect();
        assert_eq!(
            seen,
            vec![true, true, false, false, false, true, true, true],
            "dark exactly over instants [2, 5)"
        );
        let s = t.stats();
        assert_eq!(s.lost_packets, 3);
        assert_eq!(s.longest_stall_packets, 3);
    }

    #[test]
    fn recorded_trace_replays_identically() {
        let prog = index_program();
        let ge = GilbertElliott::new(0.3, 0.4, 0.9);
        let mut live = Tuner::tune_in(&prog, 1, LossModel::Gilbert(ge), 21);
        live.enable_fault_recording();
        let lived: Vec<bool> = (0..48).map(|_| live.read().is_ok()).collect();
        let trace = live.fault_trace();
        assert!(lived.iter().any(|ok| !ok), "the run saw losses");
        // Round-trip the trace through its text format, then replay it.
        let replayed = FaultTrace::from_text(&trace.to_text()).expect("text round-trip");
        let mut replay = Tuner::tune_in(&prog, 1, LossModel::Trace(replayed), 999);
        let replays: Vec<bool> = (0..48).map(|_| replay.read().is_ok()).collect();
        assert_eq!(lived, replays, "trace replay is seed-independent");
        assert_eq!(live.stats(), replay.stats());
    }

    #[test]
    #[should_panic(expected = "livelock guard")]
    fn livelock_guard_stops_unbounded_retry() {
        let prog = index_program();
        // A permanent outage with a tiny retry cap: the guard must fire
        // with a diagnostic rather than let the client spin forever.
        let loss = LossModel::outage(vec![OutageWindow {
            channel: 0,
            start: 0,
            len: u64::MAX / 2,
        }]);
        let ant = AntennaConfig::single().with_resilience(Resilience {
            retry_cap: 4,
            ..Resilience::default()
        });
        let mut t = Tuner::tune_in_with(&prog, 0, loss, 5, ant);
        for _ in 0..64 {
            let _ = t.read();
        }
    }

    #[test]
    fn resilient_pick_dodges_the_fading_channel() {
        use crate::channel::ChannelConfig;
        // Sixteen one-packet units blocked over 2 channels, free switches:
        // channel 0 airs flats 0..8, channel 1 airs flats 8..16.
        let prog = Program::with_channels(
            64,
            (0..16).map(P::Idx).collect(),
            ChannelConfig::blocked(2, 0),
        );
        let loss = LossModel::outage(vec![OutageWindow {
            channel: 0,
            start: 0,
            len: 100,
        }]);
        let mut t = Tuner::tune_in_with(&prog, 0, loss, 13, AntennaConfig::new(2));
        assert_eq!(t.read(), Err(PacketLost));
        assert_eq!(t.read(), Err(PacketLost));
        assert_eq!(t.current_burst(), 2, "burst detection is armed");
        // Loss-blind planning still prefers flat 3 (airs at t = 3 on the
        // fading channel) over flat 9 (t = 9 on channel 1)…
        assert_eq!(t.arrival_earliest(&[3, 9]), Some((0, 3)));
        assert_eq!(t.plan_earliest(&[3, 9], |_| 1), Some((0, 3)));
        // …but the resilient pick dodges to channel 1, reporting flat 9's
        // *true* arrival, and counts the forced retune.
        assert_eq!(t.earliest_resilient(&[3, 9]), Some((1, 9)));
        assert_eq!(t.plan_resilient(&[3, 9], |_| 1), Some((1, 9)));
        assert_eq!(t.stats().loss_retunes, 2);
        // A successful read closes the burst and restores blind picks.
        t.goto(9);
        assert_eq!(t.read().unwrap(), &P::Idx(9));
        assert_eq!(t.current_burst(), 0);
        assert_eq!(t.earliest_resilient(&[3, 12]), t.arrival_earliest(&[3, 12]));
    }

    #[test]
    fn keyed_channel0_draws_survive_adding_channels() {
        use crate::channel::{ChannelConfig, Placement};
        // Eight one-packet units; both layouts give channel 0 the same
        // four units, C=4 merely splits the rest across more channels.
        let explicit = |channels: u32, assignment: Vec<u32>| ChannelConfig {
            channels,
            placement: Placement::Explicit(assignment),
            switch_cost: 1,
        };
        let c2 = Program::with_channels(
            64,
            (0..8).map(P::Idx).collect(),
            explicit(2, vec![0, 0, 0, 0, 1, 1, 1, 1]),
        );
        let c4 = Program::with_channels(
            64,
            (0..8).map(P::Idx).collect(),
            explicit(4, vec![0, 0, 0, 0, 1, 2, 3, 1]),
        );
        let loss = LossModel::keyed_iid(0.5);
        let draws_on_channel0 = |prog: &Program<P>| {
            // Camp on channel 0 and read three of its cycles.
            let mut t = Tuner::tune_in(prog, 0, loss.clone(), 77);
            (0..12).map(|_| t.read().is_ok()).collect::<Vec<_>>()
        };
        assert_eq!(
            draws_on_channel0(&c2),
            draws_on_channel0(&c4),
            "channel 0's loss stream is keyed by (seed, channel), not by C"
        );
    }
}
