//! The mobile client's channel interface.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::channel::{AntennaConfig, ChannelStats};
use crate::loss::LossModel;
use crate::program::{Payload, Program};
use crate::stats::QueryStats;

/// Error returned by [`Tuner::read`] when the packet was corrupted by the
/// link-error model. The client has still *listened* (tuning time accrues)
/// and the instant has passed (latency accrues); recovery strategy is up to
/// the index's search algorithm — this asymmetry between DSI (resume at
/// next frame) and tree indexes (wait for a new root/index segment) is the
/// heart of the paper's §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketLost;

/// A client tuned into a broadcast channel.
///
/// The tuner owns the client-side clock: `pos` is the absolute packet
/// instant about to be broadcast. Reading consumes the instant actively;
/// dozing skips ahead without listening. Both metrics of the paper fall out
/// of this bookkeeping:
///
/// * access latency = `pos - tune-in instant`
/// * tuning time   = number of `read` calls
///
/// With a multi-antenna [`AntennaConfig`] the client keeps up to `k`
/// channels tuned concurrently: [`Tuner::arrival`] and [`Tuner::goto`]
/// treat every monitored channel as reachable without a retune delay, and
/// a retune (evicting the least-recently-used antenna) is charged only
/// when the target channel is on none of them.
pub struct Tuner<'a, P> {
    program: &'a Program<P>,
    start: u64,
    pos: u64,
    tuning: u64,
    loss: LossModel,
    rng: StdRng,
    /// Channel currently listened to (clients tune in on channel 0, the
    /// first index channel under every placement policy).
    channel: u32,
    /// Number of concurrently tunable receivers (capped at the channel
    /// count).
    antennas: u32,
    /// Channels the antennas are currently tuned to, most recently focused
    /// first (`monitored[0] == channel`); a retune evicts the tail. Left
    /// empty on single-channel programs so the classic tuner stays
    /// allocation-free.
    monitored: Vec<u32>,
    switches: u64,
    /// Per-channel tuning counters; left empty on single-channel programs
    /// (the aggregate counter covers channel 0), so the classic
    /// single-channel tuner stays allocation-free and pays nothing per
    /// read.
    tuning_by_channel: Vec<u64>,
    /// Per-flat-position read counters, empty unless
    /// [`Tuner::enable_profiling`] was called. Feeds the workload-aware
    /// placement optimizer ([`crate::optimize`]): the counts over a
    /// training workload are its access-probability profile.
    access_counts: Vec<u64>,
}

impl<'a, P: Payload> Tuner<'a, P> {
    /// Tunes in at the absolute packet instant `start` (the initial probe
    /// happens at the first subsequent `read`), on channel 0, with a
    /// single antenna.
    pub fn tune_in(program: &'a Program<P>, start: u64, loss: LossModel, seed: u64) -> Self {
        Self::tune_in_with(program, start, loss, seed, AntennaConfig::single())
    }

    /// Tunes in with an explicit receiver configuration: all `antennas`
    /// start parked on channel 0 conceptually, but only channel 0 counts
    /// as monitored until the client actually spreads out (so an unused
    /// second antenna changes nothing).
    pub fn tune_in_with(
        program: &'a Program<P>,
        start: u64,
        loss: LossModel,
        seed: u64,
        antennas: AntennaConfig,
    ) -> Self {
        assert!(
            antennas.antennas >= 1,
            "a client needs at least one antenna"
        );
        let n_channels = program.n_channels();
        Self {
            program,
            start,
            pos: start,
            tuning: 0,
            loss,
            rng: StdRng::seed_from_u64(seed),
            channel: 0,
            antennas: antennas.antennas.min(n_channels),
            monitored: if n_channels > 1 { vec![0] } else { Vec::new() },
            switches: 0,
            tuning_by_channel: if n_channels > 1 {
                vec![0; n_channels as usize]
            } else {
                Vec::new()
            },
            access_counts: Vec::new(),
        }
    }

    /// Starts counting reads per flat schema position (one counter per
    /// packet of the cycle, retrievable via [`Tuner::access_counts`]).
    /// Off by default so the hot read path pays nothing for it.
    pub fn enable_profiling(&mut self) {
        self.access_counts = vec![0; self.program.len() as usize];
    }

    /// Reads per flat schema position since [`Tuner::enable_profiling`];
    /// empty if profiling was never enabled.
    pub fn access_counts(&self) -> &[u64] {
        &self.access_counts
    }

    /// The broadcast program being listened to.
    #[inline]
    pub fn program(&self) -> &'a Program<P> {
        self.program
    }

    /// Absolute instant of the next packet to be broadcast.
    #[inline]
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Cycle-relative position of the next packet **on the listened
    /// channel**: each channel repeats its own cycle of
    /// [`Program::channel_len`] packets, so the slot about to air on the
    /// current channel is `pos % channel_len(channel)`. On a
    /// single-channel program this is the classic flat cycle position.
    /// (It used to be `pos % program.len()`, which on `C > 1` programs
    /// was neither the channel slot nor a flat position.)
    #[inline]
    pub fn cycle_pos(&self) -> u64 {
        self.pos % self.program.channel_len(self.channel)
    }

    /// Channel currently listened to.
    #[inline]
    pub fn channel(&self) -> u32 {
        self.channel
    }

    /// Number of usable antennas (the configured count capped at the
    /// program's channel count).
    #[inline]
    pub fn antennas(&self) -> u32 {
        self.antennas
    }

    /// Channels currently monitored by the antennas, most recently focused
    /// first. Empty on single-channel programs (the one channel is
    /// implicitly monitored).
    #[inline]
    pub fn monitored_channels(&self) -> &[u32] {
        &self.monitored
    }

    /// Whether an antenna is currently tuned to `ch` (reads from it need
    /// no retune delay).
    #[inline]
    fn is_monitored(&self, ch: u32) -> bool {
        if self.monitored.is_empty() {
            ch == self.channel
        } else {
            self.monitored.contains(&ch)
        }
    }

    /// Makes `ch` the actively decoded channel: free if an antenna is
    /// already tuned to it, otherwise a retune of the least-recently-used
    /// antenna (one switch).
    fn focus(&mut self, ch: u32) {
        if ch == self.channel {
            return;
        }
        if let Some(i) = self.monitored.iter().position(|&c| c == ch) {
            // Already tuned by another antenna: selecting its stream is
            // free, just refresh the recency order.
            self.monitored.remove(i);
        } else {
            self.switches += 1;
            if self.monitored.len() as u32 >= self.antennas {
                self.monitored.pop();
            }
        }
        self.monitored.insert(0, ch);
        self.channel = ch;
    }

    /// Flat cycle position of the packet about to air on the current
    /// channel — "where in the schema" the client is listening. Equal to
    /// [`Tuner::cycle_pos`] on a single channel.
    #[inline]
    pub fn flat_pos(&self) -> u64 {
        self.program.flat_at(self.channel, self.pos)
    }

    /// The packet about to air on the current channel (schema knowledge;
    /// reading it still costs a [`Tuner::read`]).
    #[inline]
    pub fn current_packet(&self) -> &'a P {
        self.program.packet_at(self.channel, self.pos)
    }

    /// The earliest instant at which the packet at flat schema position
    /// `flat_pos` can be **read** from here: its next airing on its
    /// channel, no earlier than a retune (if no antenna monitors that
    /// channel yet) allows.
    #[inline]
    pub fn arrival(&self, flat_pos: u64) -> u64 {
        self.arrival_from(self.pos, flat_pos)
    }

    /// [`Tuner::arrival`] from a hypothetical future instant `from`: the
    /// earliest the packet at `flat_pos` could be read if the client were
    /// free at `from`, charging the retune delay if no antenna currently
    /// monitors the target's channel. This is the costing primitive of
    /// [`Tuner::plan_earliest`]'s conflict model.
    #[inline]
    fn arrival_from(&self, from: u64, flat_pos: u64) -> u64 {
        let ready = if self.is_monitored(self.program.channel_of(flat_pos)) {
            from
        } else {
            from + self.program.switch_cost() as u64
        };
        self.program.next_occurrence_on(ready, flat_pos)
    }

    /// The batch arrival planner: the earliest-arriving position among
    /// `flats` and its arrival instant (ties go to the lowest index).
    /// Equals the minimum over per-position [`Tuner::arrival`] calls;
    /// `None` on an empty slice. This is how channel-aware clients pick
    /// their next read across candidate targets airing on parallel
    /// channels.
    #[inline]
    pub fn arrival_earliest(&self, flats: &[u64]) -> Option<(usize, u64)> {
        let mut best: Option<(usize, u64)> = None;
        for (i, &flat) in flats.iter().enumerate() {
            let t = self.arrival(flat);
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((i, t));
            }
        }
        best
    }

    /// The duration-aware batch planner: like [`Tuner::arrival_earliest`],
    /// but accounts for reads occupying the receiver. A read of candidate
    /// `i` holds the receiver for `dur(i)` packets, so blindly taking the
    /// earliest airing can trample the runner-up's airing and push it a
    /// full channel cycle out. When the runner-up airs before the
    /// leader's read completes, both orders are costed by the completion
    /// of the later read — the deferred read's re-occurrence charged
    /// exactly like [`Tuner::arrival`] (retune delay included when its
    /// channel is on no antenna) — and the cheaper order's first read
    /// wins. Arrivals are computed once per candidate; `dur` is only
    /// consulted for the top two. Ties go to the lowest index.
    pub fn plan_earliest(&self, flats: &[u64], dur: impl Fn(usize) -> u64) -> Option<(usize, u64)> {
        let mut best: Option<(usize, u64)> = None;
        let mut second: Option<(usize, u64)> = None;
        for (i, &flat) in flats.iter().enumerate() {
            let t = self.arrival(flat);
            if best.is_none_or(|(_, bt)| t < bt) {
                second = best;
                best = Some((i, t));
            } else if second.is_none_or(|(_, st)| t < st) {
                second = Some((i, t));
            }
        }
        let (x, t_x) = best?;
        if let Some((y, t_y)) = second {
            let dx = dur(x);
            if t_y < t_x + dx {
                let dy = dur(y);
                // The deferred read re-occurs under the same charging
                // rules as any other arrival: if its channel is
                // unmonitored, the retune delay applies. Costing it with
                // a bare `next_occurrence_on` (the pre-fix behaviour)
                // understated the deferred side by the switch cost, so a
                // large `switch_cost` could flip the decision the wrong
                // way.
                let y_after_x = self.arrival_from(t_x + dx, flats[y]) + dy;
                let x_after_y = self.arrival_from(t_y + dy, flats[x]) + dx;
                if x_after_y < y_after_x {
                    return Some((y, t_y));
                }
            }
        }
        Some((x, t_x))
    }

    /// Dozes (and re-tunes an antenna, if no antenna monitors the target's
    /// channel) to the arrival of flat schema position `flat_pos`,
    /// returning the instant reached; the next [`Tuner::read`] receives
    /// exactly that packet. Switch cost accrues as latency, never as
    /// tuning.
    #[inline]
    pub fn goto(&mut self, flat_pos: u64) -> u64 {
        let t = self.arrival(flat_pos);
        self.focus(self.program.channel_of(flat_pos));
        self.pos = t;
        t
    }

    /// Receives the packet at the current instant (active mode).
    ///
    /// Always advances time and accrues one packet of tuning; returns
    /// `Err(PacketLost)` if the link-error model corrupted the packet.
    #[inline]
    pub fn read(&mut self) -> Result<&'a P, PacketLost> {
        let packet = self.program.packet_at(self.channel, self.pos);
        if !self.access_counts.is_empty() {
            let flat = self.program.flat_at(self.channel, self.pos) as usize;
            self.access_counts[flat] += 1;
        }
        self.pos += 1;
        self.tuning += 1;
        if let Some(c) = self.tuning_by_channel.get_mut(self.channel as usize) {
            *c += 1;
        }
        let theta = self.loss.theta_for(packet.class());
        if theta > 0.0 && self.rng.gen_bool(theta) {
            Err(PacketLost)
        } else {
            Ok(packet)
        }
    }

    /// Switches to doze mode until absolute instant `abs` (latency accrues,
    /// tuning does not).
    ///
    /// # Panics
    ///
    /// Panics if `abs` is in the past — broadcast time is monotonic; use
    /// [`Program::next_occurrence`] to roll cycle positions forward.
    pub fn doze_to(&mut self, abs: u64) {
        assert!(
            abs >= self.pos,
            "cannot doze into the past: now {} target {abs}",
            self.pos
        );
        self.pos = abs;
    }

    /// Dozes (re-tuning if needed) to the next occurrence of flat cycle
    /// position `cycle_pos` and reads the packet there.
    pub fn read_at_cycle_pos(&mut self, cycle_pos: u64) -> Result<&'a P, PacketLost> {
        self.goto(cycle_pos);
        self.read()
    }

    /// Metrics accrued since tune-in.
    pub fn stats(&self) -> QueryStats {
        QueryStats {
            latency_packets: self.pos - self.start,
            tuning_packets: self.tuning,
            capacity: self.program.capacity(),
        }
    }

    /// Channel-aware metrics accrued since tune-in: switch count and
    /// per-channel tuning.
    pub fn channel_stats(&self) -> ChannelStats {
        ChannelStats {
            switches: self.switches,
            tuning_packets: if self.tuning_by_channel.is_empty() {
                vec![self.tuning]
            } else {
                self.tuning_by_channel.clone()
            },
            capacity: self.program.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::LossScope;
    use crate::program::PacketClass;

    #[derive(Debug, Clone, PartialEq)]
    enum P {
        Idx(u32),
        Hdr,
        Pay,
    }
    impl Payload for P {
        fn class(&self) -> PacketClass {
            match self {
                P::Idx(_) => PacketClass::Index,
                P::Hdr => PacketClass::ObjectHeader,
                P::Pay => PacketClass::ObjectPayload,
            }
        }
    }

    fn program() -> Program<P> {
        Program::new(
            64,
            vec![
                P::Idx(0),
                P::Hdr,
                P::Pay,
                P::Pay,
                P::Idx(1),
                P::Hdr,
                P::Pay,
                P::Pay,
            ],
        )
    }

    #[test]
    fn read_advances_and_accounts() {
        let prog = program();
        let mut t = Tuner::tune_in(&prog, 2, LossModel::None, 1);
        assert_eq!(t.read().unwrap(), &P::Pay);
        assert_eq!(t.read().unwrap(), &P::Pay);
        let s = t.stats();
        assert_eq!(s.latency_packets, 2);
        assert_eq!(s.tuning_packets, 2);
    }

    #[test]
    fn doze_costs_latency_only() {
        let prog = program();
        let mut t = Tuner::tune_in(&prog, 0, LossModel::None, 1);
        t.doze_to(6);
        assert_eq!(t.read().unwrap(), &P::Pay);
        let s = t.stats();
        assert_eq!(s.latency_packets, 7);
        assert_eq!(s.tuning_packets, 1);
    }

    #[test]
    fn read_at_cycle_pos_wraps() {
        let prog = program();
        let mut t = Tuner::tune_in(&prog, 5, LossModel::None, 1);
        // Position 4 is behind → next cycle (abs 12).
        assert_eq!(t.read_at_cycle_pos(4).unwrap(), &P::Idx(1));
        assert_eq!(t.pos(), 13);
        assert_eq!(t.stats().latency_packets, 8);
    }

    #[test]
    fn cycle_pos_is_the_listened_channels_slot() {
        use crate::channel::ChannelConfig;
        // Seven one-packet units striped over 3 channels: channel 0
        // carries flats {0,3,6} (3 slots), channel 2 carries {2,5} (2).
        let prog = Program::with_channels(
            64,
            (0..7).map(P::Idx).collect(),
            ChannelConfig::striped(3, 1),
        );
        let mut t = Tuner::tune_in(&prog, 7, LossModel::None, 1);
        assert_eq!(t.channel(), 0);
        // The listened channel's cycle is 3 packets, not the flat 7.
        assert_eq!(t.cycle_pos(), 7 % 3);
        assert_eq!(prog.flat_at(t.channel(), t.cycle_pos()), t.flat_pos());
        assert_ne!(t.cycle_pos(), t.pos() % prog.len(), "pre-fix value");
        t.goto(5);
        assert_eq!(t.channel(), 2);
        assert_eq!(t.pos(), 9);
        assert_eq!(t.cycle_pos(), 9 % prog.channel_len(2));
        assert_eq!(prog.flat_at(t.channel(), t.cycle_pos()), 5);
        assert_ne!(t.cycle_pos(), t.pos() % prog.len(), "pre-fix value");
    }

    #[test]
    fn plan_earliest_charges_retune_on_the_deferred_read() {
        use crate::channel::ChannelConfig;
        // Sixteen one-packet units blocked over 2 channels (flats 0..8 on
        // channel 0, 8..16 on channel 1), switch cost 6. From a fresh
        // client (monitoring channel 0 only): flat 14 airs at t = 6
        // (retune + slot 6), flat 7 at t = 7 — reading 14 first tramples
        // 7's airing. Deferring 14 costs a *second* retune; the pre-fix
        // costing ignored it (completion 16 < 17) and wrongly deferred
        // the leader, while the arrival-style charge (completion 24)
        // keeps it first.
        let prog = Program::with_channels(
            64,
            (0..16).map(P::Idx).collect(),
            ChannelConfig::blocked(2, 6),
        );
        let t = Tuner::tune_in(&prog, 0, LossModel::None, 1);
        assert_eq!(t.arrival(14), 6);
        assert_eq!(t.arrival(7), 7);
        assert_eq!(t.plan_earliest(&[14, 7], |_| 2), Some((0, 6)));
    }

    #[test]
    fn profiling_counts_reads_per_flat_position() {
        let prog = program();
        let mut t = Tuner::tune_in(&prog, 2, LossModel::None, 1);
        assert!(t.access_counts().is_empty(), "off by default");
        t.enable_profiling();
        let _ = t.read(); // flat 2
        let _ = t.read(); // flat 3
        t.goto(2);
        let _ = t.read(); // flat 2 again
        assert_eq!(t.access_counts(), &[0, 0, 2, 1, 0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "doze into the past")]
    fn dozing_backwards_panics() {
        let prog = program();
        let mut t = Tuner::tune_in(&prog, 5, LossModel::None, 1);
        t.doze_to(3);
    }

    #[test]
    fn loss_scope_spares_payload() {
        let prog = program();
        let loss = LossModel::Iid {
            theta: 0.999_999,
            scope: LossScope::IndexOnly,
        };
        let mut t = Tuner::tune_in(&prog, 0, loss, 42);
        // Index packet: virtually always lost.
        assert_eq!(t.read(), Err(PacketLost));
        // Header and payload packets: never lost under IndexOnly (object
        // records are assumed FEC-protected; see the loss module docs).
        assert_eq!(t.read().unwrap(), &P::Hdr);
        assert_eq!(t.read().unwrap(), &P::Pay);
        assert_eq!(t.read().unwrap(), &P::Pay);
        // Tuning counted losses too: the client listened.
        assert_eq!(t.stats().tuning_packets, 4);
    }

    #[test]
    fn deterministic_under_seed() {
        let prog = program();
        let loss = LossModel::iid(0.5);
        let run = |seed| {
            let mut t = Tuner::tune_in(&prog, 0, loss, seed);
            (0..16).map(|_| t.read().is_ok()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }
}
