//! Multi-channel broadcast scheduling.
//!
//! The paper's evaluation runs on a single broadcast channel; the standard
//! scaling lever for broadcast systems is to spread the cycle over `C`
//! parallel channels (cf. multichannel XML broadcast streams). This module
//! adds that dimension **without changing how schemes address content**:
//! index algorithms keep thinking in *flat* cycle positions (the
//! single-channel schema), and the channel layer maps every flat position
//! to a `(channel, per-channel slot)` pair. A [`crate::Tuner`] listens to
//! one channel at a time and pays a configurable switch cost (in packets
//! of latency) to move; per-channel tuning and switch counts surface in
//! [`ChannelStats`].
//!
//! Placement never splits an *indivisible unit* — a maximal packet run
//! beginning at a [`crate::Payload::unit_start`] packet (an index table,
//! a tree node, an object header plus its payload packets) — so the
//! sequential multi-packet reads of every scheme keep working: a unit's
//! packets occupy consecutive slots of one channel. All channels tick in
//! lockstep (one packet per channel per instant); each channel repeats its
//! own, possibly shorter, cycle.

/// A structural defect in a channel configuration or in the layout it
/// produces over a concrete cycle.
///
/// Every condition [`ChannelConfig::try_validate`],
/// [`crate::Program::try_with_channels`] and the layout builder check is
/// named here, so the static analyzer (`dsi-verify`) and the runtime share
/// one error vocabulary. The panicking constructors ([`crate::Program::new`],
/// [`crate::Program::with_channels`]) format these errors verbatim as their
/// panic messages.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayoutError {
    /// Packet capacity of zero — no payload can be framed.
    ZeroCapacity,
    /// An empty broadcast cycle — nothing to repeat.
    EmptyCycle,
    /// `channels == 0`.
    NoChannels,
    /// [`Placement::IndexData`] with `index_channels` outside `1..channels`.
    BadIndexSplit {
        /// The offending `index_channels` value.
        index_channels: u32,
        /// The configured channel count.
        channels: u32,
    },
    /// [`Placement::StripeFrames`] with a zero-frame block.
    ZeroFrameBlock,
    /// [`Placement::Explicit`] naming a channel `>= channels`.
    ExplicitOutOfRange {
        /// The configured channel count.
        channels: u32,
    },
    /// [`Placement::Explicit`] whose length differs from the cycle's unit
    /// count.
    ExplicitWrongLength {
        /// Entries in the assignment vector.
        got: usize,
        /// Units in the cycle.
        units: usize,
    },
    /// The cycle's first packet is not a unit start.
    CycleNotUnitAligned,
    /// The cycle's first packet is not a frame start (required by
    /// [`Placement::StripeFrames`]).
    CycleNotFrameAligned,
    /// Some channel received no units at all.
    EmptyChannel {
        /// The starved channel.
        channel: u32,
    },
    /// An [`Placement::Explicit`] assignment left a channel without any
    /// index unit while the cycle has index units: a client tuning into
    /// that channel can scan data packets forever without ever reading a
    /// pointer, so some tune-ins never terminate. Analytic placements
    /// cannot produce this (`IndexData` deliberately reserves data-only
    /// channels *and* a dedicated index cycle the client camps on), so the
    /// check applies to explicit maps only.
    StrandedChannel {
        /// The index-starved channel.
        channel: u32,
    },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::ZeroCapacity => write!(f, "packet capacity must be positive"),
            LayoutError::EmptyCycle => write!(f, "broadcast cycle must not be empty"),
            LayoutError::NoChannels => write!(f, "need at least one channel"),
            LayoutError::BadIndexSplit {
                index_channels,
                channels,
            } => write!(
                f,
                "index_channels must be in 1..channels, got {index_channels} of {channels}"
            ),
            LayoutError::ZeroFrameBlock => {
                write!(f, "StripeFrames needs at least one frame per block")
            }
            LayoutError::ExplicitOutOfRange { channels } => {
                write!(f, "explicit assignment names a channel >= {channels}")
            }
            LayoutError::ExplicitWrongLength { got, units } => write!(
                f,
                "explicit assignment covers {got} units but the cycle has {units}"
            ),
            LayoutError::CycleNotUnitAligned => write!(f, "cycle must begin at a unit boundary"),
            LayoutError::CycleNotFrameAligned => write!(f, "cycle must begin at a frame boundary"),
            LayoutError::EmptyChannel { channel } => write!(
                f,
                "channel {channel} received no units; use fewer channels or another placement"
            ),
            LayoutError::StrandedChannel { channel } => write!(
                f,
                "channel {channel} received no index unit; an explicit placement must give \
                 every channel index access or some tune-ins can never terminate"
            ),
        }
    }
}

impl std::error::Error for LayoutError {}

/// How the flat cycle's units are assigned to channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Each channel carries one contiguous arc of the flat cycle (arcs
    /// balanced by packet count, split only at unit boundaries). Adjacent
    /// units stay adjacent on one channel, so sequential frame scans keep
    /// their locality while every channel's cycle shortens roughly
    /// `C`-fold — the placement that actually lowers access latency.
    Blocked,
    /// Units round-robin over all channels, preserving their relative
    /// order within each channel. Maximally uniform load, but consecutive
    /// units land on *parallel* channels: a client scanning a frame
    /// serially misses each next unit's concurrent airing and waits a full
    /// per-channel cycle for it, so sequential-scan-heavy schemes pay
    /// dearly (measured in the `channels` experiment).
    Stripe,
    /// *Frames* round-robin over all channels in blocks of the given
    /// number of frames (a frame is a maximal unit run beginning at a
    /// [`crate::Payload::frame_start`] packet — a DSI index table plus its
    /// objects, an R-tree segment). Units of one frame stay consecutive on
    /// one channel, so the serial frame scans that unit-granular
    /// [`Placement::Stripe`] penalizes keep their intra-frame locality,
    /// while load still spreads uniformly at frame granularity.
    StripeFrames(u32),
    /// Dedicated index channels: units starting with a
    /// [`crate::PacketClass::Index`] packet round-robin over channels
    /// `0..index_channels`, object units over the remaining channels. A
    /// client can camp on a short index cycle and hop to a data channel
    /// only to retrieve records.
    IndexData {
        /// Number of leading channels reserved for index units (must be
        /// `>= 1` and `< channels`; the split needs at least two channels
        /// to mean anything, so `IndexData` rejects `channels == 1`).
        index_channels: u32,
    },
    /// An arbitrary, fully materialized unit→channel assignment: entry
    /// `u` names the channel of the `u`-th unit of the flat cycle (units
    /// in flat order). This is the output format of the workload-aware
    /// placement optimizer ([`crate::optimize`]); every analytic policy
    /// above is expressible as an `Explicit` vector. Units keep their
    /// flat relative order within each channel, so intra-channel
    /// adjacency (and with it serial-scan locality) is controlled purely
    /// by the assignment.
    ///
    /// The layout builder rejects (see [`LayoutError`]) a vector whose
    /// length differs from the cycle's unit count, an entry naming a
    /// channel `>= channels`, a channel receiving no unit, and — when the
    /// cycle has index units — a channel receiving no *index* unit.
    Explicit(Vec<u32>),
}

/// Channel count, placement policy and switch cost of a broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelConfig {
    /// Number of parallel channels `C >= 1`.
    pub channels: u32,
    /// Unit-to-channel assignment policy (ignored when `channels == 1`).
    pub placement: Placement,
    /// Latency cost, in packets, of re-tuning to another channel. While
    /// switching the client listens to nothing: the earliest packet it can
    /// read on the target channel airs `switch_cost` instants later.
    pub switch_cost: u32,
}

impl ChannelConfig {
    /// The classic single-channel broadcast (the paper's setting).
    pub fn single() -> Self {
        Self {
            channels: 1,
            placement: Placement::Blocked,
            switch_cost: 0,
        }
    }

    /// `channels` block-contiguous channels at a given switch cost.
    pub fn blocked(channels: u32, switch_cost: u32) -> Self {
        Self {
            channels,
            placement: Placement::Blocked,
            switch_cost,
        }
    }

    /// `channels` round-robin-striped channels at a given switch cost.
    pub fn striped(channels: u32, switch_cost: u32) -> Self {
        Self {
            channels,
            placement: Placement::Stripe,
            switch_cost,
        }
    }

    /// `channels` frame-granular striped channels (one frame per block) at
    /// a given switch cost.
    pub fn striped_frames(channels: u32, switch_cost: u32) -> Self {
        Self {
            channels,
            placement: Placement::StripeFrames(1),
            switch_cost,
        }
    }

    /// An index/data split: `index_channels` channels carry index units,
    /// the rest carry object units.
    pub fn index_data(channels: u32, index_channels: u32, switch_cost: u32) -> Self {
        Self {
            channels,
            placement: Placement::IndexData { index_channels },
            switch_cost,
        }
    }

    /// Checks the configuration's internal consistency, returning the
    /// first [`LayoutError`] found. Placement parameters are range-checked
    /// even when `channels == 1` (where the placement is otherwise
    /// ignored): a `StripeFrames(0)` or an out-of-range `IndexData` is a
    /// malformed configuration regardless of the channel count, and
    /// letting it validate silently masks bugs the moment the channel
    /// count is raised.
    pub fn try_validate(&self) -> Result<(), LayoutError> {
        if self.channels < 1 {
            return Err(LayoutError::NoChannels);
        }
        match &self.placement {
            Placement::IndexData { index_channels } => {
                if !(*index_channels >= 1 && *index_channels < self.channels) {
                    return Err(LayoutError::BadIndexSplit {
                        index_channels: *index_channels,
                        channels: self.channels,
                    });
                }
            }
            Placement::StripeFrames(g) => {
                if *g < 1 {
                    return Err(LayoutError::ZeroFrameBlock);
                }
            }
            Placement::Explicit(assignment) => {
                if !assignment.iter().all(|&c| c < self.channels) {
                    return Err(LayoutError::ExplicitOutOfRange {
                        channels: self.channels,
                    });
                }
            }
            Placement::Blocked | Placement::Stripe => {}
        }
        Ok(())
    }

    /// Panicking [`ChannelConfig::try_validate`], kept for the tests that
    /// pin the legacy panic messages.
    #[cfg(test)]
    pub(crate) fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        Self::single()
    }
}

/// The materialized unit-to-channel assignment of one broadcast cycle.
/// Only built for `C > 1`; the single-channel case stays map-free (flat
/// position == channel position).
#[derive(Debug, Clone)]
pub(crate) struct ChannelLayout {
    /// Flat position → channel.
    pub(crate) chan_of: Vec<u32>,
    /// Flat position → slot within its channel's cycle.
    pub(crate) chan_pos: Vec<u64>,
    /// Channel → slot → flat position (each channel's own cycle).
    pub(crate) by_channel: Vec<Vec<u32>>,
    /// Whether the layout came from a [`Placement::Explicit`] map — the
    /// one placement whose termination guarantee rests on the checked
    /// per-channel index coverage rather than on construction.
    pub(crate) explicit: bool,
}

impl ChannelLayout {
    /// Assigns units (maximal runs starting at `unit_starts[i] == true`)
    /// to channels. `is_index[i]` classifies the unit *starting* at `i`
    /// (only read at unit starts); `frame_starts[i]` marks units that
    /// begin a *frame* (only read at unit starts, and only by
    /// [`Placement::StripeFrames`]).
    /// Panicking [`ChannelLayout::try_build`], kept for the tests that
    /// pin the legacy panic messages.
    #[cfg(test)]
    pub(crate) fn build(
        cfg: &ChannelConfig,
        unit_starts: &[bool],
        is_index: &[bool],
        frame_starts: &[bool],
    ) -> Self {
        match Self::try_build(cfg, unit_starts, is_index, frame_starts) {
            Ok(l) => l,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds the layout, returning the first structural defect as a
    /// [`LayoutError`].
    pub(crate) fn try_build(
        cfg: &ChannelConfig,
        unit_starts: &[bool],
        is_index: &[bool],
        frame_starts: &[bool],
    ) -> Result<Self, LayoutError> {
        cfg.try_validate()?;
        let n = unit_starts.len();
        if !unit_starts.first().copied().unwrap_or(false) {
            return Err(LayoutError::CycleNotUnitAligned);
        }
        if matches!(cfg.placement, Placement::StripeFrames(_))
            && !frame_starts.first().copied().unwrap_or(false)
        {
            return Err(LayoutError::CycleNotFrameAligned);
        }
        if let Placement::Explicit(assignment) = &cfg.placement {
            let units = unit_starts.iter().filter(|&&s| s).count();
            if assignment.len() != units {
                return Err(LayoutError::ExplicitWrongLength {
                    got: assignment.len(),
                    units,
                });
            }
        }
        let c = cfg.channels as usize;
        let mut chan_of = vec![0u32; n];
        let mut chan_pos = vec![0u64; n];
        let mut by_channel: Vec<Vec<u32>> = vec![Vec::new(); c];
        // Independent round-robin cursors per unit class.
        let mut next_index_chan = 0usize;
        let mut next_data_chan = 0usize;
        // Frames seen so far (StripeFrames counts them as units stream by).
        let mut frames_seen = 0u64;
        // Units seen so far (Explicit assignments index by unit ordinal).
        let mut units_seen = 0usize;
        let mut i = 0usize;
        while i < n {
            let mut end = i + 1;
            while end < n && !unit_starts[end] {
                end += 1;
            }
            if frame_starts[i] {
                frames_seen += 1;
            }
            let ch = match &cfg.placement {
                Placement::Blocked => {
                    // Arc boundaries at multiples of n/C packets: a unit
                    // belongs to the arc its first packet falls into.
                    (i * c) / n
                }
                Placement::Stripe => {
                    let ch = next_data_chan;
                    next_data_chan = (next_data_chan + 1) % c;
                    ch
                }
                Placement::StripeFrames(g) => {
                    // All units of a frame share its channel; the channel
                    // advances once per `g` frames (`g >= 1` is enforced
                    // by `validate`).
                    (((frames_seen - 1) / *g as u64) % c as u64) as usize
                }
                Placement::IndexData { index_channels } => {
                    let ic = *index_channels as usize;
                    if is_index[i] {
                        let ch = next_index_chan;
                        next_index_chan = (next_index_chan + 1) % ic;
                        ch
                    } else {
                        let ch = ic + next_data_chan;
                        next_data_chan = (next_data_chan + 1) % (c - ic);
                        ch
                    }
                }
                Placement::Explicit(assignment) => assignment[units_seen] as usize,
            };
            units_seen += 1;
            for (p, chan_slot) in chan_of
                .iter_mut()
                .zip(chan_pos.iter_mut())
                .take(end)
                .skip(i)
            {
                *p = ch as u32;
                *chan_slot = by_channel[ch].len() as u64;
                by_channel[ch].push(0); // placeholder, fixed below
            }
            let base = by_channel[ch].len() - (end - i);
            for (off, slot) in by_channel[ch][base..].iter_mut().enumerate() {
                *slot = (i + off) as u32;
            }
            i = end;
        }
        for (ch, slots) in by_channel.iter().enumerate() {
            if slots.is_empty() {
                return Err(LayoutError::EmptyChannel { channel: ch as u32 });
            }
        }
        // An explicit map can strand a channel without index access: a
        // client tuned there sees only data packets and has no pointer to
        // follow, so (unlike every analytic placement) termination is no
        // longer guaranteed from all tune-in points. Reject it here rather
        // than let the broadcast build and livelock clients at runtime.
        // Cycles without any index units (pure-data broadcasts, as in some
        // scheduler tests) are exempt: there is no index to navigate.
        if matches!(cfg.placement, Placement::Explicit(_))
            && (0..n).any(|i| unit_starts[i] && is_index[i])
        {
            for (ch, slots) in by_channel.iter().enumerate() {
                let has_index = slots
                    .iter()
                    .any(|&p| unit_starts[p as usize] && is_index[p as usize]);
                if !has_index {
                    return Err(LayoutError::StrandedChannel { channel: ch as u32 });
                }
            }
        }
        Ok(Self {
            chan_of,
            chan_pos,
            by_channel,
            explicit: matches!(cfg.placement, Placement::Explicit(_)),
        })
    }
}

/// The client's receiver hardware: how many channels it can monitor
/// concurrently.
///
/// With `antennas = k` the [`crate::Tuner`] keeps up to `k` channels tuned
/// at once: content on any monitored channel is readable without a retune
/// delay, and [`crate::Tuner::goto`]/[`crate::Tuner::arrival`] pick the
/// earliest airing across the monitored set. Retuning an antenna to a new
/// channel costs [`ChannelConfig::switch_cost`] packets of latency and
/// counts one switch in [`ChannelStats`]; moving attention between
/// already-tuned antennas is free. `antennas = 1` is the classic
/// single-receiver client and reproduces its accounting bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AntennaConfig {
    /// Number of concurrently tunable receivers, `>= 1`. Capped at the
    /// program's channel count (extra antennas are idle).
    pub antennas: u32,
    /// Loss-resilience policy (burst detection, loss-aware retune,
    /// livelock guard). The default reproduces classic behaviour on
    /// lossless channels bit-for-bit and only engages under observed
    /// bursts.
    pub resilience: Resilience,
}

impl AntennaConfig {
    /// The classic single-receiver client.
    pub fn single() -> Self {
        Self {
            antennas: 1,
            resilience: Resilience::default(),
        }
    }

    /// A client with `antennas` receivers.
    ///
    /// # Panics
    ///
    /// Panics if `antennas` is zero.
    pub fn new(antennas: u32) -> Self {
        assert!(antennas >= 1, "a client needs at least one antenna");
        Self {
            antennas,
            resilience: Resilience::default(),
        }
    }

    /// Replaces the resilience policy.
    pub fn with_resilience(mut self, resilience: Resilience) -> Self {
        self.resilience = resilience;
        self
    }

    /// Disables loss-aware retuning (the wait-out-the-fade ablation
    /// client: bursts are ridden out at the next occurrence, as a k = 1
    /// client must).
    pub fn without_loss_retune(mut self) -> Self {
        self.resilience.loss_retune = false;
        self
    }
}

impl Default for AntennaConfig {
    fn default() -> Self {
        Self::single()
    }
}

/// The client's loss-resilience policy.
///
/// Burst detection counts consecutive [`crate::PacketLost`] reads; once a
/// burst reaches `burst_threshold`, a multi-antenna client's resilient
/// planners (`Tuner::plan_resilient` / `Tuner::earliest_resilient`) bias
/// the next read away from the fading channel onto another monitored
/// channel instead of waiting out the fade. A k = 1 client (or a
/// single-channel program) always falls back to plain next-occurrence
/// retries, with the retry accounting capped by the livelock guard:
/// `retry_cap` consecutive losses abort the query with a diagnostic panic
/// rather than spinning forever on a schedule that never frees the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resilience {
    /// Whether a k ≥ 2 client re-plans reads off a fading channel.
    pub loss_retune: bool,
    /// Consecutive lost reads before a burst is declared.
    pub burst_threshold: u32,
    /// Consecutive lost reads before the livelock guard aborts the query.
    pub retry_cap: u32,
}

impl Default for Resilience {
    fn default() -> Self {
        Self {
            loss_retune: true,
            burst_threshold: 2,
            retry_cap: 512,
        }
    }
}

/// Channel-aware metrics of one query: how often the client re-tuned and
/// how much it listened to each channel. Complements [`crate::QueryStats`]
/// (which aggregates over channels).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Number of channel switches performed.
    pub switches: u64,
    /// Packets actively received per channel (length = channel count).
    pub tuning_packets: Vec<u64>,
    /// Packet capacity, for byte conversion.
    pub capacity: u32,
    /// Channel switches forced by loss bursts: times the resilient
    /// planner deviated from the loss-blind pick to dodge a fading
    /// channel. Zero on lossless channels and for k = 1 clients.
    pub loss_retunes: u64,
}

impl ChannelStats {
    /// Tuning time spent on channel `c`, in bytes.
    pub fn tuning_bytes(&self, c: usize) -> u64 {
        self.tuning_packets.get(c).copied().unwrap_or(0) * self.capacity as u64
    }

    /// Total tuning across channels, in bytes.
    pub fn total_tuning_bytes(&self) -> u64 {
        self.tuning_packets.iter().sum::<u64>() * self.capacity as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn starts(pattern: &[(bool, bool)]) -> (Vec<bool>, Vec<bool>) {
        (
            pattern.iter().map(|&(s, _)| s).collect(),
            pattern.iter().map(|&(_, i)| i).collect(),
        )
    }

    #[test]
    fn stripe_keeps_units_contiguous() {
        // Units: [0,1], [2], [3,4,5], [6].
        let (us, ix) = starts(&[
            (true, true),
            (false, true),
            (true, false),
            (true, false),
            (false, false),
            (false, false),
            (true, true),
        ]);
        let l = ChannelLayout::build(&ChannelConfig::striped(2, 1), &us, &ix, &us);
        // Units round-robin: ch0 gets [0,1] and [3,4,5]; ch1 gets [2], [6].
        assert_eq!(l.chan_of, vec![0, 0, 1, 0, 0, 0, 1]);
        assert_eq!(l.by_channel[0], vec![0, 1, 3, 4, 5]);
        assert_eq!(l.by_channel[1], vec![2, 6]);
        // Per-channel slots are consecutive within a unit.
        assert_eq!(l.chan_pos[3], 2);
        assert_eq!(l.chan_pos[4], 3);
        assert_eq!(l.chan_pos[5], 4);
    }

    #[test]
    fn blocked_assigns_contiguous_arcs() {
        // Six one-packet units over three channels: two per arc.
        let (us, ix) = starts(&[(true, false); 6]);
        let l = ChannelLayout::build(&ChannelConfig::blocked(3, 0), &us, &ix, &us);
        assert_eq!(l.chan_of, vec![0, 0, 1, 1, 2, 2]);
        assert_eq!(l.by_channel[1], vec![2, 3]);
        // A unit straddling an arc boundary stays whole on the arc of its
        // first packet.
        let (us, ix) = starts(&[
            (true, false),
            (true, false),
            (false, false),
            (false, false),
            (true, false),
            (true, false),
        ]);
        let l = ChannelLayout::build(&ChannelConfig::blocked(2, 0), &us, &ix, &us);
        assert_eq!(l.chan_of, vec![0, 0, 0, 0, 1, 1]);
    }

    #[test]
    fn index_data_separates_classes() {
        let (us, ix) = starts(&[
            (true, true),
            (true, false),
            (false, false),
            (true, true),
            (true, false),
        ]);
        let l = ChannelLayout::build(&ChannelConfig::index_data(3, 1, 2), &us, &ix, &us);
        // Index units on channel 0, data units round-robin on 1 and 2.
        assert_eq!(l.chan_of, vec![0, 1, 1, 0, 2]);
        assert_eq!(l.by_channel[0], vec![0, 3]);
        assert_eq!(l.by_channel[1], vec![1, 2]);
        assert_eq!(l.by_channel[2], vec![4]);
    }

    #[test]
    fn stripe_frames_keeps_frames_contiguous() {
        // Two-unit frames: [0,1][2,3], [4][5], [6,7][8].
        let us = vec![true, false, true, false, true, true, true, false, true];
        let ix = vec![false; 9];
        let fs = vec![true, false, false, false, true, false, true, false, false];
        let l = ChannelLayout::build(
            &ChannelConfig {
                channels: 2,
                placement: Placement::StripeFrames(1),
                switch_cost: 1,
            },
            &us,
            &ix,
            &fs,
        );
        // Frames round-robin: ch0 gets frames 0 and 2, ch1 gets frame 1.
        assert_eq!(l.chan_of, vec![0, 0, 0, 0, 1, 1, 0, 0, 0]);
        assert_eq!(l.by_channel[0], vec![0, 1, 2, 3, 6, 7, 8]);
        assert_eq!(l.by_channel[1], vec![4, 5]);
        // Two frames per block: frames 0 and 1 on ch0, frame 2 on ch1.
        let l = ChannelLayout::build(
            &ChannelConfig {
                channels: 2,
                placement: Placement::StripeFrames(2),
                switch_cost: 1,
            },
            &us,
            &ix,
            &fs,
        );
        assert_eq!(l.chan_of, vec![0, 0, 0, 0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn explicit_assignment_places_units_verbatim() {
        // Units: [0,1], [2], [3,4,5], [6] → channels 1, 0, 1, 0.
        let (us, ix) = starts(&[
            (true, false),
            (false, false),
            (true, false),
            (true, false),
            (false, false),
            (false, false),
            (true, false),
        ]);
        let cfg = ChannelConfig {
            channels: 2,
            placement: Placement::Explicit(vec![1, 0, 1, 0]),
            switch_cost: 1,
        };
        let l = ChannelLayout::build(&cfg, &us, &ix, &us);
        assert_eq!(l.chan_of, vec![1, 1, 0, 1, 1, 1, 0]);
        // Flat order is preserved within each channel; units stay whole.
        assert_eq!(l.by_channel[0], vec![2, 6]);
        assert_eq!(l.by_channel[1], vec![0, 1, 3, 4, 5]);
        assert_eq!(l.chan_pos[4], 3);
    }

    #[test]
    #[should_panic(expected = "explicit assignment covers")]
    fn explicit_assignment_must_cover_every_unit() {
        let (us, ix) = starts(&[(true, false), (true, false), (true, false)]);
        let cfg = ChannelConfig {
            channels: 2,
            placement: Placement::Explicit(vec![0, 1]),
            switch_cost: 0,
        };
        let _ = ChannelLayout::build(&cfg, &us, &ix, &us);
    }

    #[test]
    #[should_panic(expected = "names a channel >= 2")]
    fn explicit_assignment_rejects_out_of_range_channel() {
        ChannelConfig {
            channels: 2,
            placement: Placement::Explicit(vec![0, 2]),
            switch_cost: 0,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least one frame per block")]
    fn stripe_frames_zero_is_rejected_even_on_one_channel() {
        // Placement parameters are checked regardless of the channel
        // count; before the fix `channels == 1` skipped them entirely.
        ChannelConfig {
            channels: 1,
            placement: Placement::StripeFrames(0),
            switch_cost: 0,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "index_channels must be in")]
    fn index_data_is_rejected_on_one_channel() {
        // An index/data split needs at least two channels; `channels ==
        // 1` used to validate silently.
        ChannelConfig {
            channels: 1,
            placement: Placement::IndexData { index_channels: 1 },
            switch_cost: 0,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "received no units")]
    fn starving_a_channel_is_rejected() {
        let (us, ix) = starts(&[(true, true), (false, true)]);
        let _ = ChannelLayout::build(&ChannelConfig::striped(2, 0), &us, &ix, &us);
    }

    #[test]
    #[should_panic(expected = "index_channels must be in")]
    fn bad_split_is_rejected() {
        let (us, ix) = starts(&[(true, true), (true, false)]);
        let _ = ChannelLayout::build(&ChannelConfig::index_data(2, 2, 0), &us, &ix, &us);
    }

    #[test]
    fn explicit_assignment_must_give_every_channel_an_index_unit() {
        // Units: index [0], index [1], data [2] → packing both index units
        // onto channel 0 leaves channel 1 data-only, so a client tuning in
        // there never reads a pointer. Regression test for the `Explicit`
        // stranding gap: this used to build.
        let (us, ix) = starts(&[(true, true), (true, true), (true, false)]);
        let cfg = ChannelConfig {
            channels: 2,
            placement: Placement::Explicit(vec![0, 0, 1]),
            switch_cost: 0,
        };
        let err = ChannelLayout::try_build(&cfg, &us, &ix, &us).unwrap_err();
        assert_eq!(err, LayoutError::StrandedChannel { channel: 1 });
        // Spreading the index units over both channels clears the error.
        let cfg = ChannelConfig {
            channels: 2,
            placement: Placement::Explicit(vec![0, 1, 1]),
            switch_cost: 0,
        };
        assert!(ChannelLayout::try_build(&cfg, &us, &ix, &us).is_ok());
        // A pure-data cycle is exempt: there is no index to strand.
        let (us, ix) = starts(&[(true, false), (true, false), (true, false)]);
        let cfg = ChannelConfig {
            channels: 2,
            placement: Placement::Explicit(vec![0, 0, 1]),
            switch_cost: 0,
        };
        assert!(ChannelLayout::try_build(&cfg, &us, &ix, &us).is_ok());
    }

    #[test]
    #[should_panic(expected = "received no index unit")]
    fn stranded_explicit_channel_panics_through_build() {
        let (us, ix) = starts(&[(true, true), (true, false)]);
        let cfg = ChannelConfig {
            channels: 2,
            placement: Placement::Explicit(vec![0, 1]),
            switch_cost: 0,
        };
        let _ = ChannelLayout::build(&cfg, &us, &ix, &us);
    }

    #[test]
    fn layout_errors_format_their_invariant() {
        // The `Display` strings are the panic messages of the legacy
        // constructors; tests elsewhere match on these substrings.
        assert_eq!(
            LayoutError::NoChannels.to_string(),
            "need at least one channel"
        );
        assert!(LayoutError::EmptyChannel { channel: 3 }
            .to_string()
            .contains("channel 3 received no units"));
        assert!(LayoutError::ExplicitWrongLength { got: 2, units: 5 }
            .to_string()
            .contains("covers 2 units but the cycle has 5"));
    }
}
