//! Access latency and tuning time accounting.

/// The two performance metrics of the paper (§2.1), in packets, convertible
/// to bytes via the packet capacity they were measured under — plus the
/// robustness counters of the resilience layer (zero on lossless runs, so
/// classic accounting is unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Packets elapsed from the moment the query was issued until it was
    /// satisfied (active *and* doze time).
    pub latency_packets: u64,
    /// Packets the client actively received.
    pub tuning_packets: u64,
    /// Capacity the program was built with, for byte conversion.
    pub capacity: u32,
    /// Reads corrupted by the link-error model (each forces a retry).
    pub lost_packets: u64,
    /// Longest loss stall in packets: the widest span of broadcast time
    /// from the first lost read of a burst to the end of its last
    /// consecutive lost read (retry waits included).
    pub longest_stall_packets: u64,
    /// Channel retunes forced by loss bursts (see
    /// [`crate::ChannelStats::loss_retunes`]).
    pub loss_retunes: u64,
}

impl QueryStats {
    /// Access latency in bytes.
    #[inline]
    pub fn latency_bytes(&self) -> u64 {
        self.latency_packets * self.capacity as u64
    }

    /// Tuning time in bytes.
    #[inline]
    pub fn tuning_bytes(&self) -> u64 {
        self.tuning_packets * self.capacity as u64
    }
}

/// Running mean of query stats over a workload, reported in bytes.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanStats {
    latency_sum: f64,
    tuning_sum: f64,
    n: u64,
}

impl MeanStats {
    /// Adds one query's stats.
    pub fn push(&mut self, s: QueryStats) {
        self.latency_sum += s.latency_bytes() as f64;
        self.tuning_sum += s.tuning_bytes() as f64;
        self.n += 1;
    }

    /// Mean access latency in bytes (0 if no samples).
    pub fn latency_bytes(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.latency_sum / self.n as f64
        }
    }

    /// Mean tuning time in bytes (0 if no samples).
    pub fn tuning_bytes(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.tuning_sum / self.n as f64
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }
}

/// Exact sample distribution of one population-level metric (packet
/// counts), built by the fleet engine for its p50/p95/p99 reporting.
/// Samples are stored verbatim (a million clients is 8 MB — fine), so
/// percentiles are exact nearest-rank values rather than sketch
/// estimates, and merging partial distributions is a concatenation —
/// which keeps fleet aggregation independent of worker count.
#[derive(Debug, Clone, Default)]
pub struct Distribution {
    samples: Vec<u64>,
    sorted: bool,
}

/// Point summary of a [`Distribution`]: mean, nearest-rank percentiles,
/// and the maximum. All zeros for an empty distribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DistSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile (nearest-rank).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

impl Distribution {
    /// An empty distribution expecting about `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        Distribution {
            samples: Vec::with_capacity(n),
            sorted: false,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, sample: u64) {
        self.samples.push(sample);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples were pushed.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The nearest-rank `q`-quantile (`q` in `[0, 1]`); 0 when empty.
    pub fn quantile(&mut self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        self.samples[rank - 1]
    }

    /// Mean, p50/p95/p99 and max in one pass.
    pub fn summary(&mut self) -> DistSummary {
        if self.samples.is_empty() {
            return DistSummary::default();
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        DistSummary {
            mean: sum as f64 / self.samples.len() as f64,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: *self.samples.last().expect("non-empty after sort"),
        }
    }
}

impl Extend<u64> for Distribution {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        self.samples.extend(iter);
        self.sorted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_conversion() {
        let s = QueryStats {
            latency_packets: 100,
            tuning_packets: 7,
            capacity: 64,
            ..QueryStats::default()
        };
        assert_eq!(s.latency_bytes(), 6400);
        assert_eq!(s.tuning_bytes(), 448);
    }

    #[test]
    fn mean_accumulates() {
        let mut m = MeanStats::default();
        assert_eq!(m.latency_bytes(), 0.0);
        m.push(QueryStats {
            latency_packets: 10,
            tuning_packets: 2,
            capacity: 32,
            ..QueryStats::default()
        });
        m.push(QueryStats {
            latency_packets: 30,
            tuning_packets: 4,
            capacity: 32,
            ..QueryStats::default()
        });
        assert_eq!(m.count(), 2);
        assert_eq!(m.latency_bytes(), 640.0);
        assert_eq!(m.tuning_bytes(), 96.0);
    }

    #[test]
    fn distribution_percentiles_are_nearest_rank() {
        let mut d = Distribution::with_capacity(100);
        // 100..1 pushed unsorted.
        d.extend((1..=100u64).rev());
        assert_eq!(d.len(), 100);
        let s = d.summary();
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        // Push after summary re-sorts lazily.
        d.push(1000);
        assert_eq!(d.quantile(1.0), 1000);
    }

    #[test]
    fn empty_distribution_is_all_zero() {
        let mut d = Distribution::default();
        assert!(d.is_empty());
        assert_eq!(d.summary(), DistSummary::default());
    }
}
