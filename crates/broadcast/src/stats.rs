//! Access latency and tuning time accounting.

/// The two performance metrics of the paper (§2.1), in packets, convertible
/// to bytes via the packet capacity they were measured under — plus the
/// robustness counters of the resilience layer (zero on lossless runs, so
/// classic accounting is unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Packets elapsed from the moment the query was issued until it was
    /// satisfied (active *and* doze time).
    pub latency_packets: u64,
    /// Packets the client actively received.
    pub tuning_packets: u64,
    /// Capacity the program was built with, for byte conversion.
    pub capacity: u32,
    /// Reads corrupted by the link-error model (each forces a retry).
    pub lost_packets: u64,
    /// Longest loss stall in packets: the widest span of broadcast time
    /// from the first lost read of a burst to the end of its last
    /// consecutive lost read (retry waits included).
    pub longest_stall_packets: u64,
    /// Channel retunes forced by loss bursts (see
    /// [`crate::ChannelStats::loss_retunes`]).
    pub loss_retunes: u64,
}

impl QueryStats {
    /// Access latency in bytes.
    #[inline]
    pub fn latency_bytes(&self) -> u64 {
        self.latency_packets * self.capacity as u64
    }

    /// Tuning time in bytes.
    #[inline]
    pub fn tuning_bytes(&self) -> u64 {
        self.tuning_packets * self.capacity as u64
    }
}

/// Running mean of query stats over a workload, reported in bytes.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanStats {
    latency_sum: f64,
    tuning_sum: f64,
    n: u64,
}

impl MeanStats {
    /// Adds one query's stats.
    pub fn push(&mut self, s: QueryStats) {
        self.latency_sum += s.latency_bytes() as f64;
        self.tuning_sum += s.tuning_bytes() as f64;
        self.n += 1;
    }

    /// Mean access latency in bytes (0 if no samples).
    pub fn latency_bytes(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.latency_sum / self.n as f64
        }
    }

    /// Mean tuning time in bytes (0 if no samples).
    pub fn tuning_bytes(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.tuning_sum / self.n as f64
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_conversion() {
        let s = QueryStats {
            latency_packets: 100,
            tuning_packets: 7,
            capacity: 64,
            ..QueryStats::default()
        };
        assert_eq!(s.latency_bytes(), 6400);
        assert_eq!(s.tuning_bytes(), 448);
    }

    #[test]
    fn mean_accumulates() {
        let mut m = MeanStats::default();
        assert_eq!(m.latency_bytes(), 0.0);
        m.push(QueryStats {
            latency_packets: 10,
            tuning_packets: 2,
            capacity: 32,
            ..QueryStats::default()
        });
        m.push(QueryStats {
            latency_packets: 30,
            tuning_packets: 4,
            capacity: 32,
            ..QueryStats::default()
        });
        assert_eq!(m.count(), 2);
        assert_eq!(m.latency_bytes(), 640.0);
        assert_eq!(m.tuning_bytes(), 96.0);
    }
}
