//! The unified air-scheme layer.
//!
//! Every air index in this workspace (DSI, the STR R-tree, the HCI
//! B+-tree) is, from the harness's point of view, the same thing: a built
//! broadcast [`Program`] plus on-air window and kNN search algorithms that
//! drive a [`Tuner`]. [`AirScheme`] captures exactly that surface, and
//! [`drive`] is the one query loop every experiment goes through — it owns
//! tune-in, loss, and stats collection, so schemes never reimplement the
//! Tuner/loss/stats plumbing and new scenarios (channel configurations,
//! loss models, workloads) are wired once instead of per index.
//!
//! [`DynScheme`] erases the scheme's packet type so heterogeneous schemes
//! can sit in one collection (`Box<dyn DynScheme>`): the experiment matrix
//! of `dsi-sim` iterates scheme × channel-config × loss × workload over
//! it from a single code path.

use dsi_geom::{Point, Rect};

use crate::channel::{AntennaConfig, ChannelStats};
use crate::loss::{FaultTrace, LossModel};
use crate::program::{Payload, Program};
use crate::stats::QueryStats;
use crate::tuner::Tuner;

/// A built air index: a broadcast program plus its on-air query
/// algorithms. Implementations answer exactly (ids ascending, validated
/// against brute force by the harness) and accrue all metrics on the
/// tuner they are handed.
pub trait AirScheme {
    /// The scheme's packet type.
    type Packet: Payload;

    /// The broadcast program clients tune into.
    fn program(&self) -> &Program<Self::Packet>;

    /// Answers a window query on the air: ids of all objects inside
    /// `window`, ascending.
    fn window(&self, tuner: &mut Tuner<'_, Self::Packet>, window: &Rect) -> Vec<u32>;

    /// Answers a kNN query on the air: ids of the `k` objects nearest to
    /// `q` (ties by id), ascending.
    fn knn(&self, tuner: &mut Tuner<'_, Self::Packet>, q: Point, k: usize) -> Vec<u32>;

    /// The **cohort-coalescing anchor** of a tune-in at `start`: the
    /// absolute instant of the client's first scheme-defined action (DSI:
    /// the next frame boundary; the tree schemes: the next airing of a
    /// root copy), or `None` when no sound anchor exists.
    ///
    /// The contract backing the fleet engine's deduplication
    /// (`dsi_sim::fleet`): under [`LossModel::None`] on a
    /// **single-channel** program, two clients tuning in at `a` and `b`
    /// with `tune_anchor(a) == tune_anchor(b) != None` and running the
    /// same query traverse the *identical* absolute trajectory after the
    /// anchor — same reads, same answer, same tuning time, same switch
    /// count — and differ only in access latency, by exactly `a - b`.
    /// This holds because (1) lossless drives consume no randomness, so
    /// the outcome is a pure function of `(query, start)`; (2) every
    /// scheme's first act is to doze to a start-independent schedule
    /// point — the anchor — carrying no state but the anchor instant; and
    /// (3) at one channel there is nothing else (no monitored set, no
    /// retune) for `start` to influence. Multi-channel programs return
    /// `None`: the entry there plans arrivals *from `start`* across
    /// channels, so distinct starts can enter at different slots.
    ///
    /// The default is the always-sound `None` (no coalescing).
    fn tune_anchor(&self, start: u64) -> Option<u64> {
        let _ = start;
        None
    }
}

/// One client query, scheme-agnostic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// All objects inside a rectangle.
    Window(Rect),
    /// The `k` nearest objects to a point.
    Knn(Point, usize),
}

/// What one driven query produced: the answer and both metric views.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Result ids, ascending.
    pub ids: Vec<u32>,
    /// Access latency / tuning time, aggregated over channels.
    pub stats: QueryStats,
    /// Switch count and per-channel tuning.
    pub channels: ChannelStats,
}

/// Runs one query to completion: tunes a client in at `start` under
/// `loss` (seeded by `seed`), dispatches the query to the scheme's search
/// algorithm, and collects both metric views. This is the only place the
/// harness touches a [`Tuner`]. Single-antenna client; see
/// [`drive_antennas`] for the multi-receiver model.
pub fn drive<S: AirScheme + ?Sized>(
    scheme: &S,
    start: u64,
    loss: LossModel,
    seed: u64,
    query: &Query,
) -> QueryOutcome {
    drive_antennas(scheme, start, loss, seed, AntennaConfig::single(), query)
}

/// [`drive`] with an explicit receiver configuration: the client monitors
/// up to `antennas.antennas` channels concurrently. Antennas change
/// latency and tuning, never answers (the conformance suite pins this for
/// every scheme × placement × channel-count × loss combination).
pub fn drive_antennas<S: AirScheme + ?Sized>(
    scheme: &S,
    start: u64,
    loss: LossModel,
    seed: u64,
    antennas: AntennaConfig,
    query: &Query,
) -> QueryOutcome {
    let mut tuner = Tuner::tune_in_with(scheme.program(), start, loss, seed, antennas);
    let ids = match query {
        Query::Window(w) => scheme.window(&mut tuner, w),
        Query::Knn(q, k) => scheme.knn(&mut tuner, *q, *k),
    };
    QueryOutcome {
        ids,
        stats: tuner.stats(),
        channels: tuner.channel_stats(),
    }
}

/// [`drive_antennas`] with per-position access profiling: every read is
/// additionally counted against its flat schema position in `counts`
/// (length must equal the program's cycle length). Training a workload
/// through this and feeding the counts to [`crate::optimize`] is how the
/// server learns which parts of the schema a workload actually touches.
pub fn drive_profiled<S: AirScheme + ?Sized>(
    scheme: &S,
    start: u64,
    loss: LossModel,
    seed: u64,
    antennas: AntennaConfig,
    query: &Query,
    counts: &mut [u64],
) -> QueryOutcome {
    assert_eq!(
        counts.len() as u64,
        scheme.program().len(),
        "one counter per flat cycle position"
    );
    let mut tuner = Tuner::tune_in_with(scheme.program(), start, loss, seed, antennas);
    tuner.enable_profiling();
    let ids = match query {
        Query::Window(w) => scheme.window(&mut tuner, w),
        Query::Knn(q, k) => scheme.knn(&mut tuner, *q, *k),
    };
    for (c, n) in counts.iter_mut().zip(tuner.access_counts()) {
        *c += n;
    }
    QueryOutcome {
        ids,
        stats: tuner.stats(),
        channels: tuner.channel_stats(),
    }
}

/// [`drive_antennas`] with fault journaling: every read's loss outcome is
/// recorded and returned as a [`FaultTrace`] alongside the outcome.
/// Replaying the trace via [`LossModel::Trace`] (same scheme, same start,
/// same antennas) reproduces the run's loss sequence exactly, with no RNG
/// involved — the deterministic-reproduction entry point of the fault
/// harness.
pub fn drive_traced<S: AirScheme + ?Sized>(
    scheme: &S,
    start: u64,
    loss: LossModel,
    seed: u64,
    antennas: AntennaConfig,
    query: &Query,
) -> (QueryOutcome, FaultTrace) {
    let mut tuner = Tuner::tune_in_with(scheme.program(), start, loss, seed, antennas);
    tuner.enable_fault_recording();
    let ids = match query {
        Query::Window(w) => scheme.window(&mut tuner, w),
        Query::Knn(q, k) => scheme.knn(&mut tuner, *q, *k),
    };
    let trace = tuner.fault_trace();
    (
        QueryOutcome {
            ids,
            stats: tuner.stats(),
            channels: tuner.channel_stats(),
        },
        trace,
    )
}

/// Packet-type-erased [`AirScheme`], so heterogeneous schemes fit one
/// `Box<dyn DynScheme>`. Blanket-implemented for every `AirScheme`.
pub trait DynScheme: Send + Sync {
    /// Runs one query through [`drive`].
    fn drive(&self, start: u64, loss: LossModel, seed: u64, query: &Query) -> QueryOutcome;

    /// Runs one query through [`drive_antennas`] with an explicit
    /// receiver configuration.
    fn drive_antennas(
        &self,
        start: u64,
        loss: LossModel,
        seed: u64,
        antennas: AntennaConfig,
        query: &Query,
    ) -> QueryOutcome;

    /// Runs one query through [`drive_profiled`], accumulating reads per
    /// flat schema position into `counts`.
    fn drive_profiled(
        &self,
        start: u64,
        loss: LossModel,
        seed: u64,
        antennas: AntennaConfig,
        query: &Query,
        counts: &mut [u64],
    ) -> QueryOutcome;

    /// Runs one query through [`drive_traced`], returning the recorded
    /// fault journal alongside the outcome.
    fn drive_traced(
        &self,
        start: u64,
        loss: LossModel,
        seed: u64,
        antennas: AntennaConfig,
        query: &Query,
    ) -> (QueryOutcome, FaultTrace);

    /// The cohort-coalescing anchor of a tune-in at `start`; see
    /// [`AirScheme::tune_anchor`] for the exact contract.
    fn tune_anchor(&self, start: u64) -> Option<u64>;

    /// Packets per (flat) broadcast cycle.
    fn cycle_packets(&self) -> u64;

    /// Bytes per (flat) broadcast cycle.
    fn cycle_bytes(&self) -> u64;

    /// Number of parallel channels the program is scheduled over.
    fn n_channels(&self) -> u32;

    /// Which flat positions begin an indivisible unit (the structure the
    /// placement optimizer assigns to channels).
    fn unit_starts(&self) -> Vec<bool>;
}

impl<S: AirScheme + Send + Sync> DynScheme for S {
    fn drive(&self, start: u64, loss: LossModel, seed: u64, query: &Query) -> QueryOutcome {
        drive(self, start, loss, seed, query)
    }

    fn drive_antennas(
        &self,
        start: u64,
        loss: LossModel,
        seed: u64,
        antennas: AntennaConfig,
        query: &Query,
    ) -> QueryOutcome {
        drive_antennas(self, start, loss, seed, antennas, query)
    }

    fn drive_profiled(
        &self,
        start: u64,
        loss: LossModel,
        seed: u64,
        antennas: AntennaConfig,
        query: &Query,
        counts: &mut [u64],
    ) -> QueryOutcome {
        drive_profiled(self, start, loss, seed, antennas, query, counts)
    }

    fn drive_traced(
        &self,
        start: u64,
        loss: LossModel,
        seed: u64,
        antennas: AntennaConfig,
        query: &Query,
    ) -> (QueryOutcome, FaultTrace) {
        drive_traced(self, start, loss, seed, antennas, query)
    }

    fn tune_anchor(&self, start: u64) -> Option<u64> {
        AirScheme::tune_anchor(self, start)
    }

    fn cycle_packets(&self) -> u64 {
        self.program().len()
    }

    fn cycle_bytes(&self) -> u64 {
        self.program().cycle_bytes()
    }

    fn n_channels(&self) -> u32 {
        self.program().n_channels()
    }

    fn unit_starts(&self) -> Vec<bool> {
        self.program().unit_starts()
    }
}
