//! Workload-aware server-side placement optimization.
//!
//! The paper fixes one on-air layout and lets the client adapt; with the
//! multi-channel scheduler ([`crate::ChannelConfig`]) and the
//! multi-antenna tuner in place, the remaining free variable is *which
//! channel each unit airs on*. All channels tick in lockstep but each
//! repeats its **own** cycle, so a channel carrying few packets repeats
//! often: content placed there recurs with a short period and costs
//! little access latency. A workload whose access probabilities are
//! skewed (hotspot queries, navigation-heavy index tables) therefore has
//! a better layout than any uniform policy — put the hot units on short
//! channels, keep serially-scanned runs adjacent, and balance the cold
//! bulk across the rest.
//!
//! This module is that server-side optimizer, in three parts:
//!
//! * [`AccessProfile`] — expected reads per query of every flat schema
//!   position, measured by driving a training workload through
//!   [`crate::drive_profiled`] (the tuner counts every read against its
//!   flat position), plus optional per-query read-run *samples*
//!   ([`AccessProfile::with_samples`]): a hotspot query concentrates
//!   thousands of reads on one region of the schema, which mean weights
//!   alone cannot express and which dominates real sweep latency.
//! * [`CostModel`] — a closed-form estimate of a placement's expected
//!   per-query air cost. A query's reads on channel `c` form `W_c` read
//!   *runs* (entries); the arrival-order client sweeps them in airing
//!   order, so passing all of them from a random instant costs about
//!   `(L_c − 1) · W_c / (W_c + 1)` packets (`L_c` = packets on that
//!   channel; one run waits half a channel cycle, many runs approach a
//!   full one — the runs overlap in one sweep rather than each paying an
//!   independent wait). Retunes add `switch_cost` with probability `1 −
//!   k/C` for a `k`-antenna client. Continuation reads (a unit whose
//!   flat predecessor airs immediately before it on the same channel)
//!   stream on without re-waiting and leave `W_c`, so the model prices
//!   exactly the tradeoff between short hot channels and preserved scan
//!   adjacency.
//! * [`optimize_placement`] — the search. Without samples it seeds from
//!   the best analytic layout (balanced blocked arcs, plus
//!   density-sorted arcs over adjacency-preserving *atoms* — maximal
//!   flat runs of similar access density, so hot regions move between
//!   channels without being shredded — with boundaries tuned by
//!   coordinate descent) and hill-climbs random unit moves and swaps
//!   against the cost model. With samples it searches the **contiguous
//!   circular-arc family** (free cut positions, `Blocked`'s dependency
//!   structure — see `optimize_sampled`) by coordinate descent on the
//!   per-query sample cost. Either way it returns a
//!   [`crate::Placement::Explicit`] assignment plus its predicted cost,
//!   and [`OptimizedPlacement::arc_cuts`] lets a harness refine the arc
//!   cuts further by *measuring* shifted variants (see
//!   [`arc_assignment`]) — which is how `dsi-sim`'s experiment matrix
//!   resolves its `optimized` placement entries.
//!
//! The optimizer never changes the flat schema — clients keep addressing
//! the single-channel cycle — so query answers are placement-invariant;
//! only latency and tuning move (the conformance suite pins this).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::channel::{AntennaConfig, ChannelConfig, Placement};

/// Expected reads per query of each flat schema position, plus
/// (optionally) per-query read-run samples — the workload summary the
/// optimizer consumes.
///
/// The mean weights drive the analytic seeds and the closed-form cost
/// model; the samples let the optimizer see *per-query channel
/// concentration* (a hotspot query reads thousands of packets on one
/// region of the schema, not a thin slice of everything), which mean
/// weights alone cannot express and which dominates real sweep latency.
#[derive(Debug, Clone)]
pub struct AccessProfile {
    weights: Vec<f64>,
    /// Per sampled training query: its maximal read runs as
    /// `(flat_start, len)` in packets, ascending.
    samples: Vec<Vec<(u32, u32)>>,
}

impl AccessProfile {
    /// Builds a profile from raw per-position read counts accumulated
    /// over `queries` training queries (see [`crate::drive_profiled`]).
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty or `queries` is zero.
    pub fn from_counts(counts: &[u64], queries: u64) -> Self {
        assert!(!counts.is_empty(), "profile needs at least one position");
        assert!(queries > 0, "profile needs at least one training query");
        Self {
            weights: counts.iter().map(|&c| c as f64 / queries as f64).collect(),
            samples: Vec::new(),
        }
    }

    /// A flat profile (every position read once per query) — what the
    /// optimizer assumes when nothing is known about the workload.
    pub fn uniform(len: usize) -> Self {
        assert!(len > 0, "profile needs at least one position");
        Self {
            weights: vec![1.0; len],
            samples: Vec::new(),
        }
    }

    /// Attaches per-query read-run samples (one entry per training
    /// query, each a [`read_runs`] extraction of that query's
    /// per-position counts). With samples present,
    /// [`optimize_placement`] scores candidate placements against the
    /// sampled queries instead of the mean-field model.
    ///
    /// # Panics
    ///
    /// Panics if any run reaches past the profile's position count.
    pub fn with_samples(mut self, samples: Vec<Vec<(u32, u32)>>) -> Self {
        let n = self.weights.len();
        for runs in &samples {
            for &(start, len) in runs {
                assert!(
                    len > 0 && (start as usize + len as usize) <= n,
                    "sample run ({start}, {len}) out of range"
                );
            }
        }
        self.samples = samples.into_iter().filter(|r| !r.is_empty()).collect();
        self
    }

    /// Expected reads per query, per flat position.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The recorded per-query read-run samples.
    pub fn samples(&self) -> &[Vec<(u32, u32)>] {
        &self.samples
    }

    /// Number of flat positions covered.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// A profile always covers at least one position.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Collapses one query's per-position read counts (a fresh buffer from
/// one [`crate::drive_profiled`] call) into its maximal read runs
/// `(flat_start, len)` — the sample format of
/// [`AccessProfile::with_samples`].
pub fn read_runs(counts: &[u64]) -> Vec<(u32, u32)> {
    let mut runs: Vec<(u32, u32)> = Vec::new();
    for (f, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        match runs.last_mut() {
            Some((start, len)) if *start as usize + *len as usize == f => *len += 1,
            _ => runs.push((f as u32, 1)),
        }
    }
    runs
}

/// The unit structure of a flat broadcast cycle: where each indivisible
/// unit starts and how many packets it spans (see
/// [`crate::Payload::unit_start`] / [`crate::Program::unit_starts`]).
#[derive(Debug, Clone)]
pub struct UnitSchema {
    starts: Vec<u32>,
    lens: Vec<u32>,
}

impl UnitSchema {
    /// Derives the schema from per-position unit-start flags.
    ///
    /// # Panics
    ///
    /// Panics if `unit_starts` is empty or does not begin with a unit
    /// boundary.
    pub fn from_unit_starts(unit_starts: &[bool]) -> Self {
        assert!(
            unit_starts.first().copied().unwrap_or(false),
            "cycle must begin at a unit boundary"
        );
        let mut starts = Vec::new();
        let mut lens = Vec::new();
        for (i, &s) in unit_starts.iter().enumerate() {
            if s {
                starts.push(i as u32);
                lens.push(0);
            }
            *lens.last_mut().expect("first position starts a unit") += 1;
        }
        Self { starts, lens }
    }

    /// Number of units in the cycle.
    pub fn n_units(&self) -> usize {
        self.starts.len()
    }

    /// A schema always holds at least one unit.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Flat position of unit `u`'s first packet.
    pub fn start(&self, u: usize) -> u32 {
        self.starts[u]
    }

    /// Packets of unit `u`.
    pub fn len_of(&self, u: usize) -> u32 {
        self.lens[u]
    }

    /// Total packets of the flat cycle.
    pub fn total_packets(&self) -> u64 {
        self.lens.iter().map(|&l| l as u64).sum()
    }
}

/// Closed-form air-cost estimate of a unit→channel assignment under an
/// access-probability profile and a receiver configuration. See the
/// module docs for the model; [`CostModel::predicted_latency_packets`]
/// is the objective the optimizer minimizes.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Packets per unit.
    lens: Vec<u64>,
    /// Entry weight per unit: expected reads per query of its first
    /// packet (how often a read run starts — or passes through — here).
    entry: Vec<f64>,
    /// Continuation discount: `min(entry[u], weight of the previous
    /// unit's last packet)` — the share of `u`'s entries that arrive as
    /// a serial scan continuing from the (cyclic) predecessor unit, and
    /// which therefore waits nothing *if* the predecessor airs
    /// immediately before `u` on the same channel.
    cont: Vec<f64>,
    /// Total profile weight per unit (over all its packets) — the
    /// hotness measure the seeding atoms are built from.
    weight: Vec<f64>,
    /// Expected packets read per query (placement-invariant).
    read_packets: f64,
    channels: u32,
    switch_cost: u32,
    /// Probability that a target channel is on no antenna: `1 −
    /// min(k, C)/C` for a `k`-antenna client under `C` channels.
    p_miss: f64,
}

impl CostModel {
    /// Builds the model for `channels` lockstep channels at `switch_cost`
    /// packets per retune, for a client with `antennas` receivers.
    ///
    /// # Panics
    ///
    /// Panics if the profile does not cover the schema's packet count or
    /// `channels` is zero.
    pub fn new(
        schema: &UnitSchema,
        profile: &AccessProfile,
        channels: u32,
        switch_cost: u32,
        antennas: AntennaConfig,
    ) -> Self {
        assert!(channels >= 1, "need at least one channel");
        assert_eq!(
            profile.len() as u64,
            schema.total_packets(),
            "profile must cover every flat position"
        );
        let w = profile.weights();
        let n = schema.n_units();
        let lens: Vec<u64> = (0..n).map(|u| schema.len_of(u) as u64).collect();
        let entry: Vec<f64> = (0..n).map(|u| w[schema.start(u) as usize]).collect();
        let last_w: Vec<f64> = (0..n)
            .map(|u| w[(schema.start(u) + schema.len_of(u) - 1) as usize])
            .collect();
        let cont: Vec<f64> = (0..n)
            .map(|u| {
                let prev = (u + n - 1) % n;
                entry[u].min(last_w[prev])
            })
            .collect();
        let weight: Vec<f64> = (0..n)
            .map(|u| {
                let s = schema.start(u) as usize;
                w[s..s + schema.len_of(u) as usize].iter().sum()
            })
            .collect();
        let p_mon = f64::from(antennas.antennas.min(channels)) / f64::from(channels);
        Self {
            lens,
            entry,
            cont,
            weight,
            read_packets: w.iter().sum(),
            channels,
            switch_cost,
            p_miss: 1.0 - p_mon,
        }
    }

    /// Number of channels the model prices.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Expected tuning time per query, in packets (every read costs one
    /// packet of listening, wherever the unit airs — placement moves
    /// latency, not tuning).
    pub fn predicted_tuning_packets(&self) -> f64 {
        self.read_packets
    }

    /// Expected access latency per query, in packets, of `assignment`
    /// (one channel per unit).
    ///
    /// # Panics
    ///
    /// Panics if the assignment does not cover every unit or names a
    /// channel out of range.
    pub fn predicted_latency_packets(&self, assignment: &[u32]) -> f64 {
        let s = State::new(self, assignment);
        s.cost()
    }
}

/// Incremental evaluation state of one assignment under a [`CostModel`]:
/// per-channel packet lengths and discounted entry weights, updatable in
/// O(1) per unit move.
struct State<'m> {
    m: &'m CostModel,
    a: Vec<u32>,
    /// Packets per channel.
    len_c: Vec<u64>,
    /// Units per channel (the no-empty-channel constraint).
    units_c: Vec<u32>,
    /// Discounted entry weight per channel: Σ over its units of
    /// `entry[u] − cont[u]·[prev on same channel]`.
    w_c: Vec<f64>,
}

impl<'m> State<'m> {
    fn new(m: &'m CostModel, assignment: &[u32]) -> Self {
        let n = m.lens.len();
        assert_eq!(assignment.len(), n, "one channel per unit");
        let c = m.channels as usize;
        let mut s = Self {
            m,
            a: assignment.to_vec(),
            len_c: vec![0; c],
            units_c: vec![0; c],
            w_c: vec![0.0; c],
        };
        for (u, &ch) in assignment.iter().enumerate() {
            let ch = ch as usize;
            assert!(ch < c, "unit {u} assigned to channel {ch} of {c}");
            s.len_c[ch] += m.lens[u];
            s.units_c[ch] += 1;
            s.w_c[ch] += s.discounted_entry(u);
        }
        s
    }

    /// `entry[u]` minus the continuation discount if `u`'s cyclic
    /// predecessor currently shares its channel (flat order is preserved
    /// within a channel, so sharing it means airing back to back).
    fn discounted_entry(&self, u: usize) -> f64 {
        let n = self.a.len();
        let prev = (u + n - 1) % n;
        if prev != u && self.a[prev] == self.a[u] {
            self.m.entry[u] - self.m.cont[u]
        } else {
            self.m.entry[u]
        }
    }

    /// The model's expected per-query latency of the current assignment:
    /// per channel, the sweep cost `(L_c − 1) · W_c / (W_c + 1)` (the
    /// expected time until the last of `W_c` airing-ordered read runs
    /// has passed, from a random instant) plus a retune charge per run,
    /// plus the placement-invariant read time.
    fn cost(&self) -> f64 {
        let retune = self.m.p_miss * f64::from(self.m.switch_cost);
        self.m.read_packets
            + self
                .len_c
                .iter()
                .zip(&self.w_c)
                .map(|(&l, &w)| {
                    let w = w.max(0.0);
                    (l.saturating_sub(1)) as f64 * (w / (w + 1.0)) + w * retune
                })
                .sum::<f64>()
    }

    /// Moves unit `u` to channel `to`, updating the aggregates.
    fn move_unit(&mut self, u: usize, to: u32) {
        let from = self.a[u];
        if from == to {
            return;
        }
        let n = self.a.len();
        let succ = (u + 1) % n;
        // Remove u's and (if affected) its successor's discounted
        // entries under the old assignment…
        self.w_c[from as usize] -= self.discounted_entry(u);
        if succ != u {
            self.w_c[self.a[succ] as usize] -= self.discounted_entry(succ);
        }
        self.len_c[from as usize] -= self.m.lens[u];
        self.units_c[from as usize] -= 1;
        self.a[u] = to;
        self.len_c[to as usize] += self.m.lens[u];
        self.units_c[to as usize] += 1;
        // …and re-add them under the new one.
        self.w_c[to as usize] += self.discounted_entry(u);
        if succ != u {
            self.w_c[self.a[succ] as usize] += self.discounted_entry(succ);
        }
    }
}

/// Tuning knobs of [`optimize_placement`].
#[derive(Debug, Clone)]
pub struct OptimizeOptions {
    /// Hill-climb proposals; `0` picks an automatic budget proportional
    /// to the unit count.
    pub iterations: u32,
    /// RNG seed of the (fully deterministic) search.
    pub seed: u64,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        Self {
            iterations: 0,
            seed: 0xD51_0071,
        }
    }
}

/// An optimized unit→channel assignment and its predicted air cost.
#[derive(Debug, Clone)]
pub struct OptimizedPlacement {
    /// Channel of each unit, in flat order (feed to
    /// [`Placement::Explicit`]).
    pub assignment: Vec<u32>,
    /// The cost model's expected per-query access latency, in packets.
    pub predicted_latency_packets: f64,
    /// The cost model's expected per-query tuning time, in packets.
    pub predicted_tuning_packets: f64,
    /// For the sample-driven search: the contiguous-arc cut points the
    /// assignment was built from (unit index of each channel's arc
    /// start, ascending, pre-relabeling; see [`arc_assignment`]). Lets a
    /// harness refine the cuts further — e.g. by *measuring* shifted
    /// variants on the training workload — without leaving the
    /// dependency-order-preserving arc family. `None` for the mean-field
    /// search, whose result is not an arc partition.
    pub arc_cuts: Option<Vec<usize>>,
}

impl OptimizedPlacement {
    /// The optimized assignment as a ready-to-build [`ChannelConfig`].
    pub fn config(&self, channels: u32, switch_cost: u32) -> ChannelConfig {
        ChannelConfig {
            channels,
            placement: Placement::Explicit(self.assignment.clone()),
            switch_cost,
        }
    }
}

/// Searches for a unit→channel assignment minimizing the profile's
/// expected latency. With per-query samples on the profile it runs the
/// contiguous-arc search (see the module docs and `optimize_sampled`);
/// without them it evaluates the analytic seed layouts (balanced
/// blocked arcs; frequency-sorted blocked arcs over density atoms with
/// coordinate-descent boundaries) and hill-climbs random unit moves and
/// swaps against the closed-form [`CostModel`]. Both paths finally
/// relabel channels so channel 0 — where clients tune in — carries the
/// hottest traffic per packet. Deterministic for a given seed.
pub fn optimize_placement(
    schema: &UnitSchema,
    profile: &AccessProfile,
    channels: u32,
    switch_cost: u32,
    antennas: AntennaConfig,
    opts: &OptimizeOptions,
) -> OptimizedPlacement {
    assert!(channels >= 1, "need at least one channel");
    let n = schema.n_units();
    assert!(
        n >= channels as usize,
        "cannot spread {n} units over {channels} channels"
    );
    let model = CostModel::new(schema, profile, channels, switch_cost, antennas);
    if channels == 1 {
        let assignment = vec![0u32; n];
        let predicted = model.predicted_latency_packets(&assignment);
        return OptimizedPlacement {
            assignment,
            predicted_latency_packets: predicted,
            predicted_tuning_packets: model.predicted_tuning_packets(),
            arc_cuts: None,
        };
    }
    if !profile.samples().is_empty() {
        return optimize_sampled(schema, profile, &model, channels, opts);
    }

    // Seed candidates: the balanced blocked baseline, the classic
    // frequency-sorted arcs (single-unit atoms), and density-banded
    // atoms at several granularities — atoms keep flat runs of similar
    // density together, so hot regions move to short channels without
    // being shredded into stripe-like interleavings.
    let mut seeds: Vec<Vec<u32>> = vec![blocked_seed(schema, channels)];
    seeds.push(arc_seed(&model, &unit_atoms(&model), channels));
    for buckets in [4u32, 8, 16] {
        seeds.push(arc_seed(&model, &density_atoms(&model, buckets), channels));
    }
    for s in &mut seeds {
        repair_empty_channels(&model, s);
    }
    let mut best = seeds
        .into_iter()
        .min_by(|a, b| {
            model
                .predicted_latency_packets(a)
                .total_cmp(&model.predicted_latency_packets(b))
        })
        .expect("at least one seed");

    // Hill climb: random unit moves and swaps, accepted when the model
    // improves (or ties — plateau walks escape equal-cost ridges).
    let mut state = State::new(&model, &best);
    let mut cost = state.cost();
    let mut best_cost = cost;
    let iterations = if opts.iterations > 0 {
        opts.iterations
    } else {
        (n as u32).saturating_mul(24).clamp(4_096, 262_144)
    };
    // dsi-lint: allow(rng): annealing is seeded from OptimizeOptions, fully deterministic
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut stall = 0u32;
    let stall_limit = (n as u32).saturating_mul(8).max(4_096);
    for _ in 0..iterations {
        let u = rng.gen_range(0..n);
        let swap = rng.gen_bool(0.5);
        if swap {
            let v = rng.gen_range(0..n);
            let (cu, cv) = (state.a[u], state.a[v]);
            if cu == cv {
                stall += 1;
                if stall > stall_limit {
                    break;
                }
                continue;
            }
            state.move_unit(u, cv);
            state.move_unit(v, cu);
            let next = state.cost();
            if next <= cost + 1e-9 {
                if next < cost - 1e-9 {
                    stall = 0;
                } else {
                    stall += 1;
                }
                cost = next;
            } else {
                state.move_unit(v, cv);
                state.move_unit(u, cu);
                stall += 1;
            }
        } else {
            let from = state.a[u];
            let to = rng.gen_range(0..channels);
            if to == from || state.units_c[from as usize] == 1 {
                stall += 1;
                if stall > stall_limit {
                    break;
                }
                continue;
            }
            state.move_unit(u, to);
            let next = state.cost();
            if next <= cost + 1e-9 {
                if next < cost - 1e-9 {
                    stall = 0;
                } else {
                    stall += 1;
                }
                cost = next;
            } else {
                state.move_unit(u, from);
                stall += 1;
            }
        }
        if cost < best_cost {
            best_cost = cost;
            best.copy_from_slice(&state.a);
        }
        if stall > stall_limit {
            break;
        }
    }

    relabel_hottest_first(&model, &mut best);
    let predicted = model.predicted_latency_packets(&best);
    OptimizedPlacement {
        assignment: best,
        predicted_latency_packets: predicted,
        predicted_tuning_packets: model.predicted_tuning_packets(),
        arc_cuts: None,
    }
}

/// Predicted mean per-query access latency, in packets, of `assignment`
/// under a profile: scored against the profile's per-query read-run
/// samples when present (the calibrated estimate the optimizer itself
/// minimizes), falling back to the closed-form [`CostModel`] otherwise.
pub fn predict_latency_packets(
    schema: &UnitSchema,
    profile: &AccessProfile,
    channels: u32,
    switch_cost: u32,
    antennas: AntennaConfig,
    assignment: &[u32],
) -> f64 {
    let model = CostModel::new(schema, profile, channels, switch_cost, antennas);
    if profile.samples().is_empty() || channels == 1 {
        return model.predicted_latency_packets(assignment);
    }
    // Unit-granular atoms: score the assignment exactly as given.
    let atoms: Vec<Atom> = (0..schema.n_units())
        .map(|u| Atom {
            lo: u,
            hi: u + 1,
            weight: model.weight[u],
            packets: model.lens[u],
        })
        .collect();
    let mut eval = SampleEval::new(schema, profile, &model, &atoms, channels);
    eval.cost_of(assignment)
}

/// The sample-driven search (used whenever the profile carries per-query
/// read-run samples). Candidates are restricted to the **contiguous
/// circular-arc family**: `C` cut points around the flat cycle, one arc
/// per channel in flat order — the same shape as [`Placement::Blocked`]
/// but with free cut positions (unequal arc lengths, cuts snapped to
/// workload boundaries, an arbitrary rotation). Staying in this family
/// keeps the client's navigation-dependency order aligned with air
/// order on every channel, exactly as under `Blocked` — free-form
/// assignments can score well under any profile-based model while
/// measuring terribly, because the model cannot see dependency chains.
///
/// Candidates are scored against the sampled queries: per query and
/// channel the score counts the read runs `m_qc` the placement puts
/// there and combines the per-channel sweeps with partial overlap (see
/// [`SampleEval`]); the search hill-climbs cut shifts from the
/// equal-arc seed and the best of a jittered-rotation seed family.
fn optimize_sampled(
    schema: &UnitSchema,
    profile: &AccessProfile,
    model: &CostModel,
    channels: u32,
    opts: &OptimizeOptions,
) -> OptimizedPlacement {
    let c = channels as usize;
    // Atoms in flat order; fall back to unit granularity when the
    // density bands are too coarse to give the search room.
    let mut atoms = flat_density_atoms(model, 8);
    if atoms.len() < c * 4 {
        atoms = (0..schema.n_units())
            .map(|u| Atom {
                lo: u,
                hi: u + 1,
                weight: model.weight[u],
                packets: model.lens[u],
            })
            .collect();
    }
    let n_atoms = atoms.len();
    let mut eval = SampleEval::new(schema, profile, model, &atoms, channels);

    // Cumulative packets per atom prefix, for packet-balanced cuts.
    let mut cum = vec![0u64; n_atoms + 1];
    for (t, a) in atoms.iter().enumerate() {
        cum[t + 1] = cum[t] + a.packets;
    }
    let total = cum[n_atoms];
    // Seed cuts: equal packet shares at several rotations of the cycle.
    let mut seed_cuts: Vec<Vec<usize>> = Vec::new();
    for rot in 0..8u64 {
        let cuts: Vec<usize> = (0..c)
            .map(|g| {
                let target = (total * (8 * g as u64 + rot)) / (8 * c as u64);
                // First atom whose preceding packet count reaches the
                // target share (cum[t] = packets before atom t).
                cum[..n_atoms]
                    .partition_point(|&x| x < target)
                    .min(n_atoms - 1)
            })
            .collect();
        if cuts.windows(2).all(|w| w[0] < w[1]) {
            seed_cuts.push(cuts);
        }
    }
    let mut best_cuts = seed_cuts
        .into_iter()
        .min_by(|a, b| {
            let ca = eval.cost_of(&cuts_to_assignment(a, n_atoms, channels));
            let cb = eval.cost_of(&cuts_to_assignment(b, n_atoms, channels));
            ca.total_cmp(&cb)
        })
        .expect("at least one seed");
    let mut cost = eval.cost_of(&cuts_to_assignment(&best_cuts, n_atoms, channels));

    // Cyclic coordinate descent on the cut positions: for each cut in
    // turn, scan its feasible range at a coarse stride, then refine
    // around the best coarse position at stride 1. Deterministic; a few
    // rounds suffice (`iterations` caps the total number of candidate
    // evaluations for tiny test runs).
    let max_evals = if opts.iterations > 0 {
        opts.iterations as usize
    } else {
        65_536
    };
    let mut evals = 0usize;
    let coarse = (n_atoms / 256).max(1);
    'descent: for _ in 0..6 {
        let mut improved = false;
        for i in 0..c {
            let prev = best_cuts[(i + c - 1) % c];
            let next = best_cuts[(i + 1) % c];
            // Keep every arc non-empty; cut 0 may rotate anywhere below
            // cut 1, the last cut anywhere above its predecessor.
            let (lo, hi) = if i == 0 {
                (0usize, next - 1)
            } else if i == c - 1 {
                (prev + 1, n_atoms - 1)
            } else {
                (prev + 1, next - 1)
            };
            if lo > hi {
                continue;
            }
            let mut try_pos =
                |pos: usize, cuts: &mut Vec<usize>, cost: &mut f64, evals: &mut usize| -> bool {
                    if pos == cuts[i] {
                        return false;
                    }
                    let old = cuts[i];
                    cuts[i] = pos;
                    *evals += 1;
                    let next_cost = eval.cost_of(&cuts_to_assignment(cuts, n_atoms, channels));
                    if next_cost < *cost - 1e-9 {
                        *cost = next_cost;
                        true
                    } else {
                        cuts[i] = old;
                        false
                    }
                };
            let mut pos = lo;
            while pos <= hi {
                improved |= try_pos(pos, &mut best_cuts, &mut cost, &mut evals);
                if evals >= max_evals {
                    break 'descent;
                }
                pos += coarse;
            }
            if coarse > 1 {
                let center = best_cuts[i];
                let rlo = center.saturating_sub(coarse).max(lo);
                let rhi = (center + coarse).min(hi);
                for pos in rlo..=rhi {
                    improved |= try_pos(pos, &mut best_cuts, &mut cost, &mut evals);
                    if evals >= max_evals {
                        break 'descent;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }

    // Relabel channels hottest-per-packet first (channel 0 is where
    // clients tune in), then expand atoms to units.
    let mut best = cuts_to_assignment(&best_cuts, n_atoms, channels);
    relabel_atoms_hottest_first(&atoms, &mut best, channels);
    let predicted = eval.cost_of(&best);
    let mut assignment = vec![0u32; schema.n_units()];
    for (t, a) in atoms.iter().enumerate() {
        for ch in assignment[a.lo..a.hi].iter_mut() {
            *ch = best[t];
        }
    }
    // Cut atoms → cut units, for harness-side refinement.
    let unit_cuts: Vec<usize> = best_cuts.iter().map(|&t| atoms[t].lo).collect();
    OptimizedPlacement {
        assignment,
        predicted_latency_packets: predicted,
        predicted_tuning_packets: model.predicted_tuning_packets(),
        arc_cuts: Some(unit_cuts),
    }
}

/// Expands contiguous circular-arc cut points over *units* (`cuts[g]` =
/// first unit of channel `g`'s arc, ascending; the wrap-around tail
/// joins the last arc) into a unit→channel assignment with channels
/// relabeled hottest-per-packet first under `profile` (channel 0 is
/// where clients tune in). This is the building block for harness-side
/// *measured* refinement of [`OptimizedPlacement::arc_cuts`]: shift the
/// cuts, rebuild, re-measure — every variant stays in the
/// dependency-order-preserving arc family.
///
/// # Panics
///
/// Panics if the cuts are not strictly ascending unit indices.
pub fn arc_assignment(schema: &UnitSchema, profile: &AccessProfile, cuts: &[usize]) -> Vec<u32> {
    let n = schema.n_units();
    let c = cuts.len();
    assert!(
        c >= 1 && cuts[c - 1] < n && cuts.windows(2).all(|w| w[0] < w[1]),
        "cuts must be strictly ascending unit indices"
    );
    assert_eq!(
        profile.len() as u64,
        schema.total_packets(),
        "profile must cover every flat position"
    );
    let mut a = cuts_to_assignment(cuts, n, c as u32);
    let w = profile.weights();
    let unit_atoms: Vec<Atom> = (0..n)
        .map(|u| {
            let s = schema.start(u) as usize;
            let l = schema.len_of(u) as usize;
            Atom {
                lo: u,
                hi: u + 1,
                weight: w[s..s + l].iter().sum(),
                packets: l as u64,
            }
        })
        .collect();
    relabel_atoms_hottest_first(&unit_atoms, &mut a, c as u32);
    a
}

/// Expands circular cut points (`cuts[g]` = first atom of channel `g`'s
/// arc; ascending) into a per-atom channel assignment: atoms in
/// `[cuts[g], cuts[g+1])` belong to channel `g`, the wrap-around tail
/// `[cuts[C−1], A) ∪ [0, cuts[0])` to channel `C − 1`.
fn cuts_to_assignment(cuts: &[usize], n_atoms: usize, channels: u32) -> Vec<u32> {
    let c = channels as usize;
    let mut a = vec![(c - 1) as u32; n_atoms];
    for g in 0..c - 1 {
        for ch in a[cuts[g]..cuts[g + 1]].iter_mut() {
            *ch = g as u32;
        }
    }
    // Atoms before the first cut wrap onto the last channel's arc.
    for ch in a[..cuts[0]].iter_mut() {
        *ch = (c - 1) as u32;
    }
    a
}

/// How much of a query's *non-dominant* channel sweeps still shows up
/// as latency. Channels air in parallel and the arrival-order client
/// interleaves its reads, so per-query channel sweeps overlap: the
/// longest sweep is paid in full, the others only partially (retunes,
/// missed concurrent airings and read contention keep the overlap from
/// being perfect).
const OVERLAP_BETA: f64 = 0.9;

/// Incremental sample-based scorer: per sampled query `q` and channel
/// `c` it maintains `m[q][c]`, the number of read runs the current atom
/// assignment places on that channel (continuations across same-channel
/// atom boundaries are free). A query's cost combines its per-channel
/// sweeps `s_qc = (L_c − 1) · m/(m + 1)` as `max_c s_qc +
/// OVERLAP_BETA · (Σ_c s_qc − max_c s_qc)`. Atom moves update `m` in
/// O(queries on the atom); the cost sum is recomputed per proposal in
/// O(queries × channels).
struct SampleEval {
    /// Atom → channel.
    a: Vec<u32>,
    /// Packets per channel.
    len_c: Vec<u64>,
    /// Atom packet counts.
    atom_packets: Vec<u64>,
    /// `(query, runs)` whose run *starts* lie in each atom.
    starts_at: Vec<Vec<(u32, f64)>>,
    /// `(query, runs)` crossing into each atom from its flat
    /// predecessor (charged only when the two atoms sit on different
    /// channels).
    cross_into: Vec<Vec<(u32, f64)>>,
    /// `m[q * C + c]`: read runs of query `q` on channel `c`.
    m: Vec<f64>,
    /// `Σ m` over all queries and channels (retune charge).
    m_total: f64,
    queries: f64,
    read_packets: f64,
    retune: f64,
    channels: usize,
}

impl SampleEval {
    fn new(
        schema: &UnitSchema,
        profile: &AccessProfile,
        model: &CostModel,
        atoms: &[Atom],
        channels: u32,
    ) -> Self {
        let c = channels as usize;
        let n_atoms = atoms.len();
        // Packet → atom lookup.
        let mut atom_of = vec![0u32; schema.total_packets() as usize];
        for (t, a) in atoms.iter().enumerate() {
            let lo = schema.start(a.lo) as usize;
            let hi = lo + model.lens[a.lo..a.hi].iter().sum::<u64>() as usize;
            atom_of[lo..hi].fill(t as u32);
        }
        let mut starts_at: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_atoms];
        let mut cross_into: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_atoms];
        for (q, runs) in profile.samples().iter().enumerate() {
            for &(start, len) in runs {
                let t0 = atom_of[start as usize] as usize;
                let t1 = atom_of[(start + len - 1) as usize] as usize;
                bump(&mut starts_at[t0], q as u32);
                for crossed in cross_into.iter_mut().take(t1 + 1).skip(t0 + 1) {
                    bump(crossed, q as u32);
                }
            }
        }
        let queries = profile.samples().len() as f64;
        let mut s = Self {
            a: vec![0; n_atoms],
            len_c: vec![0; c],
            atom_packets: atoms.iter().map(|a| a.packets).collect(),
            starts_at,
            cross_into,
            m: vec![0.0; profile.samples().len() * c],
            m_total: 0.0,
            queries,
            read_packets: model.read_packets,
            retune: model.p_miss * f64::from(model.switch_cost),
            channels: c,
        };
        let zeros = vec![0u32; n_atoms];
        s.reset(&zeros);
        s
    }

    /// Rebuilds all aggregates for a full assignment.
    fn reset(&mut self, assignment: &[u32]) {
        self.a.copy_from_slice(assignment);
        self.len_c.fill(0);
        self.m.fill(0.0);
        self.m_total = 0.0;
        for (t, &ch) in assignment.iter().enumerate() {
            self.len_c[ch as usize] += self.atom_packets[t];
        }
        for t in 0..self.a.len() {
            let ch = self.a[t];
            for i in 0..self.starts_at[t].len() {
                let (q, k) = self.starts_at[t][i];
                self.add_runs(q as usize, ch as usize, k);
            }
            if t > 0 && self.a[t - 1] != ch {
                for i in 0..self.cross_into[t].len() {
                    let (q, k) = self.cross_into[t][i];
                    self.add_runs(q as usize, ch as usize, k);
                }
            }
        }
    }

    /// Evaluates a full assignment (resets internal state to it).
    fn cost_of(&mut self, assignment: &[u32]) -> f64 {
        self.reset(assignment);
        self.cost()
    }

    #[inline]
    fn add_runs(&mut self, q: usize, ch: usize, k: f64) {
        self.m[q * self.channels + ch] += k;
        self.m_total += k;
    }

    /// Mean per-query latency of the current assignment, in packets.
    fn cost(&self) -> f64 {
        let c = self.channels;
        let mut sweep = 0.0f64;
        for q in 0..self.m.len() / c {
            let mut sum = 0.0f64;
            let mut max = 0.0f64;
            for ch in 0..c {
                let m = self.m[q * c + ch].max(0.0);
                if m <= 0.0 {
                    continue;
                }
                let s = (self.len_c[ch].saturating_sub(1)) as f64 * (m / (m + 1.0));
                sum += s;
                max = max.max(s);
            }
            sweep += max + OVERLAP_BETA * (sum - max);
        }
        self.read_packets + (sweep + self.retune * self.m_total) / self.queries
    }
}

/// Adds one run for `q` to a sparse `(query, runs)` list (the last entry
/// is `q`'s while a query's runs are pushed consecutively).
fn bump(list: &mut Vec<(u32, f64)>, q: u32) {
    match list.last_mut() {
        Some((lq, k)) if *lq == q => *k += 1.0,
        _ => list.push((q, 1.0)),
    }
}

/// Relabels channels so channel 0 carries the highest weight per packet
/// (clients tune in on channel 0).
fn relabel_atoms_hottest_first(atoms: &[Atom], assignment: &mut [u32], channels: u32) {
    let c = channels as usize;
    let mut weight = vec![0.0f64; c];
    let mut len = vec![0u64; c];
    for (t, &ch) in assignment.iter().enumerate() {
        weight[ch as usize] += atoms[t].weight;
        len[ch as usize] += atoms[t].packets;
    }
    let mut order: Vec<usize> = (0..c).collect();
    order.sort_by(|&a, &b| {
        let da = weight[a] / len[a].max(1) as f64;
        let db = weight[b] / len[b].max(1) as f64;
        db.total_cmp(&da).then(a.cmp(&b))
    });
    let mut relabel = vec![0u32; c];
    for (new, &old) in order.iter().enumerate() {
        relabel[old] = new as u32;
    }
    for ch in assignment.iter_mut() {
        *ch = relabel[*ch as usize];
    }
}

/// The analytic baseline: contiguous arcs balanced by packet count (the
/// unit-granular [`Placement::Blocked`]).
fn blocked_seed(schema: &UnitSchema, channels: u32) -> Vec<u32> {
    let n_packets = schema.total_packets();
    (0..schema.n_units())
        .map(|u| ((schema.start(u) as u64 * channels as u64) / n_packets) as u32)
        .collect()
}

/// A seeding atom: a run of flat-consecutive units `[lo, hi)` moved
/// between channels as one piece, with its aggregate profile weight and
/// packet count.
struct Atom {
    lo: usize,
    hi: usize,
    weight: f64,
    packets: u64,
}

/// Per-unit profile weight per packet — the hotness density the seeding
/// atoms are banded by.
fn density(model: &CostModel, u: usize) -> f64 {
    model.weight[u] / model.lens[u] as f64
}

/// Every unit as its own atom, hottest (by total weight) first; ties
/// keep flat order. This is the classic frequency-sorted layout.
fn unit_atoms(model: &CostModel) -> Vec<Atom> {
    let mut order: Vec<usize> = (0..model.lens.len()).collect();
    order.sort_by(|&a, &b| model.weight[b].total_cmp(&model.weight[a]).then(a.cmp(&b)));
    order
        .into_iter()
        .map(|u| Atom {
            lo: u,
            hi: u + 1,
            weight: model.weight[u],
            packets: model.lens[u],
        })
        .collect()
}

/// Maximal flat runs of units in the same factor-2 density band
/// (`buckets` bands below the peak density; colder or zero-weight units
/// all land in the last), in flat order. A hotspot's units share a
/// band, so the whole region moves to a channel as one adjacent run.
fn flat_density_atoms(model: &CostModel, buckets: u32) -> Vec<Atom> {
    let n = model.lens.len();
    let dmax = (0..n).map(|u| density(model, u)).fold(0.0f64, f64::max);
    let band = |u: usize| -> u32 {
        let d = density(model, u);
        if dmax <= 0.0 || d <= 0.0 {
            buckets - 1
        } else {
            ((dmax / d).log2().floor() as i64).clamp(0, i64::from(buckets) - 1) as u32
        }
    };
    let mut atoms: Vec<Atom> = Vec::new();
    let mut u = 0usize;
    while u < n {
        let b = band(u);
        let mut hi = u + 1;
        while hi < n && band(hi) == b {
            hi += 1;
        }
        atoms.push(Atom {
            lo: u,
            hi,
            weight: model.weight[u..hi].iter().sum(),
            packets: model.lens[u..hi].iter().sum(),
        });
        u = hi;
    }
    atoms
}

/// [`flat_density_atoms`], hottest band first (density descending, ties
/// in flat order) — the ordering the arc seeds consume.
fn density_atoms(model: &CostModel, buckets: u32) -> Vec<Atom> {
    let mut atoms = flat_density_atoms(model, buckets);
    atoms.sort_by(|a, b| {
        let da = a.weight / a.packets.max(1) as f64;
        let db = b.weight / b.packets.max(1) as f64;
        db.total_cmp(&da).then(a.lo.cmp(&b.lo))
    });
    atoms
}

/// Frequency-sorted blocked arcs over atoms: cut the sorted atom
/// sequence into `channels` contiguous groups (group `g` → channel
/// `g`), choosing the `channels − 1` boundaries by coordinate descent on
/// the sweep objective `Σ_c P_c/(P_c + 1) · (L_c − 1)` (prefix sums make
/// each boundary scan linear). This is the analytic optimum shape for
/// skewed workloads: the hottest arc is short and repeats often.
fn arc_seed(model: &CostModel, atoms: &[Atom], channels: u32) -> Vec<u32> {
    let n = atoms.len();
    let c = channels as usize;
    if n <= c {
        // Too few atoms to cut: one atom per channel (the repair pass
        // fills any the tail leaves empty).
        let mut assignment = vec![c as u32 - 1; model.lens.len()];
        for (i, a) in atoms.iter().enumerate() {
            for ch in assignment[a.lo..a.hi].iter_mut() {
                *ch = i.min(c - 1) as u32;
            }
        }
        return assignment;
    }
    let mut pw = vec![0.0f64; n + 1];
    let mut pl = vec![0u64; n + 1];
    for (i, a) in atoms.iter().enumerate() {
        pw[i + 1] = pw[i] + a.weight;
        pl[i + 1] = pl[i] + a.packets;
    }
    // Boundaries b[0] < b[1] < … < b[c-2] split [0, n) into c groups;
    // start from equal packet shares (clamped to keep groups non-empty).
    let total = pl[n];
    let mut b: Vec<usize> = (1..c)
        .map(|g| {
            let target = total * g as u64 / c as u64;
            pl.partition_point(|&x| x < target)
        })
        .collect();
    // Normalize to strictly increasing interior boundaries.
    for i in 0..c - 1 {
        b[i] = b[i].clamp(i + 1, n - (c - 1 - i));
        if i > 0 && b[i] <= b[i - 1] {
            b[i] = b[i - 1] + 1;
        }
    }
    let group_cost = |lo: usize, hi: usize| -> f64 {
        let p = pw[hi] - pw[lo];
        (p / (p + 1.0)) * ((pl[hi] - pl[lo]).saturating_sub(1)) as f64
    };
    for _ in 0..8 {
        let mut moved = false;
        for i in 0..b.len() {
            let lo = if i == 0 { 0 } else { b[i - 1] };
            let hi = if i + 1 < b.len() { b[i + 1] } else { n };
            let mut best_pos = b[i];
            let mut best = f64::INFINITY;
            for pos in (lo + 1)..hi {
                let cost = group_cost(lo, pos) + group_cost(pos, hi);
                if cost < best {
                    best = cost;
                    best_pos = pos;
                }
            }
            if best_pos != b[i] {
                b[i] = best_pos;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    let mut assignment = vec![0u32; model.lens.len()];
    let mut g = 0usize;
    for (i, a) in atoms.iter().enumerate() {
        while g < b.len() && i >= b[g] {
            g += 1;
        }
        for ch in assignment[a.lo..a.hi].iter_mut() {
            *ch = g as u32;
        }
    }
    assignment
}

/// Ensures every channel carries at least one unit (a seed can starve
/// one): steal the last unit of the most-populated channel.
fn repair_empty_channels(model: &CostModel, assignment: &mut [u32]) {
    let c = model.channels as usize;
    loop {
        let mut units_c = vec![0u32; c];
        for &ch in assignment.iter() {
            units_c[ch as usize] += 1;
        }
        let Some(empty) = units_c.iter().position(|&k| k == 0) else {
            return;
        };
        let donor = units_c
            .iter()
            .enumerate()
            .max_by_key(|&(_, &k)| k)
            .map(|(ch, _)| ch as u32)
            .expect("at least one channel");
        let u = assignment
            .iter()
            .rposition(|&ch| ch == donor)
            .expect("donor has units");
        assignment[u] = empty as u32;
    }
}

/// Relabels channels so channel 0 carries the highest entry weight per
/// packet: clients tune in on channel 0, so starting on the hottest
/// stream shortens the first navigation step. Pure relabeling — the
/// model's cost is label-invariant.
fn relabel_hottest_first(model: &CostModel, assignment: &mut [u32]) {
    let c = model.channels as usize;
    let mut weight = vec![0.0f64; c];
    let mut len = vec![0u64; c];
    for (u, &ch) in assignment.iter().enumerate() {
        weight[ch as usize] += model.entry[u];
        len[ch as usize] += model.lens[u];
    }
    let mut order: Vec<usize> = (0..c).collect();
    order.sort_by(|&a, &b| {
        let da = weight[a] / len[a].max(1) as f64;
        let db = weight[b] / len[b].max(1) as f64;
        db.total_cmp(&da).then(a.cmp(&b))
    });
    let mut relabel = vec![0u32; c];
    for (new, &old) in order.iter().enumerate() {
        relabel[old] = new as u32;
    }
    for ch in assignment.iter_mut() {
        *ch = relabel[*ch as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(lens: &[u32]) -> UnitSchema {
        let mut starts = Vec::new();
        for &l in lens {
            starts.push(true);
            starts.extend(std::iter::repeat_n(false, l as usize - 1));
        }
        UnitSchema::from_unit_starts(&starts)
    }

    #[test]
    fn schema_derives_starts_and_lens() {
        let s = schema(&[2, 1, 3]);
        assert_eq!(s.n_units(), 3);
        assert_eq!((s.start(0), s.len_of(0)), (0, 2));
        assert_eq!((s.start(2), s.len_of(2)), (3, 3));
        assert_eq!(s.total_packets(), 6);
    }

    #[test]
    fn cost_model_prefers_hot_units_on_short_channels() {
        // Eight one-packet units; unit 0 is read every query, the rest
        // almost never. A placement that isolates unit 0 on its own
        // channel (cycle length 1) must beat the balanced split.
        let s = schema(&[1; 8]);
        let mut counts = vec![1u64; 8];
        counts[0] = 1000;
        let p = AccessProfile::from_counts(&counts, 1000);
        let m = CostModel::new(&s, &p, 2, 0, AntennaConfig::single());
        let isolated = m.predicted_latency_packets(&[1, 0, 0, 0, 0, 0, 0, 0]);
        let balanced = m.predicted_latency_packets(&[0, 0, 0, 0, 1, 1, 1, 1]);
        assert!(isolated < balanced, "{isolated} !< {balanced}");
    }

    #[test]
    fn cost_model_rewards_preserved_adjacency() {
        // Uniform profile: blocked arcs (adjacency kept) must beat a
        // stripe (every entry re-waits) at equal channel lengths.
        let s = schema(&[1; 8]);
        let p = AccessProfile::uniform(8);
        let m = CostModel::new(&s, &p, 2, 0, AntennaConfig::single());
        let blocked = m.predicted_latency_packets(&[0, 0, 0, 0, 1, 1, 1, 1]);
        let stripe = m.predicted_latency_packets(&[0, 1, 0, 1, 0, 1, 0, 1]);
        assert!(blocked < stripe, "{blocked} !< {stripe}");
    }

    #[test]
    fn optimizer_isolates_the_hotspot() {
        // 16 units: units 0..4 are hot (a contiguous hotspot), the rest
        // cold. The optimizer must place the hotspot on a short channel:
        // the hot channel's packet count must be well below a balanced
        // quarter of the cycle.
        let lens = vec![2u32; 16];
        let s = schema(&lens);
        let mut counts = vec![1u64; 32];
        counts[..8].fill(500);
        let p = AccessProfile::from_counts(&counts, 100);
        let opt = optimize_placement(
            &s,
            &p,
            4,
            2,
            AntennaConfig::single(),
            &OptimizeOptions::default(),
        );
        // Hot units all share one channel (and after relabeling it is
        // channel 0, where clients tune in).
        let hot_ch = opt.assignment[0];
        assert_eq!(hot_ch, 0);
        assert!(opt.assignment[..4].iter().all(|&c| c == hot_ch));
        let hot_packets: u64 = opt
            .assignment
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == hot_ch)
            .map(|(u, _)| lens[u] as u64)
            .sum();
        assert!(hot_packets <= 10, "hot channel too long: {hot_packets}");
        // And the result is never worse than the balanced blocked
        // baseline under the same model (here the hotspot happens to
        // align with a blocked arc, so the two can tie).
        let m = CostModel::new(&s, &p, 4, 2, AntennaConfig::single());
        let blocked: Vec<u32> = (0..16).map(|u| (u / 4) as u32).collect();
        assert!(
            opt.predicted_latency_packets <= m.predicted_latency_packets(&blocked) + 1e-9,
            "optimizer lost to its own seed"
        );
    }

    #[test]
    fn optimizer_is_deterministic_and_valid() {
        let s = schema(&[3, 1, 2, 2, 1, 1, 4, 2, 1, 1]);
        let mut counts = vec![2u64; 18];
        counts[0] = 40;
        counts[9] = 90;
        let p = AccessProfile::from_counts(&counts, 10);
        let run = || {
            optimize_placement(
                &s,
                &p,
                3,
                1,
                AntennaConfig::new(2),
                &OptimizeOptions::default(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.assignment.len(), s.n_units());
        for c in 0..3u32 {
            assert!(a.assignment.contains(&c), "channel {c} starved");
        }
        let cfg = a.config(3, 1);
        assert_eq!(cfg.channels, 3);
        assert!(matches!(cfg.placement, Placement::Explicit(_)));
    }

    #[test]
    fn single_channel_is_the_trivial_assignment() {
        let s = schema(&[1, 2, 1]);
        let p = AccessProfile::uniform(4);
        let opt = optimize_placement(
            &s,
            &p,
            1,
            0,
            AntennaConfig::single(),
            &OptimizeOptions::default(),
        );
        assert_eq!(opt.assignment, vec![0, 0, 0]);
    }
}
