//! Broadcast programs: the repeating packet cycle of a base station.

use crate::channel::{ChannelConfig, ChannelLayout, LayoutError};

/// Coarse classification of a packet's content, used by the link-error
/// model to decide whether a loss draw applies (see [`crate::LossScope`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketClass {
    /// Index information: DSI index tables, tree nodes, control tables.
    Index,
    /// The first packet of a data object, carrying its key/coordinates.
    ObjectHeader,
    /// Remaining packets of a data object's 1024-byte record.
    ObjectPayload,
}

/// Implemented by scheme-specific packet payload types so the generic
/// [`crate::Tuner`] can classify what a client is receiving.
pub trait Payload {
    /// The class of this packet.
    fn class(&self) -> PacketClass;

    /// Whether this packet begins an indivisible broadcast unit (an index
    /// table, a tree node, an object header). Continuation packets (later
    /// table/node parts, object payload packets) return `false`; the
    /// multi-channel scheduler never splits a unit across channels, so
    /// sequential multi-packet reads stay on one channel. Defaults to
    /// `true` (every packet its own unit).
    fn unit_start(&self) -> bool {
        true
    }

    /// Whether this packet begins a broadcast *frame* — the granularity a
    /// client scans serially (a DSI index table plus the objects that
    /// follow it). [`crate::Placement::StripeFrames`] keeps whole frames
    /// on one channel. Defaults to [`Payload::unit_start`] (every unit its
    /// own frame); schemes with a larger scan granularity override it, or
    /// pass explicit boundaries via
    /// [`Program::with_channels_frames`].
    fn frame_start(&self) -> bool {
        self.unit_start()
    }
}

/// One broadcast cycle: `len()` packets of `capacity` bytes each, repeated
/// forever by the base station. Absolute packet indices (`u64`, from an
/// arbitrary epoch) address the infinite repetition; `abs % len()` is the
/// cycle-relative position.
#[derive(Debug, Clone)]
pub struct Program<P> {
    capacity: u32,
    packets: Vec<P>,
    /// Channel assignment; `None` for the single-channel broadcast (flat
    /// position == channel position, no maps materialized).
    layout: Option<ChannelLayout>,
    switch_cost: u32,
    n_channels: u32,
}

impl<P> Program<P> {
    /// Creates a single-channel program from its packet sequence.
    ///
    /// # Panics
    ///
    /// Panics if the cycle is empty or the capacity is zero.
    pub fn new(capacity: u32, packets: Vec<P>) -> Self {
        match Self::try_new(capacity, packets) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Program::new`] returning a [`LayoutError`] instead of panicking.
    pub fn try_new(capacity: u32, packets: Vec<P>) -> Result<Self, LayoutError> {
        if capacity == 0 {
            return Err(LayoutError::ZeroCapacity);
        }
        if packets.is_empty() {
            return Err(LayoutError::EmptyCycle);
        }
        Ok(Self {
            capacity,
            packets,
            layout: None,
            switch_cost: 0,
            n_channels: 1,
        })
    }

    /// Packet capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Number of parallel channels.
    #[inline]
    pub fn n_channels(&self) -> u32 {
        self.n_channels
    }

    /// Latency cost of re-tuning to another channel, in packets.
    #[inline]
    pub fn switch_cost(&self) -> u32 {
        self.switch_cost
    }

    /// Whether the units were assigned by an explicit per-unit placement
    /// map ([`crate::Placement::Explicit`]). Explicit maps are the one
    /// placement whose every-tune-in-terminates guarantee is checked
    /// rather than structural, so static analyzers give them an extra
    /// per-channel index-coverage pass.
    #[inline]
    pub fn placement_is_explicit(&self) -> bool {
        self.layout.as_ref().is_some_and(|l| l.explicit)
    }

    /// The channel carrying the packet at flat cycle position `flat_pos`.
    #[inline]
    pub fn channel_of(&self, flat_pos: u64) -> u32 {
        match &self.layout {
            None => 0,
            Some(l) => l.chan_of[(flat_pos % self.len()) as usize],
        }
    }

    /// Packets per cycle of channel `channel` (channels repeat their own,
    /// possibly shorter, cycles; all tick in lockstep).
    #[inline]
    pub fn channel_len(&self, channel: u32) -> u64 {
        match &self.layout {
            None => self.len(),
            Some(l) => l.by_channel[channel as usize].len() as u64,
        }
    }

    /// Flat cycle position of the packet channel `channel` broadcasts at
    /// absolute instant `abs`.
    #[inline]
    pub fn flat_at(&self, channel: u32, abs: u64) -> u64 {
        match &self.layout {
            None => abs % self.len(),
            Some(l) => {
                let slots = &l.by_channel[channel as usize];
                slots[(abs % slots.len() as u64) as usize] as u64
            }
        }
    }

    /// The packet channel `channel` broadcasts at absolute instant `abs`.
    #[inline]
    pub fn packet_at(&self, channel: u32, abs: u64) -> &P {
        &self.packets[self.flat_at(channel, abs) as usize]
    }

    /// The earliest absolute instant `t >= from` at which the packet at
    /// flat position `flat_pos` airs **on its own channel**. This is the
    /// channel-aware generalization of [`Program::next_occurrence`]; for a
    /// single channel the two agree.
    #[inline]
    pub fn next_occurrence_on(&self, from: u64, flat_pos: u64) -> u64 {
        match &self.layout {
            None => self.next_occurrence(from, flat_pos),
            Some(l) => {
                let flat = (flat_pos % self.len()) as usize;
                let len = l.by_channel[l.chan_of[flat] as usize].len() as u64;
                let q = l.chan_pos[flat];
                let from_rel = from % len;
                from + (q + len - from_rel) % len
            }
        }
    }

    /// Packets per cycle.
    #[inline]
    pub fn len(&self) -> u64 {
        self.packets.len() as u64
    }

    /// A program is never empty (checked at construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Bytes per cycle.
    #[inline]
    pub fn cycle_bytes(&self) -> u64 {
        self.len() * self.capacity as u64
    }

    /// The packet broadcast at absolute instant `abs`.
    #[inline]
    pub fn get(&self, abs: u64) -> &P {
        &self.packets[(abs % self.len()) as usize]
    }

    /// Iterates over one cycle's packets in broadcast order.
    pub fn iter(&self) -> impl Iterator<Item = &P> {
        self.packets.iter()
    }

    /// The earliest absolute instant `t >= from` whose cycle-relative
    /// position equals `cycle_pos`. This is how a client converts an index
    /// pointer ("the object is at position *p* of the cycle") into a
    /// wake-up time; pointers into the past roll over to the next cycle.
    #[inline]
    pub fn next_occurrence(&self, from: u64, cycle_pos: u64) -> u64 {
        let len = self.len();
        debug_assert!(cycle_pos < len, "cycle position {cycle_pos} out of range");
        let from_rel = from % len;
        let delta = (cycle_pos + len - from_rel) % len;
        from + delta
    }

    /// The earliest absolute instant strictly after `from` at `cycle_pos`.
    #[inline]
    pub fn next_occurrence_after(&self, from: u64, cycle_pos: u64) -> u64 {
        self.next_occurrence(from + 1, cycle_pos)
    }
}

impl<P: Payload> Program<P> {
    /// Which flat positions begin an indivisible unit (`true` per
    /// [`Payload::unit_start`]). This is the unit structure the
    /// multi-channel scheduler and the placement optimizer
    /// ([`crate::optimize::UnitSchema`]) operate on.
    pub fn unit_starts(&self) -> Vec<bool> {
        self.packets.iter().map(|p| p.unit_start()).collect()
    }

    /// Creates a program scheduled over the channels of `cfg`. The packet
    /// sequence is the flat single-channel cycle (the schema clients
    /// address); the scheduler assigns its indivisible units to channels
    /// per the placement policy. `cfg.channels == 1` is exactly
    /// [`Program::new`].
    ///
    /// # Panics
    ///
    /// Panics on an empty cycle, zero capacity, an invalid channel
    /// configuration, or a placement that leaves some channel empty.
    pub fn with_channels(capacity: u32, packets: Vec<P>, cfg: ChannelConfig) -> Self {
        let frame_starts: Vec<bool> = packets.iter().map(|p| p.frame_start()).collect();
        Self::with_channels_frames(capacity, packets, cfg, &frame_starts)
    }

    /// [`Program::with_channels`] returning the first structural defect as
    /// a [`LayoutError`] instead of panicking.
    pub fn try_with_channels(
        capacity: u32,
        packets: Vec<P>,
        cfg: ChannelConfig,
    ) -> Result<Self, LayoutError> {
        let frame_starts: Vec<bool> = packets.iter().map(|p| p.frame_start()).collect();
        Self::try_with_channels_frames(capacity, packets, cfg, &frame_starts)
    }

    /// [`Program::with_channels`] with explicit frame boundaries, for
    /// schemes whose frame granularity is not computable from a packet
    /// alone (e.g. the R-tree's segments, whose replicated path copies
    /// look identical at every occurrence). `frame_starts[i]` marks the
    /// flat positions that begin a frame; every frame start must also be a
    /// unit start.
    pub fn with_channels_frames(
        capacity: u32,
        packets: Vec<P>,
        cfg: ChannelConfig,
        frame_starts: &[bool],
    ) -> Self {
        match Self::try_with_channels_frames(capacity, packets, cfg, frame_starts) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Program::with_channels_frames`] returning the first structural
    /// defect as a [`LayoutError`] instead of panicking.
    pub fn try_with_channels_frames(
        capacity: u32,
        packets: Vec<P>,
        cfg: ChannelConfig,
        frame_starts: &[bool],
    ) -> Result<Self, LayoutError> {
        cfg.try_validate()?;
        assert_eq!(
            frame_starts.len(),
            packets.len(),
            "one frame flag per packet"
        );
        let mut prog = Self::try_new(capacity, packets)?;
        if cfg.channels > 1 {
            let unit_starts: Vec<bool> = prog.packets.iter().map(|p| p.unit_start()).collect();
            debug_assert!(
                frame_starts
                    .iter()
                    .zip(unit_starts.iter())
                    .all(|(&f, &u)| !f || u),
                "every frame start must be a unit start"
            );
            let is_index: Vec<bool> = prog
                .packets
                .iter()
                .map(|p| p.class() == PacketClass::Index)
                .collect();
            prog.layout = Some(ChannelLayout::try_build(
                &cfg,
                &unit_starts,
                &is_index,
                frame_starts,
            )?);
            prog.n_channels = cfg.channels;
        }
        prog.switch_cost = cfg.switch_cost;
        Ok(prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct P(u32);
    impl Payload for P {
        fn class(&self) -> PacketClass {
            PacketClass::Index
        }
    }

    fn program() -> Program<P> {
        Program::new(64, (0..10).map(P).collect())
    }

    #[test]
    fn wraps_around_cycle() {
        let p = program();
        assert_eq!(p.get(3), &P(3));
        assert_eq!(p.get(13), &P(3));
        assert_eq!(p.get(10_000_000_007), &P(7));
    }

    #[test]
    fn cycle_bytes() {
        assert_eq!(program().cycle_bytes(), 640);
    }

    #[test]
    fn next_occurrence_now_or_future() {
        let p = program();
        // Already at the position: zero wait.
        assert_eq!(p.next_occurrence(23, 3), 23);
        // Position ahead in the same cycle.
        assert_eq!(p.next_occurrence(23, 7), 27);
        // Position behind: wait for next cycle.
        assert_eq!(p.next_occurrence(23, 1), 31);
        // Strictly-after variant skips the current instant.
        assert_eq!(p.next_occurrence_after(23, 3), 33);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_program_rejected() {
        let _: Program<P> = Program::new(64, vec![]);
    }

    #[test]
    fn channelized_program_is_consistent() {
        use crate::channel::ChannelConfig;
        // 10 one-packet units striped over 3 channels: 4 + 3 + 3 units.
        let p = Program::with_channels(64, (0..10).map(P).collect(), ChannelConfig::striped(3, 2));
        assert_eq!(p.n_channels(), 3);
        assert_eq!(p.switch_cost(), 2);
        let total: u64 = (0..3).map(|c| p.channel_len(c)).sum();
        assert_eq!(total, p.len());
        assert_eq!(p.channel_len(0), 4);
        for flat in 0..p.len() {
            let c = p.channel_of(flat);
            // The packet airs on its channel at its next occurrence, and
            // never earlier.
            let t = p.next_occurrence_on(17, flat);
            assert!(t >= 17 && t - 17 < p.channel_len(c));
            assert_eq!(p.flat_at(c, t), flat);
            assert_eq!(p.packet_at(c, t), p.get(flat));
        }
    }

    #[test]
    fn single_channel_program_keeps_flat_semantics() {
        let p = program();
        assert_eq!(p.n_channels(), 1);
        assert_eq!(p.channel_len(0), p.len());
        for flat in 0..p.len() {
            assert_eq!(p.channel_of(flat), 0);
            assert_eq!(p.flat_at(0, flat + 3 * p.len()), flat);
            assert_eq!(p.next_occurrence_on(23, flat), p.next_occurrence(23, flat));
        }
    }
}
