//! Broadcast programs: the repeating packet cycle of a base station.

/// Coarse classification of a packet's content, used by the link-error
/// model to decide whether a loss draw applies (see [`crate::LossScope`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketClass {
    /// Index information: DSI index tables, tree nodes, control tables.
    Index,
    /// The first packet of a data object, carrying its key/coordinates.
    ObjectHeader,
    /// Remaining packets of a data object's 1024-byte record.
    ObjectPayload,
}

/// Implemented by scheme-specific packet payload types so the generic
/// [`crate::Tuner`] can classify what a client is receiving.
pub trait Payload {
    /// The class of this packet.
    fn class(&self) -> PacketClass;
}

/// One broadcast cycle: `len()` packets of `capacity` bytes each, repeated
/// forever by the base station. Absolute packet indices (`u64`, from an
/// arbitrary epoch) address the infinite repetition; `abs % len()` is the
/// cycle-relative position.
#[derive(Debug, Clone)]
pub struct Program<P> {
    capacity: u32,
    packets: Vec<P>,
}

impl<P> Program<P> {
    /// Creates a program from its packet sequence.
    ///
    /// # Panics
    ///
    /// Panics if the cycle is empty or the capacity is zero.
    pub fn new(capacity: u32, packets: Vec<P>) -> Self {
        assert!(capacity > 0, "packet capacity must be positive");
        assert!(!packets.is_empty(), "broadcast cycle must not be empty");
        Self { capacity, packets }
    }

    /// Packet capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Packets per cycle.
    #[inline]
    pub fn len(&self) -> u64 {
        self.packets.len() as u64
    }

    /// A program is never empty (checked at construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Bytes per cycle.
    #[inline]
    pub fn cycle_bytes(&self) -> u64 {
        self.len() * self.capacity as u64
    }

    /// The packet broadcast at absolute instant `abs`.
    #[inline]
    pub fn get(&self, abs: u64) -> &P {
        &self.packets[(abs % self.len()) as usize]
    }

    /// Iterates over one cycle's packets in broadcast order.
    pub fn iter(&self) -> impl Iterator<Item = &P> {
        self.packets.iter()
    }

    /// The earliest absolute instant `t >= from` whose cycle-relative
    /// position equals `cycle_pos`. This is how a client converts an index
    /// pointer ("the object is at position *p* of the cycle") into a
    /// wake-up time; pointers into the past roll over to the next cycle.
    #[inline]
    pub fn next_occurrence(&self, from: u64, cycle_pos: u64) -> u64 {
        let len = self.len();
        debug_assert!(cycle_pos < len, "cycle position {cycle_pos} out of range");
        let from_rel = from % len;
        let delta = (cycle_pos + len - from_rel) % len;
        from + delta
    }

    /// The earliest absolute instant strictly after `from` at `cycle_pos`.
    #[inline]
    pub fn next_occurrence_after(&self, from: u64, cycle_pos: u64) -> u64 {
        self.next_occurrence(from + 1, cycle_pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct P(u32);
    impl Payload for P {
        fn class(&self) -> PacketClass {
            PacketClass::Index
        }
    }

    fn program() -> Program<P> {
        Program::new(64, (0..10).map(P).collect())
    }

    #[test]
    fn wraps_around_cycle() {
        let p = program();
        assert_eq!(p.get(3), &P(3));
        assert_eq!(p.get(13), &P(3));
        assert_eq!(p.get(10_000_000_007), &P(7));
    }

    #[test]
    fn cycle_bytes() {
        assert_eq!(program().cycle_bytes(), 640);
    }

    #[test]
    fn next_occurrence_now_or_future() {
        let p = program();
        // Already at the position: zero wait.
        assert_eq!(p.next_occurrence(23, 3), 23);
        // Position ahead in the same cycle.
        assert_eq!(p.next_occurrence(23, 7), 27);
        // Position behind: wait for next cycle.
        assert_eq!(p.next_occurrence(23, 1), 31);
        // Strictly-after variant skips the current instant.
        assert_eq!(p.next_occurrence_after(23, 3), 33);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_program_rejected() {
        let _: Program<P> = Program::new(64, vec![]);
    }
}
