//! On-air R-tree query processing.
//!
//! The client seeds its search by reading the root copy at the next
//! segment boundary, then processes a pending queue ordered by broadcast
//! position: pop the earliest item, doze to it, read it, and push whatever
//! qualifies. Child pointers resolve to the child's next occurrence, so a
//! child already broadcast this cycle rolls over to the next one — the
//! branch-and-bound-vs-broadcast-order mismatch of the paper's Figure 1.
//!
//! Link errors follow the paper's tree-index analysis: a lost node can
//! only be re-read at its next occurrence (the next cycle for subtree
//! nodes, the next covering segment for replicated path nodes), and a lost
//! root seed means waiting for the next segment boundary.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dsi_broadcast::Tuner;
use dsi_geom::{dist2, Point, Rect};

use crate::air::{RTreeAir, RtPacket};
use crate::tree::Children;

/// A pending read, ordered by broadcast position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Item {
    Node { level: u8, idx: u32 },
    Object { obj: u32 },
}

/// Encodes an item as (kind, payload) so queues need no trait objects.
fn encode(item: Item) -> (u8, u32) {
    match item {
        Item::Node { level, idx } => (level, idx),
        Item::Object { obj } => (u8::MAX, obj),
    }
}

fn decode(kind: u8, payload: u32) -> Item {
    if kind == u8::MAX {
        Item::Object { obj: payload }
    } else {
        Item::Node {
            level: kind,
            idx: payload,
        }
    }
}

/// The traversal's pending reads. The single-receiver client pops by the
/// arrival scheduled at push time (the pinned pre-refactor order); a
/// multi-antenna client re-plans every pop through the tuner's
/// batch-arrival API instead, because scheduled keys go stale in both
/// directions as antennas retune — an airing can be missed (key too low)
/// or a switch-cost penalty can evaporate once the channel is monitored
/// (key too high), and either error costs up to a full channel cycle.
enum Pending {
    Scheduled(BinaryHeap<Reverse<(u64, u8, u32, u64)>>),
    Planned {
        /// (kind, payload, flat target) of each pending read.
        items: Vec<(u8, u32, u64)>,
        /// Reused flat-position buffer for the batch planner.
        flats: Vec<u64>,
    },
}

impl Pending {
    fn for_tuner(tuner: &Tuner<'_, RtPacket>) -> Self {
        if tuner.antennas() > 1 {
            Pending::Planned {
                items: Vec::new(),
                flats: Vec::new(),
            }
        } else {
            Pending::Scheduled(BinaryHeap::new())
        }
    }

    /// Queues a read of `item` at flat position `flat`; `at` is its
    /// arrival as scheduled by the caller (ignored by the planned
    /// variant, which re-derives arrivals at pop time).
    fn push(&mut self, at: u64, flat: u64, item: Item) {
        let (kind, payload) = encode(item);
        match self {
            Pending::Scheduled(heap) => heap.push(Reverse((at, kind, payload, flat))),
            Pending::Planned { items, .. } => items.push((kind, payload, flat)),
        }
    }

    /// The next read: earliest scheduled arrival (single receiver) or
    /// earliest current arrival across the monitored channels (planned).
    ///
    /// The planned variant re-derives each item's best readable copy
    /// (replicated path nodes have one copy per covering segment, and the
    /// earliest one changes as time passes) and picks through the tuner's
    /// duration-aware planner ([`Tuner::plan_resilient`], the loss-aware
    /// wrapper of [`Tuner::plan_earliest`]) — scheduled heap keys go
    /// stale in both directions as antennas retune, and either error
    /// costs up to a full channel cycle.
    fn pop(&mut self, air: &RTreeAir, tuner: &mut Tuner<'_, RtPacket>) -> Option<(Item, u64)> {
        match self {
            Pending::Scheduled(heap) => {
                let Reverse((_, kind, payload, flat)) = heap.pop()?;
                Some((decode(kind, payload), flat))
            }
            Pending::Planned { items, flats } => {
                for item in items.iter_mut() {
                    if item.0 != u8::MAX {
                        item.2 = air.node_arrival(tuner, item.0, item.1).1;
                    }
                }
                flats.clear();
                flats.extend(items.iter().map(|&(_, _, flat)| flat));
                let (pick, _) = tuner.plan_resilient(flats, |i| air.unit_dur(items[i].0))?;
                let (kind, payload, flat) = items.swap_remove(pick);
                Some((decode(kind, payload), flat))
            }
        }
    }
}

impl RTreeAir {
    /// Seeds the search with the earliest readable root copy (the root
    /// heads every segment, or is the first subtree node when the whole
    /// tree is one segment); lost copies are requeued by the main loop.
    fn seed(&self, tuner: &mut Tuner<'_, RtPacket>) -> Pending {
        let root_level = (self.tree.height() - 1) as u8;
        let mut pending = Pending::for_tuner(tuner);
        let (at, flat) = self.node_arrival(tuner, root_level, 0);
        pending.push(
            at,
            flat,
            Item::Node {
                level: root_level,
                idx: 0,
            },
        );
        pending
    }

    /// Reads all packets of a node slot; `Err` = lost.
    fn read_node(&self, tuner: &mut Tuner<'_, RtPacket>, level: u8) -> Result<(), ()> {
        for _ in 0..self.node_packets(level) {
            if tuner.read().is_err() {
                return Err(());
            }
        }
        Ok(())
    }

    /// Reads an object record; `Err` = some packet lost.
    fn read_object(&self, tuner: &mut Tuner<'_, RtPacket>) -> Result<(), ()> {
        for _ in 0..self.config.object_packets() {
            if tuner.read().is_err() {
                return Err(());
            }
        }
        Ok(())
    }

    /// Answers a window query on the air: ids of all objects inside
    /// `window`, ascending. Metrics accrue on `tuner`.
    pub fn window_query(&self, tuner: &mut Tuner<'_, RtPacket>, window: &Rect) -> Vec<u32> {
        let mut result = Vec::new();
        if !self.tree.root().mbr.intersects(window) {
            return result;
        }
        let mut pending = self.seed(tuner);
        while let Some((item, flat)) = pending.pop(self, tuner) {
            match item {
                Item::Node { level, idx } => {
                    tuner.goto(flat);
                    if self.read_node(tuner, level).is_err() {
                        // Wait for the node's rebroadcast.
                        let (next, nflat) = self.node_arrival(tuner, level, idx);
                        pending.push(next, nflat, Item::Node { level, idx });
                        continue;
                    }
                    let node = &self.tree.levels[level as usize][idx as usize];
                    match &node.children {
                        Children::Nodes(kids) => {
                            for &k in kids {
                                let child = &self.tree.levels[level as usize - 1][k as usize];
                                if child.mbr.intersects(window) {
                                    let (at, nflat) = self.node_arrival(tuner, level - 1, k);
                                    pending.push(
                                        at,
                                        nflat,
                                        Item::Node {
                                            level: level - 1,
                                            idx: k,
                                        },
                                    );
                                }
                            }
                        }
                        Children::Objects { start, count } => {
                            for obj in *start..*start + *count {
                                if window.contains(self.tree.objects[obj as usize].1) {
                                    let oflat = self.object_pos[obj as usize];
                                    pending.push(tuner.arrival(oflat), oflat, Item::Object { obj });
                                }
                            }
                        }
                    }
                }
                Item::Object { obj } => {
                    tuner.goto(flat);
                    if self.read_object(tuner).is_ok() {
                        result.push(self.tree.objects[obj as usize].0);
                    } else {
                        pending.push(tuner.arrival(flat), flat, Item::Object { obj });
                    }
                }
            }
        }
        result.sort_unstable();
        result
    }

    /// Answers a kNN query on the air: ids of the `k` nearest objects to
    /// `q` (ties by id), ascending. Metrics accrue on `tuner`.
    pub fn knn_query(&self, tuner: &mut Tuner<'_, RtPacket>, q: Point, k: usize) -> Vec<u32> {
        let k = k.min(self.tree.objects.len());
        if k == 0 {
            return Vec::new();
        }
        let mut cands = RtCandidates::new(k);
        let root_level = (self.tree.height() - 1) as u8;
        cands.add_virtual(
            Item::Node {
                level: root_level,
                idx: 0,
            },
            self.tree.root().mbr.max_dist2(q),
        );
        let mut pending = self.seed(tuner);
        while let Some((item, flat)) = pending.pop(self, tuner) {
            // Prune anything provably outside the search space.
            let min2 = match item {
                Item::Node { level, idx } => self.tree.levels[level as usize][idx as usize]
                    .mbr
                    .min_dist2(q),
                Item::Object { obj } => dist2(q, self.tree.objects[obj as usize].1),
            };
            if min2 > cands.r2() {
                cands.remove(item);
                continue;
            }
            match item {
                Item::Node { level, idx } => {
                    tuner.goto(flat);
                    if self.read_node(tuner, level).is_err() {
                        let (next, nflat) = self.node_arrival(tuner, level, idx);
                        pending.push(next, nflat, Item::Node { level, idx });
                        continue;
                    }
                    // Expanded: the node's virtual is replaced by its
                    // children's (disjoint subtrees keep candidates
                    // distinct).
                    cands.remove(item);
                    let node = &self.tree.levels[level as usize][idx as usize];
                    match &node.children {
                        Children::Nodes(kids) => {
                            for &k in kids {
                                let child = &self.tree.levels[level as usize - 1][k as usize];
                                if child.mbr.min_dist2(q) <= cands.r2() {
                                    let it = Item::Node {
                                        level: level - 1,
                                        idx: k,
                                    };
                                    cands.add_virtual(it, child.mbr.max_dist2(q));
                                    let (at, nflat) = self.node_arrival(tuner, level - 1, k);
                                    pending.push(at, nflat, it);
                                }
                            }
                        }
                        Children::Objects { start, count } => {
                            for obj in *start..*start + *count {
                                let (_, p) = self.tree.objects[obj as usize];
                                let d2 = dist2(q, p);
                                if d2 <= cands.r2() {
                                    let it = Item::Object { obj };
                                    cands.add_exact(it, d2);
                                    let oflat = self.object_pos[obj as usize];
                                    pending.push(tuner.arrival(oflat), oflat, it);
                                }
                            }
                        }
                    }
                }
                Item::Object { obj } => {
                    tuner.goto(flat);
                    if self.read_object(tuner).is_ok() {
                        cands.mark_retrieved(Item::Object { obj });
                    } else {
                        pending.push(tuner.arrival(flat), flat, Item::Object { obj });
                    }
                }
            }
        }
        cands.result_ids(&self.tree)
    }
}

impl dsi_broadcast::AirScheme for RTreeAir {
    type Packet = RtPacket;

    fn program(&self) -> &dsi_broadcast::Program<RtPacket> {
        RTreeAir::program(self)
    }

    fn window(&self, tuner: &mut Tuner<'_, RtPacket>, window: &Rect) -> Vec<u32> {
        self.window_query(tuner, window)
    }

    fn knn(&self, tuner: &mut Tuner<'_, RtPacket>, q: Point, k: usize) -> Vec<u32> {
        self.knn_query(tuner, q, k)
    }

    /// An R-tree client's first act is to seed at the earliest root copy,
    /// so that copy's arrival is the coalescing anchor. Computed through
    /// the same [`RTreeAir::node_arrival`] planner [`seed`] uses (on a
    /// scratch tuner), so the anchor cannot drift from the entry.
    fn tune_anchor(&self, start: u64) -> Option<u64> {
        if self.program().n_channels() != 1 {
            return None;
        }
        let tuner = Tuner::tune_in(self.program(), start, dsi_broadcast::LossModel::None, 0);
        let root_level = (self.tree.height() - 1) as u8;
        Some(self.node_arrival(&tuner, root_level, 0).0)
    }
}

/// Candidate bookkeeping for the air R-tree kNN: one virtual candidate per
/// pending (unexpanded) node — every unexpanded subtree holds at least one
/// object within its MBR's max-distance — plus exact candidates for leaf
/// entries. Subtrees in the pending set are disjoint and disjoint from all
/// seen leaf entries, so candidates always denote distinct objects.
struct RtCandidates {
    k: usize,
    /// (key, upper bound, exact distance or NaN, retrieved)
    // dsi-lint: allow(hash): candidate set; results leave through a full (d2, id) sort
    entries: std::collections::HashMap<(u8, u32), CandState>,
    r2_cache: std::cell::Cell<f64>,
    dirty: std::cell::Cell<bool>,
}

#[derive(Clone, Copy)]
struct CandState {
    ub2: f64,
    d2: f64,
    retrieved: bool,
}

fn key_of(item: Item) -> (u8, u32) {
    match item {
        Item::Node { level, idx } => (level, idx),
        Item::Object { obj } => (u8::MAX, obj),
    }
}

impl RtCandidates {
    fn new(k: usize) -> Self {
        Self {
            k,
            // dsi-lint: allow(hash): see the field's rationale above
            entries: std::collections::HashMap::new(),
            r2_cache: std::cell::Cell::new(f64::INFINITY),
            dirty: std::cell::Cell::new(true),
        }
    }

    fn r2(&self) -> f64 {
        if self.dirty.get() {
            let v = if self.entries.len() < self.k {
                f64::INFINITY
            } else {
                let mut ubs: Vec<f64> = self.entries.values().map(|c| c.ub2).collect();
                let (_, kth, _) = ubs.select_nth_unstable_by(self.k - 1, |a, b| {
                    a.partial_cmp(b).expect("bounds are never NaN")
                });
                *kth
            };
            self.r2_cache.set(v);
            self.dirty.set(false);
        }
        self.r2_cache.get()
    }

    fn add_virtual(&mut self, item: Item, ub2: f64) {
        self.entries.insert(
            key_of(item),
            CandState {
                ub2,
                d2: f64::NAN,
                retrieved: false,
            },
        );
        self.dirty.set(true);
    }

    fn add_exact(&mut self, item: Item, d2: f64) {
        self.entries.insert(
            key_of(item),
            CandState {
                ub2: d2,
                d2,
                retrieved: false,
            },
        );
        self.dirty.set(true);
    }

    fn remove(&mut self, item: Item) {
        if self.entries.remove(&key_of(item)).is_some() {
            self.dirty.set(true);
        }
    }

    fn mark_retrieved(&mut self, item: Item) {
        if let Some(c) = self.entries.get_mut(&key_of(item)) {
            c.retrieved = true;
        }
    }

    /// Final answer: k nearest retrieved objects (distance, then id).
    fn result_ids(&self, tree: &crate::tree::RTree) -> Vec<u32> {
        let mut retr: Vec<(f64, u32)> = self
            .entries
            .iter()
            .filter(|(&(kind, _), c)| kind == u8::MAX && c.retrieved)
            .map(|(&(_, obj), c)| (c.d2, tree.objects[obj as usize].0))
            .collect();
        retr.sort_unstable_by(|a, b| a.partial_cmp(b).expect("distances are never NaN"));
        let mut ids: Vec<u32> = retr.into_iter().take(self.k).map(|(_, id)| id).collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::air::RtreeAirConfig;
    use dsi_broadcast::LossModel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn points(n: usize, seed: u64) -> Vec<(u32, Point)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n as u32)
            .map(|id| (id, Point::new(rng.gen(), rng.gen())))
            .collect()
    }

    fn brute_window(pts: &[(u32, Point)], w: &Rect) -> Vec<u32> {
        let mut v: Vec<u32> = pts
            .iter()
            .filter(|(_, p)| w.contains(*p))
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    fn brute_knn(pts: &[(u32, Point)], q: Point, k: usize) -> Vec<u32> {
        let mut v: Vec<(f64, u32)> = pts.iter().map(|&(id, p)| (dist2(q, p), id)).collect();
        v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let mut ids: Vec<u32> = v.into_iter().take(k).map(|(_, id)| id).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn window_matches_brute_force() {
        let pts = points(500, 11);
        for cap in [64u32, 128, 512] {
            let air = RTreeAir::build(&pts, RtreeAirConfig::new(cap));
            let mut rng = StdRng::seed_from_u64(5);
            for i in 0..20 {
                let c = Point::new(rng.gen(), rng.gen());
                let w = Rect::window_in_unit_square(c, 0.3);
                let start = (i * 9973) % air.program().len();
                let mut t = Tuner::tune_in(air.program(), start, LossModel::None, i);
                assert_eq!(
                    air.window_query(&mut t, &w),
                    brute_window(&pts, &w),
                    "cap {cap}"
                );
                let s = t.stats();
                assert!(s.latency_packets <= 3 * air.program().len());
            }
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let pts = points(500, 13);
        for cap in [64u32, 256] {
            let air = RTreeAir::build(&pts, RtreeAirConfig::new(cap));
            let mut rng = StdRng::seed_from_u64(6);
            for i in 0..15 {
                let q = Point::new(rng.gen(), rng.gen());
                for k in [1usize, 5, 10] {
                    let start = (i * 7919) % air.program().len();
                    let mut t = Tuner::tune_in(air.program(), start, LossModel::None, i);
                    assert_eq!(
                        air.knn_query(&mut t, q, k),
                        brute_knn(&pts, q, k),
                        "cap {cap} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn queries_survive_loss() {
        let pts = points(300, 17);
        let air = RTreeAir::build(&pts, RtreeAirConfig::new(64));
        let mut rng = StdRng::seed_from_u64(8);
        for i in 0..10 {
            let c = Point::new(rng.gen(), rng.gen());
            let w = Rect::window_in_unit_square(c, 0.25);
            let mut t = Tuner::tune_in(air.program(), i * 131, LossModel::iid(0.4), i);
            assert_eq!(air.window_query(&mut t, &w), brute_window(&pts, &w));
            let q = Point::new(rng.gen(), rng.gen());
            let mut t = Tuner::tune_in(air.program(), i * 131, LossModel::iid(0.4), i);
            assert_eq!(air.knn_query(&mut t, q, 5), brute_knn(&pts, q, 5));
        }
    }

    #[test]
    fn empty_window_costs_one_root_read() {
        let pts = points(200, 19);
        let air = RTreeAir::build(&pts, RtreeAirConfig::new(64));
        let mut t = Tuner::tune_in(air.program(), 3, LossModel::None, 1);
        // Window outside the root MBR: answered without any reads.
        let got = air.window_query(&mut t, &Rect::new(2.0, 2.0, 3.0, 3.0));
        assert!(got.is_empty());
        assert_eq!(t.stats().tuning_packets, 0);
    }

    #[test]
    fn k_equals_n() {
        let pts = points(50, 23);
        let air = RTreeAir::build(&pts, RtreeAirConfig::new(128));
        let mut t = Tuner::tune_in(air.program(), 0, LossModel::None, 1);
        let got = air.knn_query(&mut t, Point::new(0.5, 0.5), 50);
        assert_eq!(got.len(), 50);
    }
}
