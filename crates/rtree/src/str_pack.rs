//! Sort-Tile-Recursive bulk loading (Leutenegger et al., ICDE'97).

use dsi_geom::{Point, Rect};

use crate::tree::{Children, Node, RTree};

/// Bulk-loads an R-tree by STR packing: sort by x, cut into ⌈√P⌉ vertical
/// strips of ⌈√P⌉ pages each, sort every strip by y, and pack runs of
/// `leaf_fanout` objects into leaves; then apply the same tiling
/// recursively to node centres with `node_fanout` until one root remains.
///
/// # Panics
///
/// Panics if `objects` is empty or a fanout is below 2.
pub fn str_pack(objects: &[(u32, Point)], leaf_fanout: u32, node_fanout: u32) -> RTree {
    assert!(!objects.is_empty(), "cannot pack an empty R-tree");
    assert!(leaf_fanout >= 2 && node_fanout >= 2, "fanouts must be >= 2");

    // Leaf level: tile the objects; the tiled order becomes the canonical
    // object order so every leaf holds a contiguous run.
    let runs = tile(objects.to_vec(), leaf_fanout, |&(_, p)| p);
    let mut object_order = Vec::with_capacity(objects.len());
    let mut leaves = Vec::new();
    for run in runs {
        let start = object_order.len() as u32;
        let mut mbr = Rect::EMPTY;
        for &(id, p) in &run {
            mbr.expand(p);
            object_order.push((id, p));
        }
        leaves.push(Node {
            mbr,
            children: Children::Objects {
                start,
                count: run.len() as u32,
            },
        });
    }

    // Upper levels: tile node centres; children are explicit index lists,
    // so no reordering of lower levels is needed.
    let mut levels = vec![leaves];
    while levels.last().expect("non-empty").len() > 1 {
        let below = levels.last().expect("non-empty");
        let refs: Vec<(u32, Point)> = below
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.mbr.center()))
            .collect();
        let runs = tile(refs, node_fanout, |&(_, c)| c);
        let mut parents = Vec::with_capacity(runs.len());
        for run in runs {
            let mut mbr = Rect::EMPTY;
            let mut kids = Vec::with_capacity(run.len());
            for &(idx, _) in &run {
                mbr = mbr.union(&below[idx as usize].mbr);
                kids.push(idx);
            }
            parents.push(Node {
                mbr,
                children: Children::Nodes(kids),
            });
        }
        levels.push(parents);
    }

    RTree {
        levels,
        objects: object_order,
    }
}

/// STR tiling: sorts by x, slices into ⌈√P⌉ vertical strips, sorts each
/// strip by y and chunks into runs of `fanout`.
fn tile<T: Clone>(mut items: Vec<T>, fanout: u32, pos: impl Fn(&T) -> Point) -> Vec<Vec<T>> {
    let pages = items.len().div_ceil(fanout as usize);
    let strips = (pages as f64).sqrt().ceil() as usize;
    let strip_len = (strips * fanout as usize).max(1);
    items.sort_by(|a, b| {
        pos(a)
            .x
            .partial_cmp(&pos(b).x)
            .expect("coordinates are not NaN")
    });
    let mut runs = Vec::with_capacity(pages);
    for strip in items.chunks_mut(strip_len) {
        strip.sort_by(|a, b| {
            pos(a)
                .y
                .partial_cmp(&pos(b).y)
                .expect("coordinates are not NaN")
        });
        for run in strip.chunks(fanout as usize) {
            runs.push(run.to_vec());
        }
    }
    runs
}
