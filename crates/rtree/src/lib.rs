//! STR-packed R-tree baseline with a distributed air layout.
//!
//! The paper compares DSI against an R-tree built with the STR packing
//! scheme (Leutenegger et al., ICDE'97 — "to provide an optimal
//! performance") and broadcast with the distributed indexing scheme of
//! Imielinski et al. This crate is that baseline, end to end:
//!
//! * [`RTree`] / [`str_pack`] — bulk loading by Sort-Tile-Recursive.
//! * [`RTreeAir`] — the broadcast layout: the cycle is a sequence of
//!   *segments*, one per subtree at a cut level; each segment carries a
//!   replicated copy of the path from the root (so clients can start at
//!   the next segment instead of waiting for the root), the segment's
//!   subtree nodes (each broadcast once), and its data objects.
//! * On-air [`RTreeAir::window_query`] / [`RTreeAir::knn_query`] — a
//!   pending queue ordered by broadcast position: navigation strictly
//!   follows the broadcast order, so a child whose position already passed
//!   costs a wrap to the next cycle. This is precisely the weakness the
//!   paper's Figure 1 illustrates, and it emerges here naturally rather
//!   than being modelled.
//!
//! Node sizing follows the paper's accounting: an internal entry is an MBR
//! (32 bytes) + pointer (2 bytes), a leaf entry a point (16 bytes) +
//! pointer; at a 32-byte packet capacity an internal entry does not fit,
//! which is why the paper (and our experiments) exclude R-tree at 32 B.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod air;
mod client;
mod str_pack;
mod tree;
mod verify;

pub use air::{RTreeAir, RtPacket, RtreeAirConfig};
pub use str_pack::str_pack;
pub use tree::{Node, RTree, INTERNAL_ENTRY_BYTES, LEAF_ENTRY_BYTES, NODE_HEADER_BYTES};
