//! The packed R-tree structure.

use dsi_geom::{Point, Rect};

/// On-air size of an internal node entry: MBR (4 × f64) + 2-byte pointer.
pub const INTERNAL_ENTRY_BYTES: u32 = 34;
/// On-air size of a leaf entry: point (2 × f64) + 2-byte pointer.
pub const LEAF_ENTRY_BYTES: u32 = 18;
/// Per-node header (entry count).
pub const NODE_HEADER_BYTES: u32 = 2;

/// What a node points at.
#[derive(Debug, Clone)]
pub enum Children {
    /// Indices into the next-lower node level.
    Nodes(Vec<u32>),
    /// A contiguous run of the tree's object array (leaves).
    Objects {
        /// First object index.
        start: u32,
        /// Number of objects.
        count: u32,
    },
}

/// One R-tree node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Minimum bounding rectangle of everything below this node.
    pub mbr: Rect,
    /// Children (lower-level nodes or objects).
    pub children: Children,
}

impl Node {
    /// Number of entries in the node (defines its on-air size).
    pub fn entry_count(&self) -> u32 {
        match &self.children {
            Children::Nodes(v) => v.len() as u32,
            Children::Objects { count, .. } => *count,
        }
    }
}

/// A bulk-loaded R-tree. `levels[0]` are the leaves; the last level holds
/// the single root.
#[derive(Debug, Clone)]
pub struct RTree {
    /// Nodes per level, leaves first.
    pub levels: Vec<Vec<Node>>,
    /// Objects in leaf-packing order: (id, position).
    pub objects: Vec<(u32, Point)>,
}

impl RTree {
    /// Height of the tree in node levels (leaves count as one).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// The root node.
    pub fn root(&self) -> &Node {
        &self.levels[self.height() - 1][0]
    }

    /// Checks the structural invariants; used by tests and debug builds.
    ///
    /// # Panics
    ///
    /// Panics when an invariant is violated.
    pub fn validate(&self) {
        assert!(!self.levels.is_empty(), "tree has no levels");
        assert_eq!(
            self.levels.last().expect("non-empty").len(),
            1,
            "root level must be single"
        );
        // Leaves: MBR contains objects; ranges partition the object array.
        let mut covered = vec![false; self.objects.len()];
        for leaf in &self.levels[0] {
            let Children::Objects { start, count } = &leaf.children else {
                panic!("leaf without object children");
            };
            for i in *start..*start + *count {
                assert!(!covered[i as usize], "object {i} in two leaves");
                covered[i as usize] = true;
                assert!(
                    leaf.mbr.contains(self.objects[i as usize].1),
                    "object escapes its leaf MBR"
                );
            }
        }
        assert!(covered.iter().all(|&b| b), "objects not covered by leaves");
        // Internal levels: MBR contains child MBRs; children partition.
        for lv in 1..self.levels.len() {
            let mut covered = vec![false; self.levels[lv - 1].len()];
            for node in &self.levels[lv] {
                let Children::Nodes(kids) = &node.children else {
                    panic!("internal node with object children at level {lv}");
                };
                for &k in kids {
                    assert!(
                        !covered[k as usize],
                        "node {k} has two parents at level {lv}"
                    );
                    covered[k as usize] = true;
                    assert!(
                        node.mbr.contains_rect(&self.levels[lv - 1][k as usize].mbr),
                        "child MBR escapes its parent at level {lv}"
                    );
                }
            }
            assert!(
                covered.iter().all(|&b| b),
                "level {lv} does not cover level below"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::str_pack;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn points(n: usize, seed: u64) -> Vec<(u32, Point)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n as u32)
            .map(|id| (id, Point::new(rng.gen(), rng.gen())))
            .collect()
    }

    #[test]
    fn str_pack_validates_at_various_fanouts() {
        for (lf, nf) in [(2, 2), (3, 2), (7, 7), (28, 15)] {
            let t = str_pack(&points(500, 1), lf, nf);
            t.validate();
            assert_eq!(t.objects.len(), 500);
        }
    }

    #[test]
    fn str_pack_single_object() {
        let t = str_pack(&points(1, 2), 3, 2);
        t.validate();
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn str_pack_respects_fanout() {
        let t = str_pack(&points(1000, 3), 5, 4);
        for leaf in &t.levels[0] {
            assert!((1..=5).contains(&leaf.entry_count()));
        }
        for lv in 1..t.height() {
            for n in &t.levels[lv] {
                assert!((1..=4).contains(&n.entry_count()));
            }
        }
    }

    #[test]
    fn str_preserves_spatial_locality() {
        // Objects in one leaf should be much closer together than random
        // pairs: the mean intra-leaf MBR half-perimeter must be small.
        let t = str_pack(&points(1000, 4), 10, 10);
        let mean_diag: f64 = t.levels[0]
            .iter()
            .map(|l| l.mbr.max.x - l.mbr.min.x + (l.mbr.max.y - l.mbr.min.y))
            .sum::<f64>()
            / t.levels[0].len() as f64;
        assert!(mean_diag < 0.5, "leaves not local: mean diag {mean_diag}");
    }

    #[test]
    fn duplicate_positions_are_packed() {
        let pts: Vec<(u32, Point)> = (0..50).map(|i| (i, Point::new(0.5, 0.5))).collect();
        let t = str_pack(&pts, 4, 4);
        t.validate();
        assert_eq!(t.objects.len(), 50);
    }
}
