//! Distributed air layout for the R-tree (Imielinski-style).
//!
//! The cycle is a sequence of *segments*, one per subtree at a cut level
//! chosen so segments stay small (clients never wait long for index
//! information). Each segment broadcasts:
//!
//! 1. a replicated copy of the **path** from the root down to the segment
//!    root (so a client tuning in anywhere can seed its search at the next
//!    segment boundary instead of waiting for the cycle start — the
//!    "replicated part" of the distributed indexing scheme);
//! 2. the segment's **subtree nodes**, depth-first, each broadcast once
//!    per cycle (the "non-replicated part");
//! 3. the segment's **data objects** (1024 bytes each).
//!
//! All node slots of a level have a fixed packet count derived from the
//! level fanout, so every broadcast position is statically computable —
//! the client-known schema, exactly as for DSI. Node *contents* (MBRs,
//! child assignment) are only available by reading packets.

use dsi_broadcast::{ChannelConfig, LayoutError, PacketClass, Payload, Program, Tuner};
use dsi_geom::Point;

use crate::tree::{Children, RTree, INTERNAL_ENTRY_BYTES, LEAF_ENTRY_BYTES, NODE_HEADER_BYTES};

/// Per-packet header (offset to next index information), as for DSI.
const PACKET_HEADER_BYTES: u32 = 2;
/// Data object size (paper §4).
const OBJECT_BYTES: u32 = 1024;

/// Air-layout configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtreeAirConfig {
    /// Packet capacity in bytes.
    pub capacity: u32,
    /// Upper bound on the number of data segments per cycle (the cut level
    /// is the lowest level with at most this many nodes).
    pub max_segments: u32,
}

impl RtreeAirConfig {
    /// Default used by the evaluation: segments of roughly 1 % of the
    /// cycle each.
    pub fn new(capacity: u32) -> Self {
        Self {
            capacity,
            max_segments: 128,
        }
    }

    /// Internal-node fanout at this capacity (≥ 2; nodes may span several
    /// packets when the capacity cannot fit two 34-byte entries).
    pub fn internal_fanout(&self) -> u32 {
        ((self
            .capacity
            .saturating_sub(PACKET_HEADER_BYTES + NODE_HEADER_BYTES))
            / INTERNAL_ENTRY_BYTES)
            .max(2)
    }

    /// Leaf fanout at this capacity.
    pub fn leaf_fanout(&self) -> u32 {
        ((self
            .capacity
            .saturating_sub(PACKET_HEADER_BYTES + NODE_HEADER_BYTES))
            / LEAF_ENTRY_BYTES)
            .max(2)
    }

    /// Packets per internal-node slot.
    pub fn internal_node_packets(&self) -> u32 {
        (NODE_HEADER_BYTES + self.internal_fanout() * INTERNAL_ENTRY_BYTES)
            .div_ceil(self.capacity - PACKET_HEADER_BYTES)
    }

    /// Packets per leaf-node slot.
    pub fn leaf_node_packets(&self) -> u32 {
        (NODE_HEADER_BYTES + self.leaf_fanout() * LEAF_ENTRY_BYTES)
            .div_ceil(self.capacity - PACKET_HEADER_BYTES)
    }

    /// Packets per data object.
    pub fn object_packets(&self) -> u32 {
        OBJECT_BYTES.div_ceil(self.capacity)
    }
}

/// One packet of the R-tree broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtPacket {
    /// Part of a (replicated) path copy or subtree node.
    Node {
        /// Tree level of the node.
        level: u8,
        /// Node index within its level.
        idx: u32,
        /// Packet index within the node slot.
        part: u16,
    },
    /// First packet of a data object.
    ObjHeader {
        /// Index into the tree's object array.
        obj: u32,
    },
    /// Continuation packet of a data object.
    ObjPayload {
        /// Index into the tree's object array.
        obj: u32,
        /// Sequence number (1-based).
        seq: u16,
    },
}

impl Payload for RtPacket {
    fn class(&self) -> PacketClass {
        match self {
            RtPacket::Node { .. } => PacketClass::Index,
            RtPacket::ObjHeader { .. } => PacketClass::ObjectHeader,
            RtPacket::ObjPayload { .. } => PacketClass::ObjectPayload,
        }
    }

    fn unit_start(&self) -> bool {
        match self {
            RtPacket::Node { part, .. } => *part == 0,
            RtPacket::ObjHeader { .. } => true,
            RtPacket::ObjPayload { .. } => false,
        }
    }
}

/// Where a node can be read from.
#[derive(Debug, Clone)]
pub(crate) enum NodeWhere {
    /// One occurrence per cycle (non-replicated subtree node).
    Single(u64),
    /// A copy in the path header of every segment in `[first, last]`.
    PerSegment {
        /// First and last covering segment.
        first: u32,
        /// Last covering segment (inclusive).
        last: u32,
        /// Packet offset of this node's copy inside the segment header.
        path_offset: u64,
    },
}

/// The built R-tree broadcast.
#[derive(Debug, Clone)]
pub struct RTreeAir {
    pub(crate) tree: RTree,
    pub(crate) config: RtreeAirConfig,
    pub(crate) program: Program<RtPacket>,
    /// Broadcast position info per (level, idx).
    pub(crate) node_where: Vec<Vec<NodeWhere>>,
    /// First packet of each segment (ascending).
    pub(crate) segment_starts: Vec<u64>,
    /// Packet position of each object's header.
    pub(crate) object_pos: Vec<u64>,
    /// Cut level (segment roots live here).
    pub(crate) cut_level: u8,
}

impl RTreeAir {
    /// Builds the single-channel broadcast for a point set: STR-packs the
    /// tree with capacity-derived fanouts and lays out the cycle.
    pub fn build(objects: &[(u32, Point)], config: RtreeAirConfig) -> Self {
        Self::build_channels(objects, config, ChannelConfig::single())
    }

    /// Builds the broadcast scheduled over the channels of `channels`.
    ///
    /// Panics when the channel configuration cannot schedule this cycle;
    /// [`RTreeAir::try_build_channels`] reports the defect as a
    /// [`LayoutError`] instead.
    pub fn build_channels(
        objects: &[(u32, Point)],
        config: RtreeAirConfig,
        channels: ChannelConfig,
    ) -> Self {
        match Self::try_build_channels(objects, config, channels) {
            Ok(air) => air,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`RTreeAir::build_channels`]: structural channel-layout
    /// defects come back as a [`LayoutError`] instead of a panic.
    pub fn try_build_channels(
        objects: &[(u32, Point)],
        config: RtreeAirConfig,
        channels: ChannelConfig,
    ) -> Result<Self, LayoutError> {
        let tree = str_pack_for(objects, &config);
        Self::try_from_tree_channels(tree, config, channels)
    }

    /// Lays out an existing tree on a single channel.
    pub fn from_tree(tree: RTree, config: RtreeAirConfig) -> Self {
        Self::from_tree_channels(tree, config, ChannelConfig::single())
    }

    /// Lays out an existing tree over the channels of `channels`.
    pub fn from_tree_channels(
        tree: RTree,
        config: RtreeAirConfig,
        channels: ChannelConfig,
    ) -> Self {
        match Self::try_from_tree_channels(tree, config, channels) {
            Ok(air) => air,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`RTreeAir::from_tree_channels`].
    pub fn try_from_tree_channels(
        tree: RTree,
        config: RtreeAirConfig,
        channels: ChannelConfig,
    ) -> Result<Self, LayoutError> {
        let height = tree.height();
        // Cut level: lowest level with at most max_segments nodes.
        let cut_level = (0..height)
            .find(|&lv| tree.levels[lv].len() as u32 <= config.max_segments)
            .unwrap_or(height - 1);

        // Segments = nodes at the cut level, in DFS order from the root so
        // the data order matches the tree order.
        let mut segments: Vec<u32> = Vec::new();
        collect_dfs(&tree, height - 1, 0, cut_level, &mut segments);

        // Which segment range each above-cut node covers.
        let mut node_where: Vec<Vec<NodeWhere>> = tree
            .levels
            .iter()
            .map(|lv| vec![NodeWhere::Single(0); lv.len()])
            .collect();

        // Path slots: levels height-1 .. cut_level+1 (root first). All
        // internal slots have the same size.
        let inp = config.internal_node_packets() as u64;
        let lnp = config.leaf_node_packets() as u64;
        let onp = config.object_packets() as u64;
        let path_levels: Vec<usize> = ((cut_level + 1)..height).rev().collect();

        // Pass 1: per-segment packet extents.
        let mut segment_starts = Vec::with_capacity(segments.len());
        let mut object_pos = vec![0u64; tree.objects.len()];
        let mut packets: Vec<RtPacket> = Vec::new();
        for (si, &seg_root) in segments.iter().enumerate() {
            segment_starts.push(packets.len() as u64);
            // Path copies (root … cut+1 ancestor of this segment).
            for (pi, &lv) in path_levels.iter().enumerate() {
                let anc = ancestor_of(&tree, cut_level, seg_root, lv);
                for part in 0..inp {
                    packets.push(RtPacket::Node {
                        level: lv as u8,
                        idx: anc,
                        part: part as u16,
                    });
                }
                let off = (pi as u64) * inp;
                match &mut node_where[lv][anc as usize] {
                    w @ NodeWhere::Single(_) => {
                        *w = NodeWhere::PerSegment {
                            first: si as u32,
                            last: si as u32,
                            path_offset: off,
                        };
                    }
                    NodeWhere::PerSegment {
                        last, path_offset, ..
                    } => {
                        debug_assert_eq!(*path_offset, off);
                        *last = si as u32;
                    }
                }
            }
            // Subtree nodes in DFS order, then this segment's objects.
            let mut obj_cursor: Vec<u32> = Vec::new();
            emit_subtree(
                &tree,
                cut_level,
                seg_root,
                &mut packets,
                &mut node_where,
                inp,
                lnp,
                &mut obj_cursor,
            );
            for &obj in &obj_cursor {
                object_pos[obj as usize] = packets.len() as u64;
                packets.push(RtPacket::ObjHeader { obj });
                for seq in 1..onp {
                    packets.push(RtPacket::ObjPayload {
                        obj,
                        seq: seq as u16,
                    });
                }
            }
        }

        // Frame granularity for `Placement::StripeFrames`: one frame per
        // data segment (path copies + subtree + objects scan as one run).
        // Segment starts are positional — a replicated root copy looks the
        // same at every occurrence — so they are passed explicitly.
        let mut frame_starts = vec![false; packets.len()];
        for &s in &segment_starts {
            frame_starts[s as usize] = true;
        }
        let program =
            Program::try_with_channels_frames(config.capacity, packets, channels, &frame_starts)?;
        Ok(Self {
            tree,
            config,
            program,
            node_where,
            segment_starts,
            object_pos,
            cut_level: cut_level as u8,
        })
    }

    /// The broadcast packet program.
    pub fn program(&self) -> &Program<RtPacket> {
        &self.program
    }

    /// The packed tree (server side; clients only see packets).
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// Air-layout configuration.
    pub fn config(&self) -> &RtreeAirConfig {
        &self.config
    }

    /// The cut level: segments are the subtrees rooted here.
    pub fn cut_level(&self) -> u8 {
        self.cut_level
    }

    /// Number of data segments per cycle.
    pub fn n_segments(&self) -> usize {
        self.segment_starts.len()
    }

    /// The first packet of the next segment at or after `abs`, in flat
    /// single-channel time.
    #[cfg(test)]
    pub(crate) fn next_segment_start(&self, abs: u64) -> u64 {
        let cycle = self.program.len();
        let rel = abs % cycle;
        match self.segment_starts.binary_search(&rel) {
            Ok(_) => abs,
            Err(i) => {
                if i == self.segment_starts.len() {
                    abs + (cycle - rel)
                } else {
                    abs + (self.segment_starts[i] - rel)
                }
            }
        }
    }

    /// The earliest instant at which node `(level, idx)` can be read by
    /// `tuner` (accounting for channel placement, antennas and switch
    /// cost), and the flat position of the chosen copy.
    pub(crate) fn node_arrival(
        &self,
        tuner: &Tuner<'_, RtPacket>,
        level: u8,
        idx: u32,
    ) -> (u64, u64) {
        match &self.node_where[level as usize][idx as usize] {
            NodeWhere::Single(pos) => (tuner.arrival(*pos), *pos),
            NodeWhere::PerSegment {
                first,
                last,
                path_offset,
            } => {
                // Earliest readable copy among covered segments: per-copy
                // arrivals through the tuner's channel- and antenna-aware
                // planner, allocation-free.
                let mut best = (u64::MAX, 0u64);
                for s in *first..=*last {
                    let flat = self.segment_starts[s as usize] + path_offset;
                    let t = tuner.arrival(flat);
                    if t < best.0 {
                        best = (t, flat);
                    }
                }
                best
            }
        }
    }

    /// The next broadcast instant (≥ `from`) at which node `(level, idx)`
    /// can be read, in flat single-channel time.
    #[cfg(test)]
    pub(crate) fn node_next_occurrence(&self, from: u64, level: u8, idx: u32) -> u64 {
        match &self.node_where[level as usize][idx as usize] {
            NodeWhere::Single(pos) => self.program.next_occurrence(from, *pos),
            NodeWhere::PerSegment {
                first,
                last,
                path_offset,
            } => {
                // Earliest copy at or after `from` among covered segments.
                let mut best = u64::MAX;
                for s in *first..=*last {
                    let abs = self
                        .program
                        .next_occurrence(from, self.segment_starts[s as usize] + path_offset);
                    best = best.min(abs);
                }
                best
            }
        }
    }

    /// Packets one queued read occupies the receiver for: an object
    /// record (`kind == u8::MAX`), or a node slot at level `kind`.
    pub(crate) fn unit_dur(&self, kind: u8) -> u64 {
        if kind == u8::MAX {
            self.config.object_packets() as u64
        } else {
            self.node_packets(kind)
        }
    }

    /// Packets in one node slot at this level.
    pub(crate) fn node_packets(&self, level: u8) -> u64 {
        if level == 0 {
            self.config.leaf_node_packets() as u64
        } else {
            self.config.internal_node_packets() as u64
        }
    }
}

/// STR-packs with capacity-derived fanouts.
fn str_pack_for(objects: &[(u32, Point)], config: &RtreeAirConfig) -> RTree {
    crate::str_pack(objects, config.leaf_fanout(), config.internal_fanout())
}

/// Collects the cut-level nodes in DFS order from the root.
fn collect_dfs(tree: &RTree, level: usize, idx: u32, cut: usize, out: &mut Vec<u32>) {
    if level == cut {
        out.push(idx);
        return;
    }
    let Children::Nodes(kids) = &tree.levels[level][idx as usize].children else {
        unreachable!("above-cut node must be internal");
    };
    for &k in kids {
        collect_dfs(tree, level - 1, k, cut, out);
    }
}

/// The ancestor of cut-level node `seg_root` at `target_level`.
fn ancestor_of(tree: &RTree, cut: usize, seg_root: u32, target_level: usize) -> u32 {
    // Walk down from the root tracking the path to seg_root.
    let mut level = tree.height() - 1;
    let mut idx = 0u32;
    loop {
        if level == target_level {
            return idx;
        }
        let Children::Nodes(kids) = &tree.levels[level][idx as usize].children else {
            unreachable!("walk stays above the leaf level");
        };
        // Descend into the child whose subtree contains seg_root.
        let next = kids
            .iter()
            .copied()
            .find(|&k| subtree_contains(tree, level - 1, k, cut, seg_root))
            .expect("seg_root must be under the root");
        level -= 1;
        idx = next;
    }
}

fn subtree_contains(tree: &RTree, level: usize, idx: u32, cut: usize, seg_root: u32) -> bool {
    if level == cut {
        return idx == seg_root;
    }
    let Children::Nodes(kids) = &tree.levels[level][idx as usize].children else {
        return false;
    };
    kids.iter()
        .any(|&k| subtree_contains(tree, level - 1, k, cut, seg_root))
}

/// Emits the subtree rooted at `(cut_level, seg_root)` in DFS order and
/// records object order.
#[allow(clippy::too_many_arguments)]
fn emit_subtree(
    tree: &RTree,
    level: usize,
    idx: u32,
    packets: &mut Vec<RtPacket>,
    node_where: &mut [Vec<NodeWhere>],
    inp: u64,
    lnp: u64,
    objs: &mut Vec<u32>,
) {
    let slot_packets = if level == 0 { lnp } else { inp };
    node_where[level][idx as usize] = NodeWhere::Single(packets.len() as u64);
    for part in 0..slot_packets {
        packets.push(RtPacket::Node {
            level: level as u8,
            idx,
            part: part as u16,
        });
    }
    match &tree.levels[level][idx as usize].children {
        Children::Nodes(kids) => {
            for &k in kids {
                emit_subtree(tree, level - 1, k, packets, node_where, inp, lnp, objs);
            }
        }
        Children::Objects { start, count } => {
            objs.extend(*start..*start + *count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn points(n: usize, seed: u64) -> Vec<(u32, Point)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n as u32)
            .map(|id| (id, Point::new(rng.gen(), rng.gen())))
            .collect()
    }

    #[test]
    fn fanouts_match_paper_accounting() {
        let c = RtreeAirConfig::new(64);
        assert_eq!(c.internal_fanout(), 2); // forced minimum: 60/34 = 1
        assert_eq!(c.leaf_fanout(), 3);
        assert_eq!(c.internal_node_packets(), 2); // 70 bytes over 62-byte payloads
        assert_eq!(c.leaf_node_packets(), 1);
        let c = RtreeAirConfig::new(512);
        assert_eq!(c.internal_fanout(), 14);
        assert_eq!(c.leaf_fanout(), 28);
        assert_eq!(c.internal_node_packets(), 1);
    }

    #[test]
    fn layout_is_consistent() {
        let air = RTreeAir::build(&points(400, 7), RtreeAirConfig::new(64));
        let prog = air.program();
        // Every object header where the layout says.
        for (obj, &pos) in air.object_pos.iter().enumerate() {
            match prog.get(pos) {
                RtPacket::ObjHeader { obj: o } => assert_eq!(*o as usize, obj),
                p => panic!("expected header of {obj}, found {p:?}"),
            }
        }
        // Every node readable at its announced occurrence.
        for level in 0..air.tree.height() {
            for idx in 0..air.tree.levels[level].len() as u32 {
                let at = air.node_next_occurrence(0, level as u8, idx);
                match prog.get(at) {
                    RtPacket::Node {
                        level: l,
                        idx: i,
                        part: 0,
                    } => assert_eq!((*l as usize, *i), (level, idx)),
                    p => panic!("expected node ({level},{idx}), found {p:?}"),
                }
            }
        }
        // Segment starts begin with the root copy (or the subtree when the
        // tree is all one segment).
        for &s in &air.segment_starts {
            match prog.get(s) {
                RtPacket::Node { part: 0, .. } => {}
                p => panic!("segment must start with a node, found {p:?}"),
            }
        }
    }

    #[test]
    fn per_segment_nodes_cover_contiguous_ranges() {
        let air = RTreeAir::build(&points(600, 9), RtreeAirConfig::new(128));
        let cut = air.cut_level as usize;
        for level in (cut + 1)..air.tree.height() {
            for w in &air.node_where[level] {
                match w {
                    NodeWhere::PerSegment { first, last, .. } => assert!(first <= last),
                    NodeWhere::Single(_) => panic!("above-cut node without copies"),
                }
            }
        }
    }

    #[test]
    fn next_segment_start_wraps() {
        let air = RTreeAir::build(&points(100, 3), RtreeAirConfig::new(64));
        let cycle = air.program().len();
        assert_eq!(air.next_segment_start(0), 0);
        let last = *air.segment_starts.last().expect("non-empty");
        assert_eq!(air.next_segment_start(last + 1), cycle); // wraps to slot 0
    }
}
