//! [`Verifiable`] for the R-tree broadcast: extracts the child-pointer
//! graph — every node copy (replicated path headers included) pointing at
//! every copy of each child with a `Covers` claim over the child's
//! data-ordinal range — for the `dsi-verify` analyzer.

use dsi_verify::{Edge, EdgeClaim, StaticModel, Verifiable};

use crate::air::{NodeWhere, RTreeAir};
use crate::tree::{Children, RTree};

/// Per-object DFS rank plus the rank range `[lo, hi)` of every subtree.
///
/// STR packing re-sorts each internal level spatially, so an internal
/// node's subtree does **not** cover a contiguous range of raw
/// `tree.objects` indices. Ranking objects by a root-down DFS (the same
/// child order the broadcast emitter walks) restores contiguity: every
/// subtree owns exactly one rank interval by construction, which is the
/// `Covers` claim the verifier can check exactly.
struct Ranks {
    /// `object index -> DFS rank` (the data-unit key).
    of_object: Vec<u64>,
    /// `[level][idx] -> [lo, hi)` rank range of that subtree.
    of_node: Vec<Vec<(u64, u64)>>,
}

fn rank_dfs(tree: &RTree) -> Ranks {
    let mut r = Ranks {
        of_object: vec![0; tree.objects.len()],
        of_node: tree.levels.iter().map(|l| vec![(0, 0); l.len()]).collect(),
    };
    let mut next = 0u64;
    let top = tree.height() - 1;
    for idx in 0..tree.levels[top].len() as u32 {
        rank_node(tree, top, idx, &mut next, &mut r);
    }
    r
}

fn rank_node(tree: &RTree, level: usize, idx: u32, next: &mut u64, r: &mut Ranks) {
    let lo = *next;
    match &tree.levels[level][idx as usize].children {
        Children::Objects { start, count } => {
            for obj in *start..*start + *count {
                r.of_object[obj as usize] = *next;
                *next += 1;
            }
        }
        Children::Nodes(kids) => {
            for &k in kids {
                rank_node(tree, level - 1, k, next, r);
            }
        }
    }
    r.of_node[level][idx as usize] = (lo, *next);
}

/// Flat positions of every on-air copy of node `(level, idx)`.
fn copies(air: &RTreeAir, level: usize, idx: u32) -> Vec<u64> {
    match &air.node_where[level][idx as usize] {
        NodeWhere::Single(pos) => vec![*pos],
        NodeWhere::PerSegment {
            first,
            last,
            path_offset,
        } => (*first..=*last)
            .map(|s| air.segment_starts[s as usize] + path_offset)
            .collect(),
    }
}

impl RTreeAir {
    /// The static model of this broadcast. Each node copy is an index
    /// unit with one `Covers` edge per copy of each child (claiming the
    /// child subtree's exact data-ordinal range — the on-air MBR entry's
    /// navigational promise) and, at leaves, `Local` edges to the
    /// announced objects. Entries are the segment starts: the points a
    /// freshly tuned-in client seeds its descent from.
    pub fn static_model(&self) -> StaticModel {
        let mut m = StaticModel::from_program("R-tree", self.program());
        // Worst window query: one level of the tree is processed per
        // cycle pass at worst, plus the result-object sweep.
        m.sweep_passes = self.tree.height() as u32 + 2;
        let ranks = rank_dfs(&self.tree);
        for (obj, &pos) in self.object_pos.iter().enumerate() {
            let u = m.unit_at(pos).expect("object header is a unit start");
            m.units[u].key = ranks.of_object[obj];
        }
        for level in 0..self.tree.height() {
            for idx in 0..self.tree.levels[level].len() as u32 {
                for copy in copies(self, level, idx) {
                    let u = m.unit_at(copy).expect("node copy is a unit start");
                    match &self.tree.levels[level][idx as usize].children {
                        Children::Nodes(kids) => {
                            for &k in kids {
                                let (lo, hi) = ranks.of_node[level - 1][k as usize];
                                for kc in copies(self, level - 1, k) {
                                    m.edges[u].push(Edge {
                                        target: kc,
                                        claim: EdgeClaim::Covers { lo, hi },
                                    });
                                }
                            }
                        }
                        Children::Objects { start, count } => {
                            for obj in *start..*start + *count {
                                m.edges[u].push(Edge {
                                    target: self.object_pos[obj as usize],
                                    claim: EdgeClaim::Local,
                                });
                            }
                        }
                    }
                }
            }
        }
        for &s in &self.segment_starts {
            let u = m.unit_at(s).expect("segment start is a unit start");
            m.entries.push(u as u32);
        }
        m
    }
}

impl Verifiable for RTreeAir {
    fn static_model(&self) -> StaticModel {
        RTreeAir::static_model(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::air::RtreeAirConfig;
    use dsi_broadcast::ChannelConfig;
    use dsi_geom::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn points(n: usize, seed: u64) -> Vec<(u32, Point)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n as u32)
            .map(|id| (id, Point::new(rng.gen(), rng.gen())))
            .collect()
    }

    #[test]
    fn grid_valid_rtree_programs_verify_clean() {
        let pts = points(220, 7);
        for chan in [
            ChannelConfig::single(),
            ChannelConfig::blocked(2, 1),
            ChannelConfig::striped(2, 1),
            ChannelConfig::striped_frames(4, 1),
            ChannelConfig::index_data(2, 1, 2),
        ] {
            let air = RTreeAir::build_channels(&pts, RtreeAirConfig::new(64), chan.clone());
            let model = air.static_model();
            let report = dsi_verify::verify(&model).unwrap_or_else(|v| panic!("{chan:?}: {v:?}"));
            assert_eq!(report.n_data_units, 220);
            assert!(report.max_nav_hops as usize >= 1);
        }
    }
}
