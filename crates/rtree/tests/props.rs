//! Property tests for the R-tree baseline: STR invariants and on-air query
//! correctness.

use dsi_broadcast::{LossModel, Tuner};
use dsi_geom::{dist2, Point, Rect};
use dsi_rtree::{str_pack, RTreeAir, RtreeAirConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn points(n: usize, seed: u64) -> Vec<(u32, Point)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as u32)
        .map(|id| (id, Point::new(rng.gen(), rng.gen())))
        .collect()
}

fn brute_window(pts: &[(u32, Point)], w: &Rect) -> Vec<u32> {
    let mut v: Vec<u32> = pts
        .iter()
        .filter(|(_, p)| w.contains(*p))
        .map(|(id, _)| *id)
        .collect();
    v.sort_unstable();
    v
}

fn brute_knn(pts: &[(u32, Point)], q: Point, k: usize) -> Vec<u32> {
    let mut v: Vec<(f64, u32)> = pts.iter().map(|&(id, p)| (dist2(q, p), id)).collect();
    v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let mut ids: Vec<u32> = v.into_iter().take(k).map(|(_, id)| id).collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn str_invariants_hold(n in 1usize..300, seed in any::<u64>(), lf in 2u32..12, nf in 2u32..12) {
        let t = str_pack(&points(n, seed), lf, nf);
        t.validate();
    }

    #[test]
    fn air_window_matches_brute(
        n in 10usize..150, seed in any::<u64>(),
        cap in prop_oneof![Just(64u32), Just(128), Just(512)],
        start_seed in any::<u64>(),
        cx in 0.0..1.0f64, cy in 0.0..1.0f64, side in 0.05..0.6f64,
        theta in prop_oneof![Just(0.0f64), Just(0.3)],
    ) {
        let pts = points(n, seed);
        let air = RTreeAir::build(&pts, RtreeAirConfig::new(cap));
        let w = Rect::window_in_unit_square(Point::new(cx, cy), side);
        let start = start_seed % air.program().len();
        let mut t = Tuner::tune_in(air.program(), start, LossModel::iid(theta), start_seed);
        prop_assert_eq!(air.window_query(&mut t, &w), brute_window(&pts, &w));
    }

    #[test]
    fn air_knn_matches_brute(
        n in 10usize..150, seed in any::<u64>(),
        start_seed in any::<u64>(),
        qx in 0.0..1.0f64, qy in 0.0..1.0f64, k in 1usize..10,
        theta in prop_oneof![Just(0.0f64), Just(0.3)],
    ) {
        let pts = points(n, seed);
        let air = RTreeAir::build(&pts, RtreeAirConfig::new(64));
        let q = Point::new(qx, qy);
        let start = start_seed % air.program().len();
        let mut t = Tuner::tune_in(air.program(), start, LossModel::iid(theta), start_seed);
        prop_assert_eq!(air.knn_query(&mut t, q, k), brute_knn(&pts, q, k.min(n)));
    }
}

/// Explicit (optimizer-shaped) placements change scheduling only: a
/// scrambled reverse round-robin unit→channel assignment keeps the
/// R-tree's on-air answers equal to brute force under loss and any
/// antenna count.
#[test]
fn explicit_placement_preserves_answers() {
    use dsi_broadcast::{AntennaConfig, ChannelConfig, Placement};
    let pts = points(200, 11);
    let single = RTreeAir::build(&pts, RtreeAirConfig::new(64));
    let units = single
        .program()
        .unit_starts()
        .iter()
        .filter(|&&s| s)
        .count();
    const C: u32 = 3;
    assert!(units >= C as usize);
    let assignment: Vec<u32> = (0..units).map(|u| (C - 1) - (u as u32 % C)).collect();
    let air = RTreeAir::build_channels(
        &pts,
        RtreeAirConfig::new(64),
        ChannelConfig {
            channels: C,
            placement: Placement::Explicit(assignment),
            switch_cost: 3,
        },
    );
    let w = Rect::new(0.15, 0.2, 0.6, 0.7);
    let q = Point::new(0.4, 0.5);
    for antennas in [1u32, 2, 3] {
        for loss in [LossModel::None, LossModel::iid(0.2)] {
            let ant = AntennaConfig::new(antennas);
            let mut t = Tuner::tune_in_with(air.program(), 11, loss.clone(), 5, ant);
            assert_eq!(air.window_query(&mut t, &w), brute_window(&pts, &w));
            let mut t = Tuner::tune_in_with(air.program(), 23, loss, 9, ant);
            assert_eq!(air.knn_query(&mut t, q, 5), brute_knn(&pts, q, 5));
        }
    }
}
