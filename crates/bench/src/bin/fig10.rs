//! Regenerates the paper's fig10 results; see EXPERIMENTS.md.
fn main() {
    dsi_bench::run_experiment("fig10", dsi_sim::experiments::fig10);
}
