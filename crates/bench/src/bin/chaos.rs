//! Regenerates the chaos (fault-injection) results: the validated
//! scheme × placement × C × antennas × fault-family grid plus the
//! retune-vs-wait ablation; see EXPERIMENTS.md.
//!
//! Trace modes (both use a fixed representative query — DSI, C2-blocked,
//! k = 2, window — under the chaos Gilbert–Elliott channel):
//!
//! - `--record-trace <path>`: journal the run's per-read loss outcomes
//!   and write them in the `dsi-fault-trace v1` text format.
//! - `--replay-trace <path>`: re-run the query with the scripted trace
//!   as its fault model and assert the answer still matches brute
//!   force. Replaying the committed fixture
//!   (`fixtures/fault_trace.txt`) in CI pins the replay format.

use dsi_broadcast::{
    AntennaConfig, ChannelConfig, FaultTrace, GilbertElliott, LossModel, LossScope, Query,
};
use dsi_sim::chaos::{chaos_experiment, CHAOS_SWITCH_COST};
use dsi_sim::{uniform_dataset_n, Engine, Scheme};

/// The traced run's channel: fades every ~50 packets, 90% loss inside,
/// all packet classes — dense enough that a ~200-read query always
/// journals real hits, so the committed fixture exercises the lost-entry
/// side of the replay format, not just the clean side.
fn traced_channel() -> LossModel {
    LossModel::Gilbert(GilbertElliott::new(0.02, 0.1, 0.9).with_scope(LossScope::All))
}

/// The representative traced query: deterministic, multi-channel, lossy
/// enough that its journal always contains hits.
fn traced_setup() -> (Engine, dsi_datagen::SpatialDataset, Query) {
    let ds = uniform_dataset_n(400);
    let e = Engine::build_channels(
        Scheme::dsi_reorganized(64),
        &ds,
        64,
        ChannelConfig::blocked(2, CHAOS_SWITCH_COST),
    );
    let w = dsi_datagen::window_queries(1, 0.2, 3)[0];
    (e, ds, Query::Window(w))
}

fn record_trace(path: &str) {
    let (e, ds, q) = traced_setup();
    let (out, trace) = e.drive_traced(5, traced_channel(), 21, AntennaConfig::new(2), &q);
    let want = match &q {
        Query::Window(w) => ds.brute_window(w),
        Query::Knn(p, k) => ds.brute_knn(*p, *k),
    };
    assert_eq!(out.ids, want, "recorded run diverged from brute force");
    if let Some(dir) = std::path::Path::new(path)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
    {
        std::fs::create_dir_all(dir).expect("create trace dir");
    }
    std::fs::write(path, trace.to_text()).expect("write trace");
    println!(
        "recorded {} fault entries ({} lost) to {path}",
        trace.entries().len(),
        trace.entries().iter().filter(|e| e.lost).count()
    );
}

fn replay_trace(path: &str) {
    let text = std::fs::read_to_string(path).expect("read trace");
    let trace = FaultTrace::from_text(&text).expect("parse dsi-fault-trace v1");
    let (e, ds, q) = traced_setup();
    // Replay is seed-independent: the scripted trace *is* the fault
    // model, so a different seed must reproduce the recorded run.
    let out = e.drive_antennas(
        5,
        LossModel::Trace(trace.clone()),
        777,
        AntennaConfig::new(2),
        &q,
    );
    let want = match &q {
        Query::Window(w) => ds.brute_window(w),
        Query::Knn(p, k) => ds.brute_knn(*p, *k),
    };
    assert_eq!(out.ids, want, "replayed run diverged from brute force");
    println!(
        "replayed {} fault entries from {path}: latency {} packets, {} lost reads, longest stall {}",
        trace.entries().len(),
        out.stats.latency_packets,
        out.stats.lost_packets,
        out.stats.longest_stall_packets
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--record-trace") => record_trace(args.get(2).expect("--record-trace <path>")),
        Some("--replay-trace") => replay_trace(args.get(2).expect("--replay-trace <path>")),
        Some(other) => panic!("unknown flag {other}; use --record-trace/--replay-trace <path>"),
        None => dsi_bench::run_experiment("chaos", chaos_experiment),
    }
}
