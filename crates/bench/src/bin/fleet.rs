//! Fleet engine driver: a population of concurrent listeners on one
//! broadcast cycle, with an explicit fleet-vs-sequential equality gate.
//!
//! Two phases:
//!
//! 1. **Equality gate** — a reduced fleet (capped at 2,000 clients) is
//!    run at 1, 2 and auto worker counts and compared bit-for-bit against
//!    the sequential per-client oracle, on a lossless and a
//!    Gilbert–Elliott channel. Any mismatch panics; CI greps the `OK`
//!    line.
//! 2. **Throughput** — the full fleet (`DSI_FLEET_CLIENTS`, default
//!    100,000) runs per scheme via `fleet_summary_on` and prints
//!    clients/sec, events/sec and population latency/tuning percentiles.
//!
//! Scale knobs: `DSI_N` (dataset size), `DSI_FLEET_CLIENTS`,
//! `DSI_QUERIES`/`DSI_VALIDATE` as usual.

use std::sync::Arc;

use dsi_broadcast::{LossModel, Query};
use dsi_datagen::{knn_points, window_queries};
use dsi_sim::experiments::{fleet_summary_on, ExpOptions};
use dsi_sim::fleet::{run_fleet, run_fleet_oracle, FleetSpec};
use dsi_sim::{Engine, Scheme};

fn main() {
    let opts = ExpOptions::from_env();
    let clients: usize = std::env::var("DSI_FLEET_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    println!(
        "=== fleet (N = {}, {} clients, validate = {}) ===",
        opts.dataset_n, clients, opts.validate
    );
    let ds = Arc::new(dsi_sim::uniform_dataset_n(opts.dataset_n));

    // Phase 1: the equality gate.
    let mut pool: Vec<Query> = window_queries(4, 0.1, 11)
        .into_iter()
        .map(Query::Window)
        .collect();
    pool.extend(knn_points(4, 13).into_iter().map(|p| Query::Knn(p, 10)));
    let engine = Arc::new(Engine::build(Scheme::dsi_reorganized(64), &ds, 64));
    let gate_clients = clients.min(2_000);
    for loss in [LossModel::None, LossModel::gilbert(0.05, 0.3, 0.9)] {
        let mut spec = FleetSpec {
            skew: 1.1,
            keep_ids: true,
            keep_channels: true,
            loss: loss.clone(),
            ..FleetSpec::new(gate_clients, pool.clone())
        };
        let oracle = run_fleet_oracle(&engine, Some(&ds), &spec);
        for workers in [1usize, 2, 0] {
            spec.workers = workers;
            let (_, outcomes) = run_fleet(&engine, Some(&ds), &spec);
            assert_eq!(
                outcomes, oracle,
                "fleet != sequential oracle ({loss:?}, workers = {workers})"
            );
        }
    }
    println!(
        "fleet-vs-sequential equality: OK ({gate_clients} clients x workers 1/2/auto x lossless+gilbert)"
    );

    // Phase 2: full-scale throughput per scheme.
    for t in fleet_summary_on(&ds, &opts, clients) {
        println!("{}", t.render());
    }
}
