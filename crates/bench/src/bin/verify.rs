//! Static verification gate: builds the scheme × placement × channel grid
//! at small N, runs the `dsi-verify` analyzer over every program, smokes
//! the derived worst-case bounds against measured lossless maxima, and
//! writes a machine-readable report to `results/verify.json`.
//!
//! Exit status is nonzero on any violation, rejected build, or bound
//! breach, so CI can gate on it the same way it gates on clippy. Scale
//! comes from `DSI_N` (default 300 objects).

use std::process::ExitCode;

use dsi_broadcast::{ChannelConfig, LossModel, Query};
use dsi_core::KnnStrategy;
use dsi_datagen::{knn_points, window_queries, SpatialDataset};
use dsi_sim::{Engine, Scheme};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let n = env_usize("DSI_N", 300);
    let ds = SpatialDataset::build(&dsi_datagen::uniform(n, 42), 10);
    let schemes = [
        ("DSI-reorg", Scheme::dsi_reorganized(64)),
        ("DSI", Scheme::dsi_original(64, KnnStrategy::Conservative)),
        ("R-tree", Scheme::RTree),
        ("HCI", Scheme::Hci),
    ];
    let channel_cfgs = [
        ("C1", ChannelConfig::single()),
        ("C2-blocked", ChannelConfig::blocked(2, 1)),
        ("C2-striped", ChannelConfig::striped(2, 1)),
        ("C4-frames", ChannelConfig::striped_frames(4, 1)),
        ("C3-split", ChannelConfig::index_data(3, 1, 2)),
    ];
    // The bound is proven for the lossless single-antenna client; the
    // smoke drives a small mixed workload from tune-ins spread across the
    // cycle and checks the measured maxima never exceed it.
    let queries: Vec<Query> = window_queries(6, 0.15, 9)
        .into_iter()
        .map(Query::Window)
        .chain(knn_points(6, 10).into_iter().map(|p| Query::Knn(p, 4)))
        .collect();
    let mut rows = Vec::new();
    let mut failed = false;
    for (sname, scheme) in schemes {
        for (cname, cfg) in &channel_cfgs {
            let engine = match Engine::try_build_channels(scheme, &ds, 64, cfg.clone()) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("verify: {sname} x {cname}: build rejected: {e}");
                    failed = true;
                    continue;
                }
            };
            let report = match engine.verify() {
                Ok(r) => r,
                Err(violations) => {
                    eprintln!(
                        "verify: {sname} x {cname}: {} violation(s)",
                        violations.len()
                    );
                    for v in violations.iter().take(8) {
                        eprintln!("  {v}");
                    }
                    failed = true;
                    continue;
                }
            };
            let cycle = engine.cycle_packets();
            let mut max_lat = 0u64;
            let mut max_tun = 0u64;
            for (qi, q) in queries.iter().enumerate() {
                for s in 0..8u64 {
                    let out = engine.drive(s * cycle / 8, LossModel::None, qi as u64, q);
                    max_lat = max_lat.max(out.stats.latency_packets);
                    max_tun = max_tun.max(out.stats.tuning_packets);
                }
            }
            let lat_ok = max_lat <= report.bounds.latency_packets;
            let tun_ok = max_tun <= report.bounds.tuning_packets;
            if !lat_ok || !tun_ok {
                eprintln!(
                    "verify: {sname} x {cname}: measured exceeds bound \
                     (latency {max_lat} vs {}, tuning {max_tun} vs {})",
                    report.bounds.latency_packets, report.bounds.tuning_packets
                );
                failed = true;
            }
            println!(
                "verify: {sname:9} x {cname:10}: {} units, {} hops, \
                 latency {max_lat} <= {}, tuning {max_tun} <= {}",
                report.n_units,
                report.max_nav_hops,
                report.bounds.latency_packets,
                report.bounds.tuning_packets
            );
            rows.push(format!(
                "{{\"scheme\": \"{sname}\", \"channels\": \"{cname}\", \
                 \"measured_latency_packets\": {max_lat}, \
                 \"measured_tuning_packets\": {max_tun}, \
                 \"report\": {}}}",
                report.to_json()
            ));
        }
    }
    let json = format!("{{\"n\": {n}, \"cells\": [{}]}}\n", rows.join(", "));
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|_| std::fs::write("results/verify.json", json))
    {
        eprintln!("warning: could not write results/verify.json: {e}");
    }
    if failed {
        eprintln!("VERIFY FAILED");
        ExitCode::FAILURE
    } else {
        println!("VERIFY OK");
        ExitCode::SUCCESS
    }
}
