//! Static verification gate: builds the scheme × placement × channel grid
//! at small N, runs the `dsi-verify` analyzer over every program, smokes
//! the derived worst-case bounds against measured lossless maxima, and
//! writes a machine-readable report to `results/verify.json`.
//!
//! Exit status is nonzero on any violation, rejected build, or bound
//! breach, so CI can gate on it the same way it gates on clippy. Scale
//! comes from `DSI_N` (default 300 objects).

use std::process::ExitCode;

use dsi_broadcast::{ChannelConfig, LossModel, Query};
use dsi_core::KnnStrategy;
use dsi_datagen::{knn_points, window_queries, SpatialDataset};
use dsi_sim::{Engine, Scheme};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The static coalescing proof talks about the *static* anchor map; the
/// fleet dedups on the *dynamic* `Engine::tune_anchor`. Soundness needs
/// the dynamic partition to refine the static one: whenever two tune-ins
/// get the same dynamic anchor (and so share one drive), the static
/// proof must also place them in one cohort. Sampled over the cycle.
fn crosscheck_anchors(engine: &Engine, report: &dsi_verify::VerifyReport) -> Result<(), String> {
    let model = engine.static_model();
    let cycle = engine.cycle_packets();
    let statics = dsi_verify::static_anchor_map(model);
    if !report.coalesce.applicable {
        if let Some(s) = (0..cycle).find(|&s| engine.tune_anchor(s).is_some()) {
            return Err(format!(
                "static proof is inapplicable but tune_anchor({s}) is Some"
            ));
        }
        return Ok(());
    }
    let statics = statics.ok_or("report says applicable but no static anchor map")?;
    let step = (cycle / 64).max(1);
    let mut by_dynamic: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for s in (0..cycle).step_by(step as usize) {
        let Some(d) = engine.tune_anchor(s) else {
            return Err(format!("tune_anchor({s}) is None on an applicable cell"));
        };
        let stat = statics[s as usize];
        match by_dynamic.insert(d, stat) {
            Some(prev) if prev != stat => {
                return Err(format!(
                    "dynamic anchor {d} spans static anchors {prev} and {stat}: \
                     the fleet would coalesce clients the model cannot prove equal"
                ));
            }
            _ => {}
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let n = env_usize("DSI_N", 300);
    let ds = SpatialDataset::build(&dsi_datagen::uniform(n, 42), 10);
    let schemes = [
        ("DSI-reorg", Scheme::dsi_reorganized(64)),
        ("DSI", Scheme::dsi_original(64, KnnStrategy::Conservative)),
        ("R-tree", Scheme::RTree),
        ("HCI", Scheme::Hci),
    ];
    let channel_cfgs = [
        ("C1", ChannelConfig::single()),
        ("C2-blocked", ChannelConfig::blocked(2, 1)),
        ("C2-striped", ChannelConfig::striped(2, 1)),
        ("C4-frames", ChannelConfig::striped_frames(4, 1)),
        ("C3-split", ChannelConfig::index_data(3, 1, 2)),
    ];
    // The bound is proven for the lossless single-antenna client; the
    // smoke drives a small mixed workload from tune-ins spread across the
    // cycle and checks the measured maxima never exceed it.
    let queries: Vec<Query> = window_queries(6, 0.15, 9)
        .into_iter()
        .map(Query::Window)
        .chain(knn_points(6, 10).into_iter().map(|p| Query::Knn(p, 4)))
        .collect();
    let mut rows = Vec::new();
    let mut failed = false;
    for (sname, scheme) in schemes {
        for (cname, cfg) in &channel_cfgs {
            let engine = match Engine::try_build_channels(scheme, &ds, 64, cfg.clone()) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("verify: {sname} x {cname}: build rejected: {e}");
                    failed = true;
                    continue;
                }
            };
            let report = match engine.verify() {
                Ok(r) => r,
                Err(violations) => {
                    eprintln!(
                        "verify: {sname} x {cname}: {} violation(s)",
                        violations.len()
                    );
                    for v in violations.iter().take(8) {
                        eprintln!("  {v}");
                    }
                    failed = true;
                    continue;
                }
            };
            let cycle = engine.cycle_packets();
            let mut max_lat = 0u64;
            let mut max_tun = 0u64;
            for (qi, q) in queries.iter().enumerate() {
                for s in 0..8u64 {
                    let out = engine.drive(s * cycle / 8, LossModel::None, qi as u64, q);
                    max_lat = max_lat.max(out.stats.latency_packets);
                    max_tun = max_tun.max(out.stats.tuning_packets);
                }
            }
            let lat_ok = max_lat <= report.bounds.latency_packets;
            let tun_ok = max_tun <= report.bounds.tuning_packets;
            if !lat_ok || !tun_ok {
                eprintln!(
                    "verify: {sname} x {cname}: measured exceeds bound \
                     (latency {max_lat} vs {}, tuning {max_tun} vs {})",
                    report.bounds.latency_packets, report.bounds.tuning_packets
                );
                failed = true;
            }
            // Cross-check the static coalescing verdict against the live
            // engine: equal dynamic anchors must imply equal static
            // anchors (the dedup keys on the dynamic one), and a cell the
            // static proof calls inapplicable must never hand out anchors.
            if let Err(e) = crosscheck_anchors(&engine, &report) {
                eprintln!("verify: {sname} x {cname}: anchor cross-check: {e}");
                failed = true;
            }
            let co = &report.coalesce;
            let co_str = if co.applicable {
                format!("coalesce {}a/{}w", co.anchors, co.checked_pairs)
            } else {
                "coalesce n/a".to_string()
            };
            println!(
                "verify: {sname:9} x {cname:10}: {} units, {} hops, \
                 latency {max_lat} <= {}, tuning {max_tun} <= {}, {co_str}",
                report.n_units,
                report.max_nav_hops,
                report.bounds.latency_packets,
                report.bounds.tuning_packets
            );
            rows.push(format!(
                "{{\"scheme\": \"{sname}\", \"channels\": \"{cname}\", \
                 \"measured_latency_packets\": {max_lat}, \
                 \"measured_tuning_packets\": {max_tun}, \
                 \"report\": {}}}",
                report.to_json()
            ));
        }
    }
    let json = format!("{{\"n\": {n}, \"cells\": [{}]}}\n", rows.join(", "));
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|_| std::fs::write("results/verify.json", json))
    {
        eprintln!("warning: could not write results/verify.json: {e}");
    }
    if failed {
        eprintln!("VERIFY FAILED");
        ExitCode::FAILURE
    } else {
        println!("VERIFY OK");
        ExitCode::SUCCESS
    }
}
