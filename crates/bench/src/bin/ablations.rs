//! Regenerates the paper's ablations results; see EXPERIMENTS.md.
fn main() {
    dsi_bench::run_experiment("ablations", dsi_sim::experiments::ablations);
}
