//! Regenerates the paper's fig9 results; see EXPERIMENTS.md.
fn main() {
    dsi_bench::run_experiment("fig9", dsi_sim::experiments::fig9);
}
