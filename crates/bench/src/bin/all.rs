//! Regenerates every paper figure and table in one run.
fn main() {
    use dsi_sim::experiments as e;
    dsi_bench::run_experiment("fig8", e::fig8);
    dsi_bench::run_experiment("fig9", e::fig9);
    dsi_bench::run_experiment("fig10", e::fig10);
    dsi_bench::run_experiment("fig11", e::fig11);
    dsi_bench::run_experiment("fig12", e::fig12);
    dsi_bench::run_experiment("table1", e::table1);
    dsi_bench::run_experiment("real", e::real_summary);
    dsi_bench::run_experiment("ablations", e::ablations);
    dsi_bench::run_experiment("channels", e::channels);
    dsi_bench::run_experiment("chaos", dsi_sim::chaos::chaos_experiment);
}
