//! Regenerates the paper's fig11 results; see EXPERIMENTS.md.
fn main() {
    dsi_bench::run_experiment("fig11", dsi_sim::experiments::fig11);
}
