//! Regenerates the REAL-dataset summaries of the paper's §4.2/§4.3 text —
//! now over the committed point fixture (`crates/bench/fixtures/
//! real_points.txt`, 5,848 sites, loaded offline via
//! [`dsi_datagen::load_points`]; no network, no synthesis at run time) —
//! and runs a concurrent-listener fleet over the same broadcast, writing
//! both to `results/real.json`. `DSI_FLEET_CLIENTS` scales the fleet
//! population (default 20,000).

use std::path::Path;

use dsi_datagen::{load_points, SpatialDataset};
use dsi_sim::experiments::{fleet_summary_on, real_summary_on};

fn main() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/real_points.txt");
    let points = load_points(&fixture)
        .unwrap_or_else(|e| panic!("cannot load point fixture {}: {e}", fixture.display()));
    println!(
        "[REAL fixture: {} points from {}]",
        points.len(),
        fixture.display()
    );
    let ds = SpatialDataset::build(&points, dsi_sim::EVAL_ORDER);
    let clients = std::env::var("DSI_FLEET_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    dsi_bench::run_experiment("real", |opts| {
        let mut tables = real_summary_on(&ds, opts);
        tables.extend(fleet_summary_on(&ds, opts, clients));
        tables
    });
}
