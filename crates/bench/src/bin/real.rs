//! Regenerates the REAL-dataset summaries of the paper's §4.2/§4.3 text.
fn main() {
    dsi_bench::run_experiment("real", dsi_sim::experiments::real_summary);
}
