//! Regenerates the paper's fig12 results; see EXPERIMENTS.md.
fn main() {
    dsi_bench::run_experiment("fig12", dsi_sim::experiments::fig12);
}
