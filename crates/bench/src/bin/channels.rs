//! Regenerates the multi-channel scenario matrix (scheme × channel config
//! × loss × workload, with per-channel tuning stats); see EXPERIMENTS.md.
fn main() {
    dsi_bench::run_experiment("channels", dsi_sim::experiments::channels);
}
