//! Perf-tracking harness: measures client query-engine throughput and
//! writes `BENCH_PR8.json` so later PRs have a trajectory to beat.
//!
//! Runs seeded window and 10NN batches over one DSI broadcast twice —
//! once on the incremental state path and once on the from-scratch
//! baseline (`dsi_core::hotpath`) — single-threaded for stable timing,
//! and reports mean **and p50/p95** latency/tuning bytes plus wall-clock
//! queries per second and the incremental/from-scratch speedup. The
//! percentiles are deterministic air-cost quantiles (no wall-clock in
//! them), so they compare exactly across PRs.
//!
//! `--compare <prev.json>` reads a previous run (e.g. the committed
//! `BENCH_PR5.json`), prints per-metric deltas, and exits non-zero when
//! any incremental metric regressed by more than
//! `DSI_BENCH_MAX_REGRESSION` (a fraction, default 0.10) — so CI can keep
//! both the harness and the perf trajectory honest. Metrics absent from
//! the older baseline (the percentiles, pre-PR 3) are skipped. The run's
//! own JSON records the baseline it compared against (`compared_against`:
//! path and, when present, the baseline's `pr` number) — gap PRs that
//! ship no bench JSON leave the lineage readable.
//!
//! Since PR 8 the run also exercises the **fleet engine**
//! (`dsi_sim::fleet`): a population of `DSI_FLEET_CLIENTS` (default
//! 200,000) concurrent clients on the same broadcast, A/B-measured in the
//! same process against the classic one-`run_query_batch`-call-per-client
//! loop over the *same* population (interleaved passes, so host noise
//! hits both arms alike; the deliberately slow baseline is rate-measured
//! on a deterministic population subsample). The `fleet` section of the
//! JSON reports clients/sec, served events/sec, the baseline events/sec
//! and speedup, and population latency/tuning p50/p95/p99. Fleet
//! *outcomes* are pinned bit-identical to the sequential oracle by the
//! differential suite and the `fleet` binary's equality gate; this
//! harness only adds the throughput trajectory.
//!
//! Scale knobs: `DSI_N` (objects, default 10,000), `DSI_QUERIES` (queries
//! per batch, default 200), `DSI_FLEET_CLIENTS` (fleet population,
//! default 200,000), `DSI_BENCH_OUT` (output path, default
//! `BENCH_PR8.json`).
//!
//! PR 7 shipped no bench JSON, so CI compares against the committed
//! `BENCH_PR6.json`; the classic air metrics must stay bit-identical.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use dsi_broadcast::{LossModel, MeanStats, Query, QueryStats, Tuner};
use dsi_core::hotpath::{self, StatePath};
use dsi_core::{DsiAir, DsiConfig, KnnStrategy};
use dsi_datagen::{knn_points, uniform, window_queries, SpatialDataset};
use dsi_sim::fleet::{baseline_loop, run_fleet, BaselineRun, FleetSpec, FleetStats};
use dsi_sim::{Engine, Scheme};

const CAPACITY: u32 = 64;
const ORDER: u8 = 12;
const K: usize = 10;
const WINDOW_RATIO: f64 = 0.1;
const PR: u32 = 8;

#[derive(Clone, Copy)]
struct BatchMetrics {
    queries: u64,
    wall_seconds: f64,
    queries_per_sec: f64,
    mean_latency_bytes: f64,
    mean_tuning_bytes: f64,
    p50_latency_bytes: u64,
    p95_latency_bytes: u64,
    p50_tuning_bytes: u64,
    p95_tuning_bytes: u64,
}

/// Nearest-rank percentile of a sorted sample (q in [0, 1]).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Deterministic tune-in instant for query `qi`.
fn start_of(qi: usize, cycle: u64) -> u64 {
    (qi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % cycle
}

fn run_windows(
    air: &DsiAir,
    windows: &[dsi_geom::Rect],
    validate: Option<&SpatialDataset>,
) -> BatchMetrics {
    let cycle = air.program().len();
    let mut stats = Vec::with_capacity(windows.len());
    let t0 = Instant::now();
    for (qi, w) in windows.iter().enumerate() {
        let mut tuner = Tuner::tune_in(
            air.program(),
            start_of(qi, cycle),
            LossModel::None,
            qi as u64,
        );
        let got = air.window_query(&mut tuner, w);
        if let Some(ds) = validate {
            assert_eq!(got, ds.brute_window(w), "window {qi} answer mismatch");
        }
        stats.push(tuner.stats());
    }
    finish(stats, t0)
}

fn run_knns(
    air: &DsiAir,
    points: &[dsi_geom::Point],
    validate: Option<&SpatialDataset>,
) -> BatchMetrics {
    let cycle = air.program().len();
    let mut stats = Vec::with_capacity(points.len());
    let t0 = Instant::now();
    for (qi, q) in points.iter().enumerate() {
        let mut tuner = Tuner::tune_in(
            air.program(),
            start_of(qi, cycle),
            LossModel::None,
            qi as u64,
        );
        let got = air.knn_query(&mut tuner, *q, K, KnnStrategy::Conservative);
        if let Some(ds) = validate {
            assert_eq!(got, ds.brute_knn(*q, K), "kNN {qi} answer mismatch");
        }
        stats.push(tuner.stats());
    }
    finish(stats, t0)
}

fn finish(stats: Vec<QueryStats>, t0: Instant) -> BatchMetrics {
    let wall = t0.elapsed().as_secs_f64();
    let mut m = MeanStats::default();
    let mut latencies: Vec<u64> = Vec::with_capacity(stats.len());
    let mut tunings: Vec<u64> = Vec::with_capacity(stats.len());
    for s in &stats {
        m.push(*s);
        latencies.push(s.latency_bytes());
        tunings.push(s.tuning_bytes());
    }
    latencies.sort_unstable();
    tunings.sort_unstable();
    BatchMetrics {
        queries: m.count(),
        wall_seconds: wall,
        queries_per_sec: m.count() as f64 / wall,
        mean_latency_bytes: m.latency_bytes(),
        mean_tuning_bytes: m.tuning_bytes(),
        p50_latency_bytes: percentile(&latencies, 0.50),
        p95_latency_bytes: percentile(&latencies, 0.95),
        p50_tuning_bytes: percentile(&tunings, 0.50),
        p95_tuning_bytes: percentile(&tunings, 0.95),
    }
}

fn batch_json(out: &mut String, name: &str, inc: BatchMetrics, scratch: BatchMetrics) {
    let speedup = inc.queries_per_sec / scratch.queries_per_sec;
    let _ = write!(
        out,
        "  \"{name}\": {{\n    \"incremental\": {},\n    \"from_scratch\": {},\n    \"speedup\": {speedup:.3}\n  }}",
        metrics_json(inc),
        metrics_json(scratch),
    );
}

fn metrics_json(m: BatchMetrics) -> String {
    format!(
        "{{\"queries\": {}, \"wall_seconds\": {:.4}, \"queries_per_sec\": {:.1}, \"mean_latency_bytes\": {:.1}, \"mean_tuning_bytes\": {:.1}, \"p50_latency_bytes\": {}, \"p95_latency_bytes\": {}, \"p50_tuning_bytes\": {}, \"p95_tuning_bytes\": {}}}",
        m.queries,
        m.wall_seconds,
        m.queries_per_sec,
        m.mean_latency_bytes,
        m.mean_tuning_bytes,
        m.p50_latency_bytes,
        m.p95_latency_bytes,
        m.p50_tuning_bytes,
        m.p95_tuning_bytes
    )
}

fn report(name: &str, inc: BatchMetrics, scratch: BatchMetrics) {
    println!(
        "{name:>8}: incremental {:>9.1} q/s | from-scratch {:>9.1} q/s | speedup {:.2}x | mean latency {:.0} B, tuning {:.0} B | latency p50/p95 {}/{} B | tuning p50/p95 {}/{} B",
        inc.queries_per_sec,
        scratch.queries_per_sec,
        inc.queries_per_sec / scratch.queries_per_sec,
        inc.mean_latency_bytes,
        inc.mean_tuning_bytes,
        inc.p50_latency_bytes,
        inc.p95_latency_bytes,
        inc.p50_tuning_bytes,
        inc.p95_tuning_bytes,
    );
}

/// Pulls one numeric field of a named batch's incremental record out of a
/// previous run's JSON (the fixed shape this binary writes; no JSON crate
/// in the offline build image).
fn extract_incremental(json: &str, section: &str, field: &str) -> Option<f64> {
    let sec = json.find(&format!("\"{section}\""))?;
    let inc = sec + json[sec..].find("\"incremental\"")?;
    let key = format!("\"{field}\":");
    let val = inc + json[inc..].find(&key)? + key.len();
    let rest = json[val..].trim_start();
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Pulls a top-level numeric field (e.g. `"pr"`) out of a previous run's
/// JSON. Best-effort: absent in hand-edited or pre-PR 3 baselines.
fn extract_top_number(json: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let val = json.find(&key)? + key.len();
    let rest = json[val..].trim_start();
    let end = rest.find([',', '}', '\n'])?;
    rest[..end].trim().parse().ok()
}

/// Prints per-metric deltas against a previous run (already read into
/// `prev`) and returns whether any incremental metric regressed beyond
/// `max_regression`: throughput dropping, or mean latency / tuning bytes
/// (the paper's access-time and energy costs) growing, by more than the
/// margin.
fn compare_against(
    prev_path: &str,
    prev: &str,
    batches: &[(&str, BatchMetrics)],
    max_regression: f64,
) -> bool {
    let mut regressed = false;
    println!(
        "--- comparison vs {prev_path} (fail beyond {:.0}% regression) ---",
        max_regression * 100.0
    );
    for &(name, m) in batches {
        // `(field, new value, higher-is-better)`.
        let metrics = [
            ("queries_per_sec", m.queries_per_sec, true),
            ("mean_latency_bytes", m.mean_latency_bytes, false),
            ("mean_tuning_bytes", m.mean_tuning_bytes, false),
            ("p50_latency_bytes", m.p50_latency_bytes as f64, false),
            ("p95_latency_bytes", m.p95_latency_bytes as f64, false),
            ("p50_tuning_bytes", m.p50_tuning_bytes as f64, false),
            ("p95_tuning_bytes", m.p95_tuning_bytes as f64, false),
        ];
        for (field, new, higher_better) in metrics {
            let Some(old) = extract_incremental(prev, name, field) else {
                println!("{name:>8}.{field}: not present in baseline, skipped");
                continue;
            };
            let ratio = new / old;
            let bad = if higher_better {
                ratio < 1.0 - max_regression
            } else {
                ratio > 1.0 + max_regression
            };
            let verdict = if bad {
                regressed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{name:>8}.{field}: {new:>12.1} vs {old:>12.1} ({:+.1}%) {verdict}",
                (ratio - 1.0) * 100.0,
            );
        }
    }
    regressed
}

/// One fleet workload's interleaved A/B result.
struct FleetAb {
    stats: FleetStats,
    baseline: BaselineRun,
    baseline_stride: usize,
}

impl FleetAb {
    /// Baseline events (tuning packets) served per second, from the
    /// subsampled rate measurement.
    fn baseline_events_per_sec(&self) -> f64 {
        (self.baseline.tuning_bytes / CAPACITY as f64) / self.baseline.wall_seconds
    }

    /// Fleet served-events/sec over baseline events/sec.
    fn events_speedup(&self) -> f64 {
        self.stats.events_per_sec / self.baseline_events_per_sec()
    }
}

/// Runs one fleet workload and its classic-loop baseline, interleaved
/// (fleet, baseline, fleet, baseline), keeping the best pass of each arm.
fn run_fleet_ab(
    engine: &Arc<Engine>,
    ds: &Arc<SpatialDataset>,
    pool: Vec<Query>,
    clients: usize,
) -> FleetAb {
    let spec = FleetSpec {
        skew: 1.1,
        ..FleetSpec::new(clients, pool)
    };
    // Rate-measure the slow baseline on ~300 clients of the population.
    let baseline_stride = clients.div_ceil(300).max(1);
    let mut best: Option<(FleetStats, BaselineRun)> = None;
    for _ in 0..2 {
        let (stats, _) = run_fleet(engine, None, &spec);
        let base = baseline_loop(engine, ds, &spec, baseline_stride);
        best = Some(match best.take() {
            None => (stats, base),
            Some((bs, bb)) => (
                if stats.wall_seconds < bs.wall_seconds {
                    stats
                } else {
                    bs
                },
                if base.wall_seconds < bb.wall_seconds {
                    base
                } else {
                    bb
                },
            ),
        });
    }
    let (stats, baseline) = best.expect("two passes ran");
    FleetAb {
        stats,
        baseline,
        baseline_stride,
    }
}

fn fleet_report(name: &str, ab: &FleetAb) {
    let s = &ab.stats;
    println!(
        "fleet {name:>6}: {} clients | {} drives ({:.1}% coalesced) | {:>9.0} clients/s | {:.3e} events/s | baseline {:.3e} events/s ({:.1}x) | lat p50/p95/p99 {}/{}/{} pkt | tun p50/p95/p99 {}/{}/{} pkt",
        s.clients,
        s.drives,
        100.0 * s.coalesced as f64 / s.clients.max(1) as f64,
        s.clients_per_sec,
        s.events_per_sec,
        ab.baseline_events_per_sec(),
        ab.events_speedup(),
        s.latency.p50,
        s.latency.p95,
        s.latency.p99,
        s.tuning.p50,
        s.tuning.p95,
        s.tuning.p99,
    );
}

fn fleet_json(out: &mut String, name: &str, ab: &FleetAb) {
    let s = &ab.stats;
    let _ = write!(
        out,
        "    \"{name}\": {{\"drives\": {}, \"coalesced\": {}, \"wall_seconds\": {:.4}, \"clients_per_sec\": {:.1}, \"events_per_sec\": {:.1}, \"baseline_clients\": {}, \"baseline_stride\": {}, \"baseline_wall_seconds\": {:.4}, \"baseline_events_per_sec\": {:.1}, \"events_speedup\": {:.2}, \"latency_p50\": {}, \"latency_p95\": {}, \"latency_p99\": {}, \"tuning_p50\": {}, \"tuning_p95\": {}, \"tuning_p99\": {}, \"share_hits\": {}, \"share_misses\": {}}}",
        s.drives,
        s.coalesced,
        s.wall_seconds,
        s.clients_per_sec,
        s.events_per_sec,
        ab.baseline.clients,
        ab.baseline_stride,
        ab.baseline.wall_seconds,
        ab.baseline_events_per_sec(),
        ab.events_speedup(),
        s.latency.p50,
        s.latency.p95,
        s.latency.p99,
        s.tuning.p50,
        s.tuning.p95,
        s.tuning.p99,
        s.window_cache_hits,
        s.window_cache_misses,
    );
}

fn main() {
    let n = env_usize("DSI_N", 10_000);
    let n_queries = env_usize("DSI_QUERIES", 200);
    assert!(n > 0, "DSI_N must be at least 1");
    assert!(n_queries > 0, "DSI_QUERIES must be at least 1");
    let out_path = std::env::var("DSI_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR8.json".into());
    let args: Vec<String> = std::env::args().collect();
    let compare_path = args
        .iter()
        .position(|a| a == "--compare")
        .map(|i| args.get(i + 1).expect("--compare needs a path").clone());
    // Read the baseline up front (fail before the long measurement, not
    // after) and name it in this run's JSON: gap PRs whose baseline is
    // several PRs old stay self-documenting.
    let baseline = compare_path.as_ref().map(|p| {
        let content = std::fs::read_to_string(p)
            .unwrap_or_else(|e| panic!("cannot read comparison baseline {p}: {e}"));
        (p.clone(), content)
    });
    let compared_against = match &baseline {
        Some((path, content)) => match extract_top_number(content, "pr") {
            Some(pr) => format!("{{\"path\": \"{path}\", \"pr\": {pr}}}"),
            None => format!("{{\"path\": \"{path}\"}}"),
        },
        None => "null".to_string(),
    };
    let max_regression = std::env::var("DSI_BENCH_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.10);

    println!("=== DSI client query-engine perf (N = {n}, {n_queries} queries/batch, {CAPACITY} B packets) ===");
    let ds = SpatialDataset::build(&uniform(n, 42), ORDER);
    let air = DsiAir::build(&ds, DsiConfig::paper_reorganized().with_capacity(CAPACITY));
    let windows = window_queries(n_queries, WINDOW_RATIO, 99);
    let points = knn_points(n_queries, 17);

    // Correctness pass (untimed): both paths must answer identically.
    hotpath::set_state_path(StatePath::Incremental);
    run_windows(&air, &windows[..n_queries.min(20)], Some(&ds));
    run_knns(&air, &points[..n_queries.min(20)], Some(&ds));
    hotpath::set_state_path(StatePath::FromScratch);
    run_windows(&air, &windows[..n_queries.min(20)], Some(&ds));
    run_knns(&air, &points[..n_queries.min(20)], Some(&ds));

    // Timed passes: warm up each path once, then keep the best of three
    // measured passes — shared-host scheduling noise otherwise dominates
    // run-to-run comparisons of sub-second batches.
    let fastest = |a: BatchMetrics, b: BatchMetrics| {
        if b.wall_seconds < a.wall_seconds {
            b
        } else {
            a
        }
    };
    let mut measured = Vec::new();
    for path in [StatePath::Incremental, StatePath::FromScratch] {
        hotpath::set_state_path(path);
        hotpath::reset_counters();
        run_windows(&air, &windows, None);
        run_knns(&air, &points, None);
        let mut w = run_windows(&air, &windows, None);
        let mut k = run_knns(&air, &points, None);
        for _ in 0..2 {
            w = fastest(w, run_windows(&air, &windows, None));
            k = fastest(k, run_knns(&air, &points, None));
        }
        let (full, events) = hotpath::counters();
        match path {
            StatePath::Incremental => assert_eq!(
                full, 0,
                "incremental path performed a from-scratch recomputation"
            ),
            _ => assert!(full > 0, "baseline path did not recompute"),
        }
        let _ = events;
        measured.push((w, k));
    }
    hotpath::set_state_path(StatePath::Incremental);
    let (win_inc, knn_inc) = measured[0];
    let (win_scr, knn_scr) = measured[1];

    report("window", win_inc, win_scr);
    report("knn10", knn_inc, knn_scr);

    // Fleet phase: the same broadcast serving a concurrent population,
    // interleaved A/B against the classic per-client loop.
    let fleet_clients = env_usize("DSI_FLEET_CLIENTS", 200_000);
    let ds = Arc::new(ds);
    let engine = Arc::new(Engine::build(
        Scheme::dsi_reorganized(CAPACITY),
        &ds,
        CAPACITY,
    ));
    let win_pool: Vec<Query> = windows.iter().take(8).copied().map(Query::Window).collect();
    let knn_pool: Vec<Query> = points
        .iter()
        .take(8)
        .copied()
        .map(|p| Query::Knn(p, K))
        .collect();
    let fleet_win = run_fleet_ab(&engine, &ds, win_pool, fleet_clients);
    let fleet_knn = run_fleet_ab(&engine, &ds, knn_pool, fleet_clients);
    fleet_report("window", &fleet_win);
    fleet_report("knn10", &fleet_knn);
    println!(
        "fleet  knn10: effective {:.0} q/s vs {:.0} q/s classic loop this run ({:.1}x; BENCH_PR6 single-client reference ~529 q/s)",
        fleet_knn.stats.clients_per_sec,
        knn_inc.queries_per_sec,
        fleet_knn.stats.clients_per_sec / knn_inc.queries_per_sec,
    );

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"bench\": \"dsi_client_query_engine\",\n  \"pr\": {PR},\n  \"compared_against\": {compared_against},\n  \"n\": {n},\n  \"queries_per_batch\": {n_queries},\n  \"capacity_bytes\": {CAPACITY},\n  \"k\": {K},\n  \"window_ratio\": {WINDOW_RATIO},"
    );
    batch_json(&mut json, "window", win_inc, win_scr);
    json.push_str(",\n");
    batch_json(&mut json, "knn10", knn_inc, knn_scr);
    json.push_str(",\n");
    let _ = writeln!(
        json,
        "  \"fleet\": {{\n    \"clients\": {fleet_clients},\n    \"workers\": {},",
        fleet_win.stats.workers
    );
    fleet_json(&mut json, "window", &fleet_win);
    json.push_str(",\n");
    fleet_json(&mut json, "knn10", &fleet_knn);
    json.push_str("\n  }\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("[wrote {out_path}]");

    if let Some((prev_path, prev)) = baseline {
        let batches = [("window", win_inc), ("knn10", knn_inc)];
        if compare_against(&prev_path, &prev, &batches, max_regression) {
            eprintln!("perf regression beyond the allowed margin");
            std::process::exit(1);
        }
    }
}
