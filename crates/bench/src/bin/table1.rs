//! Regenerates the paper's table1 results; see EXPERIMENTS.md.
fn main() {
    dsi_bench::run_experiment("table1", dsi_sim::experiments::table1);
}
