//! Regenerates the paper's fig8 results; see EXPERIMENTS.md.
fn main() {
    dsi_bench::run_experiment("fig8", dsi_sim::experiments::fig8);
}
