//! Shared driver for the figure/table regeneration binaries.
//!
//! Each binary (`fig8` … `table1`, `real`, `ablations`, `all`) calls the
//! corresponding `dsi_sim::experiments` function, prints the resulting
//! tables, and drops CSV copies under `results/`. Scale knobs come from
//! the environment: `DSI_QUERIES` (default 200), `DSI_N` (default 10,000),
//! `DSI_VALIDATE=0` to skip ground-truth checks.

use std::path::PathBuf;
use std::time::Instant;

use dsi_sim::experiments::ExpOptions;
use dsi_sim::Table;

/// Runs one experiment end to end: banner, tables, CSV dump, timing.
pub fn run_experiment(name: &str, f: impl FnOnce(&ExpOptions) -> Vec<Table>) {
    let opts = ExpOptions::from_env();
    println!(
        "=== {name} (N = {}, {} queries/point, validate = {}) ===",
        opts.dataset_n, opts.n_queries, opts.validate
    );
    let t0 = Instant::now();
    let tables = f(&opts);
    for (i, t) in tables.iter().enumerate() {
        println!("{}", t.render());
        let path = csv_path(name, i);
        if let Err(e) = t.write_csv(&path) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
    println!("[{name} done in {:.1?}]\n", t0.elapsed());
}

fn csv_path(name: &str, idx: usize) -> PathBuf {
    PathBuf::from("results").join(format!("{name}_{idx}.csv"))
}
