//! Shared driver for the figure/table regeneration binaries.
//!
//! Each binary (`fig8` … `table1`, `real`, `ablations`, `channels`, `all`)
//! is a thin wrapper: it calls the corresponding `dsi_sim::experiments`
//! function (every one of which is a selection of cells from the
//! `dsi_sim::matrix` experiment matrix), prints the resulting tables, and
//! drops both CSV copies (`results/<name>_<i>.csv`) and one combined JSON
//! result (`results/<name>.json`) under `results/`. Scale knobs come from
//! the environment: `DSI_QUERIES` (default 200), `DSI_N` (default 10,000),
//! `DSI_VALIDATE=0` to skip ground-truth checks.

use std::path::PathBuf;
use std::time::Instant;

use dsi_sim::experiments::ExpOptions;
use dsi_sim::Table;

/// Runs one experiment end to end: banner, tables, CSV + JSON dump,
/// timing.
pub fn run_experiment(name: &str, f: impl FnOnce(&ExpOptions) -> Vec<Table>) {
    let opts = ExpOptions::from_env();
    println!(
        "=== {name} (N = {}, {} queries/point, validate = {}) ===",
        opts.dataset_n, opts.n_queries, opts.validate
    );
    let t0 = Instant::now();
    let tables = f(&opts);
    for (i, t) in tables.iter().enumerate() {
        println!("{}", t.render());
        let path = csv_path(name, i);
        if let Err(e) = t.write_csv(&path) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
    let json_path = PathBuf::from("results").join(format!("{name}.json"));
    if let Err(e) = write_json(&json_path, name, &opts, &tables) {
        eprintln!("warning: could not write {}: {e}", json_path.display());
    }
    println!("[{name} done in {:.1?}]\n", t0.elapsed());
}

/// Writes the combined JSON result of one experiment.
fn write_json(
    path: &std::path::Path,
    name: &str,
    opts: &ExpOptions,
    tables: &[Table],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let body: Vec<String> = tables.iter().map(|t| t.to_json()).collect();
    let json = format!(
        "{{\"experiment\": \"{name}\", \"n\": {}, \"queries\": {}, \"tables\": [{}]}}\n",
        opts.dataset_n,
        opts.n_queries,
        body.join(", ")
    );
    std::fs::write(path, json)
}

fn csv_path(name: &str, idx: usize) -> PathBuf {
    PathBuf::from("results").join(format!("{name}_{idx}.csv"))
}
