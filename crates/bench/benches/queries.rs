//! End-to-end on-air query benchmarks (simulator throughput): one window
//! query and one 10NN query per scheme on a 2,000-object broadcast, plus
//! a driver-level comparison of the incremental client state engine
//! against the from-scratch baseline (`dsi_core::hotpath`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dsi_broadcast::LossModel;
use dsi_core::hotpath::{self, StatePath};
use dsi_datagen::{uniform, SpatialDataset};
use dsi_geom::{Point, Rect};
use dsi_sim::{Engine, Scheme};

fn bench_queries(c: &mut Criterion) {
    let ds = SpatialDataset::build(&uniform(2_000, 42), 12);
    let w = Rect::window_in_unit_square(Point::new(0.42, 0.58), 0.1);
    let q = Point::new(0.42, 0.58);
    for (name, scheme) in [
        ("dsi", Scheme::dsi_reorganized(64)),
        ("rtree", Scheme::RTree),
        ("hci", Scheme::Hci),
    ] {
        let e = Engine::build(scheme, &ds, 64);
        c.bench_function(&format!("query/window_{name}_64B"), |b| {
            let mut start = 0u64;
            b.iter(|| {
                start = (start + 7919) % e.cycle_packets();
                black_box(e.window(start, LossModel::None, start, black_box(&w)))
            })
        });
        c.bench_function(&format!("query/knn10_{name}_64B"), |b| {
            let mut start = 0u64;
            b.iter(|| {
                start = (start + 7919) % e.cycle_packets();
                black_box(e.knn(start, LossModel::None, start, black_box(q), 10))
            })
        });
    }
}

/// The tentpole's target path: window and 10NN through the DSI client
/// driver with the incremental state engine vs the from-scratch oracle.
fn bench_state_paths(c: &mut Criterion) {
    let ds = SpatialDataset::build(&uniform(2_000, 42), 12);
    let w = Rect::window_in_unit_square(Point::new(0.42, 0.58), 0.1);
    let q = Point::new(0.42, 0.58);
    let e = Engine::build(Scheme::dsi_reorganized(64), &ds, 64);
    for (name, path) in [
        ("incremental", StatePath::Incremental),
        ("from_scratch", StatePath::FromScratch),
    ] {
        c.bench_function(&format!("driver/window_{name}"), |b| {
            hotpath::set_state_path(path);
            let mut start = 0u64;
            b.iter(|| {
                start = (start + 7919) % e.cycle_packets();
                black_box(e.window(start, LossModel::None, start, black_box(&w)))
            })
        });
        c.bench_function(&format!("driver/knn10_{name}"), |b| {
            hotpath::set_state_path(path);
            let mut start = 0u64;
            b.iter(|| {
                start = (start + 7919) % e.cycle_packets();
                black_box(e.knn(start, LossModel::None, start, black_box(q), 10))
            })
        });
    }
    hotpath::set_state_path(StatePath::Incremental);
}

criterion_group!(
    name = queries;
    config = Criterion::default().sample_size(10);
    targets = bench_queries, bench_state_paths
);
criterion_main!(queries);
