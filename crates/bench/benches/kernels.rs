//! Micro-benchmarks of the computational kernels every query relies on:
//! Hilbert conversions, window decomposition, HC-interval distance.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dsi_geom::{GridMapper, Point, Rect};
use dsi_hilbert::{min_dist2_to_range, ranges_in_rect, HcRange, HilbertCurve};

fn bench_curve(c: &mut Criterion) {
    let curve = HilbertCurve::new(16);
    let mapper = GridMapper::unit_square(16);
    c.bench_function("hilbert/xy2d_order16", |b| {
        let cell = mapper.cell_of(Point::new(0.37, 0.83));
        b.iter(|| black_box(curve.xy2d(black_box(cell))))
    });
    c.bench_function("hilbert/d2xy_order16", |b| {
        let d = curve.xy2d(mapper.cell_of(Point::new(0.37, 0.83)));
        b.iter(|| black_box(curve.d2xy(black_box(d))))
    });
}

fn bench_decomposition(c: &mut Criterion) {
    let curve = HilbertCurve::new(12);
    let mapper = GridMapper::unit_square(12);
    for ratio in [0.05f64, 0.1, 0.2] {
        let w = Rect::window_in_unit_square(Point::new(0.43, 0.57), ratio);
        c.bench_function(&format!("hilbert/ranges_in_rect_ratio_{ratio}"), |b| {
            b.iter(|| black_box(ranges_in_rect(&curve, &mapper, black_box(&w))))
        });
    }
}

fn bench_range_distance(c: &mut Criterion) {
    let curve = HilbertCurve::new(12);
    let mapper = GridMapper::unit_square(12);
    let q = Point::new(0.21, 0.88);
    let range = HcRange::new(1 << 20, (1 << 21) + 12345);
    c.bench_function("hilbert/min_dist2_to_range", |b| {
        b.iter(|| black_box(min_dist2_to_range(&curve, &mapper, black_box(q), range)))
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(30);
    targets = bench_curve, bench_decomposition, bench_range_distance
);
criterion_main!(kernels);
