//! Benchmarks of broadcast-program construction for the three schemes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dsi_bptree::{BpAir, BpAirConfig};
use dsi_core::{DsiAir, DsiConfig};
use dsi_datagen::{uniform, SpatialDataset};
use dsi_geom::Point;
use dsi_rtree::{str_pack, RTreeAir, RtreeAirConfig};

fn bench_builds(c: &mut Criterion) {
    let n = 2_000;
    let ds = SpatialDataset::build(&uniform(n, 42), 12);
    let pts: Vec<(u32, Point)> = ds.objects().iter().map(|o| (o.id, o.pos)).collect();

    c.bench_function("build/dataset_snap_sort", |b| {
        let raw = uniform(n, 42);
        b.iter(|| black_box(SpatialDataset::build(black_box(&raw), 12)))
    });
    c.bench_function("build/dsi_air_64B", |b| {
        b.iter(|| {
            black_box(DsiAir::build(
                black_box(&ds),
                DsiConfig::paper_reorganized(),
            ))
        })
    });
    c.bench_function("build/str_pack", |b| {
        b.iter(|| black_box(str_pack(black_box(&pts), 10, 10)))
    });
    c.bench_function("build/rtree_air_64B", |b| {
        b.iter(|| black_box(RTreeAir::build(black_box(&pts), RtreeAirConfig::new(64))))
    });
    c.bench_function("build/hci_air_64B", |b| {
        b.iter(|| black_box(BpAir::build(black_box(&ds), BpAirConfig::new(64))))
    });
}

criterion_group!(
    name = builds;
    config = Criterion::default().sample_size(10);
    targets = bench_builds
);
criterion_main!(builds);
