//! Property tests for the Hilbert kernels: bijectivity, decomposition
//! exactness, and distance lower bounds.

use dsi_geom::{Cell, GridMapper, Point, Rect};
use dsi_hilbert::{
    min_dist2_to_range, narrow_ranges_to_circle_into, ranges_in_cell_rect,
    ranges_in_circle_with_dist_into, ranges_in_rect, ranges_in_rect_with_dist_into, DistRange,
    HcRange, HilbertCurve,
};
use proptest::prelude::*;

/// Checks a circle decomposition against brute force over every cell:
/// membership (exactly the cells whose extent intersects the closed
/// circle), maximality, and exact distance bounds.
fn assert_circle_decomposition(
    curve: &HilbertCurve,
    mapper: &GridMapper,
    center: Point,
    r2: f64,
    out: &[DistRange],
) {
    for w in out.windows(2) {
        assert!(
            w[0].range.hi + 1 < w[1].range.lo,
            "not maximal: {:?} / {:?}",
            w[0],
            w[1]
        );
    }
    let covered: Vec<u64> = out
        .iter()
        .flat_map(|dr| dr.range.lo..=dr.range.hi)
        .collect();
    let mut want = Vec::new();
    for x in 0..curve.side() {
        for y in 0..curve.side() {
            let cell = Cell::new(x, y);
            if mapper.cell_rect(cell).min_dist2(center) <= r2 {
                want.push(curve.xy2d(cell));
            }
        }
    }
    want.sort_unstable();
    assert_eq!(covered, want, "center {center:?}, r2 {r2}");
    for dr in out {
        let mut min = f64::INFINITY;
        for d in dr.range.lo..=dr.range.hi {
            min = min.min(mapper.cell_rect(curve.d2xy(d)).min_dist2(center));
        }
        assert!(
            (dr.min_d2 - min).abs() < 1e-12,
            "range {:?}: min_d2 {} want {min}",
            dr.range,
            dr.min_d2
        );
        let oracle = min_dist2_to_range(curve, mapper, center, dr.range);
        assert!(
            (dr.min_d2 - oracle).abs() < 1e-12,
            "range {:?}: min_d2 {} differs from branch-and-bound {oracle}",
            dr.range,
            dr.min_d2
        );
    }
}

/// Exhaustive sweep on a small grid: centers on and off the grid (incl.
/// outside the unit square), radii from degenerate 0 through
/// covering-the-grid.
#[test]
fn circle_decomposition_exhaustive_small_grid() {
    let curve = HilbertCurve::new(3);
    let mapper = GridMapper::unit_square(3);
    let mut out = Vec::new();
    for cx in [-0.4, 0.0, 0.125, 0.5, 0.9, 1.0, 1.6] {
        for cy in [-0.2, 0.25, 0.51, 1.3] {
            for r in [0.0, 0.06, 0.125, 0.25, 0.49, 0.8, 1.5, 3.0] {
                let center = Point::new(cx, cy);
                ranges_in_circle_with_dist_into(&curve, &mapper, center, r * r, &mut out);
                assert_circle_decomposition(&curve, &mapper, center, r * r, &out);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn xy2d_d2xy_roundtrip(order in 1u8..16, seed in any::<u64>()) {
        let c = HilbertCurve::new(order);
        let d = seed % (c.max_d() + 1);
        prop_assert_eq!(c.xy2d(c.d2xy(d)), d);
    }

    #[test]
    fn neighbours_along_curve(order in 2u8..10, seed in any::<u64>()) {
        let c = HilbertCurve::new(order);
        let d = seed % c.max_d();
        let a = c.d2xy(d);
        let b = c.d2xy(d + 1);
        let manhattan = (a.x as i64 - b.x as i64).abs() + (a.y as i64 - b.y as i64).abs();
        prop_assert_eq!(manhattan, 1);
    }

    #[test]
    fn decomposition_matches_membership(
        order in 2u8..7,
        x0 in 0u32..32, y0 in 0u32..32, w in 0u32..16, h in 0u32..16,
        probe in any::<u64>(),
    ) {
        let c = HilbertCurve::new(order);
        let side = c.side();
        let lo = Cell::new(x0 % side, y0 % side);
        let hi = Cell::new((lo.x + w).min(side - 1), (lo.y + h).min(side - 1));
        let ranges = ranges_in_cell_rect(&c, lo, hi);
        // Ranges are sorted, disjoint, non-adjacent.
        for win in ranges.windows(2) {
            prop_assert!(win[0].hi + 1 < win[1].lo);
        }
        // A random cell is in the rectangle iff its d is in some range.
        let d = probe % (c.max_d() + 1);
        let cell = c.d2xy(d);
        let inside = cell.x >= lo.x && cell.x <= hi.x && cell.y >= lo.y && cell.y <= hi.y;
        let covered = ranges.iter().any(|r| r.contains(d));
        prop_assert_eq!(inside, covered);
        // Total length equals the rectangle's area.
        let total: u64 = ranges.iter().map(|r| r.len()).sum();
        prop_assert_eq!(total, ((hi.x - lo.x + 1) as u64) * ((hi.y - lo.y + 1) as u64));
    }

    #[test]
    fn range_distance_is_exact_lower_bound(
        order in 2u8..6,
        qx in -0.5..1.5f64, qy in -0.5..1.5f64,
        a in any::<u64>(), b in any::<u64>(),
    ) {
        let c = HilbertCurve::new(order);
        let m = GridMapper::unit_square(order);
        let q = Point::new(qx, qy);
        let (mut lo, mut hi) = (a % (c.max_d() + 1), b % (c.max_d() + 1));
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let range = HcRange::new(lo, hi);
        let got = min_dist2_to_range(&c, &m, q, range);
        // Brute force over every cell in the range.
        let mut want = f64::INFINITY;
        for d in lo..=hi {
            want = want.min(m.cell_rect(c.d2xy(d)).min_dist2(q));
        }
        prop_assert!((got - want).abs() < 1e-12, "got {got}, want {want}");
    }

    #[test]
    fn continuous_window_covers_all_objects(
        order in 3u8..9,
        cx in 0.0..1.0f64, cy in 0.0..1.0f64, side in 0.01..0.5f64,
        px in 0.0..1.0f64, py in 0.0..1.0f64,
    ) {
        let c = HilbertCurve::new(order);
        let m = GridMapper::unit_square(order);
        let w = Rect::window_in_unit_square(Point::new(cx, cy), side);
        let ranges = ranges_in_rect(&c, &m, &w);
        // Any point inside the window has its cell's HC covered.
        let p = Point::new(px, py);
        if w.contains(p) {
            let d = c.xy2d(m.cell_of(p));
            prop_assert!(ranges.iter().any(|r| r.contains(d)),
                "point {p:?} in window but HC {d} uncovered");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn circle_decomposition_matches_brute_force(
        order in 2u8..7,
        cx in -0.5..1.5f64, cy in -0.5..1.5f64,
        r in 0.0..1.2f64,
    ) {
        let curve = HilbertCurve::new(order);
        let mapper = GridMapper::unit_square(order);
        let center = Point::new(cx, cy);
        let mut out = Vec::new();
        ranges_in_circle_with_dist_into(&curve, &mapper, center, r * r, &mut out);
        // No range reaches outside the circle's bounding square.
        let bbox = Rect::bounding_square(center, r);
        for dr in &out {
            for d in [dr.range.lo, dr.range.hi] {
                let cell_rect = mapper.cell_rect(curve.d2xy(d));
                prop_assert!(
                    cell_rect.intersects(&bbox),
                    "cell of HC {d} outside the bounding square"
                );
            }
        }
        assert_circle_decomposition(&curve, &mapper, center, r * r, &out);
    }

    #[test]
    fn narrowing_matches_direct_decomposition(
        order in 2u8..7,
        cx in -0.3..1.3f64, cy in -0.3..1.3f64,
        r_big in 0.05..1.2f64,
        shrink in 0.0..1.0f64,
    ) {
        let curve = HilbertCurve::new(order);
        let mapper = GridMapper::unit_square(order);
        let center = Point::new(cx, cy);
        let mut prev = Vec::new();
        ranges_in_circle_with_dist_into(&curve, &mapper, center, r_big * r_big, &mut prev);
        let r_small = r_big * shrink;
        let mut narrowed = Vec::new();
        narrow_ranges_to_circle_into(&curve, &mapper, center, r_small * r_small, &prev, &mut narrowed);
        let mut direct = Vec::new();
        ranges_in_circle_with_dist_into(&curve, &mapper, center, r_small * r_small, &mut direct);
        prop_assert_eq!(narrowed, direct);
    }

    #[test]
    fn with_dist_decomposition_matches_plain_and_exact_distances(
        order in 2u8..7,
        cx in -0.3..1.3f64, cy in -0.3..1.3f64, side in 0.05..0.9f64,
        qx in -0.5..1.5f64, qy in -0.5..1.5f64,
    ) {
        let c = HilbertCurve::new(order);
        let m = GridMapper::unit_square(order);
        let w = Rect::window_in_unit_square(Point::new(cx, cy), side);
        let q = Point::new(qx, qy);
        let plain = ranges_in_rect(&c, &m, &w);
        let mut with_dist = Vec::new();
        ranges_in_rect_with_dist_into(&c, &m, &w, q, &mut with_dist);
        // Same ranges…
        let got_ranges: Vec<HcRange> = with_dist.iter().map(|&(r, _)| r).collect();
        prop_assert_eq!(&got_ranges, &plain);
        // …and each distance equals the branch-and-bound oracle.
        for &(r, d2) in &with_dist {
            let want = min_dist2_to_range(&c, &m, q, r);
            prop_assert!((d2 - want).abs() < 1e-12, "range {r:?}: got {d2}, want {want}");
        }
    }
}
