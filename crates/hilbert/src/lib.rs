//! Hilbert space-filling curve kernels for the DSI reproduction.
//!
//! The paper broadcasts data objects in ascending order of their Hilbert
//! curve (HC) values and performs all spatial reasoning in HC space:
//!
//! * [`HilbertCurve`] — the bidirectional mapping between grid cells and
//!   curve positions (`xy2d` / `d2xy`), the "conversion in constant time"
//!   the paper assumes every client can perform (its reference `[12]`).
//! * [`ranges_in_rect`] — decomposition of a query window into the maximal
//!   set of contiguous HC intervals covered by it: the *target segments*
//!   `H` of the window-query algorithm (paper Algorithm 1, step 1).
//! * [`ranges_in_circle_with_dist_into`] — direct decomposition of a kNN
//!   search circle, pruning quadrants outside the circle *during* the
//!   descent, with [`narrow_ranges_to_circle_into`] refining a previous
//!   decomposition when the circle shrinks (paper §3.4–3.5).
//! * [`min_dist2_to_range`] — the exact minimum distance from a query point
//!   to any cell of an HC interval; this is what lets the kNN algorithms
//!   decide whether a not-yet-broadcast HC region can still contain a
//!   nearer neighbour.
//!
//! All functions are pure and allocation-conscious; the decompositions
//! reuse caller-provided buffers where it matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod curve;
mod dist;
mod ranges;
mod zorder;

pub use curve::HilbertCurve;
pub use dist::min_dist2_to_range;
pub use ranges::{
    merge_ranges, narrow_ranges_to_circle_into, ranges_in_cell_rect,
    ranges_in_circle_with_dist_into, ranges_in_rect, ranges_in_rect_into,
    ranges_in_rect_with_dist_into, DistRange, HcRange,
};
pub use zorder::ZOrderCurve;
