//! Z-order (Morton) curve — the design-choice foil for Hilbert.
//!
//! The paper adopts the Hilbert curve because "the key is to keep
//! neighbors in a high dimensional space remaining close to each other in
//! the broadcast channel" (§2.1), citing its superior metric properties
//! (Gotsman & Lindenbaum). This module provides the obvious cheaper
//! alternative — bit-interleaved Morton order — with the same interface,
//! so tests and benches can quantify exactly how much locality Hilbert
//! buys: the mean curve-distance between grid neighbours, which drives
//! both the number of window target segments and the kNN circle
//! decomposition size.

use dsi_geom::Cell;

/// A Z-order (Morton) curve of a given order over the `2^order × 2^order`
/// grid. Positions are bit-interleavings of the cell coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZOrderCurve {
    order: u8,
}

impl ZOrderCurve {
    /// Creates a curve of the given order (1..=31).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= order <= 31`.
    pub fn new(order: u8) -> Self {
        assert!(
            (1..=31).contains(&order),
            "Z-order curve order must be in 1..=31, got {order}"
        );
        Self { order }
    }

    /// The order of the curve.
    #[inline]
    pub fn order(&self) -> u8 {
        self.order
    }

    /// Cells per grid side.
    #[inline]
    pub fn side(&self) -> u32 {
        1u32 << self.order
    }

    /// Largest curve position (`4^order − 1`).
    #[inline]
    pub fn max_d(&self) -> u64 {
        (1u64 << (2 * self.order)) - 1
    }

    /// Maps a grid cell to its Morton code.
    pub fn xy2d(&self, cell: Cell) -> u64 {
        debug_assert!(cell.x < self.side() && cell.y < self.side());
        interleave(cell.x) | (interleave(cell.y) << 1)
    }

    /// Maps a Morton code back to its grid cell.
    pub fn d2xy(&self, d: u64) -> Cell {
        debug_assert!(d <= self.max_d());
        Cell::new(deinterleave(d), deinterleave(d >> 1))
    }
}

/// Spreads the 32 bits of `v` to the even bit positions of a `u64`.
fn interleave(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Collects the even bit positions of `x` into a `u32`.
fn deinterleave(x: u64) -> u32 {
    let mut x = x & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HilbertCurve;

    #[test]
    fn bijective_on_small_orders() {
        for order in 1..=5u8 {
            let c = ZOrderCurve::new(order);
            let mut seen = vec![false; (c.max_d() + 1) as usize];
            for x in 0..c.side() {
                for y in 0..c.side() {
                    let d = c.xy2d(Cell::new(x, y));
                    assert!(!seen[d as usize], "duplicate at ({x},{y})");
                    seen[d as usize] = true;
                    assert_eq!(c.d2xy(d), Cell::new(x, y));
                }
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn known_morton_codes() {
        let c = ZOrderCurve::new(3);
        assert_eq!(c.xy2d(Cell::new(0, 0)), 0);
        assert_eq!(c.xy2d(Cell::new(1, 0)), 1);
        assert_eq!(c.xy2d(Cell::new(0, 1)), 2);
        assert_eq!(c.xy2d(Cell::new(1, 1)), 3);
        assert_eq!(c.xy2d(Cell::new(7, 7)), 63);
    }

    /// The design-choice evidence the paper leans on: along the broadcast,
    /// the Hilbert curve's consecutive positions are always grid
    /// neighbours, while Z-order takes long diagonal jumps — so windows
    /// decompose into fewer, longer segments under Hilbert.
    #[test]
    fn hilbert_has_strictly_better_step_locality() {
        let order = 6u8;
        let h = HilbertCurve::new(order);
        let z = ZOrderCurve::new(order);
        let step = |a: Cell, b: Cell| {
            ((a.x as i64 - b.x as i64).abs() + (a.y as i64 - b.y as i64).abs()) as u64
        };
        let mut h_total = 0u64;
        let mut z_total = 0u64;
        for d in 0..h.max_d() {
            h_total += step(h.d2xy(d), h.d2xy(d + 1));
            z_total += step(z.d2xy(d), z.d2xy(d + 1));
        }
        assert_eq!(h_total, h.max_d(), "every Hilbert step is a unit step");
        assert!(
            z_total > 19 * h_total / 10,
            "Z-order steps should average nearly twice the unit length: {z_total} vs {h_total}"
        );
    }

    /// Windows decompose into fewer runs under Hilbert than under Z-order:
    /// fewer target segments means fewer EEF descents per window query.
    #[test]
    fn hilbert_yields_fewer_window_segments() {
        let order = 6u8;
        let h = HilbertCurve::new(order);
        let z = ZOrderCurve::new(order);
        let runs = |ds: &mut Vec<u64>| {
            ds.sort_unstable();
            ds.windows(2).filter(|w| w[1] != w[0] + 1).count() + 1
        };
        let mut h_runs = 0usize;
        let mut z_runs = 0usize;
        // A grid of test windows of side 12 cells.
        for wx in (0..52u32).step_by(13) {
            for wy in (0..52u32).step_by(13) {
                let mut hd = Vec::new();
                let mut zd = Vec::new();
                for x in wx..wx + 12 {
                    for y in wy..wy + 12 {
                        hd.push(h.xy2d(Cell::new(x, y)));
                        zd.push(z.xy2d(Cell::new(x, y)));
                    }
                }
                h_runs += runs(&mut hd);
                z_runs += runs(&mut zd);
            }
        }
        assert!(
            h_runs < z_runs,
            "Hilbert should give fewer segments: {h_runs} vs {z_runs}"
        );
    }
}
