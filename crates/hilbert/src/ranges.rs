//! Decomposition of a query window into contiguous Hilbert ranges.
//!
//! "The window query algorithm first detects all the intersections between
//! the HC and the boundary of W" (paper §3.3): all curve segments inside the
//! window form the *target segments set* `H`. We compute `H` exactly by
//! descending the quadtree of grid-aligned blocks: a block fully inside the
//! window contributes its whole (contiguous) HC interval; a block partially
//! overlapping is split into its four children; disjoint blocks are pruned.
//! Adjacent intervals are then merged so the result is the minimal set of
//! maximal segments.

use dsi_geom::{Cell, GridMapper, Point, Rect};

use crate::curve::HilbertCurve;

/// An inclusive interval `[lo, hi]` of Hilbert values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HcRange {
    /// Smallest HC value of the segment.
    pub lo: u64,
    /// Largest HC value of the segment (inclusive).
    pub hi: u64,
}

impl HcRange {
    /// Creates a range; `lo` must not exceed `hi`.
    #[inline]
    pub fn new(lo: u64, hi: u64) -> Self {
        debug_assert!(lo <= hi, "invalid HC range [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// Whether `d` lies inside the range.
    #[inline]
    pub fn contains(&self, d: u64) -> bool {
        self.lo <= d && d <= self.hi
    }

    /// Whether the two inclusive ranges share a value.
    #[inline]
    pub fn overlaps(&self, other: &HcRange) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Number of HC values covered.
    #[inline]
    pub fn len(&self) -> u64 {
        self.hi - self.lo + 1
    }

    /// Inclusive ranges are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Computes the target segment set `H` for a continuous query window.
///
/// `rect` is intersected with the grid; cells whose extent intersects the
/// window are included (an object anywhere in such a cell may satisfy the
/// query). Returns maximal disjoint ranges in ascending order; empty if the
/// window misses the grid.
pub fn ranges_in_rect(curve: &HilbertCurve, mapper: &GridMapper, rect: &Rect) -> Vec<HcRange> {
    let mut out = Vec::new();
    ranges_in_rect_into(curve, mapper, rect, &mut out);
    out
}

/// Like [`ranges_in_rect`], but writes into a caller-provided buffer
/// (cleared first) so repeated decompositions — e.g. a kNN client
/// re-deriving its target set every time the search circle shrinks — can
/// reuse one allocation.
pub fn ranges_in_rect_into(
    curve: &HilbertCurve,
    mapper: &GridMapper,
    rect: &Rect,
    out: &mut Vec<HcRange>,
) {
    out.clear();
    if let Some((lo, hi)) = mapper.cells_overlapping(rect) {
        assert!(lo.x <= hi.x && lo.y <= hi.y, "inverted cell rectangle");
        descend(curve, lo, hi, out);
    }
}

/// Computes the maximal HC ranges covering exactly the inclusive cell
/// rectangle `[lo.x, hi.x] × [lo.y, hi.y]`.
pub fn ranges_in_cell_rect(curve: &HilbertCurve, lo: Cell, hi: Cell) -> Vec<HcRange> {
    assert!(lo.x <= hi.x && lo.y <= hi.y, "inverted cell rectangle");
    let mut out = Vec::new();
    descend(curve, lo, hi, &mut out);
    out
}

/// Quadrant traversal tables of the 2D Hilbert curve: `CHILD_ORDER[s][k]`
/// is the `(dx, dy)` offset of the k-th child visited by the curve in
/// orientation `s`, and `CHILD_STATE[s][k]` that child's orientation.
/// State 0 is the root orientation of [`HilbertCurve::xy2d`]; the tables
/// were derived from it and are guarded by the exhaustive decomposition
/// tests. Traversing children in curve order lets the descent carry each
/// block's first HC value down the recursion — emissions arrive sorted,
/// so no per-block `block_base`, no final sort, no merge pass.
const CHILD_ORDER: [[(u32, u32); 4]; 4] = [
    [(0, 0), (0, 1), (1, 1), (1, 0)],
    [(0, 0), (1, 0), (1, 1), (0, 1)],
    [(1, 1), (0, 1), (0, 0), (1, 0)],
    [(1, 1), (1, 0), (0, 0), (0, 1)],
];
const CHILD_STATE: [[u8; 4]; 4] = [[1, 0, 0, 2], [0, 1, 1, 3], [3, 2, 2, 0], [2, 3, 3, 1]];

/// Like [`ranges_in_rect_into`], but additionally reports each produced
/// range's **exact** squared minimum distance from `q` to any cell of the
/// range. The distance falls out of the decomposition for free (every
/// emitted block's rectangle is known at emission; merged neighbours
/// combine by minimum), which saves the caller a branch-and-bound
/// [`crate::min_dist2_to_range`] per range — the dominant cost of kNN
/// target refreshes.
pub fn ranges_in_rect_with_dist_into(
    curve: &HilbertCurve,
    mapper: &GridMapper,
    rect: &Rect,
    q: Point,
    out: &mut Vec<(HcRange, f64)>,
) {
    out.clear();
    let Some((lo, hi)) = mapper.cells_overlapping(rect) else {
        return;
    };
    descend_ordered(
        0,
        0,
        curve.order(),
        0,
        0,
        lo,
        hi,
        &mut |x0, y0, level, base| {
            let d2 = block_extent(mapper, x0, y0, level).min_dist2(q);
            let r = HcRange::new(base, base + (1u64 << (2 * level)) - 1);
            if let Some(last) = out.last_mut() {
                if r.lo == last.0.hi + 1 {
                    last.0.hi = r.hi;
                    last.1 = last.1.min(d2);
                    return;
                }
            }
            out.push((r, d2));
        },
    );
}

/// The rectangle covering an aligned block's cell extents. Cells tile it,
/// so its mindist to a point is the exact minimum over the block's cells.
fn block_extent(mapper: &GridMapper, x0: u32, y0: u32, level: u8) -> Rect {
    let bs = 1u32 << level;
    let lo = mapper.cell_rect(Cell::new(x0, y0));
    let hi = mapper.cell_rect(Cell::new(x0 + bs - 1, y0 + bs - 1));
    lo.union(&hi)
}

/// Block descent emitting maximal merged ranges, already sorted.
fn descend(curve: &HilbertCurve, lo: Cell, hi: Cell, out: &mut Vec<HcRange>) {
    descend_ordered(
        0,
        0,
        curve.order(),
        0,
        0,
        lo,
        hi,
        &mut |_, _, level, base| {
            let r = HcRange::new(base, base + (1u64 << (2 * level)) - 1);
            if let Some(last) = out.last_mut() {
                if r.lo == last.hi + 1 {
                    last.hi = r.hi;
                    return;
                }
            }
            out.push(r);
        },
    );
}

/// Curve-order recursive block descent. `(x0, y0)` is the block's
/// lower-left cell, `level` its log2 side length, `state` its curve
/// orientation and `base` its first HC value. Calls `emit` once per
/// maximal fully-contained block, in ascending HC order (so emissions
/// merge with a single look-back).
#[allow(clippy::too_many_arguments)]
fn descend_ordered<F: FnMut(u32, u32, u8, u64)>(
    x0: u32,
    y0: u32,
    level: u8,
    state: u8,
    base: u64,
    lo: Cell,
    hi: Cell,
    emit: &mut F,
) {
    let bs = 1u32 << level; // block side
    let bx1 = x0 + bs - 1;
    let by1 = y0 + bs - 1;
    // Disjoint from the query rectangle?
    if bx1 < lo.x || x0 > hi.x || by1 < lo.y || y0 > hi.y {
        return;
    }
    // Fully contained: the block's HC interval is contiguous. This also
    // catches every reached level-0 block — a single cell that overlaps
    // the rectangle is inside it — so the recursion below never splits a
    // cell.
    if x0 >= lo.x && bx1 <= hi.x && y0 >= lo.y && by1 <= hi.y {
        emit(x0, y0, level, base);
        return;
    }
    debug_assert!(level > 0, "partial overlap is impossible for single cells");
    let half = bs >> 1;
    let child_span = 1u64 << (2 * (level - 1));
    let s = state as usize;
    for (k, &(dx, dy)) in CHILD_ORDER[s].iter().enumerate() {
        descend_ordered(
            x0 + dx * half,
            y0 + dy * half,
            level - 1,
            CHILD_STATE[s][k],
            base + k as u64 * child_span,
            lo,
            hi,
            emit,
        );
    }
}

/// Sorts ranges and merges overlapping or adjacent ones in place.
pub fn merge_ranges(ranges: &mut Vec<HcRange>) {
    if ranges.len() <= 1 {
        return;
    }
    ranges.sort_unstable();
    let mut w = 0usize;
    for i in 1..ranges.len() {
        let cur = ranges[i];
        let last = &mut ranges[w];
        // Adjacent (hi + 1 == lo) or overlapping ranges coalesce.
        if cur.lo <= last.hi.saturating_add(1) {
            last.hi = last.hi.max(cur.hi);
        } else {
            w += 1;
            ranges[w] = cur;
        }
    }
    ranges.truncate(w + 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_geom::Point;

    fn brute_force(curve: &HilbertCurve, lo: Cell, hi: Cell) -> Vec<u64> {
        let mut ds = Vec::new();
        for x in lo.x..=hi.x {
            for y in lo.y..=hi.y {
                ds.push(curve.xy2d(Cell::new(x, y)));
            }
        }
        ds.sort_unstable();
        ds
    }

    fn expand(ranges: &[HcRange]) -> Vec<u64> {
        let mut ds = Vec::new();
        for r in ranges {
            ds.extend(r.lo..=r.hi);
        }
        ds
    }

    #[test]
    fn full_grid_is_one_range() {
        let c = HilbertCurve::new(4);
        let r = ranges_in_cell_rect(&c, Cell::new(0, 0), Cell::new(15, 15));
        assert_eq!(r, vec![HcRange::new(0, 255)]);
    }

    #[test]
    fn single_cell() {
        let c = HilbertCurve::new(3);
        let d = c.xy2d(Cell::new(5, 2));
        let r = ranges_in_cell_rect(&c, Cell::new(5, 2), Cell::new(5, 2));
        assert_eq!(r, vec![HcRange::new(d, d)]);
    }

    #[test]
    fn matches_brute_force_exhaustively() {
        // Every rectangle of a 8×8 grid.
        let c = HilbertCurve::new(3);
        for x0 in 0..8u32 {
            for y0 in 0..8u32 {
                for x1 in x0..8u32 {
                    for y1 in y0..8u32 {
                        let lo = Cell::new(x0, y0);
                        let hi = Cell::new(x1, y1);
                        let got = expand(&ranges_in_cell_rect(&c, lo, hi));
                        let want = brute_force(&c, lo, hi);
                        assert_eq!(got, want, "rect ({x0},{y0})..({x1},{y1})");
                    }
                }
            }
        }
    }

    #[test]
    fn ranges_are_maximal() {
        let c = HilbertCurve::new(4);
        for (lo, hi) in [
            (Cell::new(1, 1), Cell::new(6, 9)),
            (Cell::new(0, 3), Cell::new(15, 5)),
            (Cell::new(7, 0), Cell::new(9, 15)),
        ] {
            let rs = ranges_in_cell_rect(&c, lo, hi);
            for w in rs.windows(2) {
                assert!(
                    w[0].hi + 1 < w[1].lo,
                    "ranges {:?} and {:?} should have been merged",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn continuous_rect_covers_overlapping_cells() {
        let c = HilbertCurve::new(2);
        let m = GridMapper::unit_square(2);
        // A window well inside cell (1,1)..(2,2) on a 4×4 grid.
        let w = Rect::new(0.3, 0.3, 0.7, 0.7);
        let rs = ranges_in_rect(&c, &m, &w);
        let want = brute_force(&c, Cell::new(1, 1), Cell::new(2, 2));
        assert_eq!(expand(&rs), want);
        // A window outside the grid yields nothing.
        assert!(ranges_in_rect(&c, &m, &Rect::new(2.0, 2.0, 3.0, 3.0)).is_empty());
        // Degenerate (point) window maps to one cell.
        let p = Rect::from_corners(Point::new(0.1, 0.1), Point::new(0.1, 0.1));
        let rs = ranges_in_rect(&c, &m, &p);
        assert_eq!(expand(&rs), vec![c.xy2d(Cell::new(0, 0))]);
    }

    #[test]
    fn merge_handles_duplicates_and_adjacency() {
        let mut rs = vec![
            HcRange::new(10, 12),
            HcRange::new(0, 3),
            HcRange::new(4, 6),
            HcRange::new(11, 15),
            HcRange::new(20, 20),
        ];
        merge_ranges(&mut rs);
        assert_eq!(
            rs,
            vec![
                HcRange::new(0, 6),
                HcRange::new(10, 15),
                HcRange::new(20, 20)
            ]
        );
    }

    #[test]
    fn running_example_window() {
        // Reconstruct the paper's Figure 5 example: on the order-3 curve the
        // shaded window produces target segments [10,11], [28,35], [52,53].
        // Those segments correspond to the 2×4 cell block with corners such
        // that the curve enters/leaves three times; we verify our
        // decomposition produces exactly three segments for that block.
        let c = HilbertCurve::new(3);
        // Cells covering HC 10,11,28..35,52,53 — find them by brute force.
        let mut cells = Vec::new();
        for x in 0..8u32 {
            for y in 0..8u32 {
                let d = c.xy2d(Cell::new(x, y));
                if (10..=11).contains(&d) || (28..=35).contains(&d) || (52..=53).contains(&d) {
                    cells.push(Cell::new(x, y));
                }
            }
        }
        let min = Cell::new(
            cells.iter().map(|c| c.x).min().unwrap(),
            cells.iter().map(|c| c.y).min().unwrap(),
        );
        let max = Cell::new(
            cells.iter().map(|c| c.x).max().unwrap(),
            cells.iter().map(|c| c.y).max().unwrap(),
        );
        // The cells must form exactly that rectangle for the example to hold.
        assert_eq!(
            ((max.x - min.x + 1) * (max.y - min.y + 1)) as usize,
            cells.len()
        );
        let rs = ranges_in_cell_rect(&c, min, max);
        assert_eq!(
            rs,
            vec![
                HcRange::new(10, 11),
                HcRange::new(28, 35),
                HcRange::new(52, 53)
            ]
        );
    }
}
