//! Decomposition of a query window into contiguous Hilbert ranges.
//!
//! "The window query algorithm first detects all the intersections between
//! the HC and the boundary of W" (paper §3.3): all curve segments inside the
//! window form the *target segments set* `H`. We compute `H` exactly by
//! descending the quadtree of grid-aligned blocks: a block fully inside the
//! window contributes its whole (contiguous) HC interval; a block partially
//! overlapping is split into its four children; disjoint blocks are pruned.
//! Adjacent intervals are then merged so the result is the minimal set of
//! maximal segments.

use dsi_geom::{Cell, GridMapper, Point, Rect};

use crate::curve::HilbertCurve;

/// An inclusive interval `[lo, hi]` of Hilbert values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HcRange {
    /// Smallest HC value of the segment.
    pub lo: u64,
    /// Largest HC value of the segment (inclusive).
    pub hi: u64,
}

impl HcRange {
    /// Creates a range; `lo` must not exceed `hi`.
    #[inline]
    pub fn new(lo: u64, hi: u64) -> Self {
        debug_assert!(lo <= hi, "invalid HC range [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// Whether `d` lies inside the range.
    #[inline]
    pub fn contains(&self, d: u64) -> bool {
        self.lo <= d && d <= self.hi
    }

    /// Whether the two inclusive ranges share a value.
    #[inline]
    pub fn overlaps(&self, other: &HcRange) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Number of HC values covered.
    #[inline]
    pub fn len(&self) -> u64 {
        self.hi - self.lo + 1
    }

    /// Inclusive ranges are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Computes the target segment set `H` for a continuous query window.
///
/// `rect` is intersected with the grid; cells whose extent intersects the
/// window are included (an object anywhere in such a cell may satisfy the
/// query). Returns maximal disjoint ranges in ascending order; empty if the
/// window misses the grid.
pub fn ranges_in_rect(curve: &HilbertCurve, mapper: &GridMapper, rect: &Rect) -> Vec<HcRange> {
    let mut out = Vec::new();
    ranges_in_rect_into(curve, mapper, rect, &mut out);
    out
}

/// Like [`ranges_in_rect`], but writes into a caller-provided buffer
/// (cleared first) so repeated decompositions — e.g. a kNN client
/// re-deriving its target set every time the search circle shrinks — can
/// reuse one allocation.
pub fn ranges_in_rect_into(
    curve: &HilbertCurve,
    mapper: &GridMapper,
    rect: &Rect,
    out: &mut Vec<HcRange>,
) {
    out.clear();
    if let Some((lo, hi)) = mapper.cells_overlapping(rect) {
        assert!(lo.x <= hi.x && lo.y <= hi.y, "inverted cell rectangle");
        descend(curve, lo, hi, out);
    }
}

/// Computes the maximal HC ranges covering exactly the inclusive cell
/// rectangle `[lo.x, hi.x] × [lo.y, hi.y]`.
pub fn ranges_in_cell_rect(curve: &HilbertCurve, lo: Cell, hi: Cell) -> Vec<HcRange> {
    assert!(lo.x <= hi.x && lo.y <= hi.y, "inverted cell rectangle");
    let mut out = Vec::new();
    descend(curve, lo, hi, &mut out);
    out
}

/// Quadrant traversal tables of the 2D Hilbert curve: `CHILD_ORDER[s][k]`
/// is the `(dx, dy)` offset of the k-th child visited by the curve in
/// orientation `s`, and `CHILD_STATE[s][k]` that child's orientation.
/// State 0 is the root orientation of [`HilbertCurve::xy2d`]; the tables
/// were derived from it and are guarded by the exhaustive decomposition
/// tests. Traversing children in curve order lets the descent carry each
/// block's first HC value down the recursion — emissions arrive sorted,
/// so no per-block `block_base`, no final sort, no merge pass.
const CHILD_ORDER: [[(u32, u32); 4]; 4] = [
    [(0, 0), (0, 1), (1, 1), (1, 0)],
    [(0, 0), (1, 0), (1, 1), (0, 1)],
    [(1, 1), (0, 1), (0, 0), (1, 0)],
    [(1, 1), (1, 0), (0, 0), (0, 1)],
];
const CHILD_STATE: [[u8; 4]; 4] = [[1, 0, 0, 2], [0, 1, 1, 3], [3, 2, 2, 0], [2, 3, 3, 1]];

/// Like [`ranges_in_rect_into`], but additionally reports each produced
/// range's **exact** squared minimum distance from `q` to any cell of the
/// range. The distance falls out of the decomposition for free (every
/// emitted block's rectangle is known at emission; merged neighbours
/// combine by minimum), which saves the caller a branch-and-bound
/// [`crate::min_dist2_to_range`] per range — the dominant cost of kNN
/// target refreshes.
pub fn ranges_in_rect_with_dist_into(
    curve: &HilbertCurve,
    mapper: &GridMapper,
    rect: &Rect,
    q: Point,
    out: &mut Vec<(HcRange, f64)>,
) {
    out.clear();
    let Some((lo, hi)) = mapper.cells_overlapping(rect) else {
        return;
    };
    descend_ordered(
        0,
        0,
        curve.order(),
        0,
        0,
        lo,
        hi,
        &mut |x0, y0, level, base| {
            let d2 = block_extent(mapper, x0, y0, level).min_dist2(q);
            let r = HcRange::new(base, base + (1u64 << (2 * level)) - 1);
            if let Some(last) = out.last_mut() {
                if r.lo == last.0.hi + 1 {
                    last.0.hi = r.hi;
                    last.1 = last.1.min(d2);
                    return;
                }
            }
            out.push((r, d2));
        },
    );
}

/// A decomposed HC range annotated with exact squared cell-distance bounds
/// from the query point: `min_d2` is the smallest and `max_min_d2` the
/// largest *cell* minimum distance over the range. The bounds classify a
/// range against a shrinking circle without re-descending: `min_d2 > r2`
/// means every cell left the circle (drop), `max_min_d2 <= r2` means every
/// cell is still in it (keep verbatim), and only ranges in between — those
/// with cells inside the shrink annulus — need re-splitting. Both bounds
/// are partition-independent (the extreme cell's coordinates are evaluated
/// with the same expressions regardless of which aligned block emitted
/// it), so a narrowed decomposition is bit-identical to a direct one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistRange {
    /// The HC interval.
    pub range: HcRange,
    /// Exact minimum squared distance from the query point to any cell of
    /// the range.
    pub min_d2: f64,
    /// Exact maximum over the range's cells of each cell's minimum squared
    /// distance — the radius below which the range must be re-split.
    pub max_min_d2: f64,
}

/// Decomposes the closed circle `dist2(center, ·) <= r2` directly into
/// maximal HC ranges, pruning during the descent (paper §3.4: the kNN
/// search space is a circle, not its bounding square).
///
/// The produced ranges cover **exactly** the cells whose extent intersects
/// the circle (`min_dist2 <= r2`); quadrants whose minimum distance exceeds
/// `r2` are pruned before recursion, so — unlike decomposing the bounding
/// square and filtering afterwards — no work is spent on the ~21% of the
/// square provably outside the circle. Output is sorted, disjoint,
/// non-adjacent, and each range carries its exact distance bounds.
pub fn ranges_in_circle_with_dist_into(
    curve: &HilbertCurve,
    mapper: &GridMapper,
    center: Point,
    r2: f64,
    out: &mut Vec<DistRange>,
) {
    out.clear();
    let clip = HcRange::new(0, curve.max_d());
    let ctx = CircleCtx::new(mapper, center, r2);
    circle_descend(&ctx, 0, 0, curve.order(), 0, 0, clip, out);
}

/// Narrows a previous circle decomposition to a smaller circle (the kNN
/// search space only ever shrinks). Ranges whose every cell left the
/// circle (`min_d2 > r2`) are dropped, ranges whose every cell is still
/// inside (`max_min_d2 <= r2`) are copied verbatim, and only ranges with
/// cells in the shrink annulus are re-split — by a clipped descent that
/// starts at the range's containing block (integer jump, no root walk).
/// The cost therefore scales with the size of the *shrink*, not with the
/// circle.
///
/// `prev` must be a decomposition produced by
/// [`ranges_in_circle_with_dist_into`] (or a previous narrowing) for the
/// same `center` and a radius `>= r2`; the result then equals the direct
/// decomposition at `r2` exactly, distances included.
pub fn narrow_ranges_to_circle_into(
    curve: &HilbertCurve,
    mapper: &GridMapper,
    center: Point,
    r2: f64,
    prev: &[DistRange],
    out: &mut Vec<DistRange>,
) {
    out.clear();
    let ctx = CircleCtx::new(mapper, center, r2);
    let mut i = 0usize;
    while i < prev.len() {
        let dr = prev[i];
        if dr.min_d2 > r2 {
            i += 1;
            continue;
        }
        if dr.max_min_d2 <= r2 {
            // A kept range can never merge with its neighbours: maximality
            // of `prev` guarantees a gap on both sides, and re-splits only
            // shrink ranges. Whole runs of keeps therefore copy as one
            // memcpy instead of going through the merging emitter.
            let start = i;
            while i < prev.len() && prev[i].min_d2 <= r2 && prev[i].max_min_d2 <= r2 {
                i += 1;
            }
            out.extend_from_slice(&prev[start..i]);
        } else {
            let (x0, y0, level, state, base) = block_containing(curve, dr.range);
            circle_descend(&ctx, x0, y0, level, state, base, dr.range, out);
            i += 1;
        }
    }
}

/// Appends a range, merging it into the previous one when HC-adjacent
/// (bounds combine by min/max — the cells of both ranges are all kept).
fn emit_dist_range(out: &mut Vec<DistRange>, dr: DistRange) {
    if let Some(last) = out.last_mut() {
        if last.range.hi + 1 == dr.range.lo {
            last.range.hi = dr.range.hi;
            last.min_d2 = last.min_d2.min(dr.min_d2);
            last.max_min_d2 = last.max_min_d2.max(dr.max_min_d2);
            return;
        }
    }
    out.push(dr);
}

/// Grid geometry and query constants of one circle descent, hoisted out
/// of the recursion: `cell_side` divides once here instead of once per
/// visited block. All coordinate expressions stay of the
/// `origin + index × cell_side` form [`GridMapper::cell_rect`] uses, so
/// distances remain bit-identical to cell-level evaluation.
struct CircleCtx {
    ox: f64,
    oy: f64,
    s: f64,
    cx: f64,
    cy: f64,
    r2: f64,
}

impl CircleCtx {
    fn new(mapper: &GridMapper, center: Point, r2: f64) -> Self {
        let o = mapper.origin();
        Self {
            ox: o.x,
            oy: o.y,
            s: mapper.cell_side(),
            cx: center.x,
            cy: center.y,
            r2,
        }
    }

    /// Exact minimum squared distance from the query point to the block's
    /// cell extent.
    #[inline]
    fn block_min_d2(&self, x0: u32, y0: u32, bs: u32) -> f64 {
        let dx = (self.ox + x0 as f64 * self.s - self.cx)
            .max(self.cx - (self.ox + (x0 + bs) as f64 * self.s))
            .max(0.0);
        let dy = (self.oy + y0 as f64 * self.s - self.cy)
            .max(self.cy - (self.oy + (y0 + bs) as f64 * self.s))
            .max(0.0);
        dx * dx + dy * dy
    }

    /// The largest cell minimum distance of the block: attained at the
    /// corner cell farthest from the query point, whose near edges are
    /// `origin + index × cell_side` for the extreme cell indices — the
    /// value is identical no matter which block partition emitted the
    /// cell.
    #[inline]
    fn block_max_min_d2(&self, x0: u32, y0: u32, bs: u32) -> f64 {
        let dx = (self.ox + (x0 + bs - 1) as f64 * self.s - self.cx)
            .max(self.cx - (self.ox + (x0 + 1) as f64 * self.s))
            .max(0.0);
        let dy = (self.oy + (y0 + bs - 1) as f64 * self.s - self.cy)
            .max(self.cy - (self.oy + (y0 + 1) as f64 * self.s))
            .max(0.0);
        dx * dx + dy * dy
    }
}

/// Curve-order block descent over the circle `dist2(center, ·) <= r2`,
/// restricted to HC values in `clip`. Prunes blocks whose minimum distance
/// exceeds `r2` *before* recursing; emits a whole block as soon as every
/// one of its cells meets both the clip interval and the circle. Emissions
/// arrive in ascending HC order, so merging is a single look-back.
#[allow(clippy::too_many_arguments)]
fn circle_descend(
    ctx: &CircleCtx,
    x0: u32,
    y0: u32,
    level: u8,
    state: u8,
    base: u64,
    clip: HcRange,
    out: &mut Vec<DistRange>,
) {
    let span = HcRange::new(base, base + (1u64 << (2 * level)) - 1);
    if !span.overlaps(&clip) {
        return;
    }
    let bs = 1u32 << level;
    let min_d2 = ctx.block_min_d2(x0, y0, bs);
    if min_d2 > ctx.r2 {
        return;
    }
    if clip.lo <= span.lo && span.hi <= clip.hi {
        // A level-0 block is a single cell: overlapping the clip means
        // contained in it, so this branch catches every reached cell and
        // the recursion below never splits one. The cell-max bound is
        // computed only here — pruned and recursed blocks never pay for
        // it. A block whose farthest cell still meets the circle is
        // emitted whole: every one of its cells belongs to the output.
        let max_min_d2 = ctx.block_max_min_d2(x0, y0, bs);
        if level == 0 || max_min_d2 <= ctx.r2 {
            emit_dist_range(
                out,
                DistRange {
                    range: span,
                    min_d2,
                    max_min_d2,
                },
            );
            return;
        }
    }
    debug_assert!(level > 0, "a reached cell is always emitted");
    let half = bs >> 1;
    let child_span = 1u64 << (2 * (level - 1));
    let s = state as usize;
    for (k, &(dx, dy)) in CHILD_ORDER[s].iter().enumerate() {
        circle_descend(
            ctx,
            x0 + dx * half,
            y0 + dy * half,
            level - 1,
            CHILD_STATE[s][k],
            base + k as u64 * child_span,
            clip,
            out,
        );
    }
}

/// The rectangle covering an aligned block's cell extents. Cells tile it,
/// so its mindist to a point is the exact minimum over the block's cells.
/// The corner expressions are the same ones [`GridMapper::cell_rect`]
/// evaluates, so the result is bit-identical to the union of the corner
/// cells' rectangles at a fraction of the arithmetic — this runs once per
/// block visited by the circle descent.
fn block_extent(mapper: &GridMapper, x0: u32, y0: u32, level: u8) -> Rect {
    let bs = 1u32 << level;
    let s = mapper.cell_side();
    let o = mapper.origin();
    Rect::new(
        o.x + x0 as f64 * s,
        o.y + y0 as f64 * s,
        o.x + (x0 + bs) as f64 * s,
        o.y + (y0 + bs) as f64 * s,
    )
}

/// The smallest grid-aligned block whose HC span contains `r`, as
/// `(x0, y0, level, orientation, base)` — found by walking the base-4
/// digits of `r.lo` down from the root through the traversal tables.
/// Integer work only: this is what lets a clipped circle descent start at
/// the range itself instead of re-descending from the root (the dominant
/// cost of narrowing a decomposition with thousands of ranges).
fn block_containing(curve: &HilbertCurve, r: HcRange) -> (u32, u32, u8, u8, u64) {
    let order = curve.order();
    // Base-4 digits in which lo and hi differ = levels that must stay
    // inside the block.
    let diff_bits = 64 - (r.lo ^ r.hi).leading_zeros() as u8;
    let level = diff_bits.div_ceil(2).min(order);
    let (mut x0, mut y0, mut state) = (0u32, 0u32, 0u8);
    for l in (level..order).rev() {
        let k = ((r.lo >> (2 * l)) & 3) as usize;
        let (dx, dy) = CHILD_ORDER[state as usize][k];
        x0 += dx << l;
        y0 += dy << l;
        state = CHILD_STATE[state as usize][k];
    }
    let base = r.lo & !((1u64 << (2 * level)) - 1);
    (x0, y0, level, state, base)
}

/// Block descent emitting maximal merged ranges, already sorted.
fn descend(curve: &HilbertCurve, lo: Cell, hi: Cell, out: &mut Vec<HcRange>) {
    descend_ordered(
        0,
        0,
        curve.order(),
        0,
        0,
        lo,
        hi,
        &mut |_, _, level, base| {
            let r = HcRange::new(base, base + (1u64 << (2 * level)) - 1);
            if let Some(last) = out.last_mut() {
                if r.lo == last.hi + 1 {
                    last.hi = r.hi;
                    return;
                }
            }
            out.push(r);
        },
    );
}

/// Curve-order recursive block descent. `(x0, y0)` is the block's
/// lower-left cell, `level` its log2 side length, `state` its curve
/// orientation and `base` its first HC value. Calls `emit` once per
/// maximal fully-contained block, in ascending HC order (so emissions
/// merge with a single look-back).
#[allow(clippy::too_many_arguments)]
fn descend_ordered<F: FnMut(u32, u32, u8, u64)>(
    x0: u32,
    y0: u32,
    level: u8,
    state: u8,
    base: u64,
    lo: Cell,
    hi: Cell,
    emit: &mut F,
) {
    let bs = 1u32 << level; // block side
    let bx1 = x0 + bs - 1;
    let by1 = y0 + bs - 1;
    // Disjoint from the query rectangle?
    if bx1 < lo.x || x0 > hi.x || by1 < lo.y || y0 > hi.y {
        return;
    }
    // Fully contained: the block's HC interval is contiguous. This also
    // catches every reached level-0 block — a single cell that overlaps
    // the rectangle is inside it — so the recursion below never splits a
    // cell.
    if x0 >= lo.x && bx1 <= hi.x && y0 >= lo.y && by1 <= hi.y {
        emit(x0, y0, level, base);
        return;
    }
    debug_assert!(level > 0, "partial overlap is impossible for single cells");
    let half = bs >> 1;
    let child_span = 1u64 << (2 * (level - 1));
    let s = state as usize;
    for (k, &(dx, dy)) in CHILD_ORDER[s].iter().enumerate() {
        descend_ordered(
            x0 + dx * half,
            y0 + dy * half,
            level - 1,
            CHILD_STATE[s][k],
            base + k as u64 * child_span,
            lo,
            hi,
            emit,
        );
    }
}

/// Sorts ranges and merges overlapping or adjacent ones in place.
pub fn merge_ranges(ranges: &mut Vec<HcRange>) {
    if ranges.len() <= 1 {
        return;
    }
    ranges.sort_unstable();
    let mut w = 0usize;
    for i in 1..ranges.len() {
        let cur = ranges[i];
        let last = &mut ranges[w];
        // Adjacent (hi + 1 == lo) or overlapping ranges coalesce.
        if cur.lo <= last.hi.saturating_add(1) {
            last.hi = last.hi.max(cur.hi);
        } else {
            w += 1;
            ranges[w] = cur;
        }
    }
    ranges.truncate(w + 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_geom::Point;

    fn brute_force(curve: &HilbertCurve, lo: Cell, hi: Cell) -> Vec<u64> {
        let mut ds = Vec::new();
        for x in lo.x..=hi.x {
            for y in lo.y..=hi.y {
                ds.push(curve.xy2d(Cell::new(x, y)));
            }
        }
        ds.sort_unstable();
        ds
    }

    fn expand(ranges: &[HcRange]) -> Vec<u64> {
        let mut ds = Vec::new();
        for r in ranges {
            ds.extend(r.lo..=r.hi);
        }
        ds
    }

    #[test]
    fn full_grid_is_one_range() {
        let c = HilbertCurve::new(4);
        let r = ranges_in_cell_rect(&c, Cell::new(0, 0), Cell::new(15, 15));
        assert_eq!(r, vec![HcRange::new(0, 255)]);
    }

    #[test]
    fn single_cell() {
        let c = HilbertCurve::new(3);
        let d = c.xy2d(Cell::new(5, 2));
        let r = ranges_in_cell_rect(&c, Cell::new(5, 2), Cell::new(5, 2));
        assert_eq!(r, vec![HcRange::new(d, d)]);
    }

    #[test]
    fn matches_brute_force_exhaustively() {
        // Every rectangle of a 8×8 grid.
        let c = HilbertCurve::new(3);
        for x0 in 0..8u32 {
            for y0 in 0..8u32 {
                for x1 in x0..8u32 {
                    for y1 in y0..8u32 {
                        let lo = Cell::new(x0, y0);
                        let hi = Cell::new(x1, y1);
                        let got = expand(&ranges_in_cell_rect(&c, lo, hi));
                        let want = brute_force(&c, lo, hi);
                        assert_eq!(got, want, "rect ({x0},{y0})..({x1},{y1})");
                    }
                }
            }
        }
    }

    #[test]
    fn ranges_are_maximal() {
        let c = HilbertCurve::new(4);
        for (lo, hi) in [
            (Cell::new(1, 1), Cell::new(6, 9)),
            (Cell::new(0, 3), Cell::new(15, 5)),
            (Cell::new(7, 0), Cell::new(9, 15)),
        ] {
            let rs = ranges_in_cell_rect(&c, lo, hi);
            for w in rs.windows(2) {
                assert!(
                    w[0].hi + 1 < w[1].lo,
                    "ranges {:?} and {:?} should have been merged",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn continuous_rect_covers_overlapping_cells() {
        let c = HilbertCurve::new(2);
        let m = GridMapper::unit_square(2);
        // A window well inside cell (1,1)..(2,2) on a 4×4 grid.
        let w = Rect::new(0.3, 0.3, 0.7, 0.7);
        let rs = ranges_in_rect(&c, &m, &w);
        let want = brute_force(&c, Cell::new(1, 1), Cell::new(2, 2));
        assert_eq!(expand(&rs), want);
        // A window outside the grid yields nothing.
        assert!(ranges_in_rect(&c, &m, &Rect::new(2.0, 2.0, 3.0, 3.0)).is_empty());
        // Degenerate (point) window maps to one cell.
        let p = Rect::from_corners(Point::new(0.1, 0.1), Point::new(0.1, 0.1));
        let rs = ranges_in_rect(&c, &m, &p);
        assert_eq!(expand(&rs), vec![c.xy2d(Cell::new(0, 0))]);
    }

    /// Brute-force circle membership: HC values of all cells whose extent
    /// intersects the closed circle, sorted.
    fn brute_circle(c: &HilbertCurve, m: &GridMapper, center: Point, r2: f64) -> Vec<u64> {
        let mut ds = Vec::new();
        for x in 0..c.side() {
            for y in 0..c.side() {
                let cell = Cell::new(x, y);
                if m.cell_rect(cell).min_dist2(center) <= r2 {
                    ds.push(c.xy2d(cell));
                }
            }
        }
        ds.sort_unstable();
        ds
    }

    fn check_circle(c: &HilbertCurve, m: &GridMapper, center: Point, r2: f64) {
        let mut out = Vec::new();
        ranges_in_circle_with_dist_into(c, m, center, r2, &mut out);
        // Sorted, disjoint, non-adjacent (maximal).
        for w in out.windows(2) {
            assert!(
                w[0].range.hi + 1 < w[1].range.lo,
                "ranges {:?} / {:?} not maximal (center {center:?}, r2 {r2})",
                w[0],
                w[1]
            );
        }
        // Exactly the cells intersecting the circle.
        let got: Vec<u64> = out
            .iter()
            .flat_map(|dr| dr.range.lo..=dr.range.hi)
            .collect();
        assert_eq!(
            got,
            brute_circle(c, m, center, r2),
            "membership mismatch (center {center:?}, r2 {r2})"
        );
        // Distance bounds are exact per range: the min and max over the
        // range's cells of each cell's minimum distance.
        for dr in &out {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for d in dr.range.lo..=dr.range.hi {
                let cell_min = m.cell_rect(c.d2xy(d)).min_dist2(center);
                min = min.min(cell_min);
                max = max.max(cell_min);
            }
            assert!(
                (dr.min_d2 - min).abs() < 1e-12,
                "min_d2 of {dr:?}: want {min}"
            );
            assert!(
                (dr.max_min_d2 - max).abs() < 1e-12,
                "max_min_d2 of {dr:?}: want {max}"
            );
        }
    }

    #[test]
    fn circle_matches_brute_force_exhaustively() {
        let c = HilbertCurve::new(3);
        let m = GridMapper::unit_square(3);
        for cx in [-0.2, 0.0, 0.31, 0.5, 0.77, 1.0, 1.4] {
            for cy in [-0.1, 0.12, 0.5, 0.99] {
                for r in [0.0, 0.05, 0.13, 0.3, 0.62, 1.0, 2.0] {
                    check_circle(&c, &m, Point::new(cx, cy), r * r);
                }
            }
        }
    }

    #[test]
    fn circle_degenerate_radii() {
        let c = HilbertCurve::new(4);
        let m = GridMapper::unit_square(4);
        // Zero radius inside a cell: exactly that cell.
        let q = Point::new(0.53, 0.27);
        let mut out = Vec::new();
        ranges_in_circle_with_dist_into(&c, &m, q, 0.0, &mut out);
        let d = c.xy2d(m.cell_of(q));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].range, HcRange::new(d, d));
        assert_eq!(out[0].min_d2, 0.0);
        // Radius covering the whole grid: one full range.
        ranges_in_circle_with_dist_into(&c, &m, q, 10.0, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].range, HcRange::new(0, c.max_d()));
        assert_eq!(out[0].min_d2, 0.0);
        // Center outside the unit square, circle missing the grid: empty.
        ranges_in_circle_with_dist_into(&c, &m, Point::new(3.0, 3.0), 0.5, &mut out);
        assert!(out.is_empty());
        // Center outside, circle clipping a corner.
        check_circle(&c, &m, Point::new(1.2, 1.2), 0.1);
    }

    #[test]
    fn narrowing_equals_direct_decomposition() {
        let c = HilbertCurve::new(4);
        let m = GridMapper::unit_square(4);
        for (cx, cy) in [(0.4, 0.6), (0.05, 0.95), (-0.2, 0.5), (1.1, -0.1)] {
            let q = Point::new(cx, cy);
            let radii = [1.6, 0.9, 0.41, 0.4, 0.17, 0.03, 0.0];
            let mut prev = Vec::new();
            ranges_in_circle_with_dist_into(&c, &m, q, radii[0] * radii[0], &mut prev);
            for w in radii.windows(2) {
                let r2 = w[1] * w[1];
                let mut narrowed = Vec::new();
                narrow_ranges_to_circle_into(&c, &m, q, r2, &prev, &mut narrowed);
                let mut direct = Vec::new();
                ranges_in_circle_with_dist_into(&c, &m, q, r2, &mut direct);
                assert_eq!(narrowed, direct, "narrow {} -> {} at {q:?}", w[0], w[1]);
                prev = narrowed;
            }
        }
    }

    #[test]
    fn merge_handles_duplicates_and_adjacency() {
        let mut rs = vec![
            HcRange::new(10, 12),
            HcRange::new(0, 3),
            HcRange::new(4, 6),
            HcRange::new(11, 15),
            HcRange::new(20, 20),
        ];
        merge_ranges(&mut rs);
        assert_eq!(
            rs,
            vec![
                HcRange::new(0, 6),
                HcRange::new(10, 15),
                HcRange::new(20, 20)
            ]
        );
    }

    #[test]
    fn running_example_window() {
        // Reconstruct the paper's Figure 5 example: on the order-3 curve the
        // shaded window produces target segments [10,11], [28,35], [52,53].
        // Those segments correspond to the 2×4 cell block with corners such
        // that the curve enters/leaves three times; we verify our
        // decomposition produces exactly three segments for that block.
        let c = HilbertCurve::new(3);
        // Cells covering HC 10,11,28..35,52,53 — find them by brute force.
        let mut cells = Vec::new();
        for x in 0..8u32 {
            for y in 0..8u32 {
                let d = c.xy2d(Cell::new(x, y));
                if (10..=11).contains(&d) || (28..=35).contains(&d) || (52..=53).contains(&d) {
                    cells.push(Cell::new(x, y));
                }
            }
        }
        let min = Cell::new(
            cells.iter().map(|c| c.x).min().unwrap(),
            cells.iter().map(|c| c.y).min().unwrap(),
        );
        let max = Cell::new(
            cells.iter().map(|c| c.x).max().unwrap(),
            cells.iter().map(|c| c.y).max().unwrap(),
        );
        // The cells must form exactly that rectangle for the example to hold.
        assert_eq!(
            ((max.x - min.x + 1) * (max.y - min.y + 1)) as usize,
            cells.len()
        );
        let rs = ranges_in_cell_rect(&c, min, max);
        assert_eq!(
            rs,
            vec![
                HcRange::new(10, 11),
                HcRange::new(28, 35),
                HcRange::new(52, 53)
            ]
        );
    }
}
