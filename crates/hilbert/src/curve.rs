//! The Hilbert curve cell↔position mapping.

use dsi_geom::Cell;

/// A Hilbert curve of a given order over the `2^order × 2^order` grid.
///
/// Positions along the curve ("HC values", `d`) run from `0` to
/// `4^order - 1`. The implementation is the classical iterative
/// rotate-and-accumulate algorithm (Moore's converter, the paper's `[12]`),
/// operating on one bit of each coordinate per step, so both conversions
/// cost `O(order)` — constant time for any fixed curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HilbertCurve {
    order: u8,
}

impl HilbertCurve {
    /// Creates a curve of the given order.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= order <= 31` (31 keeps `d` within `u64` and cell
    /// coordinates within `u32`).
    pub fn new(order: u8) -> Self {
        assert!(
            (1..=31).contains(&order),
            "Hilbert order must be in 1..=31, got {order}"
        );
        Self { order }
    }

    /// The order of the curve.
    #[inline]
    pub fn order(&self) -> u8 {
        self.order
    }

    /// Number of cells per grid side (`2^order`).
    #[inline]
    pub fn side(&self) -> u32 {
        1u32 << self.order
    }

    /// The largest HC value on the curve (`4^order - 1`).
    #[inline]
    pub fn max_d(&self) -> u64 {
        (1u64 << (2 * self.order)) - 1
    }

    /// Maps a grid cell to its position along the curve.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the cell lies outside the grid.
    pub fn xy2d(&self, cell: Cell) -> u64 {
        debug_assert!(
            cell.x < self.side() && cell.y < self.side(),
            "cell {cell:?} outside order-{} grid",
            self.order
        );
        let (mut x, mut y) = (cell.x, cell.y);
        let mut d: u64 = 0;
        let mut s: u32 = self.side() >> 1;
        while s > 0 {
            let rx = u32::from(x & s > 0);
            let ry = u32::from(y & s > 0);
            d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
            rotate(s, &mut x, &mut y, rx, ry);
            s >>= 1;
        }
        d
    }

    /// Maps a position along the curve back to its grid cell.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `d` exceeds [`HilbertCurve::max_d`].
    pub fn d2xy(&self, d: u64) -> Cell {
        debug_assert!(
            d <= self.max_d(),
            "d {d} outside order-{} curve",
            self.order
        );
        let (mut x, mut y) = (0u32, 0u32);
        let mut t = d;
        let mut s: u32 = 1;
        while s < self.side() {
            let rx = (1 & (t >> 1)) as u32;
            let ry = (1 & (t ^ rx as u64)) as u32;
            rotate(s, &mut x, &mut y, rx, ry);
            x += s * rx;
            y += s * ry;
            t >>= 2;
            s <<= 1;
        }
        Cell::new(x, y)
    }

    /// The HC value of the *entry cell* of the aligned block of side
    /// `2^level` containing `cell` — i.e. the smallest `d` in that block.
    ///
    /// Every grid-aligned `2^level × 2^level` block is traversed contiguously
    /// by the Hilbert curve, so its positions form the interval
    /// `[block_base, block_base + 4^level - 1]`. This identity is what makes
    /// the window decomposition emit exact, maximal ranges.
    #[inline]
    pub fn block_base(&self, cell: Cell, level: u8) -> u64 {
        debug_assert!(level <= self.order);
        let d = self.xy2d(cell);
        let span = 1u64 << (2 * level);
        d & !(span - 1)
    }
}

/// The quadrant rotation/reflection step shared by both conversions.
#[inline]
fn rotate(s: u32, x: &mut u32, y: &mut u32, rx: u32, ry: u32) {
    if ry == 0 {
        if rx == 1 {
            *x = s.wrapping_sub(1).wrapping_sub(*x);
            *y = s.wrapping_sub(1).wrapping_sub(*y);
        }
        core::mem::swap(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_one_square() {
        // The order-1 curve visits (0,0) (0,1) (1,1) (1,0).
        let c = HilbertCurve::new(1);
        let expected = [(0, 0), (0, 1), (1, 1), (1, 0)];
        for (d, &(x, y)) in expected.iter().enumerate() {
            assert_eq!(c.d2xy(d as u64), Cell::new(x, y));
            assert_eq!(c.xy2d(Cell::new(x, y)), d as u64);
        }
    }

    #[test]
    fn paper_running_example_value() {
        // Paper §2.1: on the order-3 curve, point (1,1) has HC value 2.
        let c = HilbertCurve::new(3);
        assert_eq!(c.xy2d(Cell::new(1, 1)), 2);
    }

    #[test]
    fn bijective_on_small_orders() {
        for order in 1..=5u8 {
            let c = HilbertCurve::new(order);
            let mut seen = vec![false; (c.max_d() + 1) as usize];
            for x in 0..c.side() {
                for y in 0..c.side() {
                    let d = c.xy2d(Cell::new(x, y));
                    assert!(!seen[d as usize], "duplicate d={d} at ({x},{y})");
                    seen[d as usize] = true;
                    assert_eq!(c.d2xy(d), Cell::new(x, y));
                }
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn consecutive_positions_are_grid_neighbours() {
        // The defining locality property of the Hilbert curve.
        let c = HilbertCurve::new(5);
        let mut prev = c.d2xy(0);
        for d in 1..=c.max_d() {
            let cur = c.d2xy(d);
            let manhattan =
                (cur.x as i64 - prev.x as i64).abs() + (cur.y as i64 - prev.y as i64).abs();
            assert_eq!(manhattan, 1, "jump at d={d}");
            prev = cur;
        }
    }

    #[test]
    fn block_base_is_min_of_block() {
        let c = HilbertCurve::new(4);
        for level in 0..=4u8 {
            let bs = 1u32 << level;
            for bx in (0..c.side()).step_by(bs as usize) {
                for by in (0..c.side()).step_by(bs as usize) {
                    let base = c.block_base(Cell::new(bx, by), level);
                    let mut min_d = u64::MAX;
                    for x in bx..bx + bs {
                        for y in by..by + bs {
                            min_d = min_d.min(c.xy2d(Cell::new(x, y)));
                        }
                    }
                    assert_eq!(base, min_d, "level {level} block ({bx},{by})");
                }
            }
        }
    }

    #[test]
    fn max_d_matches_area() {
        assert_eq!(HilbertCurve::new(3).max_d(), 63);
        assert_eq!(HilbertCurve::new(16).max_d(), (1u64 << 32) - 1);
    }

    #[test]
    #[should_panic(expected = "Hilbert order")]
    fn order_32_rejected() {
        let _ = HilbertCurve::new(32);
    }
}
