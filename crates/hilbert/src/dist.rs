//! Minimum distance from a point to a Hilbert interval.
//!
//! The kNN algorithms repeatedly ask: "can the HC region `[lo, hi]` — which
//! I have not listened to yet — still contain an object closer than my
//! current k-th candidate?" Answering it exactly requires the minimum
//! distance from the query point to the *set of cells* whose HC values fall
//! in the interval. We compute it by branch-and-bound over grid-aligned
//! blocks: a block whose HC span is disjoint from the interval is pruned, a
//! block fully inside contributes its rectangle *mindist*, and partial
//! blocks are split — visiting children nearest to the query point first so
//! the bound tightens quickly.

use dsi_geom::{Cell, GridMapper, Point};

use crate::curve::HilbertCurve;
use crate::ranges::HcRange;

/// Exact squared minimum distance from `q` to any cell (its full extent)
/// whose HC value lies in `range`.
///
/// Returns `f64::INFINITY` if the range is outside the curve (cannot happen
/// for ranges produced by this crate).
pub fn min_dist2_to_range(
    curve: &HilbertCurve,
    mapper: &GridMapper,
    q: Point,
    range: HcRange,
) -> f64 {
    let mut best = f64::INFINITY;
    visit(curve, mapper, q, range, 0, 0, curve.order(), &mut best);
    best
}

#[allow(clippy::too_many_arguments)]
fn visit(
    curve: &HilbertCurve,
    mapper: &GridMapper,
    q: Point,
    range: HcRange,
    x0: u32,
    y0: u32,
    level: u8,
    best: &mut f64,
) {
    // HC span of this aligned block.
    let base = curve.block_base(Cell::new(x0, y0), level);
    let span = HcRange::new(base, base + (1u64 << (2 * level)) - 1);
    if !span.overlaps(&range) {
        return;
    }
    // Geometric lower bound of the whole block.
    let lb = block_rect(mapper, x0, y0, level).min_dist2(q);
    if lb >= *best {
        return;
    }
    // Block completely inside the interval: the bound is attained.
    if range.lo <= span.lo && span.hi <= range.hi {
        *best = lb;
        return;
    }
    if level == 0 {
        // Single cell whose d is inside the range (overlap checked above).
        *best = lb;
        return;
    }
    // Recurse children nearest-first so later children prune on `best`.
    // Each child's bound is computed once (not per comparison).
    let half = 1u32 << (level - 1);
    let mut children = [
        (x0, y0),
        (x0 + half, y0),
        (x0, y0 + half),
        (x0 + half, y0 + half),
    ]
    .map(|(cx, cy)| (block_rect(mapper, cx, cy, level - 1).min_dist2(q), cx, cy));
    children.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("mindist is never NaN"));
    for (_, cx, cy) in children {
        visit(curve, mapper, q, range, cx, cy, level - 1, best);
    }
}

fn block_rect(mapper: &GridMapper, x0: u32, y0: u32, level: u8) -> dsi_geom::Rect {
    let bs = 1u32 << level;
    let lo = mapper.cell_rect(Cell::new(x0, y0));
    let hi = mapper.cell_rect(Cell::new(x0 + bs - 1, y0 + bs - 1));
    lo.union(&hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(curve: &HilbertCurve, mapper: &GridMapper, q: Point, range: HcRange) -> f64 {
        let mut best = f64::INFINITY;
        for d in range.lo..=range.hi.min(curve.max_d()) {
            let cell = curve.d2xy(d);
            best = best.min(mapper.cell_rect(cell).min_dist2(q));
        }
        best
    }

    #[test]
    fn matches_brute_force_on_small_grid() {
        let c = HilbertCurve::new(3);
        let m = GridMapper::unit_square(3);
        let queries = [
            Point::new(0.1, 0.1),
            Point::new(0.9, 0.2),
            Point::new(0.5, 0.5),
            Point::new(-0.3, 1.4),
        ];
        let ranges = [
            HcRange::new(0, 63),
            HcRange::new(10, 11),
            HcRange::new(28, 35),
            HcRange::new(52, 53),
            HcRange::new(0, 0),
            HcRange::new(63, 63),
            HcRange::new(17, 44),
        ];
        for q in queries {
            for r in ranges {
                let got = min_dist2_to_range(&c, &m, q, r);
                let want = brute(&c, &m, q, r);
                assert!(
                    (got - want).abs() < 1e-12,
                    "q={q:?} r={r:?}: got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn point_inside_range_cell_gives_zero() {
        let c = HilbertCurve::new(4);
        let m = GridMapper::unit_square(4);
        let q = Point::new(0.53, 0.27);
        let d = c.xy2d(m.cell_of(q));
        assert_eq!(min_dist2_to_range(&c, &m, q, HcRange::new(d, d)), 0.0);
    }

    #[test]
    fn whole_curve_is_distance_zero_inside_grid() {
        let c = HilbertCurve::new(5);
        let m = GridMapper::unit_square(5);
        let full = HcRange::new(0, c.max_d());
        assert_eq!(
            min_dist2_to_range(&c, &m, Point::new(0.42, 0.77), full),
            0.0
        );
    }
}
