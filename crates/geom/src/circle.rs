//! Search circles for kNN query processing.

use crate::point::{dist2, Point};
use crate::rect::Rect;

/// A circle, used as the kNN *search space*: the algorithms of the paper
/// draw a circle around the query point that is guaranteed to contain the
/// `k` nearest objects and shrink it as the client learns more about the
/// object distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Centre (the kNN query point).
    pub center: Point,
    /// Radius (not squared; compare with [`Circle::radius2`] in hot paths).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle from centre and radius.
    #[inline]
    pub fn new(center: Point, radius: f64) -> Self {
        debug_assert!(radius >= 0.0, "circle radius must be non-negative");
        Self { center, radius }
    }

    /// Squared radius.
    #[inline]
    pub fn radius2(&self) -> f64 {
        self.radius * self.radius
    }

    /// Whether `p` lies inside the closed disc.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        dist2(self.center, p) <= self.radius2()
    }

    /// The bounding square of the circle; the kNN algorithms convert this
    /// square into Hilbert ranges to enumerate candidate frames.
    #[inline]
    pub fn bounding_box(&self) -> Rect {
        Rect::bounding_square(self.center, self.radius)
    }

    /// Whether the disc and the rectangle share at least one point.
    #[inline]
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        r.min_dist2(self.center) <= self.radius2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_boundary() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        assert!(c.contains(Point::new(1.0, 0.0)));
        assert!(c.contains(Point::new(0.0, -1.0)));
        assert!(!c.contains(Point::new(1.0, 1.0)));
    }

    #[test]
    fn bounding_box_is_tight() {
        let c = Circle::new(Point::new(0.5, 0.25), 0.25);
        let b = c.bounding_box();
        assert_eq!(b, Rect::new(0.25, 0.0, 0.75, 0.5));
    }

    #[test]
    fn rect_intersection_matches_mindist() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        // Rectangle whose nearest corner is at distance sqrt(2)/2 < 1.
        assert!(c.intersects_rect(&Rect::new(0.5, 0.5, 2.0, 2.0)));
        // Nearest corner at distance sqrt(8) > 1.
        assert!(!c.intersects_rect(&Rect::new(2.0, 2.0, 3.0, 3.0)));
    }
}
