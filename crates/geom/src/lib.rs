//! 2-D geometry primitives shared by every crate of the DSI reproduction.
//!
//! The paper (Lee & Zheng, ICDCS 2005) works in a two-dimensional Euclidean
//! space where a coordinate is a pair of 8-byte floating point numbers.
//! This crate provides the value types for that space — [`Point`], [`Rect`],
//! [`Circle`] — together with the distance kernels used by the query
//! algorithms (squared distances, point↔rectangle *mindist*), and the
//! [`GridMapper`] that maps continuous coordinates onto the `2^order ×
//! 2^order` integer grid on which the Hilbert curve is defined.
//!
//! All distance computations are done on squared distances to avoid `sqrt`
//! in hot loops; call sites take square roots only when a radius is needed
//! for reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circle;
mod grid;
mod point;
mod rect;

pub use circle::Circle;
pub use grid::{Cell, GridMapper};
pub use point::{dist, dist2, Point};
pub use rect::Rect;
