//! Axis-aligned rectangles: query windows and R-tree MBRs.

use crate::point::Point;

/// A closed axis-aligned rectangle `[min.x, max.x] × [min.y, max.y]`.
///
/// Used both as the *query window* of window queries and as the minimum
/// bounding rectangle (MBR) of R-tree nodes. A rectangle with
/// `min.x > max.x` is treated as empty; [`Rect::EMPTY`] is the canonical
/// empty rectangle (the identity of [`Rect::union`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// The canonical empty rectangle: the identity element for [`Rect::union`].
    pub const EMPTY: Rect = Rect {
        min: Point::new(f64::INFINITY, f64::INFINITY),
        max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
    };

    /// Creates a rectangle from its corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any coordinate is NaN.
    #[inline]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(
            !(min_x.is_nan() || min_y.is_nan() || max_x.is_nan() || max_y.is_nan()),
            "rectangle corners must not be NaN"
        );
        Self {
            min: Point::new(min_x, min_y),
            max: Point::new(max_x, max_y),
        }
    }

    /// Creates the smallest rectangle containing both corner points.
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Self::new(a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))
    }

    /// Creates the square window of side `side` centred on `center`,
    /// clipped to the unit square — the shape of the paper's window-query
    /// workload (`WinSideRatio` × space side).
    pub fn window_in_unit_square(center: Point, side: f64) -> Self {
        let h = side / 2.0;
        Self::new(
            (center.x - h).max(0.0),
            (center.y - h).max(0.0),
            (center.x + h).min(1.0),
            (center.y + h).min(1.0),
        )
    }

    /// Creates the bounding square of a circle (used to convert a kNN search
    /// circle into Hilbert ranges).
    #[inline]
    pub fn bounding_square(center: Point, radius: f64) -> Self {
        Self::new(
            center.x - radius,
            center.y - radius,
            center.x + radius,
            center.y + radius,
        )
    }

    /// Whether the rectangle contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Whether `p` lies inside the (closed) rectangle.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (other.min.x >= self.min.x
                && other.max.x <= self.max.x
                && other.min.y >= self.min.y
                && other.max.y <= self.max.y)
    }

    /// Whether the two closed rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The smallest rectangle containing both operands.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Grows the rectangle to contain `p`.
    #[inline]
    pub fn expand(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Area of the rectangle (0 for empty rectangles).
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.max.x - self.min.x) * (self.max.y - self.min.y)
        }
    }

    /// Centre point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// *mindist*: squared distance from `p` to the closest point of the
    /// rectangle (0 if `p` is inside). This is the classical R-tree pruning
    /// bound and is also used to lower-bound the distance to a Hilbert
    /// sub-square.
    #[inline]
    pub fn min_dist2(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }

    /// *maxdist*: squared distance from `p` to the farthest point of the
    /// rectangle. Upper bound used when seeding kNN search spaces.
    #[inline]
    pub fn max_dist2(&self, p: Point) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        dx * dx + dy * dy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn contains_boundary_points() {
        let r = unit();
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(r.contains(Point::new(0.5, 1.0)));
        assert!(!r.contains(Point::new(1.0 + 1e-12, 0.5)));
    }

    #[test]
    fn empty_rect_behaviour() {
        assert!(Rect::EMPTY.is_empty());
        assert_eq!(Rect::EMPTY.area(), 0.0);
        assert!(!Rect::EMPTY.intersects(&unit()));
        let u = Rect::EMPTY.union(&unit());
        assert_eq!(u, unit());
        assert!(unit().contains_rect(&Rect::EMPTY));
    }

    #[test]
    fn intersection_cases() {
        let r = unit();
        // Overlapping.
        assert!(r.intersects(&Rect::new(0.5, 0.5, 2.0, 2.0)));
        // Touching edge counts (closed rectangles).
        assert!(r.intersects(&Rect::new(1.0, 0.0, 2.0, 1.0)));
        // Disjoint.
        assert!(!r.intersects(&Rect::new(1.5, 1.5, 2.0, 2.0)));
    }

    #[test]
    fn min_dist2_inside_is_zero() {
        assert_eq!(unit().min_dist2(Point::new(0.3, 0.9)), 0.0);
    }

    #[test]
    fn min_dist2_outside_axis_and_corner() {
        let r = unit();
        // Straight right of the rectangle.
        assert!((r.min_dist2(Point::new(2.0, 0.5)) - 1.0).abs() < 1e-12);
        // Diagonal from the corner (1,1): distance sqrt(2).
        assert!((r.min_dist2(Point::new(2.0, 2.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn max_dist2_reaches_far_corner() {
        let r = unit();
        // From the origin the farthest corner is (1,1).
        assert!((r.max_dist2(Point::new(0.0, 0.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn window_clips_to_unit_square() {
        let w = Rect::window_in_unit_square(Point::new(0.05, 0.95), 0.2);
        assert_eq!(w.min.x, 0.0);
        assert!((w.max.y - 1.0).abs() < 1e-12);
        assert!(w.max.x > 0.0 && w.min.y < 1.0);
    }

    #[test]
    fn union_and_expand_agree() {
        let mut r = Rect::from_corners(Point::new(0.2, 0.2), Point::new(0.4, 0.4));
        let p = Point::new(0.9, 0.1);
        let u = r.union(&Rect::from_corners(p, p));
        r.expand(p);
        assert_eq!(r, u);
        assert!(r.contains(p));
    }
}
