//! Mapping between continuous coordinates and the Hilbert grid.
//!
//! The Hilbert curve of order `o` is defined on a `2^o × 2^o` integer grid.
//! The broadcast server snaps every data object to a grid cell before
//! computing its Hilbert value, and clients decode Hilbert values from index
//! tables back to cell centres ("the object represented by `HC'`", paper
//! §3.4). [`GridMapper`] owns the affine transform between the dataset's
//! bounding square and that grid.

use crate::point::Point;
use crate::rect::Rect;

/// A cell of the `2^order × 2^order` Hilbert grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cell {
    /// Column, `0 ..= 2^order - 1`.
    pub x: u32,
    /// Row, `0 ..= 2^order - 1`.
    pub y: u32,
}

impl Cell {
    /// Creates a cell from its column and row.
    #[inline]
    pub const fn new(x: u32, y: u32) -> Self {
        Self { x, y }
    }
}

/// Affine mapping between a continuous bounding square and the integer grid
/// of a Hilbert curve of a given order.
#[derive(Debug, Clone, Copy)]
pub struct GridMapper {
    origin: Point,
    /// Side length of the continuous square.
    side: f64,
    /// Grid resolution = `2^order`.
    cells: u32,
}

impl GridMapper {
    /// Creates a mapper over the square `[origin, origin + side]²` with
    /// `2^order` cells per side.
    ///
    /// # Panics
    ///
    /// Panics if `order` is 0 or greater than 31, or if `side` is not a
    /// positive finite number.
    pub fn new(origin: Point, side: f64, order: u8) -> Self {
        assert!(
            (1..=31).contains(&order),
            "Hilbert order must be in 1..=31, got {order}"
        );
        assert!(
            side.is_finite() && side > 0.0,
            "grid side must be positive and finite"
        );
        Self {
            origin,
            side,
            cells: 1u32 << order,
        }
    }

    /// Mapper over the unit square `[0,1]²` — the space of the paper's
    /// UNIFORM dataset.
    pub fn unit_square(order: u8) -> Self {
        Self::new(Point::new(0.0, 0.0), 1.0, order)
    }

    /// Mapper over the bounding square of a point set (the smallest square
    /// containing the set's bounding rectangle, anchored at its lower-left).
    ///
    /// Returns `None` for an empty point set.
    pub fn covering(points: &[Point], order: u8) -> Option<Self> {
        let mut bb = Rect::EMPTY;
        for &p in points {
            bb.expand(p);
        }
        if bb.is_empty() {
            return None;
        }
        let side = (bb.max.x - bb.min.x).max(bb.max.y - bb.min.y).max(1e-9);
        // Grow slightly so max-coordinate points stay strictly inside.
        Some(Self::new(bb.min, side * (1.0 + 1e-9), order))
    }

    /// Number of cells per side (`2^order`).
    #[inline]
    pub fn cells_per_side(&self) -> u32 {
        self.cells
    }

    /// Lower-left corner of the continuous square.
    #[inline]
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// Side length of one cell in continuous coordinates.
    #[inline]
    pub fn cell_side(&self) -> f64 {
        self.side / self.cells as f64
    }

    /// Snaps a continuous point to its grid cell, clamping points on or
    /// outside the boundary to the nearest edge cell.
    pub fn cell_of(&self, p: Point) -> Cell {
        let fx = ((p.x - self.origin.x) / self.side) * self.cells as f64;
        let fy = ((p.y - self.origin.y) / self.side) * self.cells as f64;
        let clamp = |v: f64| -> u32 {
            if v <= 0.0 {
                0
            } else if v >= (self.cells - 1) as f64 {
                self.cells - 1
            } else {
                v as u32
            }
        };
        Cell::new(clamp(fx.floor()), clamp(fy.floor()))
    }

    /// The continuous centre of a grid cell. This is the position a client
    /// reconstructs from a Hilbert value alone (the 1-1 HC↔coordinate
    /// correspondence of the paper).
    pub fn cell_center(&self, c: Cell) -> Point {
        let s = self.cell_side();
        Point::new(
            self.origin.x + (c.x as f64 + 0.5) * s,
            self.origin.y + (c.y as f64 + 0.5) * s,
        )
    }

    /// The continuous extent of a grid cell.
    pub fn cell_rect(&self, c: Cell) -> Rect {
        let s = self.cell_side();
        Rect::new(
            self.origin.x + c.x as f64 * s,
            self.origin.y + c.y as f64 * s,
            self.origin.x + (c.x + 1) as f64 * s,
            self.origin.y + (c.y + 1) as f64 * s,
        )
    }

    /// Converts a continuous rectangle to the inclusive cell range it
    /// overlaps, or `None` if the rectangle misses the grid entirely.
    ///
    /// The result is the set of cells whose *extent intersects* `r`; a
    /// window query over `r` must examine every such cell because an object
    /// anywhere inside an intersecting cell may fall in `r`.
    pub fn cells_overlapping(&self, r: &Rect) -> Option<(Cell, Cell)> {
        if r.is_empty() {
            return None;
        }
        let grid_rect = Rect::new(
            self.origin.x,
            self.origin.y,
            self.origin.x + self.side,
            self.origin.y + self.side,
        );
        if !r.intersects(&grid_rect) {
            return None;
        }
        let lo = self.cell_of(Point::new(r.min.x, r.min.y));
        let hi = self.cell_of(Point::new(r.max.x, r.max.y));
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_cell_center() {
        let m = GridMapper::unit_square(4); // 16×16 grid
        for x in 0..16 {
            for y in 0..16 {
                let c = Cell::new(x, y);
                assert_eq!(m.cell_of(m.cell_center(c)), c);
            }
        }
    }

    #[test]
    fn boundary_points_clamp() {
        let m = GridMapper::unit_square(3);
        assert_eq!(m.cell_of(Point::new(1.0, 1.0)), Cell::new(7, 7));
        assert_eq!(m.cell_of(Point::new(-0.5, 2.0)), Cell::new(0, 7));
    }

    #[test]
    fn covering_contains_all_points() {
        let pts = vec![
            Point::new(-3.0, 2.0),
            Point::new(5.0, 4.0),
            Point::new(0.0, -1.0),
        ];
        let m = GridMapper::covering(&pts, 8).unwrap();
        for &p in &pts {
            let c = m.cell_of(p);
            assert!(
                m.cell_rect(c).contains(p),
                "point {p:?} not inside its cell"
            );
        }
    }

    #[test]
    fn covering_empty_is_none() {
        assert!(GridMapper::covering(&[], 8).is_none());
    }

    #[test]
    fn cells_overlapping_clips() {
        let m = GridMapper::unit_square(2); // 4×4
        let (lo, hi) = m.cells_overlapping(&Rect::new(0.3, 0.3, 0.8, 0.6)).unwrap();
        assert_eq!(lo, Cell::new(1, 1));
        assert_eq!(hi, Cell::new(3, 2));
        assert!(m
            .cells_overlapping(&Rect::new(2.0, 2.0, 3.0, 3.0))
            .is_none());
    }

    #[test]
    #[should_panic(expected = "Hilbert order")]
    fn zero_order_rejected() {
        let _ = GridMapper::unit_square(0);
    }
}
