//! Points and distance kernels.

/// A point in the two-dimensional Euclidean space of the broadcast system.
///
/// The paper represents a coordinate as two 8-byte floating point numbers
/// (16 bytes on the air); `Point` is the in-memory equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist2(&self, other: Point) -> f64 {
        dist2(*self, other)
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        dist(*self, other)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Self { x, y }
    }
}

/// Squared Euclidean distance between two points.
///
/// Query algorithms compare squared distances wherever possible so that the
/// hot loops are free of `sqrt`.
#[inline]
pub fn dist2(a: Point, b: Point) -> f64 {
    let dx = a.x - b.x;
    let dy = a.y - b.y;
    dx * dx + dy * dy
}

/// Euclidean distance between two points.
#[inline]
pub fn dist(a: Point, b: Point) -> f64 {
    dist2(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(0.25, 0.75);
        let b = Point::new(-1.0, 2.0);
        assert_eq!(dist2(a, b), dist2(b, a));
        assert_eq!(dist(a, b), dist(b, a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(3.5, -2.25);
        assert_eq!(dist2(p, p), 0.0);
    }

    #[test]
    fn pythagorean_triple() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(dist2(a, b), 25.0);
        assert_eq!(dist(a, b), 5.0);
    }

    #[test]
    fn from_tuple() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p, Point::new(1.0, 2.0));
    }
}
