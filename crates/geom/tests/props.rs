//! Property tests for the geometry primitives.

use dsi_geom::{dist2, Circle, GridMapper, Point, Rect};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-2.0..3.0f64, -2.0..3.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::from_corners(a, b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mindist_is_zero_iff_inside_or_boundary(r in arb_rect(), p in arb_point()) {
        let d = r.min_dist2(p);
        prop_assert!(d >= 0.0);
        if r.contains(p) {
            prop_assert_eq!(d, 0.0);
        } else {
            prop_assert!(d > 0.0);
        }
    }

    #[test]
    fn mindist_lower_bounds_any_contained_point(r in arb_rect(), p in arb_point(), q in arb_point()) {
        // For any point q inside r, dist(p, q) >= mindist(p, r).
        if r.contains(q) {
            prop_assert!(dist2(p, q) >= r.min_dist2(p) - 1e-12);
        }
    }

    #[test]
    fn maxdist_upper_bounds_any_contained_point(r in arb_rect(), p in arb_point(), q in arb_point()) {
        if r.contains(q) {
            prop_assert!(dist2(p, q) <= r.max_dist2(p) + 1e-12);
        }
    }

    #[test]
    fn union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn intersects_is_symmetric_and_consistent(a in arb_rect(), b in arb_rect(), p in arb_point()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        // A shared point forces intersection.
        if a.contains(p) && b.contains(p) {
            prop_assert!(a.intersects(&b));
        }
    }

    #[test]
    fn circle_bbox_contains_circle_points(c in arb_point(), r in 0.0..1.5f64, q in arb_point()) {
        let circle = Circle::new(c, r);
        if circle.contains(q) {
            prop_assert!(circle.bounding_box().contains(q));
        }
    }

    #[test]
    fn grid_cell_roundtrip(p in (0.0..1.0f64, 0.0..1.0f64), order in 1u8..12) {
        let m = GridMapper::unit_square(order);
        let cell = m.cell_of(Point::new(p.0, p.1));
        let rect = m.cell_rect(cell);
        prop_assert!(rect.contains(Point::new(p.0, p.1)));
        prop_assert_eq!(m.cell_of(m.cell_center(cell)), cell);
    }
}
