//! The combined check driver: exhaustive exploration plus per-execution
//! race, lock-order and lost-wakeup analysis.
//!
//! [`check`] runs `interleave::explore_with` and feeds every finished
//! execution's event stream through a fresh [`LocksetAnalyzer`] and a
//! shared [`LockOrderAnalyzer`] (edges accumulate across executions —
//! object ids are deterministic per schedule prefix). The result bundles
//! the explorer's own verdict (deadlocks, user panics, step limits) with
//! the analyzers', so one call answers every question the model suite
//! asks of a scenario.

use std::cell::RefCell;
use std::collections::BTreeSet;

use interleave::{explore_with, Options, Report, Violation};

use crate::lockorder::LockOrderAnalyzer;
use crate::lockset::{LocksetAnalyzer, Race};
use crate::wakeup::{classify, DeadlockKind};

/// Everything a model-check run learned about a scenario.
#[derive(Debug)]
pub struct CheckReport {
    /// The explorer's verdict: schedule count, completeness, the first
    /// violation and its counterexample schedule.
    pub report: Report,
    /// Unprotected shared accesses, deduplicated across executions.
    pub races: Vec<Race>,
    /// Lock-order cycles in the graph accumulated over all executions.
    pub cycles: Vec<Vec<usize>>,
    /// Refined diagnosis when the violation is a deadlock: plain
    /// deadlock vs lost wakeup.
    pub deadlock_kind: Option<DeadlockKind>,
}

impl CheckReport {
    /// Number of distinct schedules explored.
    pub fn executions(&self) -> usize {
        self.report.executions
    }

    /// `true` when exploration exhausted the bounded state space with
    /// no violation, no race and no lock-order cycle.
    pub fn is_clean(&self) -> bool {
        self.report.complete
            && self.report.violation.is_none()
            && self.races.is_empty()
            && self.cycles.is_empty()
    }

    /// Panics with a readable diagnosis unless [`CheckReport::is_clean`].
    pub fn assert_clean(&self) {
        if let Some(kind) = &self.deadlock_kind {
            if let Some(Violation::Deadlock { .. }) = &self.report.violation {
                let sched = self
                    .report
                    .counterexample
                    .as_ref()
                    .map(|e| format!("{:?}", e.schedule))
                    .unwrap_or_else(|| "<none>".into());
                panic!(
                    "model deadlock ({kind:?}) after {} executions\n  counterexample schedule: {sched}",
                    self.report.executions
                );
            }
        }
        self.report.assert_ok();
        assert!(
            self.races.is_empty(),
            "lockset races found: {:?}",
            self.races
        );
        assert!(
            self.cycles.is_empty(),
            "lock-order cycles found: {:?}",
            self.cycles
        );
    }
}

/// Exhaustively explores `f` under `opts`, running the race and
/// lock-order analyzers over every execution's event stream.
pub fn check<F: Fn()>(opts: &Options, f: F) -> CheckReport {
    let races: RefCell<Vec<Race>> = RefCell::new(Vec::new());
    let seen: RefCell<BTreeSet<(usize, usize, bool)>> = RefCell::new(BTreeSet::new());
    let order: RefCell<LockOrderAnalyzer> = RefCell::new(LockOrderAnalyzer::new());
    let report = explore_with(opts, f, |exec| {
        let mut lockset = LocksetAnalyzer::new();
        let mut order = order.borrow_mut();
        for e in &exec.events {
            lockset.on_event(e);
            order.on_event(e);
        }
        let mut seen = seen.borrow_mut();
        for r in lockset.races() {
            if seen.insert((r.cell, r.task, r.write)) {
                races.borrow_mut().push(r.clone());
            }
        }
    });
    let deadlock_kind = match (&report.violation, &report.counterexample) {
        (Some(v), Some(cx)) => classify(&cx.events, v),
        _ => None,
    };
    let cycles = order.borrow().cycles();
    CheckReport {
        report,
        races: races.into_inner(),
        cycles,
        deadlock_kind,
    }
}
