//! The model-check runner: explores every core concurrency scenario
//! exhaustively (within its preemption bound) and prints one line per
//! scenario plus a final `MODEL OK` for CI to grep.
//!
//! The binary only does real work when the workspace is built with
//! `RUSTFLAGS="--cfg dsi_model"`; a normal build prints a rebuild
//! notice and exits non-zero so a misconfigured CI job cannot pass
//! vacuously.

#[cfg(not(dsi_model))]
fn main() {
    eprintln!("model: built without the model scheduler.");
    eprintln!("model: rebuild with RUSTFLAGS=\"--cfg dsi_model\" to run the suite.");
    std::process::exit(2);
}

#[cfg(dsi_model)]
fn main() {
    let mut failed = false;
    for s in dsi_model::scenarios::run_all() {
        let verdict = if s.check.is_clean() && s.distinct_outcomes == 1 {
            "OK"
        } else {
            failed = true;
            "FAIL"
        };
        println!(
            "scenario {:<24} bound={} schedules={:<6} races={} cycles={} outcomes={} {}",
            s.name,
            s.bound,
            s.check.executions(),
            s.check.races.len(),
            s.check.cycles.len(),
            s.distinct_outcomes,
            verdict
        );
        if let Some(v) = &s.check.report.violation {
            println!("  violation: {v}");
            if let Some(kind) = &s.check.deadlock_kind {
                println!("  diagnosis: {kind:?}");
            }
            if let Some(cx) = &s.check.report.counterexample {
                println!("  counterexample schedule: {:?}", cx.schedule);
            }
        }
    }
    if failed {
        println!("MODEL FAIL");
        std::process::exit(1);
    }
    println!("MODEL OK");
}
