//! Lock-order graph construction and cycle detection.
//!
//! Every `Acquire` of lock `B` while the same task already holds lock
//! `A` adds the edge `A → B`. A cycle in the accumulated graph means
//! two code paths acquire the same locks in opposite orders — a
//! *potential* deadlock even when no explored schedule actually hung
//! (the explorer reports real hangs separately, as
//! `interleave::Violation::Deadlock`).
//!
//! Edges may be accumulated across every execution of an exploration:
//! object ids are assigned in first-use order, which is deterministic
//! per schedule prefix, so ids agree between executions of the same
//! scenario.

use std::collections::{BTreeMap, BTreeSet};

use interleave::{Event, ObjId, TaskId};

/// The lock-order analyzer. Feed events (possibly from many
/// executions), then ask for [`LockOrderAnalyzer::cycles`].
#[derive(Debug, Default)]
pub struct LockOrderAnalyzer {
    /// Locks currently held per task, in acquisition order.
    held: BTreeMap<TaskId, Vec<ObjId>>,
    /// Accumulated `held → acquired` edges.
    edges: BTreeSet<(ObjId, ObjId)>,
}

impl LockOrderAnalyzer {
    /// A fresh analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one event.
    pub fn on_event(&mut self, e: &Event) {
        match *e {
            Event::Acquire { task, lock } => {
                let held = self.held.entry(task).or_default();
                for &h in held.iter() {
                    if h != lock {
                        self.edges.insert((h, lock));
                    }
                }
                held.push(lock);
            }
            Event::Release { task, lock } | Event::CvWait { task, lock, .. } => {
                let held = self.held.entry(task).or_default();
                if let Some(pos) = held.iter().rposition(|&l| l == lock) {
                    held.remove(pos);
                }
            }
            _ => {}
        }
    }

    /// The accumulated `held → acquired` edges.
    pub fn edges(&self) -> &BTreeSet<(ObjId, ObjId)> {
        &self.edges
    }

    /// Every elementary cycle's node set, deduplicated. Empty means the
    /// accumulated graph is a DAG: a global acquisition order exists.
    pub fn cycles(&self) -> Vec<Vec<ObjId>> {
        let mut adj: BTreeMap<ObjId, Vec<ObjId>> = BTreeMap::new();
        let mut nodes: BTreeSet<ObjId> = BTreeSet::new();
        for &(a, b) in &self.edges {
            adj.entry(a).or_default().push(b);
            nodes.insert(a);
            nodes.insert(b);
        }
        // Iterative DFS with tri-color marking; a back edge closes a
        // cycle, reconstructed from the active path.
        let mut color: BTreeMap<ObjId, u8> = BTreeMap::new(); // 0 white, 1 grey, 2 black
        let mut found: BTreeSet<Vec<ObjId>> = BTreeSet::new();
        for &root in &nodes {
            if color.get(&root).copied().unwrap_or(0) != 0 {
                continue;
            }
            // Stack of (node, next child index); `path` mirrors it.
            let mut stack: Vec<(ObjId, usize)> = vec![(root, 0)];
            let mut path: Vec<ObjId> = vec![root];
            color.insert(root, 1);
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let children = adj.get(&node).map(|v| v.as_slice()).unwrap_or(&[]);
                if *idx < children.len() {
                    let child = children[*idx];
                    *idx += 1;
                    match color.get(&child).copied().unwrap_or(0) {
                        0 => {
                            color.insert(child, 1);
                            stack.push((child, 0));
                            path.push(child);
                        }
                        1 => {
                            // Back edge: the cycle is the path suffix
                            // from `child` onwards.
                            if let Some(pos) = path.iter().position(|&n| n == child) {
                                let mut cyc: Vec<ObjId> = path[pos..].to_vec();
                                // Canonical rotation for dedup.
                                let min_pos = cyc
                                    .iter()
                                    .enumerate()
                                    .min_by_key(|(_, v)| **v)
                                    .map(|(i, _)| i)
                                    .unwrap_or(0);
                                cyc.rotate_left(min_pos);
                                found.insert(cyc);
                            }
                        }
                        _ => {}
                    }
                } else {
                    color.insert(node, 2);
                    stack.pop();
                    path.pop();
                }
            }
        }
        found.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(events: &[Event]) -> LockOrderAnalyzer {
        let mut a = LockOrderAnalyzer::new();
        for e in events {
            a.on_event(e);
        }
        a
    }

    #[test]
    fn consistent_nesting_is_a_dag() {
        let a = feed(&[
            Event::Acquire { task: 0, lock: 1 },
            Event::Acquire { task: 0, lock: 2 },
            Event::Release { task: 0, lock: 2 },
            Event::Release { task: 0, lock: 1 },
            Event::Acquire { task: 1, lock: 1 },
            Event::Acquire { task: 1, lock: 2 },
            Event::Release { task: 1, lock: 2 },
            Event::Release { task: 1, lock: 1 },
        ]);
        assert_eq!(a.edges().len(), 1);
        assert!(a.cycles().is_empty());
    }

    #[test]
    fn opposite_orders_cycle() {
        let a = feed(&[
            Event::Acquire { task: 0, lock: 1 },
            Event::Acquire { task: 0, lock: 2 },
            Event::Release { task: 0, lock: 2 },
            Event::Release { task: 0, lock: 1 },
            Event::Acquire { task: 1, lock: 2 },
            Event::Acquire { task: 1, lock: 1 },
            Event::Release { task: 1, lock: 1 },
            Event::Release { task: 1, lock: 2 },
        ]);
        let cycles = a.cycles();
        assert_eq!(cycles, vec![vec![1, 2]]);
    }

    #[test]
    fn condvar_wait_breaks_the_hold() {
        // Holding A, waiting on a condvar releases A; acquiring B
        // after the wake (A re-acquired later) must not edge A → B
        // from the stale hold.
        let a = feed(&[
            Event::Acquire { task: 0, lock: 1 },
            Event::CvWait {
                task: 0,
                cv: 9,
                lock: 1,
            },
            Event::Acquire { task: 0, lock: 2 },
            Event::Release { task: 0, lock: 2 },
        ]);
        assert!(a.edges().is_empty());
    }

    #[test]
    fn three_lock_cycle_is_found() {
        let a = feed(&[
            Event::Acquire { task: 0, lock: 1 },
            Event::Acquire { task: 0, lock: 2 },
            Event::Release { task: 0, lock: 2 },
            Event::Release { task: 0, lock: 1 },
            Event::Acquire { task: 1, lock: 2 },
            Event::Acquire { task: 1, lock: 3 },
            Event::Release { task: 1, lock: 3 },
            Event::Release { task: 1, lock: 2 },
            Event::Acquire { task: 2, lock: 3 },
            Event::Acquire { task: 2, lock: 1 },
            Event::Release { task: 2, lock: 1 },
            Event::Release { task: 2, lock: 3 },
        ]);
        assert_eq!(a.cycles(), vec![vec![1, 2, 3]]);
    }
}
