//! Deadlock classification: plain deadlock vs lost wakeup.
//!
//! The explorer reports a deadlock whenever no task can run. For the
//! condvar parking path the interesting sub-case is the *lost wakeup*:
//! the signal was sent, but before the sleeper actually parked — the
//! exact bug the `steal` pool's epoch discipline exists to prevent. The
//! two are distinguished from the event stream: a waiter whose final
//! `CvWait` is preceded by a `Notify` of the same condvar slept through
//! a signal that will never repeat.

use interleave::{BlockedOn, Event, ObjId, TaskId, Violation};

/// Refined deadlock diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeadlockKind {
    /// A condvar waiter parked *after* the last signal on its condvar
    /// fired: the wakeup was lost (check-then-sleep race).
    LostWakeup {
        /// The condvar whose signal was missed.
        cv: ObjId,
        /// The parked task.
        waiter: TaskId,
    },
    /// A deadlock with no missed-signal evidence (lock cycle, waiting
    /// on a signal no live thread can send, join cycle, ...).
    Deadlock,
}

/// Classifies a [`Violation::Deadlock`] using the execution's event
/// stream. Returns `None` for non-deadlock violations.
pub fn classify(events: &[Event], violation: &Violation) -> Option<DeadlockKind> {
    let blocked = match violation {
        Violation::Deadlock { blocked } => blocked,
        _ => return None,
    };
    for &(task, ref on) in blocked {
        let cv = match on {
            BlockedOn::Condvar(cv) => *cv,
            _ => continue,
        };
        // Index of this task's final park on the condvar.
        let wait_at = events.iter().rposition(
            |e| matches!(*e, Event::CvWait { task: t, cv: c, .. } if t == task && c == cv),
        );
        let Some(wait_at) = wait_at else { continue };
        // Any signal on that condvar before the park means the park
        // raced past its wakeup.
        let signalled_before = events[..wait_at]
            .iter()
            .any(|e| matches!(*e, Event::Notify { cv: c, .. } if c == cv));
        if signalled_before {
            return Some(DeadlockKind::LostWakeup { cv, waiter: task });
        }
    }
    Some(DeadlockKind::Deadlock)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notify_before_wait_is_lost_wakeup() {
        let events = [
            Event::Acquire { task: 1, lock: 0 },
            Event::Notify {
                task: 1,
                cv: 2,
                waiters: 0,
                all: true,
            },
            Event::Release { task: 1, lock: 0 },
            Event::Acquire { task: 0, lock: 0 },
            Event::CvWait {
                task: 0,
                cv: 2,
                lock: 0,
            },
        ];
        let v = Violation::Deadlock {
            blocked: vec![(0, BlockedOn::Condvar(2))],
        };
        assert_eq!(
            classify(&events, &v),
            Some(DeadlockKind::LostWakeup { cv: 2, waiter: 0 })
        );
    }

    #[test]
    fn never_signalled_is_plain_deadlock() {
        let events = [
            Event::Acquire { task: 0, lock: 0 },
            Event::CvWait {
                task: 0,
                cv: 2,
                lock: 0,
            },
        ];
        let v = Violation::Deadlock {
            blocked: vec![(0, BlockedOn::Condvar(2))],
        };
        assert_eq!(classify(&events, &v), Some(DeadlockKind::Deadlock));
    }

    #[test]
    fn non_deadlock_violations_are_not_classified() {
        let v = Violation::UserPanic {
            task: 0,
            message: "boom".into(),
        };
        assert_eq!(classify(&[], &v), None);
    }

    #[test]
    fn signal_after_park_is_not_lost() {
        // A notify *after* the final park woke someone else; the
        // remaining waiter is a plain deadlock, not a lost wakeup.
        let events = [
            Event::CvWait {
                task: 0,
                cv: 2,
                lock: 0,
            },
            Event::Notify {
                task: 1,
                cv: 2,
                waiters: 1,
                all: false,
            },
            Event::CvWait {
                task: 3,
                cv: 2,
                lock: 0,
            },
        ];
        let v = Violation::Deadlock {
            blocked: vec![(3, BlockedOn::Condvar(2))],
        };
        // Task 3's park happened after the only notify... which fired
        // before it: that IS a lost wakeup for task 3.
        assert_eq!(
            classify(&events, &v),
            Some(DeadlockKind::LostWakeup { cv: 2, waiter: 3 })
        );
    }
}
