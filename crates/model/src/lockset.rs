//! Eraser-style lockset race detection over an interleave event stream.
//!
//! Executions produced by `interleave::explore` are serialized, so the
//! event stream is a total order and the classic Eraser state machine
//! applies directly: each shared location starts *virgin*, stays
//! *exclusive* while a single task touches it, and once a second task
//! joins, its *candidate lockset* — the locks held at every access — is
//! intersected access by access. An empty candidate set on a location
//! that has seen writes from more than one context means no single lock
//! protects it: a race report.
//!
//! Only [`Event::CellRead`]/[`Event::CellWrite`] feed the state machine
//! (mutex-guarded data is touched *through* guards, and atomics are
//! synchronization, not data). Held locks are derived from
//! `Acquire`/`Release`/`CvWait` events, so the analyzer needs no help
//! from the scheduler.

use std::collections::{BTreeMap, BTreeSet};

use interleave::{Event, ObjId, TaskId};

/// Per-location Eraser state.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CellState {
    /// Touched by exactly one task so far.
    Exclusive(TaskId),
    /// Read-shared between tasks; writes so far from one task only.
    Shared,
    /// Written by one task and accessed by another: a race candidate
    /// whenever the lockset drains empty.
    SharedModified,
}

/// One unprotected shared access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// The shared location (an `interleave::SharedCell`).
    pub cell: ObjId,
    /// The task whose access emptied the candidate lockset.
    pub task: TaskId,
    /// Whether that access was a write.
    pub write: bool,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unprotected {} of cell #{} by task {} (candidate lockset empty)",
            if self.write { "write" } else { "read" },
            self.cell,
            self.task
        )
    }
}

/// The lockset race analyzer. Feed it one execution's events in order,
/// then read [`LocksetAnalyzer::races`].
#[derive(Debug, Default)]
pub struct LocksetAnalyzer {
    /// Locks currently held, per task.
    held: BTreeMap<TaskId, BTreeSet<ObjId>>,
    /// Eraser state and candidate lockset per cell.
    cells: BTreeMap<ObjId, (CellState, Option<BTreeSet<ObjId>>)>,
    /// Cells already reported (one report per cell).
    reported: BTreeSet<ObjId>,
    races: Vec<Race>,
}

impl LocksetAnalyzer {
    /// A fresh analyzer (one per execution).
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one event.
    pub fn on_event(&mut self, e: &Event) {
        match *e {
            Event::Acquire { task, lock } => {
                self.held.entry(task).or_default().insert(lock);
            }
            Event::Release { task, lock } | Event::CvWait { task, lock, .. } => {
                self.held.entry(task).or_default().remove(&lock);
            }
            Event::CellRead { task, cell } => self.access(task, cell, false),
            Event::CellWrite { task, cell } => self.access(task, cell, true),
            _ => {}
        }
    }

    fn access(&mut self, task: TaskId, cell: ObjId, write: bool) {
        let held = self.held.entry(task).or_default().clone();
        let entry = self
            .cells
            .entry(cell)
            .or_insert_with(|| (CellState::Exclusive(task), Some(held.clone())));
        // Strict variant: the candidate set starts at the *first*
        // access's locks and is intersected on every access, so two
        // tasks that each touch the cell exactly once under different
        // locks are still caught. (Classic Eraser initializes at the
        // second task's arrival, which misses that case; the price is
        // that init-then-transfer handoffs with a post-transfer write
        // need a common lock here.)
        let cand = entry.1.get_or_insert_with(|| held.clone());
        *cand = cand.intersection(&held).copied().collect();
        match entry.0.clone() {
            CellState::Exclusive(owner) if owner == task => {
                // Still single-task; not yet reportable.
            }
            CellState::Exclusive(_) => {
                entry.0 = if write {
                    CellState::SharedModified
                } else {
                    CellState::Shared
                };
            }
            CellState::Shared => {
                if write {
                    entry.0 = CellState::SharedModified;
                }
            }
            CellState::SharedModified => {}
        }
        if entry.0 == CellState::SharedModified
            && entry.1.as_ref().is_some_and(|c| c.is_empty())
            && self.reported.insert(cell)
        {
            self.races.push(Race { cell, task, write });
        }
    }

    /// Races found so far (at most one per cell).
    pub fn races(&self) -> &[Race] {
        &self.races
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(events: &[Event]) -> LocksetAnalyzer {
        let mut a = LocksetAnalyzer::new();
        for e in events {
            a.on_event(e);
        }
        a
    }

    #[test]
    fn guarded_accesses_are_clean() {
        let a = feed(&[
            Event::Acquire { task: 0, lock: 9 },
            Event::CellWrite { task: 0, cell: 1 },
            Event::Release { task: 0, lock: 9 },
            Event::Acquire { task: 1, lock: 9 },
            Event::CellWrite { task: 1, cell: 1 },
            Event::Release { task: 1, lock: 9 },
        ]);
        assert!(a.races().is_empty());
    }

    #[test]
    fn unguarded_cross_task_write_is_a_race() {
        let a = feed(&[
            Event::CellWrite { task: 0, cell: 1 },
            Event::CellWrite { task: 1, cell: 1 },
        ]);
        assert_eq!(
            a.races(),
            &[Race {
                cell: 1,
                task: 1,
                write: true
            }]
        );
    }

    #[test]
    fn differing_locks_do_not_protect() {
        let a = feed(&[
            Event::Acquire { task: 0, lock: 7 },
            Event::CellWrite { task: 0, cell: 3 },
            Event::Release { task: 0, lock: 7 },
            Event::Acquire { task: 1, lock: 8 },
            Event::CellWrite { task: 1, cell: 3 },
            Event::Release { task: 1, lock: 8 },
        ]);
        assert_eq!(a.races().len(), 1);
    }

    #[test]
    fn read_sharing_without_writes_is_clean() {
        let a = feed(&[
            Event::CellWrite { task: 0, cell: 2 },
            Event::CellRead { task: 1, cell: 2 },
            Event::CellRead { task: 2, cell: 2 },
        ]);
        // Writes came from one task before sharing began: Shared, not
        // SharedModified — the publish-then-read-only idiom is legal.
        assert!(a.races().is_empty());
    }

    #[test]
    fn lock_released_by_condvar_wait_stops_protecting() {
        let a = feed(&[
            Event::Acquire { task: 0, lock: 5 },
            Event::CellWrite { task: 0, cell: 4 },
            Event::CvWait {
                task: 0,
                cv: 6,
                lock: 5,
            },
            // Task 1 writes while 0 is parked — but holds nothing.
            Event::CellWrite { task: 1, cell: 4 },
        ]);
        assert_eq!(a.races().len(), 1);
    }
}
