//! The core model-check scenarios for the fleet concurrency layer.
//!
//! Each scenario wraps one `steal` pool or `dsi_core::share` pattern in
//! [`crate::check::check`], explores every schedule within the given
//! preemption bound, and asserts the *same outcome facts* hold in every
//! one of them — job counts, panic propagation, drain-on-drop, cache
//! bit-identity. The facts are exactly the properties the fleet engine's
//! `FleetOutcomes` merge relies on.
//!
//! The preemption bound is per-call so the CI job can run the fast
//! bound while local debugging cranks it up; see [`run_all`] for the
//! defaults each scenario is known to exhaust in seconds.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use dsi_core::share::ShareCache;
use dsi_geom::{GridMapper, Point, Rect};
use dsi_hilbert::{ranges_in_rect, HilbertCurve};
use interleave::sync::atomic::{AtomicUsize, Ordering};
use interleave::Options;
use steal::{Builder, Pool};

use crate::check::{check, CheckReport};

/// The outcome of one scenario run: the check verdict plus the set of
/// distinct outcome facts observed across all schedules (a singleton
/// set is the determinism proof).
pub struct ScenarioReport {
    /// Scenario name, stable for CI log grepping.
    pub name: &'static str,
    /// Preemption bound the exploration ran under.
    pub bound: usize,
    /// The combined explorer + analyzer verdict.
    pub check: CheckReport,
    /// Distinct outcome facts across schedules (should be 1).
    pub distinct_outcomes: usize,
}

impl ScenarioReport {
    /// Panics unless the exploration was exhaustive, violation-free,
    /// race-free, cycle-free and outcome-deterministic.
    pub fn assert_clean(&self) {
        self.check.assert_clean();
        assert_eq!(
            self.distinct_outcomes, 1,
            "{}: outcomes differ across schedules",
            self.name
        );
    }
}

fn report(
    name: &'static str,
    bound: usize,
    check: CheckReport,
    outcomes: BTreeSet<String>,
) -> ScenarioReport {
    ScenarioReport {
        name,
        bound,
        check,
        distinct_outcomes: outcomes.len(),
    }
}

/// Spawn/steal/park/unpark: two batch jobs on a two-worker pool bump a
/// shared counter; every schedule must run both exactly once and join
/// only after both.
pub fn pool_spawn_steal(bound: usize) -> ScenarioReport {
    let outcomes: RefCell<BTreeSet<String>> = RefCell::new(BTreeSet::new());
    let check = check(&Options::with_bound(bound), || {
        let pool = Pool::with_workers(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let batch = pool.batch();
        for _ in 0..2 {
            let hits = Arc::clone(&hits);
            // dsi-lint: allow(spawn): model scenario job; touches only counters and the pure cache, no hotpath state
            batch.spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        batch.join();
        let n = hits.load(Ordering::SeqCst);
        assert_eq!(n, 2, "join returned before both jobs ran");
        outcomes.borrow_mut().insert(format!("hits={n}"));
        drop(pool);
    });
    report("pool_spawn_steal", bound, check, outcomes.into_inner())
}

/// Panic propagation: a panicking batch job must surface through
/// `Batch::join` (and only there) in every schedule, and the sibling
/// job still runs.
pub fn pool_batch_panic(bound: usize) -> ScenarioReport {
    let outcomes: RefCell<BTreeSet<String>> = RefCell::new(BTreeSet::new());
    let check = check(&Options::with_bound(bound), || {
        let pool = Pool::with_workers(1);
        let hits = Arc::new(AtomicUsize::new(0));
        let batch = pool.batch();
        // dsi-lint: allow(spawn): model scenario job; touches only counters and the pure cache, no hotpath state
        batch.spawn(|| panic!("job boom"));
        {
            let hits = Arc::clone(&hits);
            // dsi-lint: allow(spawn): model scenario job; touches only counters and the pure cache, no hotpath state
            batch.spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        let joined = catch_unwind(AssertUnwindSafe(|| batch.join()));
        let payload = joined.expect_err("join must re-raise the job panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("?");
        let n = hits.load(Ordering::SeqCst);
        assert_eq!(n, 1, "sibling job lost to the panic");
        assert!(
            pool.take_stray_panic().is_none(),
            "batch panic leaked into the stray channel"
        );
        outcomes
            .borrow_mut()
            .insert(format!("panic={msg} hits={n}"));
        drop(pool);
    });
    report("pool_batch_panic", bound, check, outcomes.into_inner())
}

/// Shutdown: fire-and-forget jobs queued before `drop` all run before
/// the workers join, in every schedule.
pub fn pool_shutdown_drains(bound: usize) -> ScenarioReport {
    let outcomes: RefCell<BTreeSet<String>> = RefCell::new(BTreeSet::new());
    let check = check(&Options::with_bound(bound), || {
        let hits = Arc::new(AtomicUsize::new(0));
        let pool = Pool::with_workers(1);
        for _ in 0..2 {
            let hits = Arc::clone(&hits);
            // dsi-lint: allow(spawn): model scenario job; touches only counters and the pure cache, no hotpath state
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        let n = hits.load(Ordering::SeqCst);
        assert_eq!(n, 2, "drop joined workers before draining the queue");
        outcomes.borrow_mut().insert(format!("hits={n}"));
    });
    report("pool_shutdown_drains", bound, check, outcomes.into_inner())
}

/// Worker panic containment: a panicking fire-and-forget job must not
/// cost the pool its worker — later jobs still run and the payload
/// surfaces via `take_stray_panic`, in every schedule.
pub fn pool_stray_panic(bound: usize) -> ScenarioReport {
    let outcomes: RefCell<BTreeSet<String>> = RefCell::new(BTreeSet::new());
    let check = check(&Options::with_bound(bound), || {
        let pool = Pool::with_workers(1);
        let hits = Arc::new(AtomicUsize::new(0));
        // dsi-lint: allow(spawn): model scenario job; touches only counters and the pure cache, no hotpath state
        pool.spawn(|| panic!("stray boom"));
        {
            let hits = Arc::clone(&hits);
            // dsi-lint: allow(spawn): model scenario job; touches only counters and the pure cache, no hotpath state
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        let batch = pool.batch();
        // dsi-lint: allow(spawn): model scenario job; touches only counters and the pure cache, no hotpath state
        batch.spawn(|| {});
        batch.join();
        let n = hits.load(Ordering::SeqCst);
        assert_eq!(n, 1, "worker died to the stray panic");
        let payload = pool.take_stray_panic().expect("stray panic recorded");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("?");
        outcomes
            .borrow_mut()
            .insert(format!("stray={msg} hits={n}"));
        drop(pool);
    });
    report("pool_stray_panic", bound, check, outcomes.into_inner())
}

/// Steal racing shutdown: a job enqueued from outside while the pool is
/// concurrently dropped still runs exactly once — `drop` drains
/// whatever made it into the queues.
pub fn pool_spawn_races_drop(bound: usize) -> ScenarioReport {
    let outcomes: RefCell<BTreeSet<String>> = RefCell::new(BTreeSet::new());
    let check = check(&Options::with_bound(bound), || {
        let hits = Arc::new(AtomicUsize::new(0));
        let pool = Pool::with_workers(2);
        {
            let hits = Arc::clone(&hits);
            // dsi-lint: allow(spawn): model scenario job; touches only counters and the pure cache, no hotpath state
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        let n = hits.load(Ordering::SeqCst);
        assert_eq!(n, 1, "job lost in the shutdown race");
        outcomes.borrow_mut().insert(format!("hits={n}"));
    });
    report("pool_spawn_races_drop", bound, check, outcomes.into_inner())
}

/// A panicking `on_thread_start` hook must not decimate the pool: jobs
/// still drain and the first hook payload surfaces, in every schedule.
pub fn pool_hook_panic(bound: usize) -> ScenarioReport {
    let outcomes: RefCell<BTreeSet<String>> = RefCell::new(BTreeSet::new());
    let check = check(&Options::with_bound(bound), || {
        let pool = Builder::new()
            .workers(1)
            .on_thread_start(|| panic!("hook boom"))
            .build();
        let hits = Arc::new(AtomicUsize::new(0));
        let batch = pool.batch();
        {
            let hits = Arc::clone(&hits);
            // dsi-lint: allow(spawn): model scenario job; touches only counters and the pure cache, no hotpath state
            batch.spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        batch.join();
        let n = hits.load(Ordering::SeqCst);
        assert_eq!(n, 1, "hook panic cost the pool its worker");
        let payload = pool.take_stray_panic().expect("hook panic recorded");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("?");
        outcomes.borrow_mut().insert(format!("hook={msg} hits={n}"));
        drop(pool);
    });
    report("pool_hook_panic", bound, check, outcomes.into_inner())
}

/// Concurrent share-cache insert/hit: two threads resolving the same
/// window rectangle must observe bit-identical segments (equal to the
/// direct computation) and coherent hit/miss counters in every
/// schedule, with no lockset race anywhere in the cache.
pub fn share_cache_insert_hit(bound: usize) -> ScenarioReport {
    let curve = HilbertCurve::new(3);
    let mapper = GridMapper::new(Point { x: 0.0, y: 0.0 }, 1.0, 3);
    let rect = Rect::new(0.2, 0.2, 0.7, 0.6);
    let expected = Arc::new(ranges_in_rect(&curve, &mapper, &rect));
    let outcomes: RefCell<BTreeSet<String>> = RefCell::new(BTreeSet::new());
    let check = check(&Options::with_bound(bound), || {
        let cache = Arc::new(ShareCache::new());
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let curve = curve.clone();
                let rect = rect;
                // dsi-lint: allow(spawn): model scenario job; touches only counters and the pure cache, no hotpath state
                interleave::thread::spawn(move || cache.segments_for(&curve, &mapper, &rect))
            })
            .collect();
        for h in workers {
            let got = h.join().expect("cache worker panicked");
            assert_eq!(
                *got, *expected,
                "cache returned segments differing from the direct computation"
            );
        }
        let (hits, misses) = (cache.window_hits(), cache.window_misses());
        assert_eq!(hits + misses, 2, "each lookup is a hit or a miss");
        assert!(misses >= 1, "someone computed the entry");
        outcomes
            .borrow_mut()
            .insert("segments=bit-identical".to_string());
    });
    report(
        "share_cache_insert_hit",
        bound,
        check,
        outcomes.into_inner(),
    )
}

/// Every scenario with the preemption bound its CI run uses. The pool
/// scenarios spawn real worker threads per execution, so their
/// exhaustive bound is kept small; the cache scenario is lighter and
/// takes a deeper bound.
pub fn run_all() -> Vec<ScenarioReport> {
    vec![
        pool_spawn_steal(2),
        pool_batch_panic(2),
        pool_shutdown_drains(2),
        pool_stray_panic(2),
        pool_spawn_races_drop(2),
        pool_hook_panic(2),
        share_cache_insert_hit(3),
    ]
}
