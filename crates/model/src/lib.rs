//! `dsi-model` — model checking for the workspace's concurrency layer.
//!
//! Three analyzers run over the event streams produced by
//! [`interleave`]'s controlled scheduler:
//!
//! - [`lockset`] — Eraser-style race detection on `SharedCell` accesses;
//! - [`lockorder`] — lock-order graph construction with cycle reporting
//!   (potential deadlocks, even in schedules that did not hang);
//! - [`wakeup`] — lost-wakeup classification of explorer deadlocks.
//!
//! Under `RUSTFLAGS="--cfg dsi_model"` the crate additionally exposes
//! [`check`] (the exploration + analysis driver) and [`scenarios`] (the
//! exhaustive suite over the `steal` pool and `dsi_core::share` cache);
//! the `model` binary runs the suite and prints `MODEL OK` for CI.
//! Under the normal cfg only the pure analyzers build — they need
//! nothing but event streams.
#![warn(missing_docs)]

#[cfg(dsi_model)]
pub mod check;
pub mod lockorder;
pub mod lockset;
#[cfg(dsi_model)]
pub mod scenarios;
pub mod wakeup;
