//! The model-check suite: exhaustive exploration of the fleet
//! concurrency layer plus anti-vacuity checks — seeded mutations of the
//! pool's synchronization patterns that the checker must catch, proving
//! the clean verdicts on the real code mean something.
//!
//! Build and run with `RUSTFLAGS="--cfg dsi_model" cargo test -p
//! dsi-model`; under the normal cfg this file compiles to nothing.
#![cfg(dsi_model)]

use std::collections::VecDeque;
use std::sync::Arc;

use dsi_model::check::check;
use dsi_model::scenarios;
use dsi_model::wakeup::DeadlockKind;
use interleave::sync::{Condvar, Mutex};
use interleave::{Options, SharedCell, Violation};

// ---------------------------------------------------------------------
// The real code: every core scenario must be exhaustively clean.
// ---------------------------------------------------------------------

#[test]
fn pool_spawn_steal_is_clean() {
    scenarios::pool_spawn_steal(1).assert_clean();
}

#[test]
fn pool_batch_panic_is_clean() {
    scenarios::pool_batch_panic(2).assert_clean();
}

#[test]
fn pool_shutdown_drains_is_clean() {
    scenarios::pool_shutdown_drains(2).assert_clean();
}

#[test]
fn pool_stray_panic_is_clean() {
    scenarios::pool_stray_panic(2).assert_clean();
}

#[test]
fn pool_spawn_races_drop_is_clean() {
    scenarios::pool_spawn_races_drop(2).assert_clean();
}

#[test]
fn pool_hook_panic_is_clean() {
    scenarios::pool_hook_panic(2).assert_clean();
}

#[test]
fn share_cache_insert_hit_is_clean() {
    scenarios::share_cache_insert_hit(3).assert_clean();
}

// ---------------------------------------------------------------------
// Anti-vacuity: mutated copies of the pool's synchronization patterns.
// Each mutation removes one ingredient the real code relies on; the
// checker must catch every one, or a clean verdict proves nothing.
// ---------------------------------------------------------------------

/// A minimal single-worker queue in the pool's idiom, with one seeded
/// mutation: `push` forgets to signal the condvar. The consumer parks
/// forever in schedules where it checks before the push — the explorer
/// must find that deadlock.
#[test]
fn mutation_missing_notify_is_caught_as_deadlock() {
    let report = check(&Options::with_bound(2), || {
        let queue: Arc<Mutex<VecDeque<u32>>> = Arc::new(Mutex::new(VecDeque::new()));
        let ready = Arc::new(Condvar::new());
        let consumer = {
            let queue = Arc::clone(&queue);
            let ready = Arc::clone(&ready);
            interleave::thread::spawn(move || {
                let mut q = queue.lock().unwrap();
                while q.is_empty() {
                    q = ready.wait(q).unwrap();
                }
                q.pop_front().expect("non-empty after wait")
            })
        };
        queue.lock().unwrap().push_back(7);
        // MUTATION: the real pool bumps the epoch and notifies here.
        // ready.notify_all();
        let _ = consumer.join();
    });
    assert!(
        matches!(report.report.violation, Some(Violation::Deadlock { .. })),
        "missing notify went unnoticed: {:?}",
        report.report.violation
    );
}

/// Check-then-park with the flag read *outside* the lock (the lost
/// wakeup the pool's pinned-epoch re-scan exists to prevent): the
/// explorer must find the hang and the wakeup analyzer must classify it
/// as a lost wakeup, not a plain deadlock.
#[test]
fn mutation_check_then_park_is_caught_as_lost_wakeup() {
    let report = check(&Options::with_bound(2), || {
        let flag = Arc::new(Mutex::new(false));
        let ready = Arc::new(Condvar::new());
        let waiter = {
            let flag = Arc::clone(&flag);
            let ready = Arc::clone(&ready);
            interleave::thread::spawn(move || {
                // MUTATION: the real pool pins the epoch under the lock
                // and re-scans before sleeping; this copy checks a
                // stale snapshot and parks unconditionally.
                let set_now = *flag.lock().unwrap();
                if !set_now {
                    let guard = flag.lock().unwrap();
                    let _guard = ready.wait(guard).unwrap();
                }
            })
        };
        {
            let mut f = flag.lock().unwrap();
            *f = true;
            ready.notify_all();
        }
        let _ = waiter.join();
    });
    assert!(
        matches!(report.report.violation, Some(Violation::Deadlock { .. })),
        "lost wakeup went unnoticed: {:?}",
        report.report.violation
    );
    assert!(
        matches!(report.deadlock_kind, Some(DeadlockKind::LostWakeup { .. })),
        "hang not classified as a lost wakeup: {:?}",
        report.deadlock_kind
    );
}

/// Dropped lock acquisition: a shared counter updated without its
/// mutex. No schedule panics or hangs — only the lockset analyzer can
/// see this one, and it must.
#[test]
fn mutation_dropped_lock_is_caught_by_lockset() {
    let report = check(&Options::with_bound(2), || {
        let cell = Arc::new(SharedCell::new(0u32));
        let guard: Arc<Mutex<()>> = Arc::new(Mutex::new(()));
        let t = {
            let cell = Arc::clone(&cell);
            let guard = Arc::clone(&guard);
            interleave::thread::spawn(move || {
                let _g = guard.lock().unwrap();
                cell.set(cell.get() + 1);
            })
        };
        // MUTATION: the real pattern takes `guard` here too.
        cell.set(cell.get() + 1);
        let _ = t.join();
    });
    assert!(
        !report.races.is_empty(),
        "unprotected shared write went unnoticed"
    );
}

/// Opposite-order nested acquisitions: the lock-order analyzer must
/// report the cycle, and the explorer must find a schedule that
/// actually hangs.
#[test]
fn mutation_opposite_lock_order_is_caught() {
    let report = check(&Options::with_bound(2), || {
        let a: Arc<Mutex<()>> = Arc::new(Mutex::new(()));
        let b: Arc<Mutex<()>> = Arc::new(Mutex::new(()));
        let t = {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            interleave::thread::spawn(move || {
                let _ga = a.lock().unwrap();
                let _gb = b.lock().unwrap();
            })
        };
        // MUTATION: the real discipline is the declared a < b order.
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop(_ga);
        drop(_gb);
        let _ = t.join();
    });
    assert!(
        matches!(report.report.violation, Some(Violation::Deadlock { .. })),
        "opposite-order deadlock went unnoticed: {:?}",
        report.report.violation
    );
    assert!(!report.cycles.is_empty(), "lock-order cycle went unnoticed");
}

/// The shutdown bug the model checker found in the real pool (live
/// check between the empty re-scan and the park, outside the epoch
/// lock), kept alive here as a mutated mini-worker: the explorer must
/// keep catching the lost-job schedule that motivated the fix.
#[test]
fn mutation_stale_live_check_loses_jobs() {
    let report = check(&Options::with_bound(2), || {
        let queue: Arc<Mutex<VecDeque<u32>>> = Arc::new(Mutex::new(VecDeque::new()));
        let epoch: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
        let available = Arc::new(Condvar::new());
        let live = Arc::new(Mutex::new(true));
        let drained = Arc::new(SharedCell::new(0u32));
        let worker = {
            let queue = Arc::clone(&queue);
            let epoch = Arc::clone(&epoch);
            let available = Arc::clone(&available);
            let live = Arc::clone(&live);
            let drained = Arc::clone(&drained);
            interleave::thread::spawn(move || loop {
                if queue.lock().unwrap().pop_front().is_some() {
                    drained.set(drained.get() + 1);
                    continue;
                }
                let seen = *epoch.lock().unwrap();
                if queue.lock().unwrap().pop_front().is_some() {
                    drained.set(drained.get() + 1);
                    continue;
                }
                // MUTATION: the fixed worker re-checks the epoch under
                // its lock before honouring `!live`; this copy returns
                // on a stale scan, losing jobs pushed in the window.
                if !*live.lock().unwrap() {
                    return;
                }
                let mut e = epoch.lock().unwrap();
                while *e == seen && *live.lock().unwrap() {
                    e = available.wait(e).unwrap();
                }
            })
        };
        queue.lock().unwrap().push_back(1);
        {
            let mut e = epoch.lock().unwrap();
            *e += 1;
            available.notify_all();
        }
        *live.lock().unwrap() = false;
        {
            let mut e = epoch.lock().unwrap();
            *e += 1;
            available.notify_all();
        }
        let _ = worker.join();
        assert_eq!(drained.get(), 1, "job lost in the shutdown race");
    });
    assert!(
        matches!(report.report.violation, Some(Violation::UserPanic { .. })),
        "stale live check went unnoticed: {:?}",
        report.report.violation
    );
}
