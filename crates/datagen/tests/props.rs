//! Property tests for datasets and workloads.

use dsi_datagen::{
    clustered, knn_points, skewed_knn_points, skewed_window_queries, uniform, window_queries,
    zipf_hotspot, SpatialDataset,
};
use dsi_geom::{Point, Rect};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dataset_objects_sorted_unique_and_in_cells(
        n in 1usize..300, seed in any::<u64>(), order in 5u8..12,
    ) {
        let ds = SpatialDataset::build(&uniform(n, seed), order);
        let objs = ds.objects();
        prop_assert_eq!(objs.len(), n);
        for w in objs.windows(2) {
            prop_assert!(w[0].hc < w[1].hc);
        }
        for o in objs {
            let cell = ds.curve().d2xy(o.hc);
            prop_assert!(ds.mapper().cell_rect(cell).contains(o.pos));
        }
    }

    #[test]
    fn clustered_points_stay_in_unit_square(n in 1usize..500, c in 1usize..32, seed in any::<u64>()) {
        for p in clustered(n, c, seed) {
            prop_assert!((0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y));
        }
    }

    #[test]
    fn zipf_hotspot_points_stay_in_unit_square(
        n in 1usize..400, h in 1usize..24, skew in 0.0..2.5f64, seed in any::<u64>(),
    ) {
        let pts = zipf_hotspot(n, h, skew, seed);
        prop_assert_eq!(pts.len(), n);
        for p in pts {
            prop_assert!((0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y));
        }
    }

    #[test]
    fn skewed_workloads_are_well_formed(
        n in 1usize..60, h in 1usize..16, skew in 0.0..2.0f64,
        ratio in 0.01..0.5f64, seed in any::<u64>(),
    ) {
        let unit = Rect::new(0.0, 0.0, 1.0, 1.0);
        for w in skewed_window_queries(n, ratio, h, skew, seed, seed ^ 1) {
            prop_assert!(unit.contains_rect(&w));
            prop_assert!(!w.is_empty());
        }
        for p in skewed_knn_points(n, h, skew, seed, seed ^ 2) {
            prop_assert!(unit.contains(p));
        }
        // Determinism under identical seeds.
        prop_assert_eq!(
            skewed_knn_points(n, h, skew, seed, seed ^ 2),
            skewed_knn_points(n, h, skew, seed, seed ^ 2)
        );
    }

    #[test]
    fn brute_knn_is_k_smallest(n in 5usize..200, seed in any::<u64>(), k in 1usize..20,
                               qx in 0.0..1.0f64, qy in 0.0..1.0f64) {
        let ds = SpatialDataset::build(&uniform(n, seed), 10);
        let q = Point::new(qx, qy);
        let ids = ds.brute_knn(q, k);
        prop_assert_eq!(ids.len(), k.min(n));
        let kth = ds.kth_dist2(q, k.min(n));
        for o in ds.objects() {
            if ids.binary_search(&o.id).is_ok() {
                prop_assert!(q.dist2(o.pos) <= kth);
            }
        }
    }

    #[test]
    fn workloads_are_well_formed(n in 1usize..100, ratio in 0.01..1.0f64, seed in any::<u64>()) {
        let unit = Rect::new(0.0, 0.0, 1.0, 1.0);
        for w in window_queries(n, ratio, seed) {
            prop_assert!(unit.contains_rect(&w));
            prop_assert!(!w.is_empty());
        }
        for p in knn_points(n, seed) {
            prop_assert!(unit.contains(p));
        }
    }
}
