//! Query workload generators.

use dsi_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Window-query workload: `n` square windows of side
/// `ratio × space side` (the paper's `WinSideRatio`), centred uniformly in
/// the unit square and clipped to it.
pub fn window_queries(n: usize, ratio: f64, seed: u64) -> Vec<Rect> {
    assert!(
        ratio > 0.0 && ratio <= 1.0,
        "WinSideRatio must be in (0, 1], got {ratio}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = Point::new(rng.gen::<f64>(), rng.gen::<f64>());
            Rect::window_in_unit_square(c, ratio)
        })
        .collect()
}

/// kNN workload: `n` query points uniform in the unit square.
pub fn knn_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
        .collect()
}

/// Skewed window workload: window centres follow the Zipf-hotspot mixture
/// of [`crate::Hotspots`] (`hotspot_seed` must match the dataset's for the
/// queries to land where the data is).
pub fn skewed_window_queries(
    n: usize,
    ratio: f64,
    n_hotspots: usize,
    skew: f64,
    hotspot_seed: u64,
    seed: u64,
) -> Vec<Rect> {
    assert!(
        ratio > 0.0 && ratio <= 1.0,
        "WinSideRatio must be in (0, 1], got {ratio}"
    );
    crate::Hotspots::new(n_hotspots, skew, hotspot_seed)
        .points(n, seed)
        .into_iter()
        .map(|c| Rect::window_in_unit_square(c, ratio))
        .collect()
}

/// Skewed kNN workload: query points follow the Zipf-hotspot mixture.
pub fn skewed_knn_points(
    n: usize,
    n_hotspots: usize,
    skew: f64,
    hotspot_seed: u64,
    seed: u64,
) -> Vec<Point> {
    crate::Hotspots::new(n_hotspots, skew, hotspot_seed).points(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_clip_and_have_roughly_requested_area() {
        let ws = window_queries(100, 0.1, 1);
        let unit = Rect::new(0.0, 0.0, 1.0, 1.0);
        for w in &ws {
            assert!(unit.contains_rect(w));
            assert!(w.area() <= 0.1 * 0.1 + 1e-12);
            assert!(w.area() > 0.0);
        }
        // Most windows (centres in [0.05, 0.95]²) are unclipped.
        let full = ws.iter().filter(|w| (w.area() - 0.01).abs() < 1e-9).count();
        assert!(full > 50);
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(window_queries(10, 0.2, 5), window_queries(10, 0.2, 5));
        assert_eq!(knn_points(10, 5), knn_points(10, 5));
        assert_ne!(knn_points(10, 5), knn_points(10, 6));
    }

    #[test]
    #[should_panic(expected = "WinSideRatio")]
    fn zero_ratio_rejected() {
        let _ = window_queries(1, 0.0, 1);
    }
}
