//! Datasets and query workloads for the DSI evaluation.
//!
//! The paper evaluates on two datasets (§4):
//!
//! * **UNIFORM** — 10,000 points drawn uniformly from a square Euclidean
//!   space ([`uniform`]).
//! * **REAL** — 5,848 cities and villages of Greece from rtreeportal.org.
//!   That file is not redistributable here, so we substitute a seeded
//!   Gaussian-mixture [`clustered`] generator with heavy-tailed cluster
//!   sizes: it preserves the property that matters to the experiments —
//!   strong spatial skew, under which Hilbert locality quality varies and
//!   DSI's advantage over the tree indexes grows (the paper's REAL
//!   summaries). The original file can be dropped in via [`load_points`].
//!
//! [`SpatialDataset`] snaps a point set onto the Hilbert grid, assigns each
//! object a distinct HC value (the paper's 1-1 coordinate↔HC
//! correspondence), sorts by HC, and offers brute-force window/kNN oracles
//! used as ground truth by every test and by the experiment runner's
//! validation mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod points;
mod workload;

pub use dataset::{Object, SpatialDataset};
pub use points::{clustered, load_points, uniform, zipf_hotspot, Hotspots};
pub use workload::{knn_points, skewed_knn_points, skewed_window_queries, window_queries};
