//! The broadcast database: HC-ordered spatial objects.

use std::collections::HashSet;

use dsi_geom::{Cell, GridMapper, Point, Rect};
use dsi_hilbert::HilbertCurve;

/// One data object of the broadcast system. On the air it occupies 1024
/// bytes whose first packet carries `pos` (16 B) and `hc` (16 B); in the
/// simulator we keep the logical fields only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Object {
    /// Stable identifier (index into the source point set).
    pub id: u32,
    /// Exact coordinates.
    pub pos: Point,
    /// Hilbert value of the object's grid cell.
    pub hc: u64,
}

/// A point set snapped onto the Hilbert grid, with **distinct** HC values,
/// sorted in ascending HC order — the default broadcast order of DSI and
/// HCI ("data objects are broadcast in the ascending order of their HC
/// values", §3.1).
///
/// The paper requires a 1-1 correspondence between coordinates and HC
/// values ("the curve has to pass through all the objects"); when two input
/// points collide on one grid cell we relocate the later one to the nearest
/// free cell (and move its coordinates to that cell's centre so the
/// object-inside-its-cell invariant, on which all pruning bounds rest,
/// holds). At the default order (16) collisions are vanishingly rare for
/// the paper's dataset sizes.
#[derive(Debug, Clone)]
pub struct SpatialDataset {
    objects: Vec<Object>,
    curve: HilbertCurve,
    mapper: GridMapper,
}

impl SpatialDataset {
    /// Default Hilbert order: `4^16 ≈ 4.3·10⁹` cells, enough for the
    /// paper's 10,000-object datasets to get distinct HC values with
    /// near-certainty.
    pub const DEFAULT_ORDER: u8 = 16;

    /// Builds a dataset over the unit square with the given Hilbert order.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or if the grid is too small to give
    /// every object a distinct cell.
    pub fn build(points: &[Point], order: u8) -> Self {
        assert!(!points.is_empty(), "dataset must not be empty");
        let curve = HilbertCurve::new(order);
        let mapper = GridMapper::unit_square(order);
        assert!(
            (points.len() as u64) <= curve.max_d() + 1,
            "grid of order {order} cannot hold {} distinct objects",
            points.len()
        );
        let mut taken: HashSet<u64> = HashSet::with_capacity(points.len());
        let mut objects = Vec::with_capacity(points.len());
        for (id, &pos) in points.iter().enumerate() {
            let cell = mapper.cell_of(pos);
            let hc = curve.xy2d(cell);
            if taken.insert(hc) {
                objects.push(Object {
                    id: id as u32,
                    pos,
                    hc,
                });
            } else {
                let (cell, hc) = nearest_free_cell(&curve, &mapper, cell, &taken);
                taken.insert(hc);
                objects.push(Object {
                    id: id as u32,
                    pos: mapper.cell_center(cell),
                    hc,
                });
            }
        }
        objects.sort_unstable_by_key(|o| o.hc);
        Self {
            objects,
            curve,
            mapper,
        }
    }

    /// Builds with [`SpatialDataset::DEFAULT_ORDER`].
    pub fn build_default(points: &[Point]) -> Self {
        Self::build(points, Self::DEFAULT_ORDER)
    }

    /// Objects in ascending HC order.
    #[inline]
    pub fn objects(&self) -> &[Object] {
        &self.objects
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Datasets are never empty (checked at construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The Hilbert curve objects are ordered by.
    #[inline]
    pub fn curve(&self) -> &HilbertCurve {
        &self.curve
    }

    /// The continuous↔grid mapping.
    #[inline]
    pub fn mapper(&self) -> &GridMapper {
        &self.mapper
    }

    /// Ground truth for a window query: ids of objects strictly inside the
    /// closed window, ascending.
    pub fn brute_window(&self, w: &Rect) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .objects
            .iter()
            .filter(|o| w.contains(o.pos))
            .map(|o| o.id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Ground truth for a kNN query: ids of the `k` nearest objects to `q`
    /// (ties broken by id), sorted ascending by id.
    pub fn brute_knn(&self, q: Point, k: usize) -> Vec<u32> {
        let mut by_dist: Vec<(f64, u32)> = self
            .objects
            .iter()
            .map(|o| (q.dist2(o.pos), o.id))
            .collect();
        by_dist.sort_unstable_by(|a, b| a.partial_cmp(b).expect("distances are not NaN"));
        let mut ids: Vec<u32> = by_dist.iter().take(k).map(|&(_, id)| id).collect();
        ids.sort_unstable();
        ids
    }

    /// The distance of the `k`-th nearest object (used by tests to detect
    /// tie ambiguity at the answer boundary).
    pub fn kth_dist2(&self, q: Point, k: usize) -> f64 {
        let mut d: Vec<f64> = self.objects.iter().map(|o| q.dist2(o.pos)).collect();
        d.sort_unstable_by(|a, b| a.partial_cmp(b).expect("distances are not NaN"));
        d.get(k - 1).copied().unwrap_or(f64::INFINITY)
    }
}

/// Spiral search for the nearest grid cell not yet taken.
fn nearest_free_cell(
    curve: &HilbertCurve,
    mapper: &GridMapper,
    from: Cell,
    taken: &HashSet<u64>,
) -> (Cell, u64) {
    let side = mapper.cells_per_side() as i64;
    for radius in 1..side {
        for dx in -radius..=radius {
            for dy in -radius..=radius {
                if dx.abs().max(dy.abs()) != radius {
                    continue; // ring only
                }
                let x = from.x as i64 + dx;
                let y = from.y as i64 + dy;
                if (0..side).contains(&x) && (0..side).contains(&y) {
                    let cell = Cell::new(x as u32, y as u32);
                    let hc = curve.xy2d(cell);
                    if !taken.contains(&hc) {
                        return (cell, hc);
                    }
                }
            }
        }
    }
    panic!("no free grid cell found — grid saturated");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::uniform;

    #[test]
    fn objects_sorted_and_unique() {
        let ds = SpatialDataset::build(&uniform(500, 3), 10);
        let objs = ds.objects();
        assert_eq!(objs.len(), 500);
        for w in objs.windows(2) {
            assert!(w[0].hc < w[1].hc, "HC values must be strictly ascending");
        }
    }

    #[test]
    fn every_object_inside_its_cell() {
        let ds = SpatialDataset::build(&uniform(300, 9), 8);
        for o in ds.objects() {
            let cell = ds.curve().d2xy(o.hc);
            assert!(
                ds.mapper().cell_rect(cell).contains(o.pos),
                "object {} not inside its assigned cell",
                o.id
            );
        }
    }

    #[test]
    fn collisions_are_relocated() {
        // 50 identical points on a tiny grid: all must get distinct cells.
        let pts = vec![Point::new(0.5, 0.5); 50];
        let ds = SpatialDataset::build(&pts, 4); // 256 cells
        let mut hcs: Vec<u64> = ds.objects().iter().map(|o| o.hc).collect();
        hcs.dedup();
        assert_eq!(hcs.len(), 50);
    }

    #[test]
    fn brute_oracles_agree_with_naive() {
        let pts = uniform(200, 11);
        let ds = SpatialDataset::build(&pts, 12);
        let w = Rect::new(0.2, 0.3, 0.6, 0.7);
        let in_window = ds.brute_window(&w);
        for o in ds.objects() {
            assert_eq!(w.contains(o.pos), in_window.binary_search(&o.id).is_ok());
        }
        let q = Point::new(0.4, 0.4);
        let knn = ds.brute_knn(q, 5);
        assert_eq!(knn.len(), 5);
        let kth = ds.kth_dist2(q, 5);
        // Every non-answer object is at least as far as the kth distance.
        for o in ds.objects() {
            if knn.binary_search(&o.id).is_err() {
                assert!(q.dist2(o.pos) >= kth);
            }
        }
    }

    #[test]
    fn knn_k_larger_than_n_returns_all() {
        let ds = SpatialDataset::build(&uniform(10, 5), 8);
        assert_eq!(ds.brute_knn(Point::new(0.5, 0.5), 50).len(), 10);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_dataset_rejected() {
        let _ = SpatialDataset::build(&[], 8);
    }
}
