//! Point-set generators and loaders.

use std::io::{BufRead, BufReader};
use std::path::Path;

use dsi_geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's UNIFORM dataset: `n` points uniform in the unit square.
pub fn uniform(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
        .collect()
}

/// REAL-surrogate: a Gaussian-mixture point set in the unit square.
///
/// Cluster centres are uniform; cluster weights follow a Zipf-like
/// heavy-tailed distribution (a few dense towns, many hamlets) and spreads
/// vary per cluster, mimicking the skew of a populated-places dataset such
/// as the Greek towns file used by the paper.
pub fn clustered(n: usize, n_clusters: usize, seed: u64) -> Vec<Point> {
    assert!(n_clusters > 0, "need at least one cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Point> = (0..n_clusters)
        .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    // Zipf-ish weights: w_i ∝ 1 / (i + 1)^0.8.
    let weights: Vec<f64> = (0..n_clusters)
        .map(|i| 1.0 / ((i + 1) as f64).powf(0.8))
        .collect();
    let total: f64 = weights.iter().sum();
    let spreads: Vec<f64> = (0..n_clusters)
        .map(|_| 0.005 + rng.gen::<f64>() * 0.035)
        .collect();
    let mut pts = Vec::with_capacity(n);
    while pts.len() < n {
        // Pick a cluster by weight.
        let mut t = rng.gen::<f64>() * total;
        let mut ci = 0;
        for (i, w) in weights.iter().enumerate() {
            if t < *w {
                ci = i;
                break;
            }
            t -= *w;
        }
        let c = centers[ci];
        let s = spreads[ci];
        // Box–Muller for a 2-D Gaussian around the centre.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let p = Point::new(
            c.x + s * r * (std::f64::consts::TAU * u2).cos(),
            c.y + s * r * (std::f64::consts::TAU * u2).sin(),
        );
        if (0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y) {
            pts.push(p);
        }
    }
    pts
}

/// A set of Zipf-weighted hotspot centres in the unit square, shared by
/// the clustered point generator and the skewed query workloads so that
/// queries can follow the data skew (a query distribution drawn from the
/// same hotspots concentrates where objects are dense — the
/// "popular-places" workload the multi-channel scenarios need).
#[derive(Debug, Clone)]
pub struct Hotspots {
    centers: Vec<Point>,
    /// Cumulative Zipf weights, normalised to end at 1.
    cum: Vec<f64>,
    /// Per-hotspot Gaussian spread.
    spreads: Vec<f64>,
}

impl Hotspots {
    /// `n_hotspots` uniform centres whose popularity follows a Zipf law
    /// with exponent `skew` (`skew = 0` is uniform over hotspots; larger
    /// concentrates mass on the first few).
    pub fn new(n_hotspots: usize, skew: f64, seed: u64) -> Self {
        assert!(n_hotspots > 0, "need at least one hotspot");
        assert!(skew >= 0.0, "Zipf exponent must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Point> = (0..n_hotspots)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let spreads: Vec<f64> = (0..n_hotspots)
            .map(|_| 0.01 + rng.gen::<f64>() * 0.04)
            .collect();
        let mut cum = Vec::with_capacity(n_hotspots);
        let mut total = 0.0;
        for i in 0..n_hotspots {
            total += 1.0 / ((i + 1) as f64).powf(skew);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        Self {
            centers,
            cum,
            spreads,
        }
    }

    /// Hotspot centres, most popular first.
    pub fn centers(&self) -> &[Point] {
        &self.centers
    }

    /// One point Gaussian-distributed around a Zipf-picked hotspot,
    /// rejection-clamped to the unit square.
    fn sample(&self, rng: &mut StdRng) -> Point {
        loop {
            let t = rng.gen::<f64>();
            let ci = self.cum.partition_point(|&c| c < t).min(self.cum.len() - 1);
            let (c, s) = (self.centers[ci], self.spreads[ci]);
            // Box–Muller for a 2-D Gaussian around the centre.
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen::<f64>();
            let r = (-2.0 * u1.ln()).sqrt();
            let p = Point::new(
                c.x + s * r * (std::f64::consts::TAU * u2).cos(),
                c.y + s * r * (std::f64::consts::TAU * u2).sin(),
            );
            if (0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y) {
                return p;
            }
        }
    }

    /// `n` points drawn from the hotspot mixture.
    pub fn points(&self, n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.sample(&mut rng)).collect()
    }
}

/// Zipf-hotspot clustered dataset: `n` points around `n_hotspots`
/// Zipf-`skew`-weighted centres. Sharper than [`clustered`] (which uses a
/// mild 0.8 exponent): at `skew >= 1` a handful of hotspots dominate,
/// which is the regime where index/data channel splits and skewed query
/// workloads diverge from the uniform results.
pub fn zipf_hotspot(n: usize, n_hotspots: usize, skew: f64, seed: u64) -> Vec<Point> {
    Hotspots::new(n_hotspots, skew, seed).points(n, seed ^ 0x5EED_F00D)
}

/// Loads an ASCII point file (one `x y` pair per whitespace-separated
/// line, `#`-prefixed comments ignored) and normalises it into the unit
/// square. This is the format of the rtreeportal.org datasets the paper
/// uses, so the original REAL file can be substituted for [`clustered`].
pub fn load_points(path: &Path) -> std::io::Result<Vec<Point>> {
    let file = std::fs::File::open(path)?;
    let mut pts = Vec::new();
    for line in BufReader::new(file).lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(xs), Some(ys)) = (it.next(), it.next()) else {
            continue;
        };
        let (Ok(x), Ok(y)) = (xs.parse::<f64>(), ys.parse::<f64>()) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable point line: {line:?}"),
            ));
        };
        pts.push(Point::new(x, y));
    }
    Ok(normalize_unit(pts))
}

/// Affinely maps a point set into the unit square, preserving aspect ratio.
fn normalize_unit(pts: Vec<Point>) -> Vec<Point> {
    if pts.is_empty() {
        return pts;
    }
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in &pts {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    let side = (max_x - min_x).max(max_y - min_y).max(1e-12);
    pts.into_iter()
        .map(|p| Point::new((p.x - min_x) / side, (p.y - min_y) / side))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_in_unit_square_and_deterministic() {
        let a = uniform(1000, 42);
        let b = uniform(1000, 42);
        assert_eq!(a.len(), 1000);
        assert!(a
            .iter()
            .all(|p| (0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y)));
        assert_eq!(a, b);
        assert_ne!(a, uniform(1000, 43));
    }

    #[test]
    fn clustered_is_skewed() {
        let pts = clustered(2000, 16, 7);
        assert_eq!(pts.len(), 2000);
        assert!(pts
            .iter()
            .all(|p| (0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y)));
        // Skew check: the occupied fraction of a 16×16 occupancy grid should
        // be well below uniform occupancy.
        let mut grid = [false; 256];
        for p in &pts {
            let gx = ((p.x * 16.0) as usize).min(15);
            let gy = ((p.y * 16.0) as usize).min(15);
            grid[gy * 16 + gx] = true;
        }
        let occupied = grid.iter().filter(|&&b| b).count();
        assert!(
            occupied < 220,
            "clustered data should leave parts of space empty, occupied {occupied}/256"
        );
    }

    #[test]
    fn load_points_parses_and_normalizes() {
        let dir = std::env::temp_dir().join("dsi_datagen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pts.txt");
        std::fs::write(
            &path,
            "# greek towns\n100.0 200.0\n300.0  250.0\n\n150 225\n",
        )
        .unwrap();
        let pts = load_points(&path).unwrap();
        assert_eq!(pts.len(), 3);
        assert!(pts
            .iter()
            .all(|p| (0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y)));
        // Aspect ratio preserved: x spans [0,1], y spans [0, 0.25].
        assert!((pts[1].x - 1.0).abs() < 1e-12);
        assert!((pts[1].y - 0.25).abs() < 1e-12);
    }

    #[test]
    fn load_points_rejects_garbage() {
        let dir = std::env::temp_dir().join("dsi_datagen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.txt");
        std::fs::write(&path, "1.0 not-a-number\n").unwrap();
        assert!(load_points(&path).is_err());
    }
}
