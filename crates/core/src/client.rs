//! The shared client-side query driver.
//!
//! All three DSI search algorithms (EEF point queries, window queries, kNN
//! queries) share one skeleton, which this module implements once:
//!
//! 1. tune in, doze to the next frame boundary, read its index table;
//! 2. fold the table's entries into [`Knowledge`] (and hand them to the
//!    query as *virtual candidates* — "the object represented by HC′ᵢ",
//!    Algorithm 2);
//! 3. derive the *remainders*: target HC intervals not yet accounted for;
//! 4. scan the current frame's object headers if its (conservatively
//!    estimated) span may overlap a remainder, retrieving qualifying
//!    objects;
//! 5. navigate: jump to the *safe frame* for the chosen remainder — the
//!    frame with the largest known bound ≤ the remainder's start, which can
//!    never overshoot. This is exactly the paper's energy-efficient
//!    forwarding generalised to interval targets; repeated hops converge
//!    like a base-`r` search.
//!
//! What differs between queries — which intervals are targets, which
//! objects qualify, when the query is complete, which remainder to chase
//! first — is abstracted as [`QueryMode`]. Link errors never abort a query:
//! a lost table is skipped (the next frame has another one), a lost header
//! or payload is recorded in [`Retries`] and re-fetched a cycle later,
//! while all previously gathered knowledge stays valid (§5).

use dsi_broadcast::Tuner;
use dsi_datagen::Object;
use dsi_hilbert::HcRange;

use crate::build::{DsiAir, DsiPacket};
use crate::state::{cleared_regions, subtract_ranges, Knowledge, Retries, ScanLog};
use crate::table::IndexTable;

/// Which destination the navigator should chase.
pub(crate) enum NavPick {
    /// The earliest-arriving frame that may overlap a live remainder
    /// (window queries and the conservative kNN strategy: "follow the
    /// first pointer Pᵢ with the range overlapping some segment of H").
    Earliest,
    /// Jump to a specific broadcast slot — the aggressive kNN strategy
    /// picks, among the last table's entry targets, the frame closest to
    /// the query point.
    Slot(u32),
}

/// Query-specific behaviour plugged into the shared driver.
pub(crate) trait QueryMode {
    /// Current target intervals (sorted, disjoint). May be recomputed when
    /// the query's internal state changed (kNN shrinks its circle).
    fn targets(&mut self, know: &Knowledge) -> Vec<HcRange>;

    /// Whether an unaccounted remainder still matters (kNN drops intervals
    /// farther than the current k-th candidate).
    fn is_live(&mut self, r: &HcRange) -> bool {
        let _ = r;
        true
    }

    /// A real object with this HC value exists (index-table entry).
    fn on_virtual(&mut self, hc: u64) {
        let _ = hc;
    }

    /// An object header was received; return `true` to retrieve the full
    /// record.
    fn on_header(&mut self, o: &Object) -> bool;

    /// The full record was received.
    fn on_retrieved(&mut self, o: &Object);

    /// Extra completion condition beyond "no remainders, no retries"
    /// (kNN: the k best candidates are all retrieved).
    fn complete(&self) -> bool {
        true
    }

    /// Which destination to chase next. `entry_targets` holds the
    /// (broadcast slot, min HC) pairs of the most recently read index
    /// table — the frames "reachable" from here in the paper's sense.
    fn nav_pick(&mut self, rem: &[HcRange], entry_targets: &[(u32, u64)]) -> NavPick {
        let _ = (rem, entry_targets);
        NavPick::Earliest
    }
}

/// What the driver is about to do at its current position.
enum Pending {
    /// Positioned at the frame start of `slot`: read its index table.
    Table(u32),
    /// Visit objects of `slot`: retries, plus (optionally) the unread
    /// fresh tail. `max_hi` is the early-exit threshold for fresh reads.
    Visit {
        slot: u32,
        include_fresh: bool,
        max_hi: u64,
    },
}

/// Runs a query to completion. The tuner carries the metrics.
pub(crate) fn run_query<M: QueryMode>(air: &DsiAir, tuner: &mut Tuner<'_, DsiPacket>, mode: &mut M) {
    let l = air.layout();
    let mut know = Knowledge::new(l, air.curve().max_d());
    let mut log = ScanLog::new();
    let mut retries = Retries::new();
    // The schema's block boundaries are minimum HC values of real objects.
    for &hc in l.block_min_hc() {
        mode.on_virtual(hc);
    }

    let (abs, slot0) = l.next_frame_boundary(tuner.pos());
    tuner.doze_to(abs);
    let mut pending = Pending::Table(slot0);
    // Targets of the most recently received index table, for the
    // aggressive strategy's "reachable frame nearest the query point".
    let mut entry_targets: Vec<(u32, u64)> = Vec::new();

    // Defensive bound: every iteration makes progress (reads a packet or
    // resolves a retry); the bound only trips on internal logic errors or
    // on channels so lossy that multi-packet objects are unreceivable.
    let mut fuel: u64 = 512 * (l.n_frames() as u64 + l.n_objects() as u64 + 64);
    loop {
        fuel -= 1;
        if fuel == 0 {
            debug_assert!(false, "DSI query did not terminate");
            break;
        }
        let just_read_table = match pending {
            Pending::Table(slot) => {
                if let Some(tbl) = read_table(air, tuner, slot) {
                    entry_targets.clear();
                    for e in &tbl.entries {
                        entry_targets.push(((slot + e.delta) % l.n_frames(), e.hc));
                    }
                    learn_table(air, &mut know, mode, slot, tbl);
                }
                Some(slot)
            }
            Pending::Visit {
                slot,
                include_fresh,
                max_hi,
            } => {
                visit_frame(
                    air, tuner, slot, include_fresh, max_hi, mode, &mut know, &mut log,
                    &mut retries,
                );
                None
            }
        };

        // Re-derive what is still missing.
        let cleared = cleared_regions(&log, &know, l);
        let targets = mode.targets(&know);
        let mut rem = subtract_ranges(&targets, &cleared);
        rem.retain(|r| mode.is_live(r));
        if rem.is_empty() && retries.is_empty() && mode.complete() {
            break;
        }

        // After a table read we are at the frame body: scan in place if the
        // frame may hold something we need.
        if let Some(slot) = just_read_table {
            let t = l.hc_index_of_slot(slot);
            let (lb, ub) = know.span_est(t);
            let overlap = rem.iter().any(|r| r.lo < ub && r.hi >= lb);
            let attempted = fully_attempted(&log, t, l.objects_in_slot(slot));
            let has_retry = retries.iter().any(|(s, _)| s == slot);
            if (overlap && !attempted) || has_retry {
                pending = Pending::Visit {
                    slot,
                    include_fresh: overlap && !attempted,
                    max_hi: max_hi_of(&rem),
                };
                continue;
            }
        }

        match navigate(air, tuner, mode, &know, &log, &retries, &rem, &entry_targets) {
            Some(p) => pending = p,
            None => break,
        }
    }
}

/// Whether every object index of frame `t` has been read at least once
/// (possibly with lost headers, which live on as retries).
fn fully_attempted(log: &ScanLog, t: u32, n_obj: u32) -> bool {
    log.get(t).is_some_and(|s| s.read_upto >= n_obj)
}

fn max_hi_of(rem: &[HcRange]) -> u64 {
    rem.iter().map(|r| r.hi).max().unwrap_or(0)
}

/// Reads the (possibly multi-packet) index table at the current position.
/// All-or-nothing: a lost packet discards the table — the client simply
/// proceeds with its existing knowledge.
fn read_table<'a>(air: &'a DsiAir, tuner: &mut Tuner<'_, DsiPacket>, slot: u32) -> Option<&'a IndexTable> {
    debug_assert!(
        matches!(tuner.program().get(tuner.pos()), DsiPacket::Table { slot: s, part: 0 } if *s == slot),
        "tuner not at the table of slot {slot}"
    );
    for _ in 0..air.layout().framing().table_packets {
        if tuner.read().is_err() {
            return None;
        }
    }
    Some(air.table(slot))
}

/// Folds a received table into knowledge and surfaces its entries as
/// virtual candidates.
fn learn_table<M: QueryMode>(
    air: &DsiAir,
    know: &mut Knowledge,
    mode: &mut M,
    slot: u32,
    tbl: &IndexTable,
) {
    let l = air.layout();
    let nf = l.n_frames();
    for e in &tbl.entries {
        let target = (slot + e.delta) % nf;
        know.learn(l.hc_index_of_slot(target), e.hc);
        mode.on_virtual(e.hc);
    }
}

/// Visits objects of a frame: pending retries first, then (optionally) the
/// unread fresh tail, all in ascending header order. Updates the scan log,
/// knowledge (frame minimum from header 0) and retry sets.
#[allow(clippy::too_many_arguments)]
fn visit_frame<M: QueryMode>(
    air: &DsiAir,
    tuner: &mut Tuner<'_, DsiPacket>,
    slot: u32,
    include_fresh: bool,
    max_hi: u64,
    mode: &mut M,
    know: &mut Knowledge,
    log: &mut ScanLog,
    retries: &mut Retries,
) {
    let l = air.layout();
    let t = l.hc_index_of_slot(slot);
    let n_obj = l.objects_in_slot(slot);
    let payload_packets = l.framing().object_packets - 1;

    let mut idxs: Vec<(u32, bool)> = retries
        .iter()
        .filter(|&(s, _)| s == slot)
        .map(|(_, idx)| (idx, true))
        .collect();
    idxs.sort_unstable();
    idxs.dedup();
    let scan = log.entry(t, n_obj);
    if include_fresh {
        idxs.extend((scan.read_upto..n_obj).map(|i| (i, false)));
    }

    let mut stop_fresh = false;
    for (idx, is_retry) in idxs {
        if !is_retry && stop_fresh {
            break;
        }
        let abs = tuner
            .program()
            .next_occurrence(tuner.pos(), l.header_packet(slot, idx));
        tuner.doze_to(abs);
        match tuner.read() {
            Ok(p) => {
                debug_assert!(
                    matches!(p, DsiPacket::ObjHeader { slot: s, idx: i } if *s == slot && *i == idx)
                );
                let o = air.object(slot, idx);
                scan.hcs[idx as usize] = Some(o.hc);
                if idx == 0 {
                    know.learn(t, o.hc);
                }
                if is_retry {
                    retries.headers.remove(&(slot, idx));
                }
                retries.payloads.remove(&(slot, idx));
                if mode.on_header(o) {
                    if read_payload(tuner, payload_packets) {
                        mode.on_retrieved(o);
                    } else {
                        retries.payloads.insert((slot, idx));
                    }
                }
                if !is_retry {
                    scan.read_upto = idx + 1;
                    if o.hc > max_hi {
                        stop_fresh = true;
                    }
                }
            }
            Err(_) => {
                if !is_retry {
                    scan.read_upto = idx + 1;
                }
                retries.headers.insert((slot, idx));
            }
        }
    }
}

/// Reads the remaining packets of an object's record. Aborts on the first
/// lost packet (the per-packet checksum tells the client immediately).
fn read_payload(tuner: &mut Tuner<'_, DsiPacket>, n: u32) -> bool {
    for _ in 0..n {
        if tuner.read().is_err() {
            return false;
        }
    }
    true
}

/// The cheapest way to reach frame `slot` from `pos`: through its index
/// table (fresh frames) or straight to its first unread header (partially
/// scanned frames, or frames whose table occurrence already passed).
fn approach(
    air: &DsiAir,
    pos: u64,
    log: &ScanLog,
    slot: u32,
    max_hi: u64,
) -> (u64, Pending) {
    let l = air.layout();
    let prog = air.program();
    let t = l.hc_index_of_slot(slot);
    let read_upto = log.get(t).map_or(0, |s| s.read_upto);
    let table_abs = prog.next_occurrence(pos, l.frame_start(slot));
    let visit_abs = prog.next_occurrence(pos, l.header_packet(slot, read_upto.min(l.objects_in_slot(slot) - 1)));
    if table_abs <= visit_abs && log.get(t).is_none() {
        (table_abs, Pending::Table(slot))
    } else {
        (
            visit_abs,
            Pending::Visit {
                slot,
                include_fresh: true,
                max_hi,
            },
        )
    }
}

/// Chooses the next destination and dozes there.
///
/// Candidates are (a) the first pending retry header of every affected
/// slot and (b) frames that may still hold remainder content. Window
/// queries and conservative kNN sweep the broadcast order for the
/// earliest-arriving such frame; aggressive kNN jumps to the slot its
/// strategy picked (the entry target nearest the query point).
#[allow(clippy::too_many_arguments)]
fn navigate<M: QueryMode>(
    air: &DsiAir,
    tuner: &mut Tuner<'_, DsiPacket>,
    mode: &mut M,
    know: &Knowledge,
    log: &ScanLog,
    retries: &Retries,
    rem: &[HcRange],
    entry_targets: &[(u32, u64)],
) -> Option<Pending> {
    let l = air.layout();
    let pos = tuner.pos();
    let prog = tuner.program();
    let max_hi = max_hi_of(rem);
    let mut best: Option<(u64, Pending)> = None;
    let consider = |abs: u64, p: Pending, best: &mut Option<(u64, Pending)>| {
        if best.as_ref().is_none_or(|(b, _)| abs < *b) {
            *best = Some((abs, p));
        }
    };

    // Retry visits (first pending index per slot; headers and payloads are
    // separate sets, so take the minimum across both).
    let mut first_retry: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
    for (slot, idx) in retries.iter() {
        first_retry
            .entry(slot)
            .and_modify(|m| *m = (*m).min(idx))
            .or_insert(idx);
    }
    for (&slot, &idx) in &first_retry {
        let abs = prog.next_occurrence(pos, l.header_packet(slot, idx));
        consider(
            abs,
            Pending::Visit {
                slot,
                include_fresh: false,
                max_hi,
            },
            &mut best,
        );
    }

    // Entry targets the strategy may pick from: frames not yet fully
    // attempted whose conservative span can still overlap a remainder.
    // Without this filter the aggressive strategy would keep re-picking a
    // "nearest" frame that has nothing left to offer.
    let useful_entries: Vec<(u32, u64)> = entry_targets
        .iter()
        .copied()
        .filter(|&(slot, _)| {
            let t = l.hc_index_of_slot(slot);
            if fully_attempted(log, t, l.objects_in_slot(slot)) {
                return false;
            }
            let (lb, ub) = know.span_est(t);
            rem.iter().any(|r| r.lo < ub && r.hi >= lb)
        })
        .collect();

    if !rem.is_empty() {
        match mode.nav_pick(rem, &useful_entries) {
            NavPick::Slot(slot) => {
                let (abs, p) = approach(air, pos, log, slot, max_hi);
                consider(abs, p, &mut best);
            }
            NavPick::Earliest => {
                // Sweep the broadcast order from the current position for
                // the first frame that may still hold remainder content.
                let cur = l.slot_of_packet(pos % l.cycle_packets());
                let nf = l.n_frames();
                for d in 0..nf {
                    let slot = (cur + d) % nf;
                    let t = l.hc_index_of_slot(slot);
                    if fully_attempted(log, t, l.objects_in_slot(slot)) {
                        continue;
                    }
                    let (lb, ub) = know.span_est(t);
                    if !rem.iter().any(|r| r.lo < ub && r.hi >= lb) {
                        continue;
                    }
                    let (abs, p) = approach(air, pos, log, slot, max_hi);
                    consider(abs, p, &mut best);
                    // Arrivals are monotone in `d` for d ≥ 1 (those frames
                    // lie strictly ahead); only the current slot (d = 0) can
                    // arrive later than its successors, so keep sweeping
                    // past it but stop at the first qualifying successor.
                    if d > 0 {
                        break;
                    }
                }
            }
        }
    }

    let (abs, p) = best?;
    tuner.doze_to(abs);
    Some(p)
}
