//! The shared client-side query driver.
//!
//! All three DSI search algorithms (EEF point queries, window queries, kNN
//! queries) share one skeleton, which this module implements once:
//!
//! 1. tune in, doze to the next frame boundary, read its index table;
//! 2. fold the table's entries into the client's [`Knowledge`] (and hand
//!    them to the query as *virtual candidates* — "the object represented
//!    by HC′ᵢ", Algorithm 2);
//! 3. keep the *remainders* current: target HC intervals not yet accounted
//!    for;
//! 4. scan the current frame's object headers if its (conservatively
//!    estimated) span may overlap a remainder, retrieving qualifying
//!    objects;
//! 5. navigate: jump to the *safe frame* for the chosen remainder — the
//!    frame with the largest known bound ≤ the remainder's start, which can
//!    never overshoot. This is exactly the paper's energy-efficient
//!    forwarding generalised to interval targets; repeated hops converge
//!    like a base-`r` search.
//!
//! The remainder state is **incremental**: every learned bound and every
//! resolved header applies a localized delta inside [`QueryState`], so the
//! steady-state loop re-derives nothing and — together with the scratch
//! buffers in [`QueryScratch`] — performs no per-iteration allocations on
//! the no-loss path. The original from-scratch derivation remains
//! available per thread via [`crate::hotpath`] as benchmark baseline and
//! differential-test oracle.
//!
//! What differs between queries — which intervals are targets, which
//! objects qualify, when the query is complete, which remainder to chase
//! first — is abstracted as [`QueryMode`]. Link errors never abort a query:
//! a lost table is skipped (the next frame has another one), a lost header
//! or payload is recorded in [`Retries`](crate::state::Retries) and
//! re-fetched a cycle later, while all previously gathered knowledge stays
//! valid (§5).

use dsi_broadcast::Tuner;
use dsi_datagen::Object;
use dsi_hilbert::HcRange;

use crate::build::{DsiAir, DsiPacket};
use crate::state::{Knowledge, QueryState, ScanLog};
use crate::table::IndexTable;

/// Which destination the navigator should chase.
pub(crate) enum NavPick {
    /// The earliest-arriving frame that may overlap a live remainder
    /// (window queries and the conservative kNN strategy: "follow the
    /// first pointer Pᵢ with the range overlapping some segment of H").
    Earliest,
    /// Jump to a specific broadcast slot — the aggressive kNN strategy
    /// picks, among the last table's entry targets, the frame closest to
    /// the query point.
    Slot(u32),
}

/// How a [`QueryMode::refresh_targets`] call changed the target set; tells
/// the driver which remainder-update path is sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TargetsChange {
    /// Targets are identical to the previous call; the driver re-derives
    /// nothing.
    Unchanged,
    /// Targets were rebuilt arbitrarily; remainders must be re-derived by
    /// subtracting the cleared set from the new targets.
    Replaced,
    /// The new targets cover a **subset** of the previous targets' HC
    /// values (kNN: the search circle only ever shrinks). The driver may
    /// narrow the existing remainders in place — intersect them with the
    /// new targets — without consulting the cleared set at all.
    Narrowed,
}

/// Query-specific behaviour plugged into the shared driver.
pub(crate) trait QueryMode {
    /// Rebuilds the current target intervals (sorted, disjoint) into
    /// `out` **iff they changed** since the last call, returning how. The
    /// driver owns `out` and derives remainders from it incrementally, so
    /// modes must only signal genuine changes (kNN: the search circle
    /// shrank) and may claim [`TargetsChange::Narrowed`] only when the new
    /// targets are a subset of the old.
    fn refresh_targets(&mut self, know: &Knowledge, out: &mut Vec<HcRange>) -> TargetsChange;

    /// Real objects with these HC values exist (one index table's entries,
    /// or the schema's block boundaries, delivered as a batch so the mode
    /// pays any per-update bookkeeping once per table rather than once per
    /// entry).
    fn on_virtuals(&mut self, hcs: &[u64]) {
        let _ = hcs;
    }

    /// An object header was received; return `true` to retrieve the full
    /// record.
    fn on_header(&mut self, o: &Object) -> bool;

    /// The full record was received.
    fn on_retrieved(&mut self, o: &Object);

    /// Extra completion condition beyond "no remainders, no retries"
    /// (kNN: the k best candidates are all retrieved).
    fn complete(&mut self) -> bool {
        true
    }

    /// Which destination to chase next. `entry_targets` holds the
    /// (broadcast slot, min HC) pairs of the most recently read index
    /// table — the frames "reachable" from here in the paper's sense.
    fn nav_pick(&mut self, rem: &[HcRange], entry_targets: &[(u32, u64)]) -> NavPick {
        let _ = (rem, entry_targets);
        NavPick::Earliest
    }
}

/// What the driver is about to do at its current position.
#[derive(Clone, Copy)]
enum Pending {
    /// Positioned at the frame start of `slot`: read its index table.
    Table(u32),
    /// Visit objects of `slot`: retries, plus (optionally) the unread
    /// fresh tail. `max_hi` is the early-exit threshold for fresh reads.
    Visit {
        slot: u32,
        include_fresh: bool,
        max_hi: u64,
    },
}

/// Reusable buffers owned by the driver so the steady-state loop performs
/// no per-iteration allocations.
#[derive(Default)]
struct QueryScratch {
    /// `(object index, is_retry)` visit plan of the current frame.
    visit: Vec<(u32, bool)>,
    /// Header flat positions of the visit plan, for the multi-antenna
    /// arrival-ordered visit.
    visit_flats: Vec<u64>,
    /// Targets of the most recently received index table, for the
    /// aggressive strategy's "reachable frame nearest the query point".
    entry_targets: Vec<(u32, u64)>,
    /// Entry targets that can still contribute, rebuilt per navigation.
    useful_entries: Vec<(u32, u64)>,
    /// HC values of the current table's entries, batched for
    /// [`QueryMode::on_virtuals`].
    virtuals: Vec<u64>,
    /// Flat positions of the current navigation candidates, handed to the
    /// tuner's batch arrival planner ([`Tuner::arrival_earliest`]).
    nav_flats: Vec<u64>,
    /// Arrival instants of the candidates (parallel to `nav_flats`),
    /// computed once while the candidates are gathered.
    nav_arrivals: Vec<u64>,
    /// What to do at each navigation candidate (parallel to `nav_flats`).
    nav_plans: Vec<Pending>,
}

/// Runs a query to completion. The tuner carries the metrics.
pub(crate) fn run_query<M: QueryMode>(
    air: &DsiAir,
    tuner: &mut Tuner<'_, DsiPacket>,
    mode: &mut M,
) {
    let l = air.layout();
    let mut state = QueryState::new(l, air.curve().max_d());
    let mut scratch = QueryScratch::default();
    // The schema's block boundaries are minimum HC values of real objects.
    mode.on_virtuals(l.block_min_hc());

    let slot0 = if tuner.program().n_channels() == 1 {
        // Single channel: the next frame boundary is a binary search.
        let (abs, slot0) = l.next_frame_boundary(tuner.pos());
        tuner.doze_to(abs);
        slot0
    } else {
        // Channels progress in parallel: take the earliest-arriving index
        // table across all of them (tables are what a fresh client needs).
        scratch
            .nav_flats
            .extend((0..l.n_frames()).map(|slot| l.frame_start(slot)));
        let (slot0, _) = tuner
            .arrival_earliest(&scratch.nav_flats)
            .expect("a cycle has at least one frame");
        tuner.goto(l.frame_start(slot0 as u32));
        slot0 as u32
    };
    let mut pending = Pending::Table(slot0);

    // Defensive bound: every iteration makes progress (reads a packet or
    // resolves a retry); the bound only trips on internal logic errors or
    // on channels so lossy that multi-packet objects are unreceivable.
    let mut fuel: u64 = 512 * (l.n_frames() as u64 + l.n_objects() as u64 + 64);
    loop {
        fuel -= 1;
        if fuel == 0 {
            // Livelock guard: a stuck retry set shows up here (and as a
            // run of consecutive losses in the tuner's own guard). Abort
            // with a diagnostic instead of returning a silently partial
            // answer.
            panic!(
                "DSI query did not terminate: fuel exhausted at instant {} \
                 ({} retries pending over {} slots, {} packets lost)",
                tuner.pos(),
                state.retries.total(),
                state.retries.iter_slots().count(),
                tuner.lost_reads(),
            );
        }
        let just_read_table = match pending {
            Pending::Table(slot) => {
                if let Some(tbl) = read_table(air, tuner, slot) {
                    scratch.entry_targets.clear();
                    scratch.virtuals.clear();
                    let nf = l.n_frames();
                    for e in &tbl.entries {
                        let target = (slot + e.delta) % nf;
                        scratch.entry_targets.push((target, e.hc));
                        state.learn(l.hc_index_of_slot(target), e.hc);
                        scratch.virtuals.push(e.hc);
                    }
                    mode.on_virtuals(&scratch.virtuals);
                }
                Some(slot)
            }
            Pending::Visit {
                slot,
                include_fresh,
                max_hi,
            } => {
                visit_frame(
                    air,
                    tuner,
                    slot,
                    include_fresh,
                    max_hi,
                    mode,
                    &mut state,
                    &mut scratch.visit,
                    &mut scratch.visit_flats,
                );
                None
            }
        };

        // Bring the remainder state up to date (incremental path: only
        // target changes trigger work; events already applied deltas).
        // Liveness needs no separate sweep: the kNN mode's targets are a
        // direct circle decomposition, so every published target — hence
        // every remainder derived from them — is within the radius the
        // targets were refreshed for.
        state.refresh_targets(|know, out| mode.refresh_targets(know, out));
        state.audit_rem();
        if state.settled() && mode.complete() {
            break;
        }

        // After a table read we are at the frame body: scan in place if the
        // frame may hold something we need.
        if let Some(slot) = just_read_table {
            let t = l.hc_index_of_slot(slot);
            let (lb, ub) = state.know.span_est(t);
            let rem = state.rem();
            let overlap = overlaps_any(rem, lb, ub);
            let attempted = fully_attempted(&state.log, t, l.objects_in_slot(slot));
            let has_retry = !state.retries.for_slot(slot).is_empty();
            if (overlap && !attempted) || has_retry {
                pending = Pending::Visit {
                    slot,
                    include_fresh: overlap && !attempted,
                    max_hi: max_hi_of(rem),
                };
                continue;
            }
        }

        match navigate(air, tuner, mode, &state, &mut scratch) {
            Some(p) => pending = p,
            None => break,
        }
    }
}

/// Whether every object index of frame `t` has been read at least once
/// (possibly with lost headers, which live on as retries).
fn fully_attempted(log: &ScanLog, t: u32, n_obj: u32) -> bool {
    log.get(t).is_some_and(|s| s.read_upto >= n_obj)
}

fn max_hi_of(rem: &[HcRange]) -> u64 {
    // Sorted and disjoint: the last range has the largest end.
    rem.last().map_or(0, |r| r.hi)
}

/// Whether any remainder intersects the half-open span `[lb, ub)`.
/// Remainders are sorted and disjoint, so a binary search answers it —
/// the navigation sweep calls this once per candidate frame.
fn overlaps_any(rem: &[HcRange], lb: u64, ub: u64) -> bool {
    let i = rem.partition_point(|r| r.hi < lb);
    i < rem.len() && rem[i].lo < ub
}

/// Reads the (possibly multi-packet) index table at the current position.
/// All-or-nothing: a lost packet discards the table — the client simply
/// proceeds with its existing knowledge.
fn read_table<'a>(
    air: &'a DsiAir,
    tuner: &mut Tuner<'_, DsiPacket>,
    slot: u32,
) -> Option<&'a IndexTable> {
    debug_assert!(
        matches!(tuner.current_packet(), DsiPacket::Table { slot: s, part: 0 } if *s == slot),
        "tuner not at the table of slot {slot}"
    );
    for _ in 0..air.layout().framing().table_packets {
        if tuner.read().is_err() {
            return None;
        }
    }
    Some(air.table(slot))
}

/// Visits objects of a frame: pending retries first, then (optionally) the
/// unread fresh tail. The single-receiver client reads in ascending header
/// order (the pinned pre-refactor baseline); the multi-antenna client
/// reads headers as they air across its monitored channels — under
/// unit-granular striping a frame's consecutive units air *in parallel*,
/// so the serial order waits a channel cycle per unit while the arrival
/// order streams one channel's units back-to-back and collects the rest
/// on the next pass. Updates the scan log, knowledge (frame minimum from
/// header 0) and retry sets through the incremental state.
#[allow(clippy::too_many_arguments)]
fn visit_frame<M: QueryMode>(
    air: &DsiAir,
    tuner: &mut Tuner<'_, DsiPacket>,
    slot: u32,
    include_fresh: bool,
    max_hi: u64,
    mode: &mut M,
    state: &mut QueryState<'_>,
    visit: &mut Vec<(u32, bool)>,
    visit_flats: &mut Vec<u64>,
) {
    let l = air.layout();
    let t = l.hc_index_of_slot(slot);
    let n_obj = l.objects_in_slot(slot);

    // Retry indices are sorted and all precede the fresh tail (a retry is
    // only ever recorded for an attempted index), so the concatenation is
    // already in ascending header order.
    visit.clear();
    visit.extend(state.retries.for_slot(slot).iter().map(|&i| (i, true)));
    if include_fresh {
        let read_upto = state.log.entry(t, n_obj).read_upto;
        visit.extend((read_upto..n_obj).map(|i| (i, false)));
    }
    debug_assert!(visit.windows(2).all(|w| w[0].0 < w[1].0));

    if tuner.antennas() > 1 {
        // Arrival-ordered visit. The ascending-HC early exit survives
        // out-of-order reads: once a fresh header's HC exceeds the
        // largest remainder end, every fresh header at a higher index is
        // also beyond it (objects ascend in HC within a frame), so those
        // are pruned from the plan.
        while !visit.is_empty() {
            visit_flats.clear();
            visit_flats.extend(visit.iter().map(|&(idx, _)| l.header_packet(slot, idx)));
            let (i, _) = tuner
                .earliest_resilient(visit_flats)
                .expect("visit plan is non-empty");
            let (idx, is_retry) = visit.swap_remove(i);
            if visit_header(
                air, tuner, slot, idx, is_retry, max_hi, mode, state, t, n_obj,
            ) {
                visit.retain(|&(j, retry)| retry || j < idx);
            }
        }
    } else {
        let mut stop_fresh = false;
        for &(idx, is_retry) in visit.iter() {
            if !is_retry && stop_fresh {
                break;
            }
            if visit_header(
                air, tuner, slot, idx, is_retry, max_hi, mode, state, t, n_obj,
            ) {
                stop_fresh = true;
            }
        }
    }
}

/// Reads one (already targeted) object header and processes it; returns
/// whether it was a fresh read whose HC lies beyond `max_hi` (the
/// ascending-HC early-exit signal).
#[allow(clippy::too_many_arguments)]
fn visit_header<M: QueryMode>(
    air: &DsiAir,
    tuner: &mut Tuner<'_, DsiPacket>,
    slot: u32,
    idx: u32,
    is_retry: bool,
    max_hi: u64,
    mode: &mut M,
    state: &mut QueryState<'_>,
    t: u32,
    n_obj: u32,
) -> bool {
    let l = air.layout();
    let payload_packets = l.framing().object_packets - 1;
    tuner.goto(l.header_packet(slot, idx));
    match tuner.read() {
        Ok(p) => {
            debug_assert!(
                matches!(p, DsiPacket::ObjHeader { slot: s, idx: i } if *s == slot && *i == idx)
            );
            let o = air.object(slot, idx);
            if !is_retry {
                state.note_attempted(t, n_obj, idx);
            }
            state.resolve_header(t, n_obj, idx, o.hc);
            state.retries.remove(slot, idx);
            if mode.on_header(o) {
                if read_payload(tuner, payload_packets) {
                    mode.on_retrieved(o);
                } else {
                    state.retries.insert(slot, idx, n_obj);
                }
            }
            !is_retry && o.hc > max_hi
        }
        Err(_) => {
            if !is_retry {
                state.note_attempted(t, n_obj, idx);
            }
            state.retries.insert(slot, idx, n_obj);
            false
        }
    }
}

/// Reads the remaining packets of an object's record. Aborts on the first
/// lost packet (the per-packet checksum tells the client immediately).
fn read_payload(tuner: &mut Tuner<'_, DsiPacket>, n: u32) -> bool {
    for _ in 0..n {
        if tuner.read().is_err() {
            return false;
        }
    }
    true
}

/// The cheapest way to reach frame `slot` from the tuner's position:
/// through its index table (fresh frames) or straight to its first unread
/// header (partially scanned frames, or frames whose table occurrence
/// already passed). Returns `(arrival, flat target, what to do there)`.
fn approach(
    air: &DsiAir,
    tuner: &Tuner<'_, DsiPacket>,
    log: &ScanLog,
    slot: u32,
    max_hi: u64,
) -> (u64, u64, Pending) {
    let l = air.layout();
    let t = l.hc_index_of_slot(slot);
    let read_upto = log.get(t).map_or(0, |s| s.read_upto);
    let table_flat = l.frame_start(slot);
    let visit_flat = l.header_packet(slot, read_upto.min(l.objects_in_slot(slot) - 1));
    let table_abs = tuner.arrival(table_flat);
    let visit_abs = tuner.arrival(visit_flat);
    if table_abs <= visit_abs && log.get(t).is_none() {
        (table_abs, table_flat, Pending::Table(slot))
    } else {
        (
            visit_abs,
            visit_flat,
            Pending::Visit {
                slot,
                include_fresh: true,
                max_hi,
            },
        )
    }
}

/// Chooses the next destination and dozes there.
///
/// Candidates are (a) the first pending retry header of every affected
/// slot — read directly off the per-slot sorted retry lists — and (b)
/// frames that may still hold remainder content. Window queries and
/// conservative kNN sweep the broadcast order for such frames; aggressive
/// kNN jumps to the slot its strategy picked (the entry target nearest
/// the query point). All candidates are then planned in one batch through
/// the tuner's earliest-arrival API, which accounts for channel placement
/// and the antennas' monitored set.
fn navigate<M: QueryMode>(
    air: &DsiAir,
    tuner: &mut Tuner<'_, DsiPacket>,
    mode: &mut M,
    state: &QueryState<'_>,
    scratch: &mut QueryScratch,
) -> Option<Pending> {
    let l = air.layout();
    let (know, log, retries, rem) = (&state.know, &state.log, &state.retries, state.rem());
    let max_hi = max_hi_of(rem);
    let QueryScratch {
        entry_targets,
        useful_entries,
        nav_flats,
        nav_arrivals,
        nav_plans,
        ..
    } = scratch;
    nav_flats.clear();
    nav_arrivals.clear();
    nav_plans.clear();

    // Retry visits: the earliest pending index per slot is the head of its
    // maintained sorted list.
    for (slot, idxs) in retries.iter_slots() {
        let flat = l.header_packet(slot, idxs[0]);
        nav_flats.push(flat);
        nav_arrivals.push(tuner.arrival(flat));
        nav_plans.push(Pending::Visit {
            slot,
            include_fresh: false,
            max_hi,
        });
    }

    // Entry targets the strategy may pick from: frames not yet fully
    // attempted whose conservative span can still overlap a remainder.
    // Without this filter the aggressive strategy would keep re-picking a
    // "nearest" frame that has nothing left to offer.
    useful_entries.clear();
    useful_entries.extend(entry_targets.iter().copied().filter(|&(slot, _)| {
        let t = l.hc_index_of_slot(slot);
        if fully_attempted(log, t, l.objects_in_slot(slot)) {
            return false;
        }
        let (lb, ub) = know.span_est(t);
        overlaps_any(rem, lb, ub)
    }));

    if !rem.is_empty() {
        match mode.nav_pick(rem, useful_entries) {
            NavPick::Slot(slot) => {
                let (abs, flat, p) = approach(air, tuner, log, slot, max_hi);
                nav_flats.push(flat);
                nav_arrivals.push(abs);
                nav_plans.push(p);
            }
            NavPick::Earliest => {
                // Sweep the broadcast order from the current position for
                // frames that may still hold remainder content.
                let cur = l.slot_of_packet(tuner.flat_pos());
                let nf = l.n_frames();
                let multi = tuner.program().n_channels() > 1;
                for d in 0..nf {
                    let slot = (cur + d) % nf;
                    let t = l.hc_index_of_slot(slot);
                    if fully_attempted(log, t, l.objects_in_slot(slot)) {
                        continue;
                    }
                    let (lb, ub) = know.span_est(t);
                    if !overlaps_any(rem, lb, ub) {
                        continue;
                    }
                    let (abs, flat, p) = approach(air, tuner, log, slot, max_hi);
                    nav_flats.push(flat);
                    nav_arrivals.push(abs);
                    nav_plans.push(p);
                    // Single channel: arrivals are monotone in `d` for
                    // d ≥ 1 (those frames lie strictly ahead); only the
                    // current slot (d = 0) can arrive later than its
                    // successors, so keep sweeping past it but stop at the
                    // first qualifying successor. With parallel channels
                    // broadcast order no longer orders arrivals — sweep
                    // every candidate frame and let the batch planner keep
                    // the earliest.
                    if d > 0 && !multi {
                        break;
                    }
                }
            }
        }
    }

    // One plan over all candidates: the earliest-arriving read wins (ties
    // to the first candidate, matching the sweep order; the arrivals were
    // produced by the tuner's channel- and antenna-aware planner while
    // the candidates were gathered, and the tuner has not moved since).
    // The multi-antenna client additionally costs the top-2 conflict: its
    // plans occupy the receiver for a while, so taking the earliest
    // airing can trample the runner-up's airing and push it a full
    // channel cycle out — when that happens, whichever order finishes
    // both reads earlier wins.
    let mut best: Option<(usize, u64)> = None;
    for (j, &t) in nav_arrivals.iter().enumerate() {
        if best.is_none_or(|(_, bt)| t < bt) {
            best = Some((j, t));
        }
    }
    let (i, _) = best?;
    let pick = if tuner.antennas() > 1 && nav_flats.len() > 1 {
        // Multi-antenna: run the duration-aware planner instead (top-2
        // conflict costing; one plan can trample the runner-up's airing).
        let (j, _) = tuner.plan_resilient(nav_flats, |j| {
            plan_duration(l, state, &nav_plans[j], nav_flats[j])
        })?;
        j
    } else {
        i
    };
    tuner.goto(nav_flats[pick]);
    Some(nav_plans[pick])
}

/// Estimate, in packets, of how long executing plan `p` occupies the
/// receiver once its first packet (at flat position `flat`) airs, from
/// schema knowledge plus the client's own scan state. Flat-position
/// spans, so under unit-granular striping (where a frame's units air
/// interleaved across channels) this can undershoot wall-clock
/// occupancy — the top-2 conflict costing it feeds is a heuristic, not
/// a bound.
fn plan_duration(
    l: &crate::layout::DsiLayout,
    state: &QueryState<'_>,
    p: &Pending,
    flat: u64,
) -> u64 {
    let f = l.framing();
    match *p {
        Pending::Table(_) => f.table_packets as u64,
        Pending::Visit {
            slot,
            include_fresh,
            ..
        } => {
            if include_fresh {
                // May scan to the end of the frame.
                let frame_len = f.table_packets as u64
                    + l.objects_in_slot(slot) as u64 * f.object_packets as u64;
                (l.frame_start(slot) + frame_len).saturating_sub(flat)
            } else {
                // Retry-only visit: first to last pending header.
                let idxs = state.retries.for_slot(slot);
                match idxs.last() {
                    Some(&last) => l.header_packet(slot, last) + f.object_packets as u64 - flat,
                    None => f.object_packets as u64,
                }
            }
        }
    }
}
