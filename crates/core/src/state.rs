//! Client-side query state: what a mobile client has learned so far.
//!
//! DSI's resilience rests on clients being able to *accumulate* partial
//! knowledge of the object distribution ("continue to use the knowledge of
//! data distribution obtained previously", §5). This module holds that
//! state:
//!
//! * [`Knowledge`] — the map from HC-order frame index to its (exact)
//!   minimum HC value, learned from index-table entries and from the first
//!   object header of scanned frames, seeded with the schema's block
//!   boundaries. It answers conservative span queries: "which HC values
//!   *could* frame `t` hold, given what I know?"
//! * [`ScanLog`] — which object headers of which frames the client has
//!   resolved, including partial frames interrupted by link errors or
//!   early exits.
//! * [`cleared_regions`] — the derived set of HC intervals the client has
//!   fully accounted for. A query terminates when its target segments are
//!   covered by cleared regions (window queries) or when every uncleared
//!   part of the search circle is provably farther than the k-th candidate
//!   (kNN queries).
//! * [`Retries`] — object slots whose header or payload was lost and must
//!   be re-fetched in a later cycle.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use dsi_hilbert::{merge_ranges, HcRange};

use crate::layout::DsiLayout;

/// Accumulated frame-boundary knowledge (exact minimum HC per frame).
#[derive(Debug, Clone)]
pub(crate) struct Knowledge {
    /// HC-order frame index → exact minimum HC value of that frame.
    by_idx: BTreeMap<u32, u64>,
    /// Inverse direction (values are strictly increasing with index).
    by_hc: BTreeMap<u64, u32>,
    n_frames: u32,
    /// One past the largest representable HC value.
    max_hc_excl: u64,
}

impl Knowledge {
    /// Seeds knowledge with the broadcast schema: block start boundaries.
    pub fn new(layout: &DsiLayout, max_hc: u64) -> Self {
        let mut k = Self {
            by_idx: BTreeMap::new(),
            by_hc: BTreeMap::new(),
            n_frames: layout.n_frames(),
            max_hc_excl: max_hc + 1,
        };
        for c in 0..layout.n_blocks() {
            k.learn(layout.block_start_frame(c), layout.block_min_hc()[c as usize]);
        }
        k
    }

    /// Records that HC-order frame `idx` starts at HC value `hc`.
    pub fn learn(&mut self, idx: u32, hc: u64) {
        debug_assert!(idx < self.n_frames);
        if let Some(&old) = self.by_idx.get(&idx) {
            debug_assert_eq!(old, hc, "inconsistent bound learned for frame {idx}");
            return;
        }
        self.by_idx.insert(idx, hc);
        self.by_hc.insert(hc, idx);
    }

    /// Exact minimum HC of frame `idx`, if known.
    pub fn known(&self, idx: u32) -> Option<u64> {
        self.by_idx.get(&idx).copied()
    }

    /// Conservative span `[lb, ub)` of frame `idx`: the true span is always
    /// contained in it. `lb` is the largest known bound at or before `idx`
    /// (frames hold ascending HC runs, so the true start is ≥ `lb`… is ≥
    /// the previous known bound and ≤ the next); `ub` is the smallest known
    /// bound after `idx`.
    pub fn span_est(&self, idx: u32) -> (u64, u64) {
        let lb = self
            .by_idx
            .range(..=idx)
            .next_back()
            .map(|(_, &hc)| hc)
            .unwrap_or(0);
        let ub = self
            .by_idx
            .range(idx + 1..)
            .next()
            .map(|(_, &hc)| hc)
            .unwrap_or(self.max_hc_excl);
        (lb, ub)
    }

    /// Exact span of frame `idx`, if both end-points are known.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn exact_span(&self, idx: u32) -> Option<(u64, u64)> {
        let lo = self.known(idx)?;
        let hi = if idx + 1 == self.n_frames {
            self.max_hc_excl
        } else {
            self.known(idx + 1)?
        };
        Some((lo, hi))
    }

    /// The latest frame that is *safe* for a forward jump targeting `hc`:
    /// the frame with the largest known bound ≤ `hc`. Jumping there can
    /// never overshoot the frame that actually contains `hc`. Returns frame
    /// 0 for targets below the global minimum (which the schema always
    /// knows).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn safe_frame_for(&self, hc: u64) -> u32 {
        self.by_hc
            .range(..=hc)
            .next_back()
            .map(|(_, &idx)| idx)
            .unwrap_or(0)
    }

    /// One past the largest representable HC value.
    pub fn max_hc_excl(&self) -> u64 {
        self.max_hc_excl
    }
}

/// Per-frame record of which object headers have been resolved.
#[derive(Debug, Clone)]
pub(crate) struct FrameScan {
    /// Resolved HC value per object index (`None` = header lost or not yet
    /// read).
    pub hcs: Vec<Option<u64>>,
    /// First object index never attempted in a sequential pass (early-exit
    /// resume point).
    pub read_upto: u32,
}

impl FrameScan {
    fn new(n_obj: u32) -> Self {
        Self {
            hcs: vec![None; n_obj as usize],
            read_upto: 0,
        }
    }
}

/// All frames the client has (partially) scanned, keyed by HC-order index.
#[derive(Debug, Clone, Default)]
pub(crate) struct ScanLog {
    frames: HashMap<u32, FrameScan>,
}

impl ScanLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// The scan record for frame `idx`, created on first use.
    pub fn entry(&mut self, idx: u32, n_obj: u32) -> &mut FrameScan {
        self.frames
            .entry(idx)
            .or_insert_with(|| FrameScan::new(n_obj))
    }

    /// Read-only access.
    pub fn get(&self, idx: u32) -> Option<&FrameScan> {
        self.frames.get(&idx)
    }

    /// Iterates over scanned frames.
    pub fn iter(&self) -> impl Iterator<Item = (&u32, &FrameScan)> {
        self.frames.iter()
    }
}

/// Lost-packet bookkeeping: object slots to re-fetch in a later cycle.
#[derive(Debug, Clone, Default)]
pub(crate) struct Retries {
    /// Headers lost: the client does not know the object yet.
    pub headers: BTreeSet<(u32, u32)>,
    /// Payload lost on an object that qualified: re-fetch the full record.
    pub payloads: BTreeSet<(u32, u32)>,
}

impl Retries {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.headers.is_empty() && self.payloads.is_empty()
    }

    /// All pending (slot, idx) pairs, ascending.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.headers.iter().chain(self.payloads.iter()).copied()
    }
}

/// Derives the HC intervals the client has fully accounted for.
///
/// For every scanned frame the resolved *prefix* of object headers
/// `h₀ … h_{j−1}` clears `[h₀, h_{j−1}]` (those objects were examined, and
/// frames hold contiguous HC runs). If the prefix covers the whole frame,
/// the cleared interval extends to the next frame's known bound − 1 (or to
/// the end of HC space for the last frame) because the gap provably
/// contains no objects. The region below the global minimum is cleared by
/// the schema.
pub(crate) fn cleared_regions(
    log: &ScanLog,
    know: &Knowledge,
    layout: &DsiLayout,
) -> Vec<HcRange> {
    let mut out = Vec::with_capacity(log.frames.len() + 1);
    if layout.global_min_hc() > 0 {
        out.push(HcRange::new(0, layout.global_min_hc() - 1));
    }
    for (&idx, scan) in log.iter() {
        // Resolved prefix.
        let mut last = None;
        let mut first = None;
        let upto = scan.read_upto as usize;
        let mut complete_prefix = true;
        for h in &scan.hcs[..upto] {
            match h {
                Some(hc) => {
                    if first.is_none() {
                        first = Some(*hc);
                    }
                    last = Some(*hc);
                }
                None => {
                    complete_prefix = false;
                    break;
                }
            }
        }
        let (Some(first), Some(last)) = (first, last) else {
            continue;
        };
        let hi = if complete_prefix && upto == scan.hcs.len() {
            // Whole frame examined: extend through the empty gap up to the
            // next frame's bound, when known.
            if idx + 1 == layout.n_frames() {
                know.max_hc_excl() - 1
            } else {
                match know.known(idx + 1) {
                    Some(b) => b - 1,
                    None => last,
                }
            }
        } else {
            last
        };
        out.push(HcRange::new(first, hi.max(first)));
    }
    merge_ranges(&mut out);
    out
}

/// `targets − cleared`: the HC intervals still unaccounted for. Both input
/// lists must be sorted and disjoint; the result is too.
pub(crate) fn subtract_ranges(targets: &[HcRange], cleared: &[HcRange]) -> Vec<HcRange> {
    let mut out = Vec::new();
    let mut ci = 0usize;
    for &t in targets {
        let mut lo = t.lo;
        // Skip cleared intervals entirely below.
        while ci < cleared.len() && cleared[ci].hi < lo {
            ci += 1;
        }
        let mut cj = ci;
        while lo <= t.hi {
            if cj >= cleared.len() || cleared[cj].lo > t.hi {
                out.push(HcRange::new(lo, t.hi));
                break;
            }
            let c = cleared[cj];
            if c.lo > lo {
                out.push(HcRange::new(lo, c.lo - 1));
            }
            if c.hi >= t.hi {
                break;
            }
            lo = c.hi + 1;
            cj += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DsiConfig, FramingPolicy};

    fn layout() -> DsiLayout {
        // 16 objects in 8 frames of 2, minima 10,20,…,80.
        let cfg = DsiConfig {
            framing: FramingPolicy::FixedFrameCount(8),
            ..DsiConfig::paper_default()
        };
        let mins: Vec<u64> = (1..=8u64).map(|i| i * 10).collect();
        DsiLayout::new(cfg, 16, &mins)
    }

    #[test]
    fn span_estimates_tighten_with_learning() {
        let l = layout();
        let mut k = Knowledge::new(&l, 1000);
        // Schema gives only frame 0's bound (one block).
        assert_eq!(k.span_est(3), (10, 1001));
        k.learn(2, 30);
        k.learn(5, 60);
        assert_eq!(k.span_est(3), (30, 60));
        assert_eq!(k.span_est(2), (30, 60));
        assert_eq!(k.span_est(6), (60, 1001));
        assert_eq!(k.exact_span(2), None);
        k.learn(3, 40);
        assert_eq!(k.exact_span(2), Some((30, 40)));
        assert_eq!(k.exact_span(7), None);
        k.learn(7, 80);
        assert_eq!(k.exact_span(7), Some((80, 1001)));
    }

    #[test]
    fn safe_frame_never_overshoots() {
        let l = layout();
        let mut k = Knowledge::new(&l, 1000);
        k.learn(2, 30);
        k.learn(5, 60);
        assert_eq!(k.safe_frame_for(5), 0); // below global min → frame 0
        assert_eq!(k.safe_frame_for(30), 2);
        assert_eq!(k.safe_frame_for(59), 2);
        assert_eq!(k.safe_frame_for(60), 5);
        assert_eq!(k.safe_frame_for(999), 5);
    }

    #[test]
    fn cleared_regions_prefix_and_extension() {
        let l = layout();
        let mut k = Knowledge::new(&l, 1000);
        let mut log = ScanLog::new();
        // Frame 1 fully scanned: objects at 20 and 25.
        let s = log.entry(1, 2);
        s.hcs = vec![Some(20), Some(25)];
        s.read_upto = 2;
        // Without frame 2's bound, cleared stops at 25.
        let c = cleared_regions(&log, &k, &l);
        assert_eq!(c, vec![HcRange::new(0, 9), HcRange::new(20, 25)]);
        // Learning frame 2's bound extends through the empty gap.
        k.learn(2, 30);
        let c = cleared_regions(&log, &k, &l);
        assert_eq!(c, vec![HcRange::new(0, 9), HcRange::new(20, 29)]);
    }

    #[test]
    fn cleared_regions_hole_blocks_clearing() {
        let l = layout();
        let k = Knowledge::new(&l, 1000);
        let mut log = ScanLog::new();
        // Frame 3: first header lost, second resolved → nothing clearable.
        let s = log.entry(3, 2);
        s.hcs = vec![None, Some(45)];
        s.read_upto = 2;
        let c = cleared_regions(&log, &k, &l);
        assert_eq!(c, vec![HcRange::new(0, 9)]);
    }

    #[test]
    fn last_frame_clears_to_end_of_space() {
        let l = layout();
        let k = Knowledge::new(&l, 1000);
        let mut log = ScanLog::new();
        let s = log.entry(7, 2);
        s.hcs = vec![Some(80), Some(85)];
        s.read_upto = 2;
        let c = cleared_regions(&log, &k, &l);
        assert!(c.contains(&HcRange::new(80, 1000)));
    }

    #[test]
    fn subtract_ranges_cases() {
        let t = vec![HcRange::new(10, 50), HcRange::new(70, 80)];
        let c = vec![HcRange::new(0, 14), HcRange::new(20, 29), HcRange::new(45, 75)];
        assert_eq!(
            subtract_ranges(&t, &c),
            vec![
                HcRange::new(15, 19),
                HcRange::new(30, 44),
                HcRange::new(76, 80)
            ]
        );
        // Fully cleared.
        assert!(subtract_ranges(&t, &[HcRange::new(0, 100)]).is_empty());
        // Nothing cleared.
        assert_eq!(subtract_ranges(&t, &[]), t);
    }

    #[test]
    fn retries_iterate_in_order() {
        let mut r = Retries::new();
        assert!(r.is_empty());
        r.headers.insert((3, 1));
        r.payloads.insert((2, 0));
        let v: Vec<_> = r.iter().collect();
        assert_eq!(v, vec![(3, 1), (2, 0)]);
        assert!(!r.is_empty());
    }
}
