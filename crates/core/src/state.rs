//! Client-side query state: what a mobile client has learned so far.
//!
//! DSI's resilience rests on clients being able to *accumulate* partial
//! knowledge of the object distribution ("continue to use the knowledge of
//! data distribution obtained previously", §5). This module holds that
//! state:
//!
//! * [`Knowledge`] — the map from HC-order frame index to its (exact)
//!   minimum HC value, learned from index-table entries and from the first
//!   object header of scanned frames, seeded with the schema's block
//!   boundaries. It answers conservative span queries: "which HC values
//!   *could* frame `t` hold, given what I know?"
//! * [`ScanLog`] — which object headers of which frames the client has
//!   resolved, including partial frames interrupted by link errors or
//!   early exits.
//! * [`QueryState`] — the driver-facing aggregate: knowledge, scan log,
//!   retries, the *cleared* HC intervals the client has fully accounted
//!   for, and the *remainders* (targets − cleared) the query still
//!   chases. Cleared regions and remainders are maintained
//!   **incrementally**: every `learn` / header event applies a localized
//!   delta instead of re-deriving the whole state, which is what keeps
//!   the query loop allocation-free in steady state. The from-scratch
//!   derivation survives as [`cleared_regions`] — the differential-test
//!   oracle and the benchmark baseline (see [`crate::hotpath`]).
//! * [`Retries`] — object slots whose header or payload was lost and must
//!   be re-fetched in a later cycle, kept sorted per broadcast slot so
//!   both visits and navigation read them without re-sorting.

// dsi-lint: allow(hash): scan-log lookups only; reads are per-slot, never iterated for output
use std::collections::HashMap;

use dsi_hilbert::{merge_ranges, HcRange};

use crate::client::TargetsChange;
use crate::hotpath::{self, StatePath};
use crate::layout::DsiLayout;

/// Accumulated frame-boundary knowledge (exact minimum HC per frame).
///
/// One flat `Vec` of `(frame index, min HC)` pairs, sorted by frame
/// index. Minimum HC values increase strictly with frame index, so the
/// same Vec is simultaneously sorted by HC value and serves both lookup
/// directions with a binary search; inserts shift the tail, which for
/// frame counts in the thousands beats the pointer-chasing of the twin
/// `BTreeMap`s it replaced.
#[derive(Debug, Clone)]
pub(crate) struct Knowledge {
    /// `(HC-order frame index, exact minimum HC of that frame)`, sorted.
    bounds: Vec<(u32, u64)>,
    n_frames: u32,
    /// One past the largest representable HC value.
    max_hc_excl: u64,
}

impl Knowledge {
    /// Seeds knowledge with the broadcast schema: block start boundaries.
    pub fn new(layout: &DsiLayout, max_hc: u64) -> Self {
        let mut k = Self {
            bounds: Vec::with_capacity(layout.n_blocks() as usize + 8),
            n_frames: layout.n_frames(),
            max_hc_excl: max_hc + 1,
        };
        for c in 0..layout.n_blocks() {
            k.learn(
                layout.block_start_frame(c),
                layout.block_min_hc()[c as usize],
            );
        }
        k
    }

    /// Records that HC-order frame `idx` starts at HC value `hc`. Returns
    /// whether this was new knowledge.
    pub fn learn(&mut self, idx: u32, hc: u64) -> bool {
        debug_assert!(idx < self.n_frames);
        match self.bounds.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => {
                debug_assert_eq!(
                    self.bounds[pos].1, hc,
                    "inconsistent bound learned for frame {idx}"
                );
                false
            }
            Err(pos) => {
                debug_assert!(pos == 0 || self.bounds[pos - 1].1 < hc);
                debug_assert!(pos == self.bounds.len() || hc < self.bounds[pos].1);
                self.bounds.insert(pos, (idx, hc));
                true
            }
        }
    }

    /// Exact minimum HC of frame `idx`, if known.
    pub fn known(&self, idx: u32) -> Option<u64> {
        self.bounds
            .binary_search_by_key(&idx, |&(i, _)| i)
            .ok()
            .map(|pos| self.bounds[pos].1)
    }

    /// Conservative span `[lb, ub)` of frame `idx`: the true span is always
    /// contained in it. `lb` is the largest known bound at or before `idx`
    /// (frames hold ascending HC runs, so the true start is ≥ `lb`); `ub`
    /// is the smallest known bound after `idx`.
    pub fn span_est(&self, idx: u32) -> (u64, u64) {
        let pos = self.bounds.partition_point(|&(i, _)| i <= idx);
        let lb = if pos > 0 { self.bounds[pos - 1].1 } else { 0 };
        let ub = self.bounds.get(pos).map_or(self.max_hc_excl, |&(_, hc)| hc);
        (lb, ub)
    }

    /// Exact span of frame `idx`, if both end-points are known.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn exact_span(&self, idx: u32) -> Option<(u64, u64)> {
        let lo = self.known(idx)?;
        let hi = if idx + 1 == self.n_frames {
            self.max_hc_excl
        } else {
            self.known(idx + 1)?
        };
        Some((lo, hi))
    }

    /// The latest frame that is *safe* for a forward jump targeting `hc`:
    /// the frame with the largest known bound ≤ `hc`. Jumping there can
    /// never overshoot the frame that actually contains `hc`. Returns frame
    /// 0 for targets below the global minimum (which the schema always
    /// knows).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn safe_frame_for(&self, hc: u64) -> u32 {
        let pos = self.bounds.partition_point(|&(_, h)| h <= hc);
        if pos > 0 {
            self.bounds[pos - 1].0
        } else {
            0
        }
    }

    /// One past the largest representable HC value.
    pub fn max_hc_excl(&self) -> u64 {
        self.max_hc_excl
    }
}

/// Per-frame record of which object headers have been resolved.
#[derive(Debug, Clone)]
pub(crate) struct FrameScan {
    /// Resolved HC value per object index (`None` = header lost or not yet
    /// read).
    pub hcs: Vec<Option<u64>>,
    /// First object index never attempted in a sequential pass (early-exit
    /// resume point).
    pub read_upto: u32,
    /// Number of leading `Some` entries of `hcs` (maintained by
    /// [`FrameScan::resolve`]). Headers are only resolved after their slot
    /// was attempted, so this never exceeds `read_upto`.
    prefix_len: u32,
    /// Cleared contribution of this frame as last applied to the query's
    /// [`ClearedSet`]. Contributions only ever grow.
    contrib: Option<HcRange>,
}

impl FrameScan {
    fn new(n_obj: u32) -> Self {
        Self {
            hcs: vec![None; n_obj as usize],
            read_upto: 0,
            prefix_len: 0,
            contrib: None,
        }
    }

    /// Records the resolved HC of object `idx`, advancing the resolved
    /// prefix over any holes this fills.
    pub fn resolve(&mut self, idx: u32, hc: u64) {
        self.hcs[idx as usize] = Some(hc);
        let n = self.hcs.len() as u32;
        while self.prefix_len < n && self.hcs[self.prefix_len as usize].is_some() {
            self.prefix_len += 1;
        }
    }

    /// The cleared interval this frame's scan currently vouches for: the
    /// resolved header prefix `[h₀, h_{p−1}]`, extended through the empty
    /// gap to the next frame's bound when the whole frame is resolved.
    fn contribution(&self, t: u32, know: &Knowledge, layout: &DsiLayout) -> Option<HcRange> {
        let p = self.prefix_len as usize;
        if p == 0 {
            return None;
        }
        let first = self.hcs[0].expect("non-empty resolved prefix");
        let last = self.hcs[p - 1].expect("entry inside resolved prefix");
        let hi = if p == self.hcs.len() {
            if t + 1 == layout.n_frames() {
                know.max_hc_excl() - 1
            } else {
                match know.known(t + 1) {
                    Some(b) => b - 1,
                    None => last,
                }
            }
        } else {
            last
        };
        Some(HcRange::new(first, hi.max(first)))
    }
}

/// All frames the client has (partially) scanned, keyed by HC-order index.
#[derive(Debug, Clone, Default)]
pub(crate) struct ScanLog {
    // dsi-lint: allow(hash): keyed lookups only; golden outputs never iterate this map
    frames: HashMap<u32, FrameScan>,
}

impl ScanLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// The scan record for frame `idx`, created on first use.
    pub fn entry(&mut self, idx: u32, n_obj: u32) -> &mut FrameScan {
        self.frames
            .entry(idx)
            .or_insert_with(|| FrameScan::new(n_obj))
    }

    /// Read-only access.
    pub fn get(&self, idx: u32) -> Option<&FrameScan> {
        self.frames.get(&idx)
    }

    /// Iterates over scanned frames.
    pub fn iter(&self) -> impl Iterator<Item = (&u32, &FrameScan)> {
        self.frames.iter()
    }
}

/// Lost-packet bookkeeping: object slots to re-fetch in a later cycle.
///
/// Stored per broadcast slot with the pending object indices sorted, so a
/// frame visit iterates its retries directly (no collect/sort/dedup) and
/// the navigator reads each slot's earliest retry as `idxs[0]` (no
/// per-call scratch map). Header and payload retries share one set: a
/// payload retry re-reads the header anyway to re-qualify the object, so
/// the distinction never changes the visit path.
#[derive(Debug, Clone, Default)]
pub(crate) struct Retries {
    /// Per-slot pending indices, sorted by slot id; `idxs` sorted, unique,
    /// never empty.
    slots: Vec<RetrySlot>,
    total: usize,
}

#[derive(Debug, Clone)]
struct RetrySlot {
    slot: u32,
    idxs: Vec<u32>,
}

impl Retries {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Total pending re-fetches over all slots.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Marks object `idx` of broadcast slot `slot` as needing a re-fetch.
    ///
    /// `n_obj` is the slot's live object count — the growth cap: a slot's
    /// retry set holds at most one entry per object the slot carries, so
    /// under sustained loss the set is bounded by the live remainders
    /// instead of growing silently.
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic if `idx` is not a live object index of the
    /// slot (`idx >= n_obj`) — that retry could never be satisfied and
    /// would leak forever.
    pub fn insert(&mut self, slot: u32, idx: u32, n_obj: u32) {
        assert!(
            idx < n_obj,
            "retry cap: object index {idx} is outside slot {slot}'s {n_obj} \
             live objects ({} retries pending) — an unsatisfiable retry \
             would leak forever",
            self.total
        );
        match self.slots.binary_search_by_key(&slot, |s| s.slot) {
            Ok(si) => {
                let idxs = &mut self.slots[si].idxs;
                if let Err(pos) = idxs.binary_search(&idx) {
                    idxs.insert(pos, idx);
                    self.total += 1;
                }
                debug_assert!(
                    idxs.len() <= n_obj as usize,
                    "slot {slot} retry set exceeded its {n_obj} live objects"
                );
            }
            Err(si) => {
                self.slots.insert(
                    si,
                    RetrySlot {
                        slot,
                        idxs: vec![idx],
                    },
                );
                self.total += 1;
            }
        }
    }

    /// Clears the pending re-fetch of object `idx` in `slot`, if any.
    pub fn remove(&mut self, slot: u32, idx: u32) {
        if let Ok(si) = self.slots.binary_search_by_key(&slot, |s| s.slot) {
            let idxs = &mut self.slots[si].idxs;
            if let Ok(pos) = idxs.binary_search(&idx) {
                idxs.remove(pos);
                self.total -= 1;
                if idxs.is_empty() {
                    self.slots.remove(si);
                }
            }
        }
    }

    /// Pending object indices of `slot`, ascending (empty slice if none).
    pub fn for_slot(&self, slot: u32) -> &[u32] {
        match self.slots.binary_search_by_key(&slot, |s| s.slot) {
            Ok(si) => &self.slots[si].idxs,
            Err(_) => &[],
        }
    }

    /// All slots with pending retries as `(slot, sorted indices)`,
    /// ascending by slot. Each slot's earliest retry is `idxs[0]`.
    pub fn iter_slots(&self) -> impl Iterator<Item = (u32, &[u32])> {
        self.slots.iter().map(|s| (s.slot, s.idxs.as_slice()))
    }
}

/// The cleared HC intervals, kept sorted, disjoint and non-adjacent — the
/// same canonical form [`merge_ranges`] produces, so the incremental set
/// compares bit-for-bit against the from-scratch oracle.
#[derive(Debug, Clone, Default)]
pub(crate) struct ClearedSet {
    ranges: Vec<HcRange>,
}

impl ClearedSet {
    pub fn as_slice(&self) -> &[HcRange] {
        &self.ranges
    }

    /// Inserts `r`, coalescing overlapping and adjacent ranges. Returns
    /// whether the set's coverage grew.
    pub fn insert(&mut self, r: HcRange) -> bool {
        // First existing range that overlaps or is adjacent to `r`.
        let start = self
            .ranges
            .partition_point(|c| c.hi.saturating_add(1) < r.lo);
        let mut end = start;
        while end < self.ranges.len() && self.ranges[end].lo <= r.hi.saturating_add(1) {
            end += 1;
        }
        if start == end {
            self.ranges.insert(start, r);
            return true;
        }
        if end - start == 1 {
            let c = self.ranges[start];
            if c.lo <= r.lo && r.hi <= c.hi {
                return false;
            }
        }
        // `r` extends the first touched range and/or bridges to the later
        // ones; ranges strictly between were separated by gaps `r` covers.
        let merged = HcRange::new(
            self.ranges[start].lo.min(r.lo),
            self.ranges[end - 1].hi.max(r.hi),
        );
        self.ranges[start] = merged;
        self.ranges.drain(start + 1..end);
        true
    }
}

/// Derives the HC intervals the client has fully accounted for, from
/// scratch. This is the differential-test **oracle** and the
/// `StatePath::FromScratch` benchmark baseline; the production path
/// maintains the same set incrementally in [`QueryState`].
///
/// For every scanned frame the resolved *prefix* of object headers
/// `h₀ … h_{j−1}` clears `[h₀, h_{j−1}]` (those objects were examined, and
/// frames hold contiguous HC runs). If the prefix covers the whole frame,
/// the cleared interval extends to the next frame's known bound − 1 (or to
/// the end of HC space for the last frame) because the gap provably
/// contains no objects. The region below the global minimum is cleared by
/// the schema.
pub(crate) fn cleared_regions(log: &ScanLog, know: &Knowledge, layout: &DsiLayout) -> Vec<HcRange> {
    let mut out = Vec::with_capacity(log.frames.len() + 1);
    if layout.global_min_hc() > 0 {
        out.push(HcRange::new(0, layout.global_min_hc() - 1));
    }
    for (&idx, scan) in log.iter() {
        // Resolved prefix of the attempted part.
        let mut last = None;
        let mut first = None;
        let upto = scan.read_upto as usize;
        let mut complete_prefix = true;
        for h in &scan.hcs[..upto] {
            match h {
                Some(hc) => {
                    if first.is_none() {
                        first = Some(*hc);
                    }
                    last = Some(*hc);
                }
                None => {
                    complete_prefix = false;
                    break;
                }
            }
        }
        let (Some(first), Some(last)) = (first, last) else {
            continue;
        };
        let hi = if complete_prefix && upto == scan.hcs.len() {
            // Whole frame examined: extend through the empty gap up to the
            // next frame's bound, when known.
            if idx + 1 == layout.n_frames() {
                know.max_hc_excl() - 1
            } else {
                match know.known(idx + 1) {
                    Some(b) => b - 1,
                    None => last,
                }
            }
        } else {
            last
        };
        out.push(HcRange::new(first, hi.max(first)));
    }
    merge_ranges(&mut out);
    out
}

/// `targets − cleared` into a caller-provided buffer (cleared first). Both
/// input lists must be sorted and disjoint; the result is too.
pub(crate) fn subtract_ranges_into(
    targets: &[HcRange],
    cleared: &[HcRange],
    out: &mut Vec<HcRange>,
) {
    out.clear();
    let mut ci = 0usize;
    for &t in targets {
        let mut lo = t.lo;
        // Skip cleared intervals entirely below.
        while ci < cleared.len() && cleared[ci].hi < lo {
            ci += 1;
        }
        let mut cj = ci;
        while lo <= t.hi {
            if cj >= cleared.len() || cleared[cj].lo > t.hi {
                out.push(HcRange::new(lo, t.hi));
                break;
            }
            let c = cleared[cj];
            if c.lo > lo {
                out.push(HcRange::new(lo, c.lo - 1));
            }
            if c.hi >= t.hi {
                break;
            }
            lo = c.hi + 1;
            cj += 1;
        }
    }
}

/// `targets − cleared` as a fresh Vec (oracle-side convenience).
pub(crate) fn subtract_ranges(targets: &[HcRange], cleared: &[HcRange]) -> Vec<HcRange> {
    let mut out = Vec::new();
    subtract_ranges_into(targets, cleared, &mut out);
    out
}

/// `a ∩ b` into a caller-provided buffer (cleared first). Both inputs must
/// be sorted, disjoint and non-adjacent; the result is too. This is the
/// remainder-narrowing kernel: when a mode reports its new targets are a
/// subset of the old ([`TargetsChange::Narrowed`]), the new remainders are
/// exactly `old remainders ∩ new targets` — no cleared-set subtraction
/// needed.
pub(crate) fn intersect_ranges_into(a: &[HcRange], b: &[HcRange], out: &mut Vec<HcRange>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let lo = a[i].lo.max(b[j].lo);
        let hi = a[i].hi.min(b[j].hi);
        if lo <= hi {
            out.push(HcRange::new(lo, hi));
        }
        if a[i].hi < b[j].hi {
            i += 1;
        } else {
            j += 1;
        }
    }
}

/// Removes the single cleared interval `c` from the sorted disjoint
/// remainder list, in place. At most one range is split in two; all other
/// affected ranges shrink or vanish, so no allocation happens unless the
/// list must grow past its capacity (amortized across the query).
pub(crate) fn subtract_range_in_place(rem: &mut Vec<HcRange>, c: HcRange) {
    let start = rem.partition_point(|t| t.hi < c.lo);
    let mut end = start;
    while end < rem.len() && rem[end].lo <= c.hi {
        end += 1;
    }
    if start == end {
        return;
    }
    let left = (rem[start].lo < c.lo).then(|| HcRange::new(rem[start].lo, c.lo - 1));
    let last = rem[end - 1];
    let right = (last.hi > c.hi).then(|| HcRange::new(c.hi + 1, last.hi));
    match (left, right) {
        (Some(l), Some(r)) => {
            rem[start] = l;
            if end - start >= 2 {
                rem[start + 1] = r;
                rem.drain(start + 2..end);
            } else {
                rem.insert(start + 1, r);
            }
        }
        (Some(l), None) => {
            rem[start] = l;
            rem.drain(start + 1..end);
        }
        (None, Some(r)) => {
            rem[start] = r;
            rem.drain(start + 1..end);
        }
        (None, None) => {
            rem.drain(start..end);
        }
    }
}

/// The query driver's aggregate state, with incremental cleared/remainder
/// maintenance.
///
/// Invariant (checked against the oracle under `StatePath::Audit`): after
/// every applied event, `cleared` equals [`cleared_regions`] of the
/// current scan log and knowledge, and `rem` equals
/// `targets − cleared` minus ranges the mode declared dead.
pub(crate) struct QueryState<'l> {
    layout: &'l DsiLayout,
    pub know: Knowledge,
    pub log: ScanLog,
    pub retries: Retries,
    cleared: ClearedSet,
    /// Current target intervals (sorted, disjoint), owned here so modes
    /// rebuild in place without allocating per iteration.
    targets: Vec<HcRange>,
    /// `targets − cleared`; maintained incrementally.
    rem: Vec<HcRange>,
    /// Swap buffer for in-place remainder narrowing.
    rem_scratch: Vec<HcRange>,
    path: StatePath,
}

impl<'l> QueryState<'l> {
    pub fn new(layout: &'l DsiLayout, max_hc: u64) -> Self {
        let know = Knowledge::new(layout, max_hc);
        let mut cleared = ClearedSet::default();
        if layout.global_min_hc() > 0 {
            cleared.insert(HcRange::new(0, layout.global_min_hc() - 1));
        }
        Self {
            layout,
            know,
            log: ScanLog::new(),
            retries: Retries::new(),
            cleared,
            targets: Vec::new(),
            rem: Vec::new(),
            rem_scratch: Vec::new(),
            path: hotpath::state_path(),
        }
    }

    /// The intervals the query has not accounted for yet.
    pub fn rem(&self) -> &[HcRange] {
        &self.rem
    }

    /// Records a learned frame bound and propagates the delta: a new bound
    /// for frame `idx` can extend the cleared contribution of the fully
    /// scanned frame `idx − 1`.
    pub fn learn(&mut self, idx: u32, hc: u64) {
        if self.know.learn(idx, hc) && idx > 0 {
            self.refresh_frame(idx - 1);
        }
    }

    /// Marks object `idx` of frame `t` as attempted (fresh sequential
    /// read), moving the resume point past it.
    pub fn note_attempted(&mut self, t: u32, n_obj: u32, idx: u32) {
        let scan = self.log.entry(t, n_obj);
        scan.read_upto = scan.read_upto.max(idx + 1);
    }

    /// Records a resolved object header: updates the scan, re-applies the
    /// frame's cleared contribution, and (for the first object) learns the
    /// frame's minimum. Call [`Self::note_attempted`] first for fresh
    /// reads so the oracle's `read_upto` window always covers the
    /// resolved prefix.
    pub fn resolve_header(&mut self, t: u32, n_obj: u32, idx: u32, hc: u64) {
        self.log.entry(t, n_obj).resolve(idx, hc);
        self.refresh_frame(t);
        if idx == 0 {
            self.learn(t, hc);
        }
    }

    /// Re-derives frame `t`'s cleared contribution and applies the growth
    /// delta to the cleared set and the remainders.
    fn refresh_frame(&mut self, t: u32) {
        if self.path == StatePath::FromScratch {
            // The baseline re-derives everything each loop iteration.
            return;
        }
        let Some(scan) = self.log.get(t) else { return };
        let Some(new) = scan.contribution(t, &self.know, self.layout) else {
            return;
        };
        if scan.contrib == Some(new) {
            return;
        }
        debug_assert!(
            scan.contrib
                .is_none_or(|old| old.lo == new.lo && old.hi <= new.hi),
            "frame contribution must only grow: {:?} -> {new:?}",
            scan.contrib
        );
        self.log
            .frames
            .get_mut(&t)
            .expect("scan entry exists")
            .contrib = Some(new);
        hotpath::count_incremental_event();
        self.cleared.insert(new);
        subtract_range_in_place(&mut self.rem, new);
        if self.path == StatePath::Audit {
            self.audit_cleared();
        }
    }

    /// Gives the mode a chance to rebuild its target set (in place, into
    /// the state-owned buffer); rebuilds the remainders when it did. A
    /// [`TargetsChange::Narrowed`] report takes the fast path: the new
    /// remainders are the old ones intersected with the new targets
    /// (dead ranges previously dropped by liveness lie outside the shrunk
    /// target set, so the intersection re-derives exactly
    /// `targets − cleared` without touching the cleared set). Under
    /// `FromScratch` the remainders are instead re-derived fully, every
    /// call — the pre-optimization behaviour the benchmarks compare
    /// against.
    pub fn refresh_targets(
        &mut self,
        refresh: impl FnOnce(&Knowledge, &mut Vec<HcRange>) -> TargetsChange,
    ) {
        let change = refresh(&self.know, &mut self.targets);
        match self.path {
            StatePath::FromScratch => {
                hotpath::count_full_recompute();
                // Faithful to the pre-optimization loop: a fresh copy of
                // the targets, a fresh cleared list and a fresh remainder
                // list, allocated every iteration.
                let targets = self.targets.clone();
                let cleared = cleared_regions(&self.log, &self.know, self.layout);
                self.rem = subtract_ranges(&targets, &cleared);
            }
            StatePath::Incremental | StatePath::Audit => match change {
                TargetsChange::Unchanged => {}
                TargetsChange::Replaced => {
                    subtract_ranges_into(&self.targets, self.cleared.as_slice(), &mut self.rem);
                }
                TargetsChange::Narrowed => {
                    hotpath::count_incremental_event();
                    intersect_ranges_into(&self.rem, &self.targets, &mut self.rem_scratch);
                    std::mem::swap(&mut self.rem, &mut self.rem_scratch);
                }
            },
        }
    }

    /// Whether nothing is missing: no remainders and no pending retries.
    pub fn settled(&self) -> bool {
        self.rem.is_empty() && self.retries.is_empty()
    }

    fn audit_cleared(&self) {
        let oracle = cleared_regions(&self.log, &self.know, self.layout);
        assert_eq!(
            self.cleared.as_slice(),
            oracle.as_slice(),
            "incremental cleared set diverged from the from-scratch oracle"
        );
    }

    /// Audit-path cross-check of the remainder state, called once per
    /// driver iteration.
    ///
    /// The cleared assert here is not redundant with the per-delta
    /// [`Self::audit_cleared`] in `refresh_frame`: that one fires only
    /// when a delta *is applied*, so it catches wrong deltas but not
    /// *missed* ones (say, a `learn` that failed to refresh its
    /// neighbour frame). This unconditional check catches the misses.
    pub fn audit_rem(&self) {
        if self.path != StatePath::Audit {
            return;
        }
        let oracle_cleared = cleared_regions(&self.log, &self.know, self.layout);
        assert_eq!(
            self.cleared.as_slice(),
            oracle_cleared.as_slice(),
            "incremental cleared set diverged from the from-scratch oracle"
        );
        let oracle_rem = subtract_ranges(&self.targets, &oracle_cleared);
        assert_eq!(
            self.rem, oracle_rem,
            "incremental remainders diverged from the from-scratch oracle"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DsiConfig, FramingPolicy};

    fn layout() -> DsiLayout {
        // 16 objects in 8 frames of 2, minima 10,20,…,80.
        let cfg = DsiConfig {
            framing: FramingPolicy::FixedFrameCount(8),
            ..DsiConfig::paper_default()
        };
        let mins: Vec<u64> = (1..=8u64).map(|i| i * 10).collect();
        DsiLayout::new(cfg, 16, &mins)
    }

    #[test]
    fn span_estimates_tighten_with_learning() {
        let l = layout();
        let mut k = Knowledge::new(&l, 1000);
        // Schema gives only frame 0's bound (one block).
        assert_eq!(k.span_est(3), (10, 1001));
        assert!(k.learn(2, 30));
        assert!(k.learn(5, 60));
        assert!(!k.learn(5, 60), "re-learning is not new knowledge");
        assert_eq!(k.span_est(3), (30, 60));
        assert_eq!(k.span_est(2), (30, 60));
        assert_eq!(k.span_est(6), (60, 1001));
        assert_eq!(k.exact_span(2), None);
        k.learn(3, 40);
        assert_eq!(k.exact_span(2), Some((30, 40)));
        assert_eq!(k.exact_span(7), None);
        k.learn(7, 80);
        assert_eq!(k.exact_span(7), Some((80, 1001)));
    }

    #[test]
    fn safe_frame_never_overshoots() {
        let l = layout();
        let mut k = Knowledge::new(&l, 1000);
        k.learn(2, 30);
        k.learn(5, 60);
        assert_eq!(k.safe_frame_for(5), 0); // below global min → frame 0
        assert_eq!(k.safe_frame_for(30), 2);
        assert_eq!(k.safe_frame_for(59), 2);
        assert_eq!(k.safe_frame_for(60), 5);
        assert_eq!(k.safe_frame_for(999), 5);
    }

    fn scan_frame(log: &mut ScanLog, idx: u32, hcs: &[Option<u64>]) {
        let s = log.entry(idx, hcs.len() as u32);
        for (i, h) in hcs.iter().enumerate() {
            if let Some(hc) = h {
                s.resolve(i as u32, *hc);
            }
        }
        s.read_upto = hcs.len() as u32;
    }

    #[test]
    fn cleared_regions_prefix_and_extension() {
        let l = layout();
        let mut k = Knowledge::new(&l, 1000);
        let mut log = ScanLog::new();
        // Frame 1 fully scanned: objects at 20 and 25.
        scan_frame(&mut log, 1, &[Some(20), Some(25)]);
        // Without frame 2's bound, cleared stops at 25.
        let c = cleared_regions(&log, &k, &l);
        assert_eq!(c, vec![HcRange::new(0, 9), HcRange::new(20, 25)]);
        // Learning frame 2's bound extends through the empty gap.
        k.learn(2, 30);
        let c = cleared_regions(&log, &k, &l);
        assert_eq!(c, vec![HcRange::new(0, 9), HcRange::new(20, 29)]);
    }

    #[test]
    fn cleared_regions_hole_blocks_clearing() {
        let l = layout();
        let k = Knowledge::new(&l, 1000);
        let mut log = ScanLog::new();
        // Frame 3: first header lost, second resolved → nothing clearable.
        scan_frame(&mut log, 3, &[None, Some(45)]);
        let c = cleared_regions(&log, &k, &l);
        assert_eq!(c, vec![HcRange::new(0, 9)]);
    }

    #[test]
    fn last_frame_clears_to_end_of_space() {
        let l = layout();
        let k = Knowledge::new(&l, 1000);
        let mut log = ScanLog::new();
        scan_frame(&mut log, 7, &[Some(80), Some(85)]);
        let c = cleared_regions(&log, &k, &l);
        assert!(c.contains(&HcRange::new(80, 1000)));
    }

    #[test]
    fn subtract_ranges_cases() {
        let t = vec![HcRange::new(10, 50), HcRange::new(70, 80)];
        let c = vec![
            HcRange::new(0, 14),
            HcRange::new(20, 29),
            HcRange::new(45, 75),
        ];
        assert_eq!(
            subtract_ranges(&t, &c),
            vec![
                HcRange::new(15, 19),
                HcRange::new(30, 44),
                HcRange::new(76, 80)
            ]
        );
        // Fully cleared.
        assert!(subtract_ranges(&t, &[HcRange::new(0, 100)]).is_empty());
        // Nothing cleared.
        assert_eq!(subtract_ranges(&t, &[]), t);
    }

    #[test]
    fn subtract_in_place_matches_oracle() {
        let base = vec![
            HcRange::new(10, 50),
            HcRange::new(70, 80),
            HcRange::new(90, 95),
        ];
        for c in [
            HcRange::new(0, 5),
            HcRange::new(0, 10),
            HcRange::new(20, 30),
            HcRange::new(10, 50),
            HcRange::new(40, 75),
            HcRange::new(45, 92),
            HcRange::new(0, 200),
            HcRange::new(96, 200),
            HcRange::new(80, 90),
        ] {
            let mut got = base.clone();
            subtract_range_in_place(&mut got, c);
            let want = subtract_ranges(&base, &[c]);
            assert_eq!(got, want, "subtracting {c:?}");
        }
    }

    #[test]
    fn cleared_set_insert_merges_and_reports_growth() {
        let mut s = ClearedSet::default();
        assert!(s.insert(HcRange::new(10, 20)));
        assert!(s.insert(HcRange::new(30, 40)));
        assert!(
            !s.insert(HcRange::new(12, 18)),
            "contained range is no growth"
        );
        // Adjacency coalesces like merge_ranges.
        assert!(s.insert(HcRange::new(21, 25)));
        assert_eq!(s.as_slice(), &[HcRange::new(10, 25), HcRange::new(30, 40)]);
        // Bridging merges everything it touches.
        assert!(s.insert(HcRange::new(24, 29)));
        assert_eq!(s.as_slice(), &[HcRange::new(10, 40)]);
        assert!(s.insert(HcRange::new(0, 2)));
        assert_eq!(s.as_slice(), &[HcRange::new(0, 2), HcRange::new(10, 40)]);
    }

    #[test]
    fn retries_sorted_per_slot() {
        let mut r = Retries::new();
        assert!(r.is_empty());
        r.insert(3, 1, 2);
        r.insert(2, 0, 1);
        r.insert(3, 0, 2);
        r.insert(3, 1, 2); // duplicate ignored
        assert!(!r.is_empty());
        assert_eq!(r.total(), 3);
        assert_eq!(r.for_slot(3), &[0, 1]);
        assert_eq!(r.for_slot(2), &[0]);
        assert_eq!(r.for_slot(9), &[] as &[u32]);
        let v: Vec<_> = r.iter_slots().map(|(s, i)| (s, i.to_vec())).collect();
        assert_eq!(v, vec![(2, vec![0]), (3, vec![0, 1])]);
        r.remove(3, 0);
        assert_eq!(r.for_slot(3), &[1]);
        r.remove(3, 1);
        r.remove(2, 0);
        assert!(r.is_empty());
        assert_eq!(r.total(), 0);
        assert_eq!(r.iter_slots().count(), 0);
    }

    #[test]
    fn retries_stay_bounded_by_live_remainders() {
        // Sustained loss re-inserts the same live indices cycle after
        // cycle: the per-slot set must stay capped at the slot's object
        // count, never growing with the number of loss events.
        let mut r = Retries::new();
        for _cycle in 0..100 {
            for idx in 0..4 {
                r.insert(7, idx, 4);
            }
        }
        assert_eq!(r.total(), 4);
        assert_eq!(r.for_slot(7), &[0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "retry cap")]
    fn retries_reject_dead_indices() {
        let mut r = Retries::new();
        r.insert(7, 4, 4); // index 4 of a 4-object slot can never resolve
    }

    #[test]
    fn query_state_applies_deltas_incrementally() {
        // Audit path: every delta below is cross-checked against the
        // from-scratch oracle as it is applied.
        hotpath::with_state_path(StatePath::Audit, query_state_delta_scenario);
    }

    fn query_state_delta_scenario() {
        let l = layout();
        let mut qs = QueryState::new(&l, 1000);
        // Target the whole space; prime the remainder state.
        qs.refresh_targets(|_, out| {
            out.clear();
            out.push(HcRange::new(0, 1000));
            TargetsChange::Replaced
        });
        assert_eq!(qs.rem(), &[HcRange::new(10, 1000)]);
        // Resolving frame 1 completely clears [20, 25] (no bound for 2 yet).
        qs.note_attempted(1, 2, 0);
        qs.resolve_header(1, 2, 0, 20);
        qs.note_attempted(1, 2, 1);
        qs.resolve_header(1, 2, 1, 25);
        assert_eq!(qs.rem(), &[HcRange::new(10, 19), HcRange::new(26, 1000)]);
        // Learning frame 2's bound extends the cleared gap to 29.
        qs.learn(2, 30);
        assert_eq!(qs.rem(), &[HcRange::new(10, 19), HcRange::new(30, 1000)]);
        qs.audit_rem();
        // Narrowing the targets to a subset intersects the remainders in
        // place — the cleared set is not consulted.
        qs.refresh_targets(|_, out| {
            out.clear();
            out.extend([HcRange::new(0, 15), HcRange::new(500, 600)]);
            TargetsChange::Narrowed
        });
        assert_eq!(qs.rem(), &[HcRange::new(10, 15), HcRange::new(500, 600)]);
        qs.audit_rem();
    }

    #[test]
    fn intersect_ranges_cases() {
        let a = vec![
            HcRange::new(10, 50),
            HcRange::new(70, 80),
            HcRange::new(90, 95),
        ];
        let b = vec![HcRange::new(0, 14), HcRange::new(40, 92)];
        let mut out = Vec::new();
        intersect_ranges_into(&a, &b, &mut out);
        assert_eq!(
            out,
            vec![
                HcRange::new(10, 14),
                HcRange::new(40, 50),
                HcRange::new(70, 80),
                HcRange::new(90, 92)
            ]
        );
        // Identity and annihilation.
        intersect_ranges_into(&a, &[HcRange::new(0, 100)], &mut out);
        assert_eq!(out, a);
        intersect_ranges_into(&a, &[], &mut out);
        assert!(out.is_empty());
    }
}
