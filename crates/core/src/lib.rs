//! **DSI** — a fully distributed spatial index for wireless data broadcast.
//!
//! This crate reproduces the primary contribution of Lee & Zheng (ICDCS
//! 2005): a linear, fully distributed air index over a Hilbert-curve data
//! ordering. Every frame of the broadcast cycle carries a small *index
//! table* whose entries point exponentially far ahead (`r⁰, r¹, …` frames,
//! Chord-style), so a client can start searching the instant it tunes in,
//! hop toward any target region in `O(log nF)` steps (*energy-efficient
//! forwarding*), and recover from lost packets at the very next frame —
//! the properties the paper's §1 claims and §4–5 measure.
//!
//! # Quick start
//!
//! ```
//! use dsi_broadcast::{LossModel, Tuner};
//! use dsi_core::{DsiAir, DsiConfig, KnnStrategy};
//! use dsi_datagen::{uniform, SpatialDataset};
//! use dsi_geom::{Point, Rect};
//!
//! // Server side: build the broadcast program.
//! let dataset = SpatialDataset::build(&uniform(500, 42), 10);
//! let air = DsiAir::build(&dataset, DsiConfig::paper_reorganized());
//!
//! // Client side: tune in anywhere, run queries, read the metrics.
//! let mut tuner = Tuner::tune_in(air.program(), 1234, LossModel::None, 7);
//! let in_window = air.window_query(&mut tuner, &Rect::new(0.2, 0.2, 0.4, 0.4));
//! assert_eq!(in_window, dataset.brute_window(&Rect::new(0.2, 0.2, 0.4, 0.4)));
//!
//! let mut tuner = Tuner::tune_in(air.program(), 99, LossModel::None, 8);
//! let knn = air.knn_query(&mut tuner, Point::new(0.5, 0.5), 3, KnnStrategy::Conservative);
//! assert_eq!(knn, dataset.brute_knn(Point::new(0.5, 0.5), 3));
//! let stats = tuner.stats();
//! assert!(stats.tuning_bytes() <= stats.latency_bytes());
//! ```
//!
//! # Modules
//!
//! * [`DsiConfig`] / framing — §3.1's tunables (index base `r`, object
//!   factor via framing policy, packet capacity) and §3.5's broadcast
//!   reorganization (`segments = m`).
//! * [`DsiAir`] — the built broadcast: packet program, index tables, frame
//!   metadata; plus the client algorithms [`DsiAir::point_query`] (EEF),
//!   [`DsiAir::window_query`] (Algorithm 1) and [`DsiAir::knn_query`]
//!   (Algorithm 2, conservative/aggressive).
//! * [`IndexTable`] — the ⟨HC′, P⟩ entry structure with its on-air wire
//!   format ([`IndexTable::encode`] / [`IndexTable::decode`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod client;
mod config;
mod eef;
pub mod hotpath;
mod knn;
mod layout;
pub mod share;
mod state;
mod table;
mod verify;
mod window;

pub use build::{DsiAir, DsiPacket, DsiScheme, FrameMeta};
pub use config::{
    compute_framing, DsiConfig, Framing, FramingPolicy, ReorgStyle, ENTRY_BYTES, HC_BYTES,
    OBJECT_BYTES, PACKET_HEADER_BYTES, POINTER_BYTES, TABLE_HEADER_BYTES,
};
pub use knn::KnnStrategy;
#[doc(hidden)]
pub use knn::{testkit as knn_testkit, KnnProbe};
pub use layout::DsiLayout;
pub use table::{DecodeError, IndexTable, TableEntry};
