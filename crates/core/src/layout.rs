//! The client-known broadcast schema: where frames live in the cycle.
//!
//! A DSI broadcast has a rigid, statically computable geometry: the cycle
//! is a sequence of `nF` frames, each `[index table packets][object
//! packets…]`, with the objects-per-frame split fixed by the framing rule.
//! The paper's clients rely on this ("the index table associated with a
//! frame F is designed to cover the next (nF − 1) frames"): they know `nF`,
//! `no`, `r` and therefore where every frame starts. [`DsiLayout`] is that
//! knowledge, including the reorganization permutation σ (broadcast slot ↔
//! HC-order frame index) and the m block-boundary HC values of §3.5 (see
//! DESIGN.md §3.2 for the accounting argument).

use crate::config::{compute_framing, DsiConfig, Framing};

/// Static broadcast geometry shared by server and clients.
#[derive(Debug, Clone)]
pub struct DsiLayout {
    config: DsiConfig,
    framing: Framing,
    n_objects: u32,
    /// Broadcast slot → HC-order frame index.
    sigma: Vec<u32>,
    /// HC-order frame index → broadcast slot.
    sigma_inv: Vec<u32>,
    /// Broadcast slot → first packet of the frame (cycle-relative).
    frame_starts: Vec<u64>,
    /// Packets per cycle.
    cycle_packets: u64,
    /// HC-order frame index at which each block begins (`m` entries).
    block_start_frames: Vec<u32>,
    /// Minimum HC value of each block (`m` entries, ascending) — the
    /// data-dependent part of the schema.
    block_min_hc: Vec<u64>,
}

impl DsiLayout {
    /// Computes the layout for `n_objects` objects whose per-block minimum
    /// HC values are supplied by the builder.
    ///
    /// `frame_min_hc` must hold the minimum HC value of every HC-order
    /// frame (length `nF`), ascending.
    pub(crate) fn new(config: DsiConfig, n_objects: u32, frame_min_hc: &[u64]) -> Self {
        config.validate();
        let framing = compute_framing(&config, n_objects);
        let nf = framing.n_frames;
        assert_eq!(frame_min_hc.len(), nf as usize);
        debug_assert!(frame_min_hc.windows(2).all(|w| w[0] < w[1]));

        let m = config.segments.min(nf);
        // Blocks: m near-equal chunks of the HC-ordered frame list. When
        // nF is not divisible by m the trailing chunks may be empty
        // (nF = 4, m = 3 → chunk = 2 → only two blocks); drop them.
        let chunk = nf.div_ceil(m);
        let block_start_frames: Vec<u32> = (0..m)
            .map(|c| c * chunk)
            .filter(|&start| start < nf)
            .collect();
        let m = block_start_frames.len() as u32;
        let block_min_hc: Vec<u64> = block_start_frames
            .iter()
            .map(|&f| frame_min_hc[f as usize])
            .collect();

        // Interleave the blocks (σ). For m = 1 this is the identity, i.e.
        // the original ascending-HC broadcast. In the folded style, odd
        // blocks run backwards so that frames adjacent across a block
        // boundary stay adjacent in broadcast time.
        let mut sigma = Vec::with_capacity(nf as usize);
        for k in 0..chunk {
            for c in 0..m as usize {
                let start = block_start_frames[c];
                let end = block_start_frames.get(c + 1).copied().unwrap_or(nf);
                let len = end - start;
                if k >= len {
                    continue;
                }
                let idx = match config.reorg_style {
                    crate::config::ReorgStyle::RoundRobin => start + k,
                    crate::config::ReorgStyle::Folded => {
                        if c % 2 == 0 {
                            start + k
                        } else {
                            end - 1 - k
                        }
                    }
                };
                sigma.push(idx);
            }
        }
        debug_assert_eq!(sigma.len(), nf as usize);
        let mut sigma_inv = vec![0u32; nf as usize];
        for (slot, &hc_idx) in sigma.iter().enumerate() {
            sigma_inv[hc_idx as usize] = slot as u32;
        }

        // Frame starts: table packets + per-frame object packets.
        let mut frame_starts = Vec::with_capacity(nf as usize);
        let mut pos = 0u64;
        for &hc_idx in &sigma {
            frame_starts.push(pos);
            let n_obj = framing.objects_per_frame[hc_idx as usize] as u64;
            pos += framing.table_packets as u64 + n_obj * framing.object_packets as u64;
        }

        Self {
            config,
            framing,
            n_objects,
            sigma,
            sigma_inv,
            frame_starts,
            cycle_packets: pos,
            block_start_frames,
            block_min_hc,
        }
    }

    /// Build configuration.
    #[inline]
    pub fn config(&self) -> &DsiConfig {
        &self.config
    }

    /// Derived framing parameters.
    #[inline]
    pub fn framing(&self) -> &Framing {
        &self.framing
    }

    /// Total number of data objects in the cycle.
    #[inline]
    pub fn n_objects(&self) -> u32 {
        self.n_objects
    }

    /// Number of frames per cycle.
    #[inline]
    pub fn n_frames(&self) -> u32 {
        self.framing.n_frames
    }

    /// Packets per cycle.
    #[inline]
    pub fn cycle_packets(&self) -> u64 {
        self.cycle_packets
    }

    /// HC-order frame index broadcast in `slot`.
    #[inline]
    pub fn hc_index_of_slot(&self, slot: u32) -> u32 {
        self.sigma[slot as usize]
    }

    /// Broadcast slot carrying HC-order frame `hc_idx`.
    #[inline]
    pub fn slot_of_hc_index(&self, hc_idx: u32) -> u32 {
        self.sigma_inv[hc_idx as usize]
    }

    /// First packet (cycle-relative) of a broadcast slot.
    #[inline]
    pub fn frame_start(&self, slot: u32) -> u64 {
        self.frame_starts[slot as usize]
    }

    /// Number of objects in a broadcast slot.
    #[inline]
    pub fn objects_in_slot(&self, slot: u32) -> u32 {
        self.framing.objects_per_frame[self.sigma[slot as usize] as usize]
    }

    /// Cycle-relative packet of object `idx`'s header within `slot`.
    #[inline]
    pub fn header_packet(&self, slot: u32, idx: u32) -> u64 {
        debug_assert!(idx < self.objects_in_slot(slot));
        self.frame_starts[slot as usize]
            + self.framing.table_packets as u64
            + idx as u64 * self.framing.object_packets as u64
    }

    /// The broadcast slot containing the cycle-relative packet `pos`.
    pub fn slot_of_packet(&self, pos: u64) -> u32 {
        debug_assert!(pos < self.cycle_packets);
        match self.frame_starts.binary_search(&pos) {
            Ok(i) => i as u32,
            Err(i) => (i - 1) as u32,
        }
    }

    /// The first packet of the next frame boundary at or after the absolute
    /// instant `abs` (absolute, possibly rolling into the next cycle).
    pub fn next_frame_boundary(&self, abs: u64) -> (u64, u32) {
        let rel = abs % self.cycle_packets;
        match self.frame_starts.binary_search(&rel) {
            Ok(i) => (abs, i as u32),
            Err(i) => {
                if i == self.frame_starts.len() {
                    // Wrap to slot 0 of the next cycle.
                    (abs + (self.cycle_packets - rel), 0)
                } else {
                    (abs + (self.frame_starts[i] - rel), i as u32)
                }
            }
        }
    }

    /// Number of interleaved blocks (`m`, clamped to `nF`).
    #[inline]
    pub fn n_blocks(&self) -> u32 {
        self.block_start_frames.len() as u32
    }

    /// HC-order frame index at which block `c` starts.
    #[inline]
    pub fn block_start_frame(&self, c: u32) -> u32 {
        self.block_start_frames[c as usize]
    }

    /// Minimum HC value of each block (ascending) — the schema values a
    /// client uses to attribute a target HC to its block.
    #[inline]
    pub fn block_min_hc(&self) -> &[u64] {
        &self.block_min_hc
    }

    /// Smallest HC value of any object in the cycle.
    #[inline]
    pub fn global_min_hc(&self) -> u64 {
        self.block_min_hc[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FramingPolicy;

    fn layout(n: u32, m: u32, capacity: u32) -> DsiLayout {
        // Pin the one-packet rule so frame counts below stay stable
        // (nF = 8 at 64 B for 10,000 objects).
        let cfg = DsiConfig {
            segments: m,
            framing: FramingPolicy::OnePacketTable,
            ..DsiConfig::paper_default().with_capacity(capacity)
        };
        // Synthetic ascending frame minima.
        let framing = compute_framing(&cfg, n);
        let mins: Vec<u64> = (0..framing.n_frames as u64).map(|i| i * 100 + 5).collect();
        DsiLayout::new(cfg, n, &mins)
    }

    #[test]
    fn sigma_is_identity_without_reorganization() {
        let l = layout(10_000, 1, 64);
        assert_eq!(l.n_frames(), 8);
        for slot in 0..8 {
            assert_eq!(l.hc_index_of_slot(slot), slot);
            assert_eq!(l.slot_of_hc_index(slot), slot);
        }
    }

    #[test]
    fn sigma_interleaves_two_blocks_folded() {
        // Default style folds the second block: adjacent HC frames 3 and 4
        // (across the block boundary) end up in adjacent slots.
        let l = layout(10_000, 2, 64);
        let order: Vec<u32> = (0..8).map(|s| l.hc_index_of_slot(s)).collect();
        assert_eq!(order, vec![0, 7, 1, 6, 2, 5, 3, 4]);
        for t in 0..8 {
            assert_eq!(l.hc_index_of_slot(l.slot_of_hc_index(t)), t);
        }
    }

    #[test]
    fn sigma_interleaves_two_blocks_round_robin() {
        let cfg = DsiConfig {
            segments: 2,
            framing: FramingPolicy::OnePacketTable,
            reorg_style: crate::config::ReorgStyle::RoundRobin,
            ..DsiConfig::paper_default()
        };
        let framing = compute_framing(&cfg, 10_000);
        let mins: Vec<u64> = (0..framing.n_frames as u64).map(|i| i * 100 + 5).collect();
        let l = DsiLayout::new(cfg, 10_000, &mins);
        let order: Vec<u32> = (0..8).map(|s| l.hc_index_of_slot(s)).collect();
        assert_eq!(order, vec![0, 4, 1, 5, 2, 6, 3, 7]);
    }

    #[test]
    fn sigma_is_permutation_for_uneven_blocks() {
        // 10 objects, C=64 → nF=8? fit=3 → nF=8 but clamp to N=10 → 8; use
        // odd m to exercise uneven chunks.
        let l = layout(10, 3, 64);
        let nf = l.n_frames();
        let mut seen = vec![false; nf as usize];
        for slot in 0..nf {
            let t = l.hc_index_of_slot(slot);
            assert!(!seen[t as usize]);
            seen[t as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn frame_geometry_consistent() {
        let l = layout(10_000, 2, 64);
        // Every frame: 1 table packet + 1250 × 16 object packets.
        assert_eq!(l.frame_start(0), 0);
        assert_eq!(l.frame_start(1), 1 + 1250 * 16);
        assert_eq!(l.cycle_packets(), 8 * (1 + 1250 * 16));
        assert_eq!(l.header_packet(0, 0), 1);
        assert_eq!(l.header_packet(0, 2), 1 + 32);
        // slot_of_packet inverts frame_start.
        for slot in 0..l.n_frames() {
            assert_eq!(l.slot_of_packet(l.frame_start(slot)), slot);
            assert_eq!(l.slot_of_packet(l.frame_start(slot) + 5), slot);
        }
    }

    #[test]
    fn next_frame_boundary_wraps() {
        let l = layout(10_000, 1, 64);
        let cyc = l.cycle_packets();
        // At a boundary: stays.
        assert_eq!(l.next_frame_boundary(0), (0, 0));
        let f1 = l.frame_start(1);
        assert_eq!(l.next_frame_boundary(f1 - 3), (f1, 1));
        // Inside the last frame: wraps to slot 0 of the next cycle.
        let (abs, slot) = l.next_frame_boundary(cyc - 1);
        assert_eq!((abs, slot), (cyc, 0));
        // Absolute positions beyond one cycle work too.
        let (abs, slot) = l.next_frame_boundary(cyc + f1 - 1);
        assert_eq!((abs, slot), (cyc + f1, 1));
    }

    #[test]
    fn block_metadata() {
        let l = layout(10_000, 2, 64);
        assert_eq!(l.n_blocks(), 2);
        assert_eq!(l.block_start_frame(0), 0);
        assert_eq!(l.block_start_frame(1), 4);
        assert_eq!(l.block_min_hc(), &[5, 405]);
        assert_eq!(l.global_min_hc(), 5);
    }
}
