//! Cross-client decomposition sharing for fleet workloads.
//!
//! A fleet of concurrent clients (see `dsi_sim::fleet`) running the same
//! window query from different tune-in instants all begin with the same
//! pure computation: decomposing the window into its HC target segments
//! via [`dsi_hilbert::ranges_in_rect`]. The decomposition depends only on
//! the query rectangle (the curve and grid are fixed per broadcast), so a
//! fleet shard can compute it once and share it across every co-located
//! client. kNN queries get the same effect at a coarser granularity: the
//! fleet engine coalesces identical kNN queries into *cohorts* that share
//! the entire drive — circle decompositions and candidate tables
//! included — so no kNN-specific cache is needed here.
//!
//! [`ShareCache`] is that memo table. It is **opt-in and thread-scoped**:
//! a worker installs an [`Arc<ShareCache>`] via [`install`] (usually one
//! cache shared by all workers of a fleet run), and every
//! [`crate::DsiAir::window_query`] on that thread consults it. With no
//! cache installed the query computes the decomposition directly, as
//! before — single-query paths pay one thread-local read and nothing
//! else.
//!
//! # Determinism
//!
//! The cache memoizes a *pure function* keyed by the exact rectangle
//! bits, so a hit returns bit-identical segments to the miss path and
//! query outcomes cannot depend on cache state or on which worker warmed
//! an entry. The hit/miss *counters* are the one exception: under
//! concurrent misses of the same key both workers compute (last insert
//! wins, values are identical), so counter totals may vary by a few
//! units across runs with more than one worker. Outcomes never do.
//!
//! The map is a `BTreeMap` (not a hash map) per the repo's `dsi-lint`
//! `hash` rule: no hash-ordered container in golden-affecting library
//! paths.

// Synchronization goes through the `interleave` shims (pure `std`
// re-exports in normal builds) so the `dsi-model` suite can explore the
// concurrent insert/hit interleavings under `--cfg dsi_model`.
// dsi-lint: lock-order: windows
use interleave::sync::atomic::{AtomicU64, Ordering};
use interleave::sync::Mutex;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;

use dsi_geom::{GridMapper, Rect};
use dsi_hilbert::{ranges_in_rect, HcRange, HilbertCurve};

/// Exact-bits key of a query rectangle.
type RectKey = [u64; 4];

fn rect_key(rect: &Rect) -> RectKey {
    [
        rect.min.x.to_bits(),
        rect.min.y.to_bits(),
        rect.max.x.to_bits(),
        rect.max.y.to_bits(),
    ]
}

/// A shared memo table of window-segment decompositions, scoped to one
/// broadcast (callers must not reuse a cache across different
/// curve/grid pairs; the fleet engine creates one per run).
#[derive(Debug, Default)]
pub struct ShareCache {
    windows: Mutex<BTreeMap<RectKey, Arc<Vec<HcRange>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShareCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lookups that returned a previously computed decomposition.
    pub fn window_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute (and then published the result).
    pub fn window_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The shared decomposition of `rect`, computing and publishing it on
    /// first sight.
    fn window_segments(
        &self,
        curve: &HilbertCurve,
        mapper: &GridMapper,
        rect: &Rect,
    ) -> Arc<Vec<HcRange>> {
        let key = rect_key(rect);
        if let Some(hit) = self.windows.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Compute outside the lock: a concurrent miss of the same key
        // duplicates pure work instead of serializing all workers.
        let segments = Arc::new(ranges_in_rect(curve, mapper, rect));
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.windows
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| Arc::clone(&segments))
            .clone()
    }

    /// [`ShareCache::window_segments`] for callers outside the crate —
    /// the `dsi-model` suite drives concurrent insert/hit scenarios
    /// against the cache directly and asserts bit-identical results in
    /// every explored schedule.
    pub fn segments_for(
        &self,
        curve: &HilbertCurve,
        mapper: &GridMapper,
        rect: &Rect,
    ) -> Arc<Vec<HcRange>> {
        self.window_segments(curve, mapper, rect)
    }
}

thread_local! {
    /// The cache consulted by this thread's window queries, if any.
    static INSTALLED: RefCell<Option<Arc<ShareCache>>> = const { RefCell::new(None) };
}

/// Installs `cache` as this thread's decomposition memo (or clears it
/// with `None`), returning the previously installed cache. Fleet workers
/// install one shared cache for the duration of a task; plain query
/// paths never need to call this.
pub fn install(cache: Option<Arc<ShareCache>>) -> Option<Arc<ShareCache>> {
    INSTALLED.with(|slot| std::mem::replace(&mut *slot.borrow_mut(), cache))
}

/// The window-segment decomposition of `rect`: through this thread's
/// installed [`ShareCache`] when one is present (shared, memoized),
/// computed directly otherwise. Bit-identical either way.
pub(crate) fn window_segments(
    curve: &HilbertCurve,
    mapper: &GridMapper,
    rect: &Rect,
) -> Vec<HcRange> {
    let cached = INSTALLED.with(|slot| {
        slot.borrow()
            .as_ref()
            .map(|cache| cache.window_segments(curve, mapper, rect))
    });
    match cached {
        Some(shared) => shared.as_ref().clone(),
        None => ranges_in_rect(curve, mapper, rect),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::DsiAir;
    use crate::config::DsiConfig;
    use dsi_datagen::{uniform, SpatialDataset};

    #[test]
    fn cached_segments_are_bit_identical_and_counted() {
        let ds = SpatialDataset::build(&uniform(300, 11), 9);
        let air = DsiAir::build(&ds, DsiConfig::paper_default());
        let rect = Rect::new(0.1, 0.2, 0.6, 0.7);
        let direct = ranges_in_rect(air.curve(), air.mapper(), &rect);

        let cache = Arc::new(ShareCache::new());
        let prev = install(Some(Arc::clone(&cache)));
        assert!(prev.is_none());
        let first = window_segments(air.curve(), air.mapper(), &rect);
        let second = window_segments(air.curve(), air.mapper(), &rect);
        install(None);

        assert_eq!(first, direct);
        assert_eq!(second, direct);
        assert_eq!(cache.window_misses(), 1);
        assert_eq!(cache.window_hits(), 1);

        // With the cache uninstalled, lookups bypass it entirely.
        let third = window_segments(air.curve(), air.mapper(), &rect);
        assert_eq!(third, direct);
        assert_eq!(cache.window_hits(), 1);
    }

    #[test]
    fn install_returns_previous_cache() {
        let a = Arc::new(ShareCache::new());
        let b = Arc::new(ShareCache::new());
        assert!(install(Some(Arc::clone(&a))).is_none());
        let prev = install(Some(b)).expect("a was installed");
        assert!(Arc::ptr_eq(&prev, &a));
        install(None);
    }
}
