//! Window queries over DSI (paper Algorithm 1).
//!
//! The client decomposes the query window into the target segment set `H`
//! (contiguous HC intervals), then drives the shared query loop: it hops
//! from index table to index table toward the first unaccounted segment
//! (energy-efficient forwarding), scans the frames whose spans overlap a
//! segment, retrieves the objects whose exact coordinates fall in the
//! window, and terminates once every segment is covered by cleared HC
//! regions.

use dsi_broadcast::Tuner;
use dsi_datagen::Object;
use dsi_geom::Rect;
use dsi_hilbert::HcRange;

use crate::build::{DsiAir, DsiPacket};
use crate::client::{run_query, QueryMode, TargetsChange};
use crate::state::Knowledge;

struct WindowMode {
    window: Rect,
    segments: Vec<HcRange>,
    /// Targets are static: they are handed to the driver exactly once.
    published: bool,
    result: Vec<u32>,
}

impl QueryMode for WindowMode {
    fn refresh_targets(&mut self, _know: &Knowledge, out: &mut Vec<HcRange>) -> TargetsChange {
        if self.published {
            return TargetsChange::Unchanged;
        }
        self.published = true;
        out.clear();
        out.extend_from_slice(&self.segments);
        TargetsChange::Replaced
    }

    fn on_header(&mut self, o: &Object) -> bool {
        self.window.contains(o.pos)
    }

    fn on_retrieved(&mut self, o: &Object) {
        self.result.push(o.id);
    }
}

impl DsiAir {
    /// Answers a window query on the air: returns the ids of all objects
    /// inside `window`, ascending. Metrics accrue on `tuner`.
    pub fn window_query(&self, tuner: &mut Tuner<'_, DsiPacket>, window: &Rect) -> Vec<u32> {
        // Through the thread's installed share cache when a fleet worker
        // put one up (bit-identical either way; see `crate::share`).
        let segments = crate::share::window_segments(self.curve(), self.mapper(), window);
        if segments.is_empty() {
            return Vec::new();
        }
        let mut mode = WindowMode {
            window: *window,
            segments,
            published: false,
            result: Vec::new(),
        };
        run_query(self, tuner, &mut mode);
        mode.result.sort_unstable();
        mode.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DsiConfig, FramingPolicy};
    use dsi_broadcast::LossModel;
    use dsi_datagen::{uniform, window_queries, SpatialDataset};

    fn check_windows(cfg: DsiConfig, n: usize, order: u8, n_queries: usize) {
        let ds = SpatialDataset::build(&uniform(n, 77), order);
        let air = DsiAir::build(&ds, cfg);
        let windows = window_queries(n_queries, 0.25, 99);
        let cycle = air.program().len();
        for (qi, w) in windows.iter().enumerate() {
            let start = (qi as u64 * 7919) % cycle;
            let mut tuner = Tuner::tune_in(air.program(), start, LossModel::None, qi as u64);
            let got = air.window_query(&mut tuner, w);
            let want = ds.brute_window(w);
            assert_eq!(got, want, "query {qi} ({w:?}) cfg {cfg:?}");
            let s = tuner.stats();
            assert!(s.tuning_packets <= s.latency_packets);
            assert!(
                s.latency_packets <= 3 * cycle,
                "latency {} over 3 cycles (cycle {cycle})",
                s.latency_packets
            );
        }
    }

    #[test]
    fn correct_on_paper_default() {
        check_windows(DsiConfig::paper_default(), 400, 9, 24);
    }

    #[test]
    fn correct_with_reorganization() {
        check_windows(DsiConfig::paper_reorganized(), 400, 9, 24);
    }

    #[test]
    fn correct_with_many_segments_per_frame() {
        // Few large frames: several target segments land in one frame.
        let cfg = DsiConfig {
            framing: FramingPolicy::FixedFrameCount(4),
            ..DsiConfig::paper_default()
        };
        check_windows(cfg, 300, 8, 16);
    }

    #[test]
    fn correct_with_object_factor_one() {
        let cfg = DsiConfig {
            framing: FramingPolicy::FixedObjectFactor(1),
            ..DsiConfig::paper_default()
        };
        check_windows(cfg, 200, 8, 12);
    }

    #[test]
    fn correct_with_four_segments() {
        let cfg = DsiConfig {
            segments: 4,
            ..DsiConfig::paper_default()
        };
        check_windows(cfg, 300, 8, 16);
    }

    #[test]
    fn empty_window_answers_instantly() {
        let ds = SpatialDataset::build(&uniform(100, 3), 8);
        let air = DsiAir::build(&ds, DsiConfig::paper_default());
        let mut tuner = Tuner::tune_in(air.program(), 5, LossModel::None, 1);
        // A window outside the unit square covers no grid cells.
        let got = air.window_query(&mut tuner, &Rect::new(2.0, 2.0, 3.0, 3.0));
        assert!(got.is_empty());
        assert_eq!(tuner.stats().latency_packets, 0);
    }

    #[test]
    fn whole_space_window_returns_everything() {
        let ds = SpatialDataset::build(&uniform(150, 5), 8);
        let air = DsiAir::build(&ds, DsiConfig::paper_reorganized());
        let mut tuner = Tuner::tune_in(air.program(), 123, LossModel::None, 1);
        let got = air.window_query(&mut tuner, &Rect::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(got.len(), 150);
    }

    #[test]
    fn correct_under_heavy_index_loss() {
        let ds = SpatialDataset::build(&uniform(300, 21), 9);
        for cfg in [DsiConfig::paper_default(), DsiConfig::paper_reorganized()] {
            let air = DsiAir::build(&ds, cfg);
            let windows = window_queries(12, 0.3, 5);
            for (qi, w) in windows.iter().enumerate() {
                let mut tuner = Tuner::tune_in(
                    air.program(),
                    (qi as u64 * 1237) % air.program().len(),
                    LossModel::iid(0.5),
                    qi as u64,
                );
                let got = air.window_query(&mut tuner, w);
                assert_eq!(got, ds.brute_window(w), "lossy query {qi}");
            }
        }
    }
}
