//! k-nearest-neighbour queries over DSI (paper §3.4–3.5).
//!
//! The client maintains a *search space*: a circle around the query point
//! guaranteed to contain the k nearest objects. Index-table entries are
//! *virtual candidates* ("the object represented by HC′ᵢ", Algorithm 2):
//! each is a real object whose cell — hence an upper bound on its distance
//! — is known from its HC value alone. The circle's radius is the k-th
//! smallest upper bound and only ever shrinks; objects and HC regions
//! provably outside it are skipped. The query completes when the k best
//! candidates are fully retrieved and every uncleared part of the circle
//! is farther than the k-th candidate.
//!
//! The search space is decomposed **as a circle**, not as its bounding
//! square: the `dsi_hilbert` circle kernel prunes quadrants outside the
//! circle during the descent, and every produced range carries its
//! exact distance bounds. Because the circle only shrinks, a radius
//! tightening *narrows* the existing target set
//! ([`narrow_ranges_to_circle_into`]: drop ranges now provably outside,
//! copy ranges still provably inside, re-split only boundary ranges)
//! instead of re-decomposing the world — and the driver intersects its
//! remainders with the narrowed targets in place
//! ([`TargetsChange::Narrowed`]). Range distances live on the ranges
//! themselves, so no side cache of interval distances exists to grow
//! without bound under loss.
//!
//! Two navigation strategies from the paper:
//!
//! * **Conservative** — proceed to the earliest-arriving frame that may
//!   still hold circle content: small latency, more tuning (slow shrink).
//! * **Aggressive** — follow the index entry whose frame is closest to the
//!   query point: fast shrink and low tuning, but skipped regions must be
//!   re-checked a cycle later, extending latency.
//!
//! The broadcast reorganization (§3.5, `segments ≥ 2` in
//! [`crate::DsiConfig`]) gives the conservative strategy early views of
//! remote regions, combining the strengths of both.

use std::collections::BTreeMap;

use dsi_broadcast::Tuner;
use dsi_datagen::Object;
use dsi_geom::{dist2, GridMapper, Point};
use dsi_hilbert::{narrow_ranges_to_circle_into, DistRange, HcRange, HilbertCurve};

use crate::build::{DsiAir, DsiPacket};
use crate::client::{run_query, NavPick, QueryMode, TargetsChange};
use crate::state::Knowledge;

/// kNN search-space navigation strategy (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnStrategy {
    /// Retrieve every frame that may still matter, in broadcast order.
    Conservative,
    /// Jump to the reachable frame nearest the query point.
    Aggressive,
}

/// Peak-memory and decomposition counters of one kNN query, for the
/// bounded-memory property tests. Not part of the public API surface.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, Default)]
pub struct KnnProbe {
    /// Largest number of annotated ranges *held* at any one time — the
    /// current decomposition plus the narrowing swap buffer. This is the
    /// quantity that must stay flat across shrinks: a reintroduced
    /// accumulate-forever structure would drive it toward
    /// [`KnnProbe::total_ranges`].
    pub peak_live_ranges: usize,
    /// Largest single target decomposition.
    pub largest_refresh: usize,
    /// Ranges produced across all decompositions — what a never-evicted
    /// per-interval distance cache would have accumulated.
    pub total_ranges: usize,
    /// Number of target rebuilds (circle shrinks reaching the driver).
    pub refreshes: usize,
    /// Largest candidate-set size.
    pub peak_cands: usize,
}

/// One known-to-exist object, keyed by its HC value.
#[derive(Debug, Clone, Copy)]
struct Cand {
    /// Upper bound on the squared distance (cell max-distance for virtual
    /// candidates; the exact distance once the header has been seen).
    ub2: f64,
    /// Exact squared distance (only when the header has been seen).
    d2: f64,
    /// Object id (only when the header has been seen).
    id: u32,
    /// Whether the full record has been retrieved.
    retrieved: bool,
}

/// The candidate set with its k-th-bound cache.
struct Candidates {
    k: usize,
    by_hc: BTreeMap<u64, Cand>,
    r2_cache: Option<f64>,
    /// Reused selection buffer: the radius and completion checks run every
    /// driver iteration and must not allocate in steady state.
    select_buf: Vec<(f64, u64, bool)>,
}

impl Candidates {
    fn new(k: usize) -> Self {
        Self {
            k,
            by_hc: BTreeMap::new(),
            r2_cache: None,
            select_buf: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.by_hc.len()
    }

    /// Fills `select_buf` and partitions it so its first `k` entries are
    /// the k best candidates (smallest upper bound, ties broken by HC
    /// value). Returns `false` while fewer than k candidates are known.
    /// Single selection shared by the radius and the completion check so
    /// the two can never disagree on the top-k.
    fn select_top_k(&mut self) -> bool {
        if self.by_hc.len() < self.k {
            return false;
        }
        self.select_buf.clear();
        self.select_buf
            .extend(self.by_hc.iter().map(|(&hc, c)| (c.ub2, hc, c.retrieved)));
        self.select_buf.select_nth_unstable_by(self.k - 1, |a, b| {
            a.partial_cmp(b).expect("bounds are never NaN")
        });
        true
    }

    /// The squared radius of the search space: the k-th smallest upper
    /// bound over known-distinct objects (∞ while fewer than k are known).
    fn r2(&mut self) -> f64 {
        if let Some(v) = self.r2_cache {
            return v;
        }
        let v = if self.select_top_k() {
            self.select_buf[self.k - 1].0
        } else {
            f64::INFINITY
        };
        self.r2_cache = Some(v);
        v
    }

    /// Whether the k best candidates have all been retrieved.
    fn top_k_retrieved(&mut self) -> bool {
        self.select_top_k() && self.select_buf[..self.k].iter().all(|&(_, _, r)| r)
    }

    /// Offers a virtual candidate. Skipped if it cannot tighten the k-th
    /// bound (its upper bound already exceeds the current radius).
    fn offer_virtual(&mut self, hc: u64, ub2: f64) {
        if self.by_hc.contains_key(&hc) {
            return;
        }
        if self.by_hc.len() >= self.k && ub2 >= self.r2() {
            return;
        }
        self.by_hc.insert(
            hc,
            Cand {
                ub2,
                d2: f64::NAN,
                id: u32::MAX,
                retrieved: false,
            },
        );
        self.r2_cache = None;
    }

    /// Offers one batch of virtual candidates (an index table's entries):
    /// a single top-k selection bounds the whole batch, so a frame with m
    /// entries costs one O(n) selection instead of m. The stale bound
    /// admits a superset of what per-offer filtering would (offers the
    /// mid-batch radius would already reject), but each extra member's
    /// upper bound is at least the radius at its insertion and the radius
    /// never grows — extras rank strictly beyond the k-th bound forever,
    /// so the radius is unchanged and completion is at most deferred. The
    /// cache is invalidated once, after the batch, which keeps the radius
    /// and completion checks reading one consistent selection (asserted
    /// against the sequential oracle in the differential property tests).
    fn offer_virtuals(&mut self, offers: &[(u64, f64)]) {
        let r2 = self.r2();
        let mut inserted = false;
        for &(hc, ub2) in offers {
            if self.by_hc.len() >= self.k && ub2 >= r2 {
                continue;
            }
            if self.by_hc.contains_key(&hc) {
                continue;
            }
            self.by_hc.insert(
                hc,
                Cand {
                    ub2,
                    d2: f64::NAN,
                    id: u32::MAX,
                    retrieved: false,
                },
            );
            inserted = true;
        }
        if inserted {
            self.r2_cache = None;
        }
    }

    /// Header seen and the object is (still) wanted: record its exact
    /// distance, keeping any retrieved flag.
    fn resolve_wanted(&mut self, hc: u64, d2: f64, id: u32) {
        let c = self.by_hc.entry(hc).or_insert(Cand {
            ub2: d2,
            d2,
            id,
            retrieved: false,
        });
        c.ub2 = d2;
        c.d2 = d2;
        c.id = id;
        self.r2_cache = None;
    }

    /// Header seen but the object is provably outside the search space:
    /// drop the virtual candidate. Its upper bound necessarily exceeded
    /// the k-th bound (exactness can only lower a bound), so removal never
    /// loosens the radius.
    fn drop_unwanted(&mut self, hc: u64) {
        if let Some(c) = self.by_hc.get(&hc) {
            if !c.retrieved {
                self.by_hc.remove(&hc);
                self.r2_cache = None;
            }
        }
    }

    fn mark_retrieved(&mut self, hc: u64) {
        if let Some(c) = self.by_hc.get_mut(&hc) {
            c.retrieved = true;
        }
    }

    /// The final answer: ids of the k nearest retrieved objects
    /// (distance, then id, ascending), returned in ascending id order.
    fn result_ids(&self) -> Vec<u32> {
        let mut retr: Vec<(f64, u32)> = self
            .by_hc
            .values()
            .filter(|c| c.retrieved)
            .map(|c| (c.d2, c.id))
            .collect();
        retr.sort_unstable_by(|a, b| a.partial_cmp(b).expect("distances are never NaN"));
        let mut ids: Vec<u32> = retr.into_iter().take(self.k).map(|(_, id)| id).collect();
        ids.sort_unstable();
        ids
    }
}

/// Re-decompose the search space only when the squared radius has dropped
/// below this fraction of the radius the targets were published for.
///
/// The radius tightens dozens of times per query, mostly by slivers;
/// re-deriving the rim of a ~2,000-range decomposition for every sliver
/// dominated kNN CPU time. Keeping the published targets — always a
/// correct *superset* of the true circle — until the radius has shrunk
/// materially trades a bounded, transient over-coverage for a multiplied
/// refresh cost: at 0.7 the measured extra air cost is ≈0.1% of tuning
/// bytes while client throughput more than doubles. Correctness is
/// unaffected (the extra rim is cleared or out-scanned like any target),
/// and every published set is still an exact circle decomposition.
const REFRESH_HYSTERESIS: f64 = 0.7;

struct KnnMode {
    q: Point,
    curve: HilbertCurve,
    mapper: GridMapper,
    strategy: KnnStrategy,
    cands: Candidates,
    /// Radius the driver-held target set was computed for; targets are
    /// narrowed (in place) only when the circle shrinks.
    targets_r2: f64,
    /// Whether the initial target set has been published.
    published: bool,
    /// The current target decomposition with exact distance bounds,
    /// sorted by HC. Remainder liveness reads distances straight off this
    /// list — there is no unbounded side cache of interval distances.
    targets: Vec<DistRange>,
    /// Swap buffer for narrowing the targets between shrinks.
    narrow_buf: Vec<DistRange>,
    /// Scratch for one table's batched `(hc, ub2)` offers.
    offer_buf: Vec<(u64, f64)>,
    /// Scratch for the aggressive strategy's sorted entry bounds.
    nav_bounds: Vec<u64>,
    probe: KnnProbe,
}

impl KnnMode {
    fn new(air: &DsiAir, q: Point, k: usize, strategy: KnnStrategy) -> Self {
        Self {
            q,
            curve: *air.curve(),
            mapper: *air.mapper(),
            strategy,
            cands: Candidates::new(k),
            targets_r2: f64::INFINITY,
            published: false,
            targets: Vec::new(),
            narrow_buf: Vec::new(),
            offer_buf: Vec::new(),
            nav_bounds: Vec::new(),
            probe: KnnProbe::default(),
        }
    }

    /// Exact lower bound on the distance of remainder `r`: the distance of
    /// the published target range containing it. Remainders are derived
    /// from the targets by subtraction and intersection, so each lies
    /// inside exactly one target range; the parent's minimum is a valid
    /// (and for whole-target remainders exact) bound.
    fn target_min_d2(&self, r: &HcRange) -> f64 {
        let i = self.targets.partition_point(|t| t.range.hi < r.lo);
        match self.targets.get(i) {
            Some(t) if t.range.lo <= r.lo => {
                debug_assert!(r.hi <= t.range.hi, "remainder {r:?} straddles targets");
                t.min_d2
            }
            // Not under any published target (only reachable before the
            // first publication): conservatively live.
            _ => 0.0,
        }
    }
}

impl QueryMode for KnnMode {
    fn refresh_targets(&mut self, _know: &Knowledge, out: &mut Vec<HcRange>) -> TargetsChange {
        let r2 = self.cands.r2();
        if self.published && r2 >= self.targets_r2 * REFRESH_HYSTERESIS {
            return TargetsChange::Unchanged;
        }
        let change = if self.published {
            // The circle only shrinks, so the rebuilt targets cover a
            // subset of the previous ones: the driver may intersect its
            // remainders in place.
            TargetsChange::Narrowed
        } else {
            TargetsChange::Replaced
        };
        if !self.published {
            // Fewer than k candidates known: the whole space is in play.
            // Seeding it as one synthetic range (min 0, max ∞) makes the
            // first finite radius a plain narrowing of it.
            self.targets.clear();
            self.targets.push(DistRange {
                range: HcRange::new(0, self.curve.max_d()),
                min_d2: 0.0,
                max_min_d2: f64::INFINITY,
            });
        }
        self.published = true;
        self.targets_r2 = r2;
        if r2.is_finite() {
            narrow_ranges_to_circle_into(
                &self.curve,
                &self.mapper,
                self.q,
                r2,
                &self.targets,
                &mut self.narrow_buf,
            );
            std::mem::swap(&mut self.targets, &mut self.narrow_buf);
        }
        self.probe.refreshes += 1;
        self.probe.total_ranges += self.targets.len();
        self.probe.largest_refresh = self.probe.largest_refresh.max(self.targets.len());
        self.probe.peak_live_ranges = self
            .probe
            .peak_live_ranges
            .max(self.targets.len() + self.narrow_buf.len());
        out.clear();
        out.reserve(self.targets.len());
        out.extend(self.targets.iter().map(|t| t.range));
        change
    }

    fn on_virtuals(&mut self, hcs: &[u64]) {
        self.offer_buf.clear();
        for &hc in hcs {
            let rect = self.mapper.cell_rect(self.curve.d2xy(hc));
            self.offer_buf.push((hc, rect.max_dist2(self.q)));
        }
        self.cands.offer_virtuals(&self.offer_buf);
        self.probe.peak_cands = self.probe.peak_cands.max(self.cands.len());
    }

    fn on_header(&mut self, o: &Object) -> bool {
        let d2 = dist2(self.q, o.pos);
        if d2 <= self.cands.r2() {
            self.cands.resolve_wanted(o.hc, d2, o.id);
            self.probe.peak_cands = self.probe.peak_cands.max(self.cands.len());
            true
        } else {
            self.cands.drop_unwanted(o.hc);
            false
        }
    }

    fn on_retrieved(&mut self, o: &Object) {
        self.cands.mark_retrieved(o.hc);
    }

    fn complete(&mut self) -> bool {
        self.cands.top_k_retrieved()
    }

    fn nav_pick(&mut self, rem: &[HcRange], entry_targets: &[(u32, u64)]) -> NavPick {
        match self.strategy {
            KnnStrategy::Conservative => NavPick::Earliest,
            KnnStrategy::Aggressive => {
                // Follow the entry whose frame lies closest to the query
                // point — but only among entries whose region (up to the
                // next entry's bound) still overlaps a *live* remainder.
                // Jumping to the nearest frame whose content is provably
                // outside the current circle wastes the retune and a full
                // extra cycle.
                let r2 = self.cands.r2();
                // Each entry's region ends at the next-larger entry bound;
                // sort the bounds once so the successor is a binary search
                // instead of a scan per entry.
                self.nav_bounds.clear();
                self.nav_bounds
                    .extend(entry_targets.iter().map(|&(_, h)| h));
                self.nav_bounds.sort_unstable();
                let mut best: Option<(f64, u32)> = None;
                for &(slot, hc) in entry_targets {
                    let next = match self.nav_bounds.partition_point(|&h| h <= hc) {
                        i if i < self.nav_bounds.len() => self.nav_bounds[i],
                        _ => u64::MAX,
                    };
                    let mut i = rem.partition_point(|r| r.hi < hc);
                    let mut live = false;
                    while i < rem.len() && rem[i].lo < next {
                        if self.target_min_d2(&rem[i]) <= r2 {
                            live = true;
                            break;
                        }
                        i += 1;
                    }
                    if !live {
                        continue;
                    }
                    let d2 = self.mapper.cell_rect(self.curve.d2xy(hc)).min_dist2(self.q);
                    if best.is_none_or(|(b, _)| d2 < b) {
                        best = Some((d2, slot));
                    }
                }
                match best {
                    Some((_, slot)) => NavPick::Slot(slot),
                    None => NavPick::Earliest,
                }
            }
        }
    }
}

impl DsiAir {
    /// Answers a kNN query on the air: returns the ids of the `k` objects
    /// nearest to `q` (ties broken by id), in ascending id order. Metrics
    /// accrue on `tuner`.
    pub fn knn_query(
        &self,
        tuner: &mut Tuner<'_, DsiPacket>,
        q: Point,
        k: usize,
        strategy: KnnStrategy,
    ) -> Vec<u32> {
        self.knn_query_probed(tuner, q, k, strategy).0
    }

    /// [`DsiAir::knn_query`] plus the query's memory/decomposition probe.
    #[doc(hidden)]
    pub fn knn_query_probed(
        &self,
        tuner: &mut Tuner<'_, DsiPacket>,
        q: Point,
        k: usize,
        strategy: KnnStrategy,
    ) -> (Vec<u32>, KnnProbe) {
        let k = k.min(self.objects().len());
        if k == 0 {
            return (Vec::new(), KnnProbe::default());
        }
        let mut mode = KnnMode::new(self, q, k, strategy);
        run_query(self, tuner, &mut mode);
        (mode.cands.result_ids(), mode.probe)
    }
}

/// Test-only access to the candidate set, for the differential property
/// tests of the batched-offer API (`crates/core/tests/props.rs`).
#[doc(hidden)]
pub mod testkit {
    use super::{Cand, Candidates};

    /// A wrapped [`Candidates`] exposing its transitions and checks.
    pub struct CandSet(Candidates);

    impl CandSet {
        /// A candidate set selecting the k-th bound.
        pub fn new(k: usize) -> Self {
            Self(Candidates::new(k))
        }

        /// Sequential-oracle offer: re-filters against a fresh radius per
        /// offer (the pre-batching behaviour).
        pub fn offer_one(&mut self, hc: u64, ub2: f64) {
            self.0.offer_virtual(hc, ub2);
        }

        /// Batched offer: one radius bound for the whole batch.
        pub fn offer_batch(&mut self, offers: &[(u64, f64)]) {
            self.0.offer_virtuals(offers);
        }

        /// Header-event transition, exactly as the driver applies it:
        /// resolves the object when it is inside the current radius, drops
        /// it otherwise. Returns whether it was wanted.
        pub fn header(&mut self, hc: u64, d2: f64, id: u32) -> bool {
            if d2 <= self.0.r2() {
                self.0.resolve_wanted(hc, d2, id);
                true
            } else {
                self.0.drop_unwanted(hc);
                false
            }
        }

        /// Marks a candidate's record as fully retrieved.
        pub fn mark_retrieved(&mut self, hc: u64) {
            self.0.mark_retrieved(hc);
        }

        /// The current squared search radius.
        pub fn r2(&mut self) -> f64 {
            self.0.r2()
        }

        /// Whether the k best candidates are all retrieved.
        pub fn top_k_retrieved(&mut self) -> bool {
            self.0.top_k_retrieved()
        }

        /// Number of candidates currently held.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether no candidates are held.
        pub fn is_empty(&self) -> bool {
            self.0.len() == 0
        }

        /// Asserts the radius cache is coherent: the cached radius equals
        /// the radius recomputed from a fresh selection, i.e. no mutation
        /// left a stale cache behind for the completion check to disagree
        /// with.
        pub fn assert_cache_coherent(&mut self) {
            let cached = self.0.r2();
            self.0.r2_cache = None;
            let fresh = self.0.r2();
            assert_eq!(cached, fresh, "stale radius cache");
        }

        /// The retrieved ids, nearest-first capped at k, ascending.
        pub fn result_ids(&self) -> Vec<u32> {
            self.0.result_ids()
        }
    }

    // Referenced so the struct fields count as used outside tests.
    const _: fn(&Cand) -> bool = |c| c.retrieved;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DsiConfig, FramingPolicy};
    use dsi_broadcast::LossModel;
    use dsi_datagen::{knn_points, uniform, SpatialDataset};

    fn check_knn(cfg: DsiConfig, strategy: KnnStrategy, n: usize, order: u8, ks: &[usize]) {
        let ds = SpatialDataset::build(&uniform(n, 31), order);
        let air = DsiAir::build(&ds, cfg);
        let queries = knn_points(10, 17);
        for (qi, &q) in queries.iter().enumerate() {
            for &k in ks {
                let start = (qi as u64 * 6151) % air.program().len();
                let mut tuner = Tuner::tune_in(air.program(), start, LossModel::None, qi as u64);
                let got = air.knn_query(&mut tuner, q, k, strategy);
                let want = ds.brute_knn(q, k);
                assert_eq!(got, want, "q{qi}={q:?} k={k} {strategy:?} {cfg:?}");
            }
        }
    }

    #[test]
    fn conservative_matches_brute_force() {
        check_knn(
            DsiConfig::paper_default(),
            KnnStrategy::Conservative,
            400,
            9,
            &[1, 4, 10],
        );
    }

    #[test]
    fn aggressive_matches_brute_force() {
        check_knn(
            DsiConfig::paper_default(),
            KnnStrategy::Aggressive,
            400,
            9,
            &[1, 4, 10],
        );
    }

    #[test]
    fn reorganized_matches_brute_force() {
        check_knn(
            DsiConfig::paper_reorganized(),
            KnnStrategy::Conservative,
            400,
            9,
            &[1, 4, 10],
        );
    }

    #[test]
    fn object_factor_one_matches() {
        let cfg = DsiConfig {
            framing: FramingPolicy::FixedObjectFactor(1),
            ..DsiConfig::paper_default()
        };
        check_knn(cfg, KnnStrategy::Conservative, 250, 8, &[3]);
        check_knn(cfg, KnnStrategy::Aggressive, 250, 8, &[3]);
    }

    #[test]
    fn k_equals_n_returns_all() {
        let ds = SpatialDataset::build(&uniform(40, 3), 8);
        let air = DsiAir::build(&ds, DsiConfig::paper_reorganized());
        let mut tuner = Tuner::tune_in(air.program(), 11, LossModel::None, 1);
        let got = air.knn_query(
            &mut tuner,
            Point::new(0.4, 0.6),
            40,
            KnnStrategy::Conservative,
        );
        assert_eq!(got.len(), 40);
        // k larger than N clamps.
        let mut tuner = Tuner::tune_in(air.program(), 11, LossModel::None, 1);
        let got = air.knn_query(
            &mut tuner,
            Point::new(0.4, 0.6),
            99,
            KnnStrategy::Conservative,
        );
        assert_eq!(got.len(), 40);
    }

    #[test]
    fn query_point_outside_space() {
        let ds = SpatialDataset::build(&uniform(120, 9), 8);
        let air = DsiAir::build(&ds, DsiConfig::paper_reorganized());
        let q = Point::new(1.8, -0.4);
        let mut tuner = Tuner::tune_in(air.program(), 77, LossModel::None, 2);
        let got = air.knn_query(&mut tuner, q, 5, KnnStrategy::Conservative);
        assert_eq!(got, ds.brute_knn(q, 5));
    }

    #[test]
    fn correct_under_loss_all_strategies() {
        let ds = SpatialDataset::build(&uniform(300, 21), 9);
        for cfg in [DsiConfig::paper_default(), DsiConfig::paper_reorganized()] {
            let air = DsiAir::build(&ds, cfg);
            for (qi, q) in knn_points(8, 3).into_iter().enumerate() {
                for strategy in [KnnStrategy::Conservative, KnnStrategy::Aggressive] {
                    let mut tuner = Tuner::tune_in(
                        air.program(),
                        (qi as u64 * 911) % air.program().len(),
                        LossModel::iid(0.4),
                        qi as u64,
                    );
                    let got = air.knn_query(&mut tuner, q, 10, strategy);
                    assert_eq!(got, ds.brute_knn(q, 10), "lossy q{qi} {strategy:?}");
                }
            }
        }
    }

    /// Regression for the aggressive strategy ignoring `rem`: the picked
    /// slot must always have a live remainder in its entry's region; an
    /// entry with none is skipped even when its frame is the one nearest
    /// the query point (the old behaviour jumped there anyway, wasting the
    /// retune and a full cycle).
    #[test]
    fn aggressive_nav_skips_entries_without_live_targets() {
        let ds = SpatialDataset::build(&uniform(64, 5), 4);
        let air = DsiAir::build(&ds, DsiConfig::paper_default());
        let q = Point::new(0.05, 0.05); // in the cell of HC 0 (order 4)
        let mut mode = KnnMode::new(&air, q, 2, KnnStrategy::Aggressive);

        // Rig a finite, moderate radius and publish the circle targets.
        mode.cands.offer_virtuals(&[(0, 0.09), (1, 0.1)]);
        assert!(mode.cands.r2().is_finite());
        let mut out = Vec::new();
        let change =
            mode.refresh_targets(&Knowledge::new(air.layout(), air.curve().max_d()), &mut out);
        assert_eq!(change, TargetsChange::Replaced);
        assert!(!out.is_empty());

        // The only remainder left is the tail of the last target range.
        // Entry B points at the query's own cell (HC 0 — distance 0, the
        // nearest frame by far) but its region [0, m) holds no remainder;
        // entry A's region [m, ∞) holds the live one.
        let m = out.last().unwrap().hi;
        assert!(m > 0);
        let rem = vec![HcRange::new(m, m)];
        let entries = vec![(7u32, m), (3u32, 0u64)];
        match mode.nav_pick(&rem, &entries) {
            NavPick::Slot(slot) => assert_eq!(slot, 7, "picked an entry with no live target"),
            NavPick::Earliest => panic!("a live entry existed"),
        }

        // With no live remainder in any entry's region the pick falls back
        // to the conservative sweep instead of a wasted jump.
        let far_only = vec![(7u32, m)];
        let rem_outside = vec![HcRange::new(1, 1)];
        assert!(matches!(
            mode.nav_pick(&rem_outside, &far_only),
            NavPick::Earliest
        ));
    }

    /// The probe shows the narrowing path holds at most two decompositions
    /// (current + swap buffer) at a time even across many shrinks, while
    /// the epochs together produced far more — the quantity a
    /// never-evicted cache would have retained.
    #[test]
    fn probe_reports_bounded_targets() {
        let ds = SpatialDataset::build(&uniform(500, 11), 9);
        let air = DsiAir::build(&ds, DsiConfig::paper_reorganized());
        let q = Point::new(0.37, 0.61);
        let mut tuner = Tuner::tune_in(air.program(), 29, LossModel::None, 5);
        let (got, probe) = air.knn_query_probed(&mut tuner, q, 10, KnnStrategy::Conservative);
        assert_eq!(got, ds.brute_knn(q, 10));
        assert!(probe.refreshes >= 3, "expected several circle shrinks");
        assert!(
            probe.total_ranges > probe.peak_live_ranges,
            "held ranges must not accumulate across epochs"
        );
        assert!(probe.peak_cands <= 500);
    }
}
