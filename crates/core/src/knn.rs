//! k-nearest-neighbour queries over DSI (paper §3.4–3.5).
//!
//! The client maintains a *search space*: a circle around the query point
//! guaranteed to contain the k nearest objects. Index-table entries are
//! *virtual candidates* ("the object represented by HC′ᵢ", Algorithm 2):
//! each is a real object whose cell — hence an upper bound on its distance
//! — is known from its HC value alone. The circle's radius is the k-th
//! smallest upper bound and only ever shrinks; objects and HC regions
//! provably outside it are skipped. The query completes when the k best
//! candidates are fully retrieved and every uncleared part of the circle
//! is farther than the k-th candidate.
//!
//! Two navigation strategies from the paper:
//!
//! * **Conservative** — proceed to the earliest-arriving frame that may
//!   still hold circle content: small latency, more tuning (slow shrink).
//! * **Aggressive** — follow the index entry whose frame is closest to the
//!   query point: fast shrink and low tuning, but skipped regions must be
//!   re-checked a cycle later, extending latency.
//!
//! The broadcast reorganization (§3.5, `segments ≥ 2` in
//! [`crate::DsiConfig`]) gives the conservative strategy early views of
//! remote regions, combining the strengths of both.

use std::collections::{BTreeMap, HashMap};

use dsi_broadcast::Tuner;
use dsi_datagen::Object;
use dsi_geom::{dist2, GridMapper, Point, Rect};
use dsi_hilbert::{min_dist2_to_range, ranges_in_rect_with_dist_into, HcRange, HilbertCurve};

use crate::build::{DsiAir, DsiPacket};
use crate::client::{run_query, NavPick, QueryMode};
use crate::state::Knowledge;

/// kNN search-space navigation strategy (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnStrategy {
    /// Retrieve every frame that may still matter, in broadcast order.
    Conservative,
    /// Jump to the reachable frame nearest the query point.
    Aggressive,
}

/// One known-to-exist object, keyed by its HC value.
#[derive(Debug, Clone, Copy)]
struct Cand {
    /// Upper bound on the squared distance (cell max-distance for virtual
    /// candidates; the exact distance once the header has been seen).
    ub2: f64,
    /// Exact squared distance (only when the header has been seen).
    d2: f64,
    /// Object id (only when the header has been seen).
    id: u32,
    /// Whether the full record has been retrieved.
    retrieved: bool,
}

/// The candidate set with its k-th-bound cache.
struct Candidates {
    k: usize,
    by_hc: BTreeMap<u64, Cand>,
    r2_cache: Option<f64>,
    /// Reused selection buffer: the radius and completion checks run every
    /// driver iteration and must not allocate in steady state.
    select_buf: Vec<(f64, u64, bool)>,
}

impl Candidates {
    fn new(k: usize) -> Self {
        Self {
            k,
            by_hc: BTreeMap::new(),
            r2_cache: None,
            select_buf: Vec::new(),
        }
    }

    /// Fills `select_buf` and partitions it so its first `k` entries are
    /// the k best candidates (smallest upper bound, ties broken by HC
    /// value). Returns `false` while fewer than k candidates are known.
    /// Single selection shared by the radius and the completion check so
    /// the two can never disagree on the top-k.
    fn select_top_k(&mut self) -> bool {
        if self.by_hc.len() < self.k {
            return false;
        }
        self.select_buf.clear();
        self.select_buf
            .extend(self.by_hc.iter().map(|(&hc, c)| (c.ub2, hc, c.retrieved)));
        self.select_buf.select_nth_unstable_by(self.k - 1, |a, b| {
            a.partial_cmp(b).expect("bounds are never NaN")
        });
        true
    }

    /// The squared radius of the search space: the k-th smallest upper
    /// bound over known-distinct objects (∞ while fewer than k are known).
    fn r2(&mut self) -> f64 {
        if let Some(v) = self.r2_cache {
            return v;
        }
        let v = if self.select_top_k() {
            self.select_buf[self.k - 1].0
        } else {
            f64::INFINITY
        };
        self.r2_cache = Some(v);
        v
    }

    /// Whether the k best candidates have all been retrieved.
    fn top_k_retrieved(&mut self) -> bool {
        self.select_top_k() && self.select_buf[..self.k].iter().all(|&(_, _, r)| r)
    }

    /// Offers a virtual candidate. Skipped if it cannot tighten the k-th
    /// bound (its upper bound already exceeds the current radius).
    fn offer_virtual(&mut self, hc: u64, ub2: f64) {
        if self.by_hc.contains_key(&hc) {
            return;
        }
        if self.by_hc.len() >= self.k && ub2 >= self.r2() {
            return;
        }
        self.by_hc.insert(
            hc,
            Cand {
                ub2,
                d2: f64::NAN,
                id: u32::MAX,
                retrieved: false,
            },
        );
        self.r2_cache = None;
    }

    /// Header seen and the object is (still) wanted: record its exact
    /// distance, keeping any retrieved flag.
    fn resolve_wanted(&mut self, hc: u64, d2: f64, id: u32) {
        let c = self.by_hc.entry(hc).or_insert(Cand {
            ub2: d2,
            d2,
            id,
            retrieved: false,
        });
        c.ub2 = d2;
        c.d2 = d2;
        c.id = id;
        self.r2_cache = None;
    }

    /// Header seen but the object is provably outside the search space:
    /// drop the virtual candidate. Its upper bound necessarily exceeded
    /// the k-th bound (exactness can only lower a bound), so removal never
    /// loosens the radius.
    fn drop_unwanted(&mut self, hc: u64) {
        if let Some(c) = self.by_hc.get(&hc) {
            if !c.retrieved {
                self.by_hc.remove(&hc);
                self.r2_cache = None;
            }
        }
    }

    fn mark_retrieved(&mut self, hc: u64) {
        if let Some(c) = self.by_hc.get_mut(&hc) {
            c.retrieved = true;
        }
    }

    /// The final answer: ids of the k nearest retrieved objects
    /// (distance, then id, ascending), returned in ascending id order.
    fn result_ids(&self) -> Vec<u32> {
        let mut retr: Vec<(f64, u32)> = self
            .by_hc
            .values()
            .filter(|c| c.retrieved)
            .map(|c| (c.d2, c.id))
            .collect();
        retr.sort_unstable_by(|a, b| a.partial_cmp(b).expect("distances are never NaN"));
        let mut ids: Vec<u32> = retr.into_iter().take(self.k).map(|(_, id)| id).collect();
        ids.sort_unstable();
        ids
    }
}

struct KnnMode {
    q: Point,
    curve: HilbertCurve,
    mapper: GridMapper,
    strategy: KnnStrategy,
    cands: Candidates,
    /// Radius the driver-held target set was computed for; targets are
    /// rebuilt (in the driver's buffer) only when the circle shrinks.
    targets_r2: f64,
    /// Whether the initial whole-space target set has been published.
    published: bool,
    /// Min-distance cache for HC intervals (distances never change).
    dist_cache: HashMap<(u64, u64), f64>,
    /// Reused decomposition buffer for target rebuilds.
    decomp_buf: Vec<(HcRange, f64)>,
}

impl KnnMode {
    fn new(air: &DsiAir, q: Point, k: usize, strategy: KnnStrategy) -> Self {
        Self {
            q,
            curve: *air.curve(),
            mapper: *air.mapper(),
            strategy,
            cands: Candidates::new(k),
            targets_r2: f64::INFINITY,
            published: false,
            dist_cache: HashMap::new(),
            decomp_buf: Vec::new(),
        }
    }

    fn range_dist2(&mut self, r: &HcRange) -> f64 {
        let (curve, mapper, q) = (&self.curve, &self.mapper, self.q);
        *self
            .dist_cache
            .entry((r.lo, r.hi))
            .or_insert_with(|| min_dist2_to_range(curve, mapper, q, *r))
    }
}

impl QueryMode for KnnMode {
    fn refresh_targets(&mut self, _know: &Knowledge, out: &mut Vec<HcRange>) -> bool {
        let r2 = self.cands.r2();
        if self.published && r2 >= self.targets_r2 {
            return false;
        }
        self.published = true;
        self.targets_r2 = r2;
        if r2.is_infinite() {
            // Fewer than k candidates known: the whole space is in play.
            out.clear();
            out.push(HcRange::new(0, self.curve.max_d()));
        } else {
            // Decompose the circle's bounding square; the exact min
            // distance of every produced range falls out of the same pass
            // and pre-warms the liveness cache, so the per-iteration
            // `is_live` sweep never branch-and-bounds over fresh targets.
            let bbox = Rect::bounding_square(self.q, r2.sqrt());
            ranges_in_rect_with_dist_into(
                &self.curve,
                &self.mapper,
                &bbox,
                self.q,
                &mut self.decomp_buf,
            );
            out.clear();
            out.reserve(self.decomp_buf.len());
            for &(r, d2) in &self.decomp_buf {
                self.dist_cache.insert((r.lo, r.hi), d2);
                out.push(r);
            }
        }
        true
    }

    fn is_live(&mut self, r: &HcRange) -> bool {
        let r2 = self.cands.r2();
        self.range_dist2(r) <= r2
    }

    fn on_virtual(&mut self, hc: u64) {
        let rect = self.mapper.cell_rect(self.curve.d2xy(hc));
        let ub2 = rect.max_dist2(self.q);
        self.cands.offer_virtual(hc, ub2);
    }

    fn on_header(&mut self, o: &Object) -> bool {
        let d2 = dist2(self.q, o.pos);
        if d2 <= self.cands.r2() {
            self.cands.resolve_wanted(o.hc, d2, o.id);
            true
        } else {
            self.cands.drop_unwanted(o.hc);
            false
        }
    }

    fn on_retrieved(&mut self, o: &Object) {
        self.cands.mark_retrieved(o.hc);
    }

    fn complete(&mut self) -> bool {
        self.cands.top_k_retrieved()
    }

    fn nav_pick(&mut self, rem: &[HcRange], entry_targets: &[(u32, u64)]) -> NavPick {
        match self.strategy {
            KnnStrategy::Conservative => NavPick::Earliest,
            KnnStrategy::Aggressive => {
                // Follow the entry whose frame lies closest to the query
                // point — provided it can still contribute (its minimum HC's
                // cell need not itself be in the circle, but the jump is
                // only useful when some remainder exists at all; `rem` is
                // non-empty when this is called).
                let _ = rem;
                let mut best: Option<(f64, u32)> = None;
                for &(slot, hc) in entry_targets {
                    let d2 = self.mapper.cell_rect(self.curve.d2xy(hc)).min_dist2(self.q);
                    if best.is_none_or(|(b, _)| d2 < b) {
                        best = Some((d2, slot));
                    }
                }
                match best {
                    Some((_, slot)) => NavPick::Slot(slot),
                    None => NavPick::Earliest,
                }
            }
        }
    }
}

impl DsiAir {
    /// Answers a kNN query on the air: returns the ids of the `k` objects
    /// nearest to `q` (ties broken by id), in ascending id order. Metrics
    /// accrue on `tuner`.
    pub fn knn_query(
        &self,
        tuner: &mut Tuner<'_, DsiPacket>,
        q: Point,
        k: usize,
        strategy: KnnStrategy,
    ) -> Vec<u32> {
        let k = k.min(self.objects().len());
        if k == 0 {
            return Vec::new();
        }
        let mut mode = KnnMode::new(self, q, k, strategy);
        run_query(self, tuner, &mut mode);
        mode.cands.result_ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DsiConfig, FramingPolicy};
    use dsi_broadcast::LossModel;
    use dsi_datagen::{knn_points, uniform, SpatialDataset};

    fn check_knn(cfg: DsiConfig, strategy: KnnStrategy, n: usize, order: u8, ks: &[usize]) {
        let ds = SpatialDataset::build(&uniform(n, 31), order);
        let air = DsiAir::build(&ds, cfg);
        let queries = knn_points(10, 17);
        for (qi, &q) in queries.iter().enumerate() {
            for &k in ks {
                let start = (qi as u64 * 6151) % air.program().len();
                let mut tuner = Tuner::tune_in(air.program(), start, LossModel::None, qi as u64);
                let got = air.knn_query(&mut tuner, q, k, strategy);
                let want = ds.brute_knn(q, k);
                assert_eq!(got, want, "q{qi}={q:?} k={k} {strategy:?} {cfg:?}");
            }
        }
    }

    #[test]
    fn conservative_matches_brute_force() {
        check_knn(
            DsiConfig::paper_default(),
            KnnStrategy::Conservative,
            400,
            9,
            &[1, 4, 10],
        );
    }

    #[test]
    fn aggressive_matches_brute_force() {
        check_knn(
            DsiConfig::paper_default(),
            KnnStrategy::Aggressive,
            400,
            9,
            &[1, 4, 10],
        );
    }

    #[test]
    fn reorganized_matches_brute_force() {
        check_knn(
            DsiConfig::paper_reorganized(),
            KnnStrategy::Conservative,
            400,
            9,
            &[1, 4, 10],
        );
    }

    #[test]
    fn object_factor_one_matches() {
        let cfg = DsiConfig {
            framing: FramingPolicy::FixedObjectFactor(1),
            ..DsiConfig::paper_default()
        };
        check_knn(cfg, KnnStrategy::Conservative, 250, 8, &[3]);
        check_knn(cfg, KnnStrategy::Aggressive, 250, 8, &[3]);
    }

    #[test]
    fn k_equals_n_returns_all() {
        let ds = SpatialDataset::build(&uniform(40, 3), 8);
        let air = DsiAir::build(&ds, DsiConfig::paper_reorganized());
        let mut tuner = Tuner::tune_in(air.program(), 11, LossModel::None, 1);
        let got = air.knn_query(
            &mut tuner,
            Point::new(0.4, 0.6),
            40,
            KnnStrategy::Conservative,
        );
        assert_eq!(got.len(), 40);
        // k larger than N clamps.
        let mut tuner = Tuner::tune_in(air.program(), 11, LossModel::None, 1);
        let got = air.knn_query(
            &mut tuner,
            Point::new(0.4, 0.6),
            99,
            KnnStrategy::Conservative,
        );
        assert_eq!(got.len(), 40);
    }

    #[test]
    fn query_point_outside_space() {
        let ds = SpatialDataset::build(&uniform(120, 9), 8);
        let air = DsiAir::build(&ds, DsiConfig::paper_reorganized());
        let q = Point::new(1.8, -0.4);
        let mut tuner = Tuner::tune_in(air.program(), 77, LossModel::None, 2);
        let got = air.knn_query(&mut tuner, q, 5, KnnStrategy::Conservative);
        assert_eq!(got, ds.brute_knn(q, 5));
    }

    #[test]
    fn correct_under_loss_all_strategies() {
        let ds = SpatialDataset::build(&uniform(300, 21), 9);
        for cfg in [DsiConfig::paper_default(), DsiConfig::paper_reorganized()] {
            let air = DsiAir::build(&ds, cfg);
            for (qi, q) in knn_points(8, 3).into_iter().enumerate() {
                for strategy in [KnnStrategy::Conservative, KnnStrategy::Aggressive] {
                    let mut tuner = Tuner::tune_in(
                        air.program(),
                        (qi as u64 * 911) % air.program().len(),
                        LossModel::iid(0.4),
                        qi as u64,
                    );
                    let got = air.knn_query(&mut tuner, q, 10, strategy);
                    assert_eq!(got, ds.brute_knn(q, 10), "lossy q{qi} {strategy:?}");
                }
            }
        }
    }
}
