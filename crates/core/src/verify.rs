//! [`Verifiable`] for the DSI air index: extracts the static pointer
//! graph — every table's exponential entry ladder plus its local object
//! announcements — for the `dsi-verify` analyzer.

use dsi_verify::{Edge, EdgeClaim, StaticModel, Verifiable};

use crate::build::{DsiAir, DsiScheme};

impl DsiAir {
    /// The static model of this broadcast: one index unit per table, one
    /// data unit per object, `MinKey` edges for the table entries
    /// (claiming the pointed frame's minimum HC, exactly what the 16-byte
    /// on-air `hc` field promises) and `Local` edges for each frame's
    /// announced objects. Every table is a navigation entry: a client can
    /// tune in anywhere and waits at most one frame for a table.
    pub fn static_model(&self) -> StaticModel {
        let l = self.layout();
        let mut m = StaticModel::from_program("DSI", self.program());
        // Worst DSI query: the window/kNN drivers scan result frames
        // sequentially and the conservative kNN may re-expand once; three
        // full passes bound every observed workload (pinned against the
        // conformance grid's measured maxima in `tests/verify_bounds.rs`).
        m.sweep_passes = 3;
        let nf = l.n_frames();
        let r = l.config().index_base as u64;
        let n_entries = l.framing().n_entries;
        for slot in 0..nf {
            let unit = m
                .unit_at(l.frame_start(slot))
                .expect("frame start is a unit start");
            // The schema fixes the edge count of every table: the
            // exponential ladder (deltas 1, r, r², … while < nf, capped
            // at the framing's entry budget) plus one local edge per
            // announced object. A dropped or duplicated entry shows up
            // as a count mismatch before any claim is even checked.
            let mut ladder = 0u32;
            let mut delta = 1u64;
            for _ in 0..n_entries {
                if delta >= nf as u64 {
                    break;
                }
                ladder += 1;
                delta = delta.saturating_mul(r);
            }
            let f = self.frame(slot);
            m.units[unit].expected_edges = Some(ladder + f.n_obj);
            for e in &self.table(slot).entries {
                let target_slot = (slot + e.delta) % nf;
                m.edges[unit].push(Edge {
                    target: l.frame_start(target_slot),
                    claim: EdgeClaim::MinKey(e.hc),
                });
            }
            for idx in 0..f.n_obj {
                let pos = l.header_packet(slot, idx);
                let data_unit = m.unit_at(pos).expect("object header is a unit start");
                m.units[data_unit].key = self.object(slot, idx).hc;
                m.edges[unit].push(Edge {
                    target: pos,
                    claim: EdgeClaim::Local,
                });
            }
            m.entries.push(unit as u32);
        }
        m
    }
}

impl Verifiable for DsiAir {
    fn static_model(&self) -> StaticModel {
        DsiAir::static_model(self)
    }
}

impl Verifiable for DsiScheme {
    fn static_model(&self) -> StaticModel {
        self.air.static_model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DsiConfig;
    use dsi_broadcast::ChannelConfig;
    use dsi_datagen::SpatialDataset;

    fn dataset(n: usize) -> SpatialDataset {
        SpatialDataset::build(&dsi_datagen::uniform(n, 42), 10)
    }

    #[test]
    fn grid_valid_dsi_programs_verify_clean() {
        let ds = dataset(220);
        for m in [1, 2] {
            let cfg = DsiConfig {
                segments: m,
                ..DsiConfig::paper_default().with_capacity(64)
            };
            for chan in [
                ChannelConfig::single(),
                ChannelConfig::blocked(2, 1),
                ChannelConfig::striped(2, 1),
                ChannelConfig::striped_frames(4, 1),
                ChannelConfig::index_data(2, 1, 2),
            ] {
                let air = DsiAir::build_channels(&ds, cfg, chan.clone());
                let model = air.static_model();
                let report = dsi_verify::verify(&model)
                    .unwrap_or_else(|v| panic!("{chan:?} (m={m}): {v:?}"));
                assert_eq!(report.checked_pairs, report.total_pairs);
                assert!(report.bounds.latency_packets > 0);
            }
        }
    }
}
