//! Energy-efficient forwarding: point queries by location (paper §3.2).
//!
//! Given a target location, the client computes its HC value and hops from
//! index table to index table — following, at each hop, the largest
//! exponential pointer that cannot overshoot — until it reaches the frame
//! that would contain the object, then scans it. "EEF is logically like a
//! binary search … the distances between visited frames and the final
//! target frame decrease rapidly."

use dsi_broadcast::Tuner;
use dsi_datagen::Object;
use dsi_geom::Point;
use dsi_hilbert::HcRange;

use crate::build::{DsiAir, DsiPacket};
use crate::client::{run_query, QueryMode, TargetsChange};
use crate::state::Knowledge;

struct EefMode {
    target: u64,
    published: bool,
    found: Option<Object>,
}

impl QueryMode for EefMode {
    fn refresh_targets(&mut self, _know: &Knowledge, out: &mut Vec<HcRange>) -> TargetsChange {
        if self.published {
            return TargetsChange::Unchanged;
        }
        self.published = true;
        out.clear();
        out.push(HcRange::new(self.target, self.target));
        TargetsChange::Replaced
    }

    fn on_header(&mut self, o: &Object) -> bool {
        o.hc == self.target
    }

    fn on_retrieved(&mut self, o: &Object) {
        self.found = Some(*o);
    }
}

impl DsiAir {
    /// Point query: retrieves the object broadcast for the grid cell of
    /// `location`, or `None` if that cell holds no object. Metrics accrue
    /// on `tuner`.
    pub fn point_query(&self, tuner: &mut Tuner<'_, DsiPacket>, location: Point) -> Option<Object> {
        let hc = self.curve().xy2d(self.mapper().cell_of(location));
        self.point_query_hc(tuner, hc)
    }

    /// Point query by HC value (the paper's EEF primitive).
    pub fn point_query_hc(&self, tuner: &mut Tuner<'_, DsiPacket>, hc: u64) -> Option<Object> {
        let mut mode = EefMode {
            target: hc,
            published: false,
            found: None,
        };
        run_query(self, tuner, &mut mode);
        mode.found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DsiConfig;
    use dsi_broadcast::LossModel;
    use dsi_datagen::{uniform, SpatialDataset};

    #[test]
    fn finds_every_object() {
        let ds = SpatialDataset::build(&uniform(200, 13), 9);
        for cfg in [DsiConfig::paper_default(), DsiConfig::paper_reorganized()] {
            let air = DsiAir::build(&ds, cfg);
            for (i, o) in ds.objects().iter().enumerate().step_by(17) {
                let mut tuner = Tuner::tune_in(
                    air.program(),
                    (i as u64 * 101) % air.program().len(),
                    LossModel::None,
                    i as u64,
                );
                let got = air.point_query_hc(&mut tuner, o.hc);
                assert_eq!(got.map(|g| g.id), Some(o.id));
                // A point query should finish within ~one cycle, error-free.
                assert!(tuner.stats().latency_packets <= 2 * air.program().len());
            }
        }
    }

    #[test]
    fn absent_location_returns_none() {
        let ds = SpatialDataset::build(&uniform(50, 13), 9);
        let air = DsiAir::build(&ds, DsiConfig::paper_default());
        // Find an unoccupied HC value.
        let taken: std::collections::HashSet<u64> = ds.objects().iter().map(|o| o.hc).collect();
        let free = (0..air.curve().max_d())
            .find(|d| !taken.contains(d))
            .unwrap();
        let mut tuner = Tuner::tune_in(air.program(), 0, LossModel::None, 7);
        assert_eq!(air.point_query_hc(&mut tuner, free), None);
    }

    #[test]
    fn eef_hops_are_logarithmic() {
        // With object factor 1 and no errors, the number of index tables a
        // point query reads is O(log nF): tuning stays tiny compared to a
        // frame-by-frame scan.
        let ds = SpatialDataset::build(&uniform(512, 29), 10);
        let cfg = DsiConfig {
            framing: crate::config::FramingPolicy::FixedObjectFactor(1),
            ..DsiConfig::paper_default()
        };
        let air = DsiAir::build(&ds, cfg);
        for (i, o) in ds.objects().iter().enumerate().step_by(41) {
            let mut tuner = Tuner::tune_in(
                air.program(),
                (i as u64 * 379) % air.program().len(),
                LossModel::None,
                1,
            );
            air.point_query_hc(&mut tuner, o.hc);
            let tuning = tuner.stats().tuning_packets;
            // log2(512) = 9 hops; allow headroom for the header + payload
            // reads (object = 16 packets at 64 B) and boundary effects.
            assert!(
                tuning <= 9 + 16 + 24,
                "point query used {tuning} packets of tuning"
            );
        }
    }

    #[test]
    fn survives_loss() {
        let ds = SpatialDataset::build(&uniform(128, 3), 9);
        let air = DsiAir::build(&ds, DsiConfig::paper_reorganized());
        for (i, o) in ds.objects().iter().enumerate().step_by(13) {
            let mut tuner =
                Tuner::tune_in(air.program(), i as u64 * 53, LossModel::iid(0.4), i as u64);
            let got = air.point_query_hc(&mut tuner, o.hc);
            assert_eq!(got.map(|g| g.id), Some(o.id));
        }
    }
}
