//! Building the DSI broadcast: server side.

use dsi_broadcast::{AirScheme, ChannelConfig, LayoutError, PacketClass, Payload, Program, Tuner};
use dsi_datagen::{Object, SpatialDataset};
use dsi_geom::GridMapper;
use dsi_geom::{Point, Rect};
use dsi_hilbert::HilbertCurve;

use crate::config::{compute_framing, DsiConfig};
use crate::layout::DsiLayout;
use crate::table::{build_tables, IndexTable};

/// One packet of a DSI broadcast. Packets reference the logical content by
/// (slot, object index) — the simulator's equivalent of the bytes on the
/// air; [`DsiAir::object`] and [`DsiAir::table`] resolve what a client
/// receives when it reads the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DsiPacket {
    /// Part `part` of the index table of broadcast slot `slot`.
    Table {
        /// Broadcast slot.
        slot: u32,
        /// Packet index within the (possibly multi-packet) table.
        part: u32,
    },
    /// First packet of a data object: carries its coordinates and HC value.
    ObjHeader {
        /// Broadcast slot.
        slot: u32,
        /// Object index within the slot.
        idx: u32,
    },
    /// Subsequent packet of a data object's 1024-byte record.
    ObjPayload {
        /// Broadcast slot.
        slot: u32,
        /// Object index within the slot.
        idx: u32,
        /// Packet sequence number within the object (1-based).
        seq: u32,
    },
}

impl Payload for DsiPacket {
    fn class(&self) -> PacketClass {
        match self {
            DsiPacket::Table { .. } => PacketClass::Index,
            DsiPacket::ObjHeader { .. } => PacketClass::ObjectHeader,
            DsiPacket::ObjPayload { .. } => PacketClass::ObjectPayload,
        }
    }

    fn unit_start(&self) -> bool {
        match self {
            DsiPacket::Table { part, .. } => *part == 0,
            DsiPacket::ObjHeader { .. } => true,
            DsiPacket::ObjPayload { .. } => false,
        }
    }

    fn frame_start(&self) -> bool {
        // A DSI frame is an index table plus the objects that follow it:
        // the granularity clients scan serially, which
        // `Placement::StripeFrames` keeps on one channel.
        matches!(self, DsiPacket::Table { part: 0, .. })
    }
}

/// Metadata of one broadcast slot (frame) — server side.
#[derive(Debug, Clone, Copy)]
pub struct FrameMeta {
    /// HC-order frame index carried by this slot.
    pub hc_index: u32,
    /// Smallest HC value of the frame's objects.
    pub min_hc: u64,
    /// Range of the HC-sorted object array held by this frame.
    pub obj_start: u32,
    /// Number of objects in the frame.
    pub n_obj: u32,
}

/// A complete DSI broadcast: layout (client schema), index tables, frame
/// metadata, HC-sorted objects, and the packet program.
#[derive(Debug, Clone)]
pub struct DsiAir {
    layout: DsiLayout,
    curve: HilbertCurve,
    mapper: GridMapper,
    tables: Vec<IndexTable>,
    frames: Vec<FrameMeta>,
    objects: Vec<Object>,
    program: Program<DsiPacket>,
}

impl DsiAir {
    /// Builds the single-channel broadcast for a dataset under a
    /// configuration.
    pub fn build(dataset: &SpatialDataset, config: DsiConfig) -> Self {
        Self::build_channels(dataset, config, ChannelConfig::single())
    }

    /// Builds the broadcast scheduled over the channels of `channels`.
    /// The flat cycle (the schema clients address) is identical to the
    /// single-channel build; only the on-air scheduling differs.
    ///
    /// Panics when the channel configuration cannot schedule this cycle;
    /// [`DsiAir::try_build_channels`] reports the defect as a
    /// [`LayoutError`] instead.
    pub fn build_channels(
        dataset: &SpatialDataset,
        config: DsiConfig,
        channels: ChannelConfig,
    ) -> Self {
        match Self::try_build_channels(dataset, config, channels) {
            Ok(air) => air,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`DsiAir::build_channels`]: a channel configuration that
    /// cannot schedule this cycle (zero channels, stranded explicit
    /// assignment, …) comes back as the structural [`LayoutError`] rather
    /// than a panic, so batch drivers can reject the cell and continue.
    pub fn try_build_channels(
        dataset: &SpatialDataset,
        config: DsiConfig,
        channels: ChannelConfig,
    ) -> Result<Self, LayoutError> {
        let objects: Vec<Object> = dataset.objects().to_vec();
        let n = objects.len() as u32;
        let framing = compute_framing(&config, n);

        // Chunk HC-sorted objects into HC-order frames and record minima.
        let mut frame_obj_start = Vec::with_capacity(framing.n_frames as usize);
        let mut frame_min_hc = Vec::with_capacity(framing.n_frames as usize);
        let mut at = 0u32;
        for &count in &framing.objects_per_frame {
            frame_obj_start.push(at);
            frame_min_hc.push(objects[at as usize].hc);
            at += count;
        }
        debug_assert_eq!(at, n);

        let layout = DsiLayout::new(config, n, &frame_min_hc);
        let tables = build_tables(&layout, &frame_min_hc);

        // Per-slot frame metadata and the packet program.
        let mut frames = Vec::with_capacity(layout.n_frames() as usize);
        let mut packets = Vec::with_capacity(layout.cycle_packets() as usize);
        for slot in 0..layout.n_frames() {
            let hc_index = layout.hc_index_of_slot(slot);
            let n_obj = framing.objects_per_frame[hc_index as usize];
            frames.push(FrameMeta {
                hc_index,
                min_hc: frame_min_hc[hc_index as usize],
                obj_start: frame_obj_start[hc_index as usize],
                n_obj,
            });
            for part in 0..framing.table_packets {
                packets.push(DsiPacket::Table { slot, part });
            }
            for idx in 0..n_obj {
                packets.push(DsiPacket::ObjHeader { slot, idx });
                for seq in 1..framing.object_packets {
                    packets.push(DsiPacket::ObjPayload { slot, idx, seq });
                }
            }
        }
        debug_assert_eq!(packets.len() as u64, layout.cycle_packets());
        let program = Program::try_with_channels(config.capacity, packets, channels)?;

        Ok(Self {
            layout,
            curve: *dataset.curve(),
            mapper: *dataset.mapper(),
            tables,
            frames,
            objects,
            program,
        })
    }

    /// The client-known broadcast schema.
    #[inline]
    pub fn layout(&self) -> &DsiLayout {
        &self.layout
    }

    /// The broadcast packet program (tune a [`dsi_broadcast::Tuner`] into it).
    #[inline]
    pub fn program(&self) -> &Program<DsiPacket> {
        &self.program
    }

    /// The Hilbert curve of the broadcast (schema).
    #[inline]
    pub fn curve(&self) -> &HilbertCurve {
        &self.curve
    }

    /// The grid mapping of the broadcast (schema).
    #[inline]
    pub fn mapper(&self) -> &GridMapper {
        &self.mapper
    }

    /// Index table of a broadcast slot (the content a client receives once
    /// it has read all the table's packets).
    #[inline]
    pub fn table(&self, slot: u32) -> &IndexTable {
        &self.tables[slot as usize]
    }

    /// Frame metadata of a broadcast slot.
    #[inline]
    pub fn frame(&self, slot: u32) -> &FrameMeta {
        &self.frames[slot as usize]
    }

    /// The object at `(slot, idx)` — what a client receives from the
    /// object's header packet.
    #[inline]
    pub fn object(&self, slot: u32, idx: u32) -> &Object {
        let f = &self.frames[slot as usize];
        debug_assert!(idx < f.n_obj);
        &self.objects[(f.obj_start + idx) as usize]
    }

    /// All objects in HC order.
    #[inline]
    pub fn objects(&self) -> &[Object] {
        &self.objects
    }
}

/// A [`DsiAir`] bound to a kNN navigation strategy — DSI as a unified
/// [`AirScheme`] the scheme-agnostic driver can run.
#[derive(Debug, Clone)]
pub struct DsiScheme {
    /// The built broadcast.
    pub air: DsiAir,
    /// Navigation strategy used for kNN queries.
    pub strategy: crate::knn::KnnStrategy,
}

impl AirScheme for DsiScheme {
    type Packet = DsiPacket;

    fn program(&self) -> &Program<DsiPacket> {
        self.air.program()
    }

    fn window(&self, tuner: &mut Tuner<'_, DsiPacket>, window: &Rect) -> Vec<u32> {
        self.air.window_query(tuner, window)
    }

    fn knn(&self, tuner: &mut Tuner<'_, DsiPacket>, q: Point, k: usize) -> Vec<u32> {
        self.air.knn_query(tuner, q, k, self.strategy)
    }

    /// A DSI client's first act on one channel is to doze to the next
    /// frame boundary (the same `next_frame_boundary` call the driver
    /// makes), so that boundary instant is the coalescing anchor.
    fn tune_anchor(&self, start: u64) -> Option<u64> {
        if self.program().n_channels() != 1 {
            return None;
        }
        Some(self.air.layout().next_frame_boundary(start).0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_datagen::uniform;

    fn air(segments: u32, capacity: u32) -> DsiAir {
        let ds = SpatialDataset::build(&uniform(200, 5), 10);
        let cfg = DsiConfig {
            segments,
            ..DsiConfig::paper_default().with_capacity(capacity)
        };
        DsiAir::build(&ds, cfg)
    }

    #[test]
    fn program_packet_structure_matches_layout() {
        let a = air(1, 64);
        let l = a.layout();
        for slot in 0..l.n_frames() {
            // Frame starts with its table packets.
            match a.program().get(l.frame_start(slot)) {
                DsiPacket::Table { slot: s, part: 0 } => assert_eq!(*s, slot),
                p => panic!("frame {slot} does not start with a table: {p:?}"),
            }
            // Headers where the layout says they are.
            for idx in 0..l.objects_in_slot(slot) {
                match a.program().get(l.header_packet(slot, idx)) {
                    DsiPacket::ObjHeader { slot: s, idx: i } => {
                        assert_eq!((*s, *i), (slot, idx));
                    }
                    p => panic!("expected header at ({slot},{idx}), got {p:?}"),
                }
            }
        }
    }

    #[test]
    fn objects_ascend_in_hc_order_within_frames() {
        let a = air(1, 64);
        for slot in 0..a.layout().n_frames() {
            let f = a.frame(slot);
            for idx in 1..f.n_obj {
                assert!(a.object(slot, idx - 1).hc < a.object(slot, idx).hc);
            }
            assert_eq!(a.object(slot, 0).hc, f.min_hc);
        }
    }

    #[test]
    fn reorganization_keeps_all_objects_once() {
        let a1 = air(1, 64);
        let a2 = air(2, 64);
        assert_eq!(a1.program().len(), a2.program().len());
        let count_headers = |a: &DsiAir| {
            a.program()
                .iter()
                .filter(|p| matches!(p, DsiPacket::ObjHeader { .. }))
                .count()
        };
        assert_eq!(count_headers(&a1), 200);
        assert_eq!(count_headers(&a2), 200);
        // Interleaved: slot 0 carries HC-frame 0, slot 1 carries a frame
        // from the second block.
        assert_eq!(a2.frame(0).hc_index, 0);
        assert!(a2.frame(1).hc_index >= a2.layout().block_start_frame(1));
    }

    #[test]
    fn table_entries_match_pointed_frames() {
        for m in [1, 2, 4] {
            let a = air(m, 64);
            let nf = a.layout().n_frames();
            for slot in 0..nf {
                for e in &a.table(slot).entries {
                    let target = (slot + e.delta) % nf;
                    assert_eq!(
                        e.hc,
                        a.frame(target).min_hc,
                        "slot {slot} entry δ={} (m={m})",
                        e.delta
                    );
                }
            }
        }
    }
}
