//! DSI configuration: the tunables of §3.1 and §4 of the paper.

/// Size of a data object on the air, bytes (paper §4).
pub const OBJECT_BYTES: u32 = 1024;
/// Size of an HC value on the air, bytes (paper §4: same as a coordinate).
pub const HC_BYTES: u32 = 16;
/// Size of an index pointer on the air, bytes (paper §4).
pub const POINTER_BYTES: u32 = 2;
/// Size of one index-table entry `⟨HC'ᵢ, Pᵢ⟩`.
pub const ENTRY_BYTES: u32 = HC_BYTES + POINTER_BYTES;
/// Per-packet header: offset to the next index information (reconstructed;
/// see DESIGN.md §3.2).
pub const PACKET_HEADER_BYTES: u32 = 2;
/// Fixed index-table header: entry count.
pub const TABLE_HEADER_BYTES: u32 = 2;

/// How the object factor `no` / frame count `nF` are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FramingPolicy {
    /// The paper's literal rule (§4): "we allocate one packet for each
    /// index table associated with a frame", so the entry count is what
    /// fits in one packet and `nF = r^entries` (clamped to `[2, N]` and the
    /// overhead bound).
    ///
    /// Taken literally this collapses `nF` to 2–8 at small capacities
    /// (frames of >1,000 objects), which contradicts the paper's own
    /// relative tuning results — a DSI client would pay far more than HCI
    /// scanning object headers inside such frames. Kept for the framing
    /// ablation; experiments default to [`FramingPolicy::OverheadBound`].
    OnePacketTable,
    /// Default: the largest power-of-`r` frame count whose index tables
    /// (spanning as many packets as they need) keep the total index share
    /// of the cycle within [`DsiConfig::max_index_overhead`]. Yields object
    /// factors of roughly 10–40 at every capacity of the paper's sweep,
    /// matching the flat-latency, low-tuning behaviour it reports.
    OverheadBound,
    /// Fixed number of objects per frame; the table grows to however many
    /// packets it needs. Used by ablations.
    FixedObjectFactor(u32),
    /// Fixed number of frames; ditto.
    FixedFrameCount(u32),
}

/// How the `m` broadcast segments are interleaved (§3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReorgStyle {
    /// Plain round-robin: slot sequence `b₀[0], b₁[0], b₀[1], b₁[1], …`.
    RoundRobin,
    /// Round-robin with every odd block reversed, folding the HC order so
    /// that frames adjacent across a block boundary are also adjacent in
    /// broadcast time. This keeps a query window's target segments close
    /// together even when they straddle the boundary and is the default.
    Folded,
}

/// Full DSI build configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DsiConfig {
    /// Packet capacity in bytes (the paper sweeps 32..512, default 64).
    pub capacity: u32,
    /// Exponential index base `r` (paper fixes 2 in the simulation).
    pub index_base: u32,
    /// Framing policy (paper: one packet per index table).
    pub framing: FramingPolicy,
    /// Number of interleaved broadcast segments `m` (§3.5); 1 = the
    /// original ascending-HC broadcast, 2 = the paper's reorganization.
    pub segments: u32,
    /// Interleave style for `segments ≥ 2`.
    pub reorg_style: ReorgStyle,
    /// Upper bound on the index-table share of the broadcast cycle, as a
    /// fraction of the data payload. The paper's one-packet-table rule
    /// alone would drive `nF` to `N` at large packet capacities, making
    /// index packets 25–50 % of the cycle — contradicting the paper's own
    /// observation that DSI's access latency is flat across capacities.
    /// Capping the overhead (default 4 %; the realised overhead stays
    /// below ~2.6 % because frame counts step in powers of `r`) reproduces
    /// that flatness; see DESIGN.md §3.2.
    pub max_index_overhead: f64,
}

impl DsiConfig {
    /// The paper's default configuration: 64-byte packets, base 2,
    /// one-packet tables, original (non-reorganized) broadcast order.
    pub fn paper_default() -> Self {
        Self {
            capacity: 64,
            index_base: 2,
            framing: FramingPolicy::OverheadBound,
            segments: 1,
            reorg_style: ReorgStyle::Folded,
            max_index_overhead: 0.04,
        }
    }

    /// Same but with the two-segment broadcast reorganization the paper
    /// adopts for its main experiments ("for the rest of experiments, we
    /// employ reorganized broadcast for DSI").
    pub fn paper_reorganized() -> Self {
        Self {
            segments: 2,
            ..Self::paper_default()
        }
    }

    /// Returns this config with a different packet capacity.
    pub fn with_capacity(self, capacity: u32) -> Self {
        Self { capacity, ..self }
    }

    /// Validates invariants; called by the builder.
    pub(crate) fn validate(&self) {
        assert!(
            self.capacity >= 16,
            "packet capacity too small: {}",
            self.capacity
        );
        assert!(self.index_base >= 2, "index base must be >= 2");
        assert!(self.segments >= 1, "segment count must be >= 1");
        assert!(
            self.max_index_overhead > 0.0,
            "index overhead bound must be positive"
        );
    }
}

/// Derived framing: frame count, per-frame object counts, table sizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Framing {
    /// Number of frames `nF` in one cycle.
    pub n_frames: u32,
    /// Entries per index table (`⌈log_r nF⌉`, covering the whole cycle).
    pub n_entries: u32,
    /// Packets per index table.
    pub table_packets: u32,
    /// Packets per data object.
    pub object_packets: u32,
    /// Objects in each frame (balanced split of `N`; the first `N mod nF`
    /// frames hold one more).
    pub objects_per_frame: Vec<u32>,
}

/// `⌈log_base(n)⌉` for `n >= 1` — the number of exponential entries needed
/// to cover `n` frames.
pub(crate) fn ceil_log(base: u32, n: u32) -> u32 {
    debug_assert!(base >= 2 && n >= 1);
    let mut k = 0u32;
    let mut span = 1u64;
    while span < n as u64 {
        span *= base as u64;
        k += 1;
    }
    k.max(1)
}

/// Computes the framing for `n_objects` under a configuration.
pub fn compute_framing(cfg: &DsiConfig, n_objects: u32) -> Framing {
    cfg.validate();
    assert!(n_objects >= 1, "cannot frame an empty dataset");
    let usable = cfg
        .capacity
        .saturating_sub(PACKET_HEADER_BYTES + TABLE_HEADER_BYTES);
    let n_frames = match cfg.framing {
        FramingPolicy::OnePacketTable => {
            let fit = usable / ENTRY_BYTES;
            assert!(
                fit >= 1,
                "capacity {} cannot fit one index entry ({} bytes)",
                cfg.capacity,
                ENTRY_BYTES
            );
            // nF = r^fit, clamped to [2, N] (one object per frame at most)
            // and to the index-overhead bound: one table packet per frame
            // must not exceed `max_index_overhead` of the data packets.
            let data_packets = n_objects as u64 * OBJECT_BYTES.div_ceil(cfg.capacity) as u64;
            let overhead_cap = ((data_packets as f64 * cfg.max_index_overhead) as u64).max(2);
            let mut nf = 1u64;
            for _ in 0..fit {
                nf = nf.saturating_mul(cfg.index_base as u64);
                if nf >= n_objects as u64 || nf >= overhead_cap {
                    break;
                }
            }
            (nf.min(n_objects as u64).min(overhead_cap) as u32).max(2.min(n_objects))
        }
        FramingPolicy::OverheadBound => {
            let per_packet = (cfg.capacity - PACKET_HEADER_BYTES) as u64;
            let data_packets = n_objects as u64 * OBJECT_BYTES.div_ceil(cfg.capacity) as u64;
            let budget = data_packets as f64 * cfg.max_index_overhead;
            let mut best = 2u64.min(n_objects as u64);
            let mut nf = 1u64;
            loop {
                nf = nf.saturating_mul(cfg.index_base as u64);
                if nf > n_objects as u64 {
                    break;
                }
                let ne = ceil_log(cfg.index_base, nf as u32) as u64;
                let table_bytes = TABLE_HEADER_BYTES as u64 + ne * ENTRY_BYTES as u64;
                let table_packets = table_bytes.div_ceil(per_packet);
                if (nf * table_packets) as f64 <= budget {
                    best = nf;
                } else {
                    break;
                }
            }
            best as u32
        }
        FramingPolicy::FixedObjectFactor(no) => {
            assert!(no >= 1, "object factor must be >= 1");
            n_objects.div_ceil(no).max(1)
        }
        FramingPolicy::FixedFrameCount(nf) => {
            assert!(nf >= 1, "frame count must be >= 1");
            nf.min(n_objects)
        }
    };
    let n_entries = ceil_log(cfg.index_base, n_frames);
    let table_bytes = TABLE_HEADER_BYTES + n_entries * ENTRY_BYTES;
    let per_packet = cfg.capacity - PACKET_HEADER_BYTES;
    let table_packets = table_bytes.div_ceil(per_packet).max(1);
    let object_packets = OBJECT_BYTES.div_ceil(cfg.capacity);
    // Balanced object split across frames.
    let base = n_objects / n_frames;
    let extra = (n_objects % n_frames) as usize;
    let objects_per_frame = (0..n_frames as usize)
        .map(|f| base + u32::from(f < extra))
        .collect();
    Framing {
        n_frames,
        n_entries,
        table_packets,
        object_packets,
        objects_per_frame,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log_basics() {
        assert_eq!(ceil_log(2, 1), 1);
        assert_eq!(ceil_log(2, 2), 1);
        assert_eq!(ceil_log(2, 3), 2);
        assert_eq!(ceil_log(2, 8), 3);
        assert_eq!(ceil_log(2, 10_000), 14);
        assert_eq!(ceil_log(4, 16), 2);
        assert_eq!(ceil_log(4, 17), 3);
    }

    #[test]
    fn paper_sizing_at_64_bytes_one_packet_rule() {
        // Paper §4 literal rule: at C = 64 a one-packet table holds 3
        // entries → nF = 8.
        let cfg = DsiConfig {
            framing: FramingPolicy::OnePacketTable,
            ..DsiConfig::paper_default()
        };
        let f = compute_framing(&cfg, 10_000);
        assert_eq!(f.n_frames, 8);
        assert_eq!(f.n_entries, 3);
        assert_eq!(f.table_packets, 1);
        assert_eq!(f.object_packets, 16);
        assert_eq!(f.objects_per_frame.iter().sum::<u32>(), 10_000);
        assert_eq!(f.objects_per_frame, vec![1250; 8]);
    }

    #[test]
    fn overhead_bound_framing_keeps_small_object_factor() {
        // Default policy: frames of tens of objects at every capacity, with
        // total table packets within 2 % of the data packets.
        for cap in [32u32, 64, 128, 256, 512] {
            let f = compute_framing(&DsiConfig::paper_default().with_capacity(cap), 10_000);
            let no = 10_000 / f.n_frames;
            assert!((4..=32).contains(&no), "cap {cap}: object factor {no}");
            let data_packets = 10_000u64 * (1024u32.div_ceil(cap)) as u64;
            let index_packets = f.n_frames as u64 * f.table_packets as u64;
            assert!(
                index_packets as f64 <= data_packets as f64 * 0.04 + 1.0,
                "cap {cap}: index overhead too large"
            );
        }
    }

    #[test]
    fn one_packet_rule_clamps_to_overhead_bound_at_large_capacity() {
        // At C = 512 the fit (28 entries → 2^28 frames) would clamp to N,
        // but one table packet per frame would then be half the cycle; the
        // 4 % overhead bound caps nF at 0.04 × N × (1024/512) = 800.
        let cfg = DsiConfig {
            framing: FramingPolicy::OnePacketTable,
            ..DsiConfig::paper_default().with_capacity(512)
        };
        let f = compute_framing(&cfg, 10_000);
        assert_eq!(f.n_frames, 800);
        assert_eq!(f.n_entries, 10); // ceil(log2 800)
        assert_eq!(f.table_packets, 1); // 2 + 10*18 = 182 <= 510
        assert_eq!(f.objects_per_frame.iter().sum::<u32>(), 10_000);
    }

    #[test]
    fn overhead_bound_can_be_lifted() {
        let cfg = DsiConfig {
            framing: FramingPolicy::OnePacketTable,
            max_index_overhead: 10.0,
            ..DsiConfig::paper_default().with_capacity(512)
        };
        let f = compute_framing(&cfg, 10_000);
        assert_eq!(f.n_frames, 10_000);
        assert_eq!(f.n_entries, 14);
        assert!(f.objects_per_frame.iter().all(|&n| n == 1));
    }

    #[test]
    fn tiny_capacity_still_works_under_one_packet_rule() {
        let cfg = DsiConfig {
            framing: FramingPolicy::OnePacketTable,
            ..DsiConfig::paper_default().with_capacity(32)
        };
        let f = compute_framing(&cfg, 10_000);
        assert_eq!(f.n_frames, 2);
        assert_eq!(f.n_entries, 1);
        assert_eq!(f.object_packets, 32);
    }

    #[test]
    fn fixed_object_factor() {
        let cfg = DsiConfig {
            framing: FramingPolicy::FixedObjectFactor(3),
            ..DsiConfig::paper_default()
        };
        let f = compute_framing(&cfg, 10);
        assert_eq!(f.n_frames, 4);
        assert_eq!(f.objects_per_frame, vec![3, 3, 2, 2]);
    }

    #[test]
    fn fixed_frame_count_never_exceeds_objects() {
        let cfg = DsiConfig {
            framing: FramingPolicy::FixedFrameCount(64),
            ..DsiConfig::paper_default()
        };
        let f = compute_framing(&cfg, 10);
        assert_eq!(f.n_frames, 10);
    }

    #[test]
    fn multi_packet_table_when_forced() {
        // 10k frames at C = 64: table = 2 + 14*18 = 254 bytes → 5 packets.
        let cfg = DsiConfig {
            framing: FramingPolicy::FixedObjectFactor(1),
            ..DsiConfig::paper_default()
        };
        let f = compute_framing(&cfg, 10_000);
        assert_eq!(f.n_frames, 10_000);
        assert_eq!(f.table_packets, (2u32 + 14 * 18).div_ceil(62));
    }
}
