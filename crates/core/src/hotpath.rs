//! Instrumentation and path selection for the client query hot loop.
//!
//! The query driver maintains its cleared-region / remainder state
//! *incrementally* (deltas applied on each `learn` / frame-visit event).
//! For benchmarking and differential testing the original from-scratch
//! derivation is kept alive behind a per-thread switch:
//!
//! * [`StatePath::Incremental`] — production path: no full recomputation,
//!   scratch buffers reused across loop iterations.
//! * [`StatePath::FromScratch`] — the pre-optimization baseline: cleared
//!   regions and remainders re-derived from the scan log on every loop
//!   iteration. The `perf` binary toggles this to measure the speedup.
//! * [`StatePath::Audit`] — incremental path plus, after every event, an
//!   `assert_eq!` against the from-scratch oracle. The differential
//!   property tests run under this.
//!
//! The switch and the counters are thread-local, so concurrent tests and
//! simulations do not interfere.

use std::cell::Cell;

/// Which derivation of the client query state the driver uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatePath {
    /// Incremental deltas, scratch buffers reused (production default).
    #[default]
    Incremental,
    /// Full recomputation every loop iteration (benchmark baseline).
    FromScratch,
    /// Incremental, cross-checked against the oracle after every event.
    Audit,
}

thread_local! {
    static PATH: Cell<StatePath> = const { Cell::new(StatePath::Incremental) };
    static FULL_RECOMPUTES: Cell<u64> = const { Cell::new(0) };
    static INCREMENTAL_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// Selects the state path for queries run on this thread.
pub fn set_state_path(path: StatePath) {
    PATH.with(|p| p.set(path));
}

/// The state path queries on this thread currently use.
pub fn state_path() -> StatePath {
    PATH.with(|p| p.get())
}

/// Zeroes this thread's event counters.
pub fn reset_counters() {
    FULL_RECOMPUTES.with(|c| c.set(0));
    INCREMENTAL_EVENTS.with(|c| c.set(0));
}

/// `(full_recomputes, incremental_events)` accrued on this thread since
/// the last [`reset_counters`]. A full recompute is one from-scratch
/// cleared-region derivation; an incremental event is one applied delta
/// (frame contribution grown, or remainder subtraction).
pub fn counters() -> (u64, u64) {
    (
        FULL_RECOMPUTES.with(|c| c.get()),
        INCREMENTAL_EVENTS.with(|c| c.get()),
    )
}

pub(crate) fn count_full_recompute() {
    FULL_RECOMPUTES.with(|c| c.set(c.get() + 1));
}

pub(crate) fn count_incremental_event() {
    INCREMENTAL_EVENTS.with(|c| c.set(c.get() + 1));
}

/// Runs `f` with the thread's state path set to `path`, restoring the
/// previous path afterwards (also on panic).
pub fn with_state_path<R>(path: StatePath, f: impl FnOnce() -> R) -> R {
    struct Restore(StatePath);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_state_path(self.0);
        }
    }
    let _restore = Restore(state_path());
    set_state_path(path);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_is_thread_local_and_restored() {
        assert_eq!(state_path(), StatePath::Incremental);
        let observed = with_state_path(StatePath::Audit, || {
            let inner = state_path();
            std::thread::spawn(|| {
                assert_eq!(state_path(), StatePath::Incremental);
            })
            .join()
            .unwrap();
            inner
        });
        assert_eq!(observed, StatePath::Audit);
        assert_eq!(state_path(), StatePath::Incremental);
    }

    #[test]
    fn restored_on_panic() {
        let r = std::panic::catch_unwind(|| {
            with_state_path(StatePath::FromScratch, || panic!("boom"));
        });
        assert!(r.is_err());
        assert_eq!(state_path(), StatePath::Incremental);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        reset_counters();
        count_full_recompute();
        count_incremental_event();
        count_incremental_event();
        assert_eq!(counters(), (1, 2));
        reset_counters();
        assert_eq!(counters(), (0, 0));
    }
}
