//! DSI index tables and their wire format.
//!
//! "A DSI index table consists of a number of table entries τᵢ in the form
//! ⟨HC′ᵢ, Pᵢ⟩ … Pᵢ points to the next rᶦ-th frame. HC′ᵢ is the smallest HC
//! value of the objects within the frame pointed by Pᵢ" (§3.1). Pointers
//! are broadcast as frame deltas (2 bytes, §4): frames have a statically
//! known geometry, so a delta converts to an arrival time for free.

use crate::config::{ENTRY_BYTES, HC_BYTES, POINTER_BYTES, TABLE_HEADER_BYTES};
use crate::layout::DsiLayout;

/// One table entry ⟨HC′ᵢ, Pᵢ⟩.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableEntry {
    /// Smallest HC value of the objects within the pointed frame.
    pub hc: u64,
    /// Frame delta: the entry points to the `delta`-th next broadcast slot.
    pub delta: u32,
}

/// The index table associated with one broadcast frame.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IndexTable {
    /// Entries with exponentially increasing deltas (`r⁰, r¹, …`), all
    /// strictly smaller than the frame count.
    pub entries: Vec<TableEntry>,
}

impl IndexTable {
    /// On-air size in bytes (excluding per-packet headers).
    pub fn wire_bytes(&self) -> u32 {
        TABLE_HEADER_BYTES + self.entries.len() as u32 * ENTRY_BYTES
    }

    /// Serialises the table to its broadcast byte layout: a `u16` entry
    /// count followed by 16-byte HC values and 2-byte frame deltas.
    ///
    /// # Panics
    ///
    /// Panics if a delta exceeds `u16::MAX` (the paper's 2-byte pointer);
    /// this cannot happen for cycle sizes up to 65,536 frames.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_bytes() as usize);
        out.extend_from_slice(&(self.entries.len() as u16).to_be_bytes());
        for e in &self.entries {
            // HC values occupy 16 bytes on the air (paper §4); the high
            // 8 bytes of our u64 representation are zero padding.
            out.extend_from_slice(&[0u8; (HC_BYTES - 8) as usize]);
            out.extend_from_slice(&e.hc.to_be_bytes());
            let delta = u16::try_from(e.delta).expect("frame delta exceeds 2-byte pointer");
            out.extend_from_slice(&delta.to_be_bytes());
        }
        debug_assert_eq!(out.len(), self.wire_bytes() as usize);
        out
    }

    /// Decodes a table from its broadcast byte layout.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        if buf.len() < TABLE_HEADER_BYTES as usize {
            return Err(DecodeError::Truncated);
        }
        let n = u16::from_be_bytes([buf[0], buf[1]]) as usize;
        let need = TABLE_HEADER_BYTES as usize + n * ENTRY_BYTES as usize;
        if buf.len() < need {
            return Err(DecodeError::Truncated);
        }
        let mut entries = Vec::with_capacity(n);
        let mut at = TABLE_HEADER_BYTES as usize;
        for _ in 0..n {
            let pad = (HC_BYTES - 8) as usize;
            if buf[at..at + pad].iter().any(|&b| b != 0) {
                return Err(DecodeError::Corrupt);
            }
            let hc = u64::from_be_bytes(buf[at + pad..at + pad + 8].try_into().expect("8 bytes"));
            at += HC_BYTES as usize;
            let delta = u16::from_be_bytes(
                buf[at..at + POINTER_BYTES as usize]
                    .try_into()
                    .expect("2 bytes"),
            );
            at += POINTER_BYTES as usize;
            entries.push(TableEntry {
                hc,
                delta: delta as u32,
            });
        }
        Ok(Self { entries })
    }
}

/// Wire decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer shorter than the declared table.
    Truncated,
    /// Padding bytes were non-zero.
    Corrupt,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "index table truncated"),
            DecodeError::Corrupt => write!(f, "index table padding corrupt"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Builds the index table of every broadcast slot.
///
/// `frame_min_hc` is indexed by HC-order frame index; entry `i` of slot
/// `j`'s table points `rⁱ` slots ahead and carries the minimum HC of the
/// frame broadcast there.
pub fn build_tables(layout: &DsiLayout, frame_min_hc: &[u64]) -> Vec<IndexTable> {
    let nf = layout.n_frames();
    let r = layout.config().index_base as u64;
    let n_entries = layout.framing().n_entries;
    let mut tables = Vec::with_capacity(nf as usize);
    for slot in 0..nf as u64 {
        let mut entries = Vec::with_capacity(n_entries as usize);
        let mut delta = 1u64;
        for _ in 0..n_entries {
            if delta >= nf as u64 {
                break;
            }
            let target_slot = ((slot + delta) % nf as u64) as u32;
            let hc_idx = layout.hc_index_of_slot(target_slot);
            entries.push(TableEntry {
                hc: frame_min_hc[hc_idx as usize],
                delta: delta as u32,
            });
            delta *= r;
        }
        tables.push(IndexTable { entries });
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DsiConfig, FramingPolicy};

    fn layout(n_objects: u32, segments: u32) -> (DsiLayout, Vec<u64>) {
        let cfg = DsiConfig {
            framing: FramingPolicy::FixedFrameCount(8),
            segments,
            ..DsiConfig::paper_default()
        };
        let mins: Vec<u64> = (0..8u64).map(|i| i * 8 + 3).collect();
        (DsiLayout::new(cfg, n_objects, &mins), mins)
    }

    #[test]
    fn tables_follow_paper_structure() {
        let (l, mins) = layout(8, 1);
        let tables = build_tables(&l, &mins);
        assert_eq!(tables.len(), 8);
        // Slot 0: entries point 1, 2, 4 ahead (log2(8) = 3 entries).
        let t0 = &tables[0];
        assert_eq!(t0.entries.len(), 3);
        assert_eq!(
            t0.entries[0],
            TableEntry {
                hc: mins[1],
                delta: 1
            }
        );
        assert_eq!(
            t0.entries[1],
            TableEntry {
                hc: mins[2],
                delta: 2
            }
        );
        assert_eq!(
            t0.entries[2],
            TableEntry {
                hc: mins[4],
                delta: 4
            }
        );
        // Slot 6 wraps.
        let t6 = &tables[6];
        assert_eq!(
            t6.entries[1],
            TableEntry {
                hc: mins[0],
                delta: 2
            }
        );
        assert_eq!(
            t6.entries[2],
            TableEntry {
                hc: mins[2],
                delta: 4
            }
        );
    }

    #[test]
    fn reorganized_tables_point_across_blocks() {
        let (l, mins) = layout(8, 2);
        let tables = build_tables(&l, &mins);
        // Folded broadcast order is 0,7,1,6,2,5,3,4; slot 0's δ=1 entry
        // lands on HC-frame 7 (the other block, reversed).
        assert_eq!(tables[0].entries[0].hc, mins[7]);
        assert_eq!(tables[0].entries[1].hc, mins[1]);
        assert_eq!(tables[0].entries[2].hc, mins[2]);
    }

    #[test]
    fn wire_roundtrip_and_size() {
        let (l, mins) = layout(8, 1);
        let tables = build_tables(&l, &mins);
        for t in &tables {
            let bytes = t.encode();
            assert_eq!(bytes.len() as u32, t.wire_bytes());
            assert_eq!(bytes.len(), 2 + 3 * 18);
            let back = IndexTable::decode(&bytes).unwrap();
            assert_eq!(&back, t);
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let (l, mins) = layout(8, 1);
        let bytes = build_tables(&l, &mins)[0].encode();
        assert_eq!(
            IndexTable::decode(&bytes[..bytes.len() - 1]),
            Err(DecodeError::Truncated)
        );
        assert_eq!(IndexTable::decode(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn decode_rejects_corrupt_padding() {
        let (l, mins) = layout(8, 1);
        let mut bytes = build_tables(&l, &mins)[0].encode();
        bytes[3] = 0xFF; // inside the zero padding of entry 0's HC value
        assert_eq!(IndexTable::decode(&bytes), Err(DecodeError::Corrupt));
    }
}
