//! Property tests for DSI: query answers equal brute force under random
//! datasets, configurations, tune-in positions and channel conditions —
//! the central correctness claim of the reproduction.

use dsi_broadcast::{LossModel, LossScope, Tuner};
use dsi_core::hotpath::{self, StatePath};
use dsi_core::{DsiAir, DsiConfig, FramingPolicy, KnnStrategy, ReorgStyle};
use dsi_datagen::{uniform, SpatialDataset};
use dsi_geom::{Point, Rect};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = DsiConfig> {
    (
        prop_oneof![Just(32u32), Just(64), Just(128), Just(256)],
        prop_oneof![Just(2u32), Just(4)],
        prop_oneof![
            Just(FramingPolicy::OverheadBound),
            Just(FramingPolicy::OnePacketTable),
            (1u32..16).prop_map(FramingPolicy::FixedObjectFactor),
        ],
        1u32..5,
        prop_oneof![Just(ReorgStyle::Folded), Just(ReorgStyle::RoundRobin)],
    )
        .prop_map(
            |(capacity, index_base, framing, segments, reorg_style)| DsiConfig {
                capacity,
                index_base,
                framing,
                segments,
                reorg_style,
                max_index_overhead: 0.04,
            },
        )
}

/// Loss models receivable at the given capacity: with `LossScope::All` a
/// 1024-byte object must still have a realistic chance of a clean
/// transfer (at 32 B packets and θ = 0.33 that chance is ~2·10⁻⁶ — the
/// channel is physically unusable, which is why the default scope is
/// IndexOnly; see DESIGN.md §3.2).
fn arb_loss(capacity: u32) -> impl Strategy<Value = LossModel> {
    let all_max = if capacity >= 256 {
        0.3
    } else if capacity >= 128 {
        0.2
    } else {
        0.08
    };
    prop_oneof![
        3 => Just(LossModel::None),
        1 => (0.05..0.5f64).prop_map(|theta| LossModel::Iid { theta, scope: LossScope::IndexOnly }),
        1 => (0.02..all_max).prop_map(|theta| LossModel::Iid { theta, scope: LossScope::All }),
    ]
}

fn arb_config_and_loss() -> impl Strategy<Value = (DsiConfig, LossModel)> {
    arb_config().prop_flat_map(|cfg| (Just(cfg), arb_loss(cfg.capacity)))
}

proptest! {
    // End-to-end cases are expensive; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn window_equals_brute_force(
        n in 20usize..160,
        ds_seed in any::<u64>(),
        (cfg, loss) in arb_config_and_loss(),
        start_seed in any::<u64>(),
        cx in 0.0..1.0f64, cy in 0.0..1.0f64, side in 0.02..0.6f64,
    ) {
        let ds = SpatialDataset::build(&uniform(n, ds_seed), 8);
        let air = DsiAir::build(&ds, cfg);
        let w = Rect::window_in_unit_square(Point::new(cx, cy), side);
        let start = start_seed % air.program().len();
        let mut tuner = Tuner::tune_in(air.program(), start, loss, start_seed);
        let got = air.window_query(&mut tuner, &w);
        prop_assert_eq!(got, ds.brute_window(&w));
        let s = tuner.stats();
        prop_assert!(s.tuning_packets <= s.latency_packets);
    }

    #[test]
    fn knn_equals_brute_force(
        n in 20usize..160,
        ds_seed in any::<u64>(),
        (cfg, loss) in arb_config_and_loss(),
        start_seed in any::<u64>(),
        qx in -0.2..1.2f64, qy in -0.2..1.2f64,
        k in 1usize..12,
        aggressive in any::<bool>(),
    ) {
        let ds = SpatialDataset::build(&uniform(n, ds_seed), 8);
        let air = DsiAir::build(&ds, cfg);
        let strategy = if aggressive { KnnStrategy::Aggressive } else { KnnStrategy::Conservative };
        let q = Point::new(qx, qy);
        let start = start_seed % air.program().len();
        let mut tuner = Tuner::tune_in(air.program(), start, loss, start_seed);
        let got = air.knn_query(&mut tuner, q, k, strategy);
        prop_assert_eq!(got, ds.brute_knn(q, k.min(n)));
    }

    #[test]
    fn point_query_finds_exactly_the_present(
        n in 10usize..100,
        ds_seed in any::<u64>(),
        cfg in arb_config(),
        start_seed in any::<u64>(),
        probe in any::<u64>(),
    ) {
        let ds = SpatialDataset::build(&uniform(n, ds_seed), 8);
        let air = DsiAir::build(&ds, cfg);
        let start = start_seed % air.program().len();
        // Probe either a real object's HC or a random HC value.
        let hc = if probe.is_multiple_of(2) {
            ds.objects()[(probe / 2) as usize % n].hc
        } else {
            probe % (air.curve().max_d() + 1)
        };
        let mut tuner = Tuner::tune_in(air.program(), start, LossModel::None, start_seed);
        let got = air.point_query_hc(&mut tuner, hc);
        let want = ds.objects().iter().find(|o| o.hc == hc).map(|o| o.id);
        prop_assert_eq!(got.map(|o| o.id), want);
    }

    #[test]
    fn loss_never_reduces_cost(
        n in 30usize..120,
        ds_seed in any::<u64>(),
        start_seed in any::<u64>(),
        cx in 0.0..1.0f64, cy in 0.0..1.0f64,
    ) {
        // A lossy channel can only cost more than the lossless one for the
        // same query and tune-in (retries only add packets and waits) —
        // statistically; we assert the weaker, always-true invariants.
        let ds = SpatialDataset::build(&uniform(n, ds_seed), 8);
        let air = DsiAir::build(&ds, DsiConfig::paper_reorganized());
        let w = Rect::window_in_unit_square(Point::new(cx, cy), 0.3);
        let start = start_seed % air.program().len();
        let mut clean = Tuner::tune_in(air.program(), start, LossModel::None, start_seed);
        let a = air.window_query(&mut clean, &w);
        let mut lossy = Tuner::tune_in(air.program(), start, LossModel::iid(0.4), start_seed);
        let b = air.window_query(&mut lossy, &w);
        prop_assert_eq!(a, b);
        prop_assert!(lossy.stats().latency_packets >= clean.stats().latency_packets);
    }
}

// ---------------------------------------------------------------------------
// Differential tests of the incremental query-state engine.
//
// Under `StatePath::Audit` the driver asserts, after every applied event
// (learned bound, resolved header) and once per loop iteration, that its
// incrementally maintained cleared set and remainders equal the
// from-scratch `cleared_regions` + `subtract_ranges` oracle. Running full
// lossy window and kNN queries in this mode therefore *is* the
// differential property test: any divergence panics inside the driver.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn incremental_state_equals_oracle_under_loss(
        n in 30usize..140,
        ds_seed in any::<u64>(),
        start_seed in any::<u64>(),
        theta in 0.05..0.45f64,
        cx in 0.0..1.0f64, cy in 0.0..1.0f64, side in 0.05..0.5f64,
        qx in -0.1..1.1f64, qy in -0.1..1.1f64,
        k in 1usize..10,
        aggressive in any::<bool>(),
        reorganized in any::<bool>(),
    ) {
        let cfg = if reorganized {
            DsiConfig::paper_reorganized()
        } else {
            DsiConfig::paper_default()
        };
        let ds = SpatialDataset::build(&uniform(n, ds_seed), 8);
        let air = DsiAir::build(&ds, cfg);
        let loss = LossModel::iid(theta);
        let start = start_seed % air.program().len();
        hotpath::with_state_path(StatePath::Audit, || {
            // Window run: audited against the oracle after every event.
            let w = Rect::window_in_unit_square(Point::new(cx, cy), side);
            let mut tuner = Tuner::tune_in(air.program(), start, loss, start_seed);
            let got = air.window_query(&mut tuner, &w);
            assert_eq!(got, ds.brute_window(&w));

            // kNN run, both navigation strategies reachable.
            let strategy = if aggressive {
                KnnStrategy::Aggressive
            } else {
                KnnStrategy::Conservative
            };
            let q = Point::new(qx, qy);
            let mut tuner = Tuner::tune_in(air.program(), start, loss, start_seed ^ 1);
            let got = air.knn_query(&mut tuner, q, k, strategy);
            assert_eq!(got, ds.brute_knn(q, k.min(n)));
        });
    }
}

#[test]
fn incremental_path_never_recomputes_from_scratch() {
    let ds = SpatialDataset::build(&uniform(400, 7), 9);
    let air = DsiAir::build(&ds, DsiConfig::paper_reorganized());
    let w = Rect::new(0.2, 0.2, 0.6, 0.6);
    let q = Point::new(0.4, 0.4);

    hotpath::reset_counters();
    let mut tuner = Tuner::tune_in(air.program(), 17, LossModel::iid(0.3), 3);
    let got_w = air.window_query(&mut tuner, &w);
    let mut tuner = Tuner::tune_in(air.program(), 17, LossModel::iid(0.3), 4);
    let got_k = air.knn_query(&mut tuner, q, 5, KnnStrategy::Conservative);
    let (full, events) = hotpath::counters();
    assert_eq!(full, 0, "incremental path must not recompute from scratch");
    assert!(events > 0, "incremental path must apply deltas");

    // The from-scratch baseline answers identically but recomputes the
    // cleared regions on every loop iteration.
    hotpath::with_state_path(StatePath::FromScratch, || {
        hotpath::reset_counters();
        let mut tuner = Tuner::tune_in(air.program(), 17, LossModel::iid(0.3), 3);
        assert_eq!(air.window_query(&mut tuner, &w), got_w);
        let mut tuner = Tuner::tune_in(air.program(), 17, LossModel::iid(0.3), 4);
        assert_eq!(
            air.knn_query(&mut tuner, q, 5, KnnStrategy::Conservative),
            got_k
        );
        let (full, _) = hotpath::counters();
        assert!(full > 0, "baseline recomputes every iteration");
    });
    assert_eq!(got_w, ds.brute_window(&w));
    assert_eq!(got_k, ds.brute_knn(q, 5));
}
