//! Property tests for DSI: query answers equal brute force under random
//! datasets, configurations, tune-in positions and channel conditions —
//! the central correctness claim of the reproduction.

use std::collections::HashMap;

use dsi_broadcast::{LossModel, LossScope, Tuner};
use dsi_core::hotpath::{self, StatePath};
use dsi_core::knn_testkit::CandSet;
use dsi_core::{DsiAir, DsiConfig, FramingPolicy, KnnStrategy, ReorgStyle};
use dsi_datagen::{uniform, SpatialDataset};
use dsi_geom::{Point, Rect};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = DsiConfig> {
    (
        prop_oneof![Just(32u32), Just(64), Just(128), Just(256)],
        prop_oneof![Just(2u32), Just(4)],
        prop_oneof![
            Just(FramingPolicy::OverheadBound),
            Just(FramingPolicy::OnePacketTable),
            (1u32..16).prop_map(FramingPolicy::FixedObjectFactor),
        ],
        1u32..5,
        prop_oneof![Just(ReorgStyle::Folded), Just(ReorgStyle::RoundRobin)],
    )
        .prop_map(
            |(capacity, index_base, framing, segments, reorg_style)| DsiConfig {
                capacity,
                index_base,
                framing,
                segments,
                reorg_style,
                max_index_overhead: 0.04,
            },
        )
}

/// Loss models receivable at the given capacity: with `LossScope::All` a
/// 1024-byte object must still have a realistic chance of a clean
/// transfer (at 32 B packets and θ = 0.33 that chance is ~2·10⁻⁶ — the
/// channel is physically unusable, which is why the default scope is
/// IndexOnly; see DESIGN.md §3.2).
fn arb_loss(capacity: u32) -> impl Strategy<Value = LossModel> {
    let all_max = if capacity >= 256 {
        0.3
    } else if capacity >= 128 {
        0.2
    } else {
        0.08
    };
    prop_oneof![
        3 => Just(LossModel::None),
        1 => (0.05..0.5f64).prop_map(|theta| LossModel::Iid { theta, scope: LossScope::IndexOnly }),
        1 => (0.02..all_max).prop_map(|theta| LossModel::Iid { theta, scope: LossScope::All }),
    ]
}

fn arb_config_and_loss() -> impl Strategy<Value = (DsiConfig, LossModel)> {
    arb_config().prop_flat_map(|cfg| (Just(cfg), arb_loss(cfg.capacity)))
}

proptest! {
    // End-to-end cases are expensive; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn window_equals_brute_force(
        n in 20usize..160,
        ds_seed in any::<u64>(),
        (cfg, loss) in arb_config_and_loss(),
        start_seed in any::<u64>(),
        cx in 0.0..1.0f64, cy in 0.0..1.0f64, side in 0.02..0.6f64,
    ) {
        let ds = SpatialDataset::build(&uniform(n, ds_seed), 8);
        let air = DsiAir::build(&ds, cfg);
        let w = Rect::window_in_unit_square(Point::new(cx, cy), side);
        let start = start_seed % air.program().len();
        let mut tuner = Tuner::tune_in(air.program(), start, loss, start_seed);
        let got = air.window_query(&mut tuner, &w);
        prop_assert_eq!(got, ds.brute_window(&w));
        let s = tuner.stats();
        prop_assert!(s.tuning_packets <= s.latency_packets);
    }

    #[test]
    fn knn_equals_brute_force(
        n in 20usize..160,
        ds_seed in any::<u64>(),
        (cfg, loss) in arb_config_and_loss(),
        start_seed in any::<u64>(),
        qx in -0.2..1.2f64, qy in -0.2..1.2f64,
        k in 1usize..12,
        aggressive in any::<bool>(),
    ) {
        let ds = SpatialDataset::build(&uniform(n, ds_seed), 8);
        let air = DsiAir::build(&ds, cfg);
        let strategy = if aggressive { KnnStrategy::Aggressive } else { KnnStrategy::Conservative };
        let q = Point::new(qx, qy);
        let start = start_seed % air.program().len();
        let mut tuner = Tuner::tune_in(air.program(), start, loss, start_seed);
        let got = air.knn_query(&mut tuner, q, k, strategy);
        prop_assert_eq!(got, ds.brute_knn(q, k.min(n)));
    }

    #[test]
    fn point_query_finds_exactly_the_present(
        n in 10usize..100,
        ds_seed in any::<u64>(),
        cfg in arb_config(),
        start_seed in any::<u64>(),
        probe in any::<u64>(),
    ) {
        let ds = SpatialDataset::build(&uniform(n, ds_seed), 8);
        let air = DsiAir::build(&ds, cfg);
        let start = start_seed % air.program().len();
        // Probe either a real object's HC or a random HC value.
        let hc = if probe.is_multiple_of(2) {
            ds.objects()[(probe / 2) as usize % n].hc
        } else {
            probe % (air.curve().max_d() + 1)
        };
        let mut tuner = Tuner::tune_in(air.program(), start, LossModel::None, start_seed);
        let got = air.point_query_hc(&mut tuner, hc);
        let want = ds.objects().iter().find(|o| o.hc == hc).map(|o| o.id);
        prop_assert_eq!(got.map(|o| o.id), want);
    }

    #[test]
    fn loss_never_reduces_cost(
        n in 30usize..120,
        ds_seed in any::<u64>(),
        start_seed in any::<u64>(),
        cx in 0.0..1.0f64, cy in 0.0..1.0f64,
    ) {
        // A lossy channel can only cost more than the lossless one for the
        // same query and tune-in (retries only add packets and waits) —
        // statistically; we assert the weaker, always-true invariants.
        let ds = SpatialDataset::build(&uniform(n, ds_seed), 8);
        let air = DsiAir::build(&ds, DsiConfig::paper_reorganized());
        let w = Rect::window_in_unit_square(Point::new(cx, cy), 0.3);
        let start = start_seed % air.program().len();
        let mut clean = Tuner::tune_in(air.program(), start, LossModel::None, start_seed);
        let a = air.window_query(&mut clean, &w);
        let mut lossy = Tuner::tune_in(air.program(), start, LossModel::iid(0.4), start_seed);
        let b = air.window_query(&mut lossy, &w);
        prop_assert_eq!(a, b);
        prop_assert!(lossy.stats().latency_packets >= clean.stats().latency_packets);
    }
}

// ---------------------------------------------------------------------------
// Differential tests of the incremental query-state engine.
//
// Under `StatePath::Audit` the driver asserts, after every applied event
// (learned bound, resolved header) and once per loop iteration, that its
// incrementally maintained cleared set and remainders equal the
// from-scratch `cleared_regions` + `subtract_ranges` oracle. Running full
// lossy window and kNN queries in this mode therefore *is* the
// differential property test: any divergence panics inside the driver.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn incremental_state_equals_oracle_under_loss(
        n in 30usize..140,
        ds_seed in any::<u64>(),
        start_seed in any::<u64>(),
        theta in 0.05..0.45f64,
        cx in 0.0..1.0f64, cy in 0.0..1.0f64, side in 0.05..0.5f64,
        qx in -0.1..1.1f64, qy in -0.1..1.1f64,
        k in 1usize..10,
        aggressive in any::<bool>(),
        reorganized in any::<bool>(),
    ) {
        let cfg = if reorganized {
            DsiConfig::paper_reorganized()
        } else {
            DsiConfig::paper_default()
        };
        let ds = SpatialDataset::build(&uniform(n, ds_seed), 8);
        let air = DsiAir::build(&ds, cfg);
        let loss = LossModel::iid(theta);
        let start = start_seed % air.program().len();
        hotpath::with_state_path(StatePath::Audit, || {
            // Window run: audited against the oracle after every event.
            let w = Rect::window_in_unit_square(Point::new(cx, cy), side);
            let mut tuner = Tuner::tune_in(air.program(), start, loss.clone(), start_seed);
            let got = air.window_query(&mut tuner, &w);
            assert_eq!(got, ds.brute_window(&w));

            // kNN run, both navigation strategies reachable.
            let strategy = if aggressive {
                KnnStrategy::Aggressive
            } else {
                KnnStrategy::Conservative
            };
            let q = Point::new(qx, qy);
            let mut tuner = Tuner::tune_in(air.program(), start, loss, start_seed ^ 1);
            let got = air.knn_query(&mut tuner, q, k, strategy);
            assert_eq!(got, ds.brute_knn(q, k.min(n)));
        });
    }
}

// ---------------------------------------------------------------------------
// Differential test of the batched-offer candidate API.
//
// `Candidates::offer_virtuals` bounds a whole index table's offers with a
// single top-k selection instead of one per entry. The stale bound may
// admit candidates a per-offer filter would reject, but those extras rank
// strictly beyond the k-th bound forever — so the radius and the
// completion check must never disagree with the sequential per-offer
// oracle. Cache coherence (radius cache equals a fresh selection after
// every mutation) is asserted alongside, since a stale cache is exactly
// how the radius and completion checks could diverge from each other.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CandOp {
    /// One index table's worth of virtual offers: `(hc, raw upper bound)`.
    Batch(Vec<(u64, u32)>),
    /// Header event for a previously offered candidate: `(selector, raw
    /// distance fraction)`.
    Header(u64, u32),
    /// Full record retrieved for a previously resolved candidate.
    Retrieve(u64),
}

fn arb_cand_op() -> impl Strategy<Value = CandOp> {
    prop_oneof![
        3 => prop::collection::vec((0u64..240, 1u32..1_000_000), 1..12).prop_map(CandOp::Batch),
        3 => (any::<u64>(), 0u32..1_000_001).prop_map(|(s, f)| CandOp::Header(s, f)),
        1 => any::<u64>().prop_map(CandOp::Retrieve),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn batched_offers_agree_with_sequential_oracle(
        k in 1usize..8,
        ops in prop::collection::vec(arb_cand_op(), 1..40),
    ) {
        let mut batched = CandSet::new(k);
        let mut oracle = CandSet::new(k);
        // On the air, a candidate's upper bound and exact distance are
        // deterministic functions of its HC value; mirror that here.
        let mut ub2_of: HashMap<u64, f64> = HashMap::new();
        let mut d2_of: HashMap<u64, f64> = HashMap::new();
        let mut offered: Vec<u64> = Vec::new();
        let mut resolved: Vec<(u64, u32)> = Vec::new();
        let mut next_id = 0u32;
        for op in ops {
            match op {
                CandOp::Batch(raw) => {
                    let offers: Vec<(u64, f64)> = raw
                        .iter()
                        .map(|&(hc, u)| {
                            (hc, *ub2_of.entry(hc).or_insert(u as f64 / 1e4))
                        })
                        .collect();
                    batched.offer_batch(&offers);
                    for &(hc, ub2) in &offers {
                        oracle.offer_one(hc, ub2);
                        offered.push(hc);
                    }
                }
                CandOp::Header(sel, frac) => {
                    if offered.is_empty() {
                        continue;
                    }
                    let hc = offered[(sel % offered.len() as u64) as usize];
                    let d2 =
                        *d2_of.entry(hc).or_insert(ub2_of[&hc] * (frac as f64 / 1e6));
                    next_id += 1;
                    let wanted_b = batched.header(hc, d2, next_id);
                    let wanted_o = oracle.header(hc, d2, next_id);
                    prop_assert_eq!(
                        wanted_b, wanted_o,
                        "radius disagreement: header {} accepted differently", hc
                    );
                    if wanted_b {
                        resolved.push((hc, next_id));
                    }
                }
                CandOp::Retrieve(sel) => {
                    if resolved.is_empty() {
                        continue;
                    }
                    let (hc, _) = resolved[(sel % resolved.len() as u64) as usize];
                    batched.mark_retrieved(hc);
                    oracle.mark_retrieved(hc);
                }
            }
            // The batched set's radius equals the sequential oracle's.
            prop_assert_eq!(batched.r2(), oracle.r2());
            // Radius and completion read one coherent selection.
            batched.assert_cache_coherent();
            oracle.assert_cache_coherent();
            // Extra batch-admitted candidates may defer completion but
            // never fake it.
            if batched.top_k_retrieved() {
                prop_assert!(oracle.top_k_retrieved());
            }
        }
        prop_assert_eq!(batched.result_ids(), oracle.result_ids());
    }
}

// ---------------------------------------------------------------------------
// Bounded-memory property of the kNN client under loss.
//
// The interval-distance `HashMap` the kNN mode used to keep grew by one
// entry per decomposed range per circle shrink and never evicted: heavy
// loss (many cycles, many shrinks) grew it without bound. Distances now
// live on the target ranges themselves, so the peak memory a query ever
// holds is one decomposition plus the candidate set — independent of how
// many shrinks the channel forces.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn knn_peak_memory_bounded_under_loss(
        n in 50usize..200,
        ds_seed in any::<u64>(),
        start_seed in any::<u64>(),
        theta in 0.2..0.5f64,
        qx in -0.1..1.1f64, qy in -0.1..1.1f64,
        k in 1usize..10,
        aggressive in any::<bool>(),
    ) {
        let ds = SpatialDataset::build(&uniform(n, ds_seed), 8);
        let air = DsiAir::build(&ds, DsiConfig::paper_reorganized());
        let strategy = if aggressive { KnnStrategy::Aggressive } else { KnnStrategy::Conservative };
        let q = Point::new(qx, qy);
        let start = start_seed % air.program().len();
        let mut tuner = Tuner::tune_in(air.program(), start, LossModel::iid(theta), start_seed);
        let (got, probe) = air.knn_query_probed(&mut tuner, q, k, strategy);
        prop_assert_eq!(got, ds.brute_knn(q, k.min(n)));
        // Held range memory (current decomposition + swap buffer) stays
        // flat across shrinks: the epochs together produced strictly more
        // than the client ever held, no matter how many shrinks loss
        // forced. The dropped `(lo, hi) → dist` cache accumulated
        // `total_ranges` instead — a reintroduced accumulate-forever
        // structure drives `peak_live_ranges` back toward it and fails
        // this. (Each epoch emits ≥ 1 range while candidates exist, and
        // the peak covers at most two consecutive epochs, so three or
        // more epochs guarantee a strict gap.)
        if probe.refreshes >= 3 {
            prop_assert!(
                probe.total_ranges > probe.peak_live_ranges,
                "refreshes {} produced {} ranges total but peak held was {}",
                probe.refreshes, probe.total_ranges, probe.peak_live_ranges
            );
        }
        // Candidates are keyed by the HC of a real object: never more
        // entries than objects.
        prop_assert!(probe.peak_cands <= n);
    }
}

#[test]
fn incremental_path_never_recomputes_from_scratch() {
    let ds = SpatialDataset::build(&uniform(400, 7), 9);
    let air = DsiAir::build(&ds, DsiConfig::paper_reorganized());
    let w = Rect::new(0.2, 0.2, 0.6, 0.6);
    let q = Point::new(0.4, 0.4);

    hotpath::reset_counters();
    let mut tuner = Tuner::tune_in(air.program(), 17, LossModel::iid(0.3), 3);
    let got_w = air.window_query(&mut tuner, &w);
    let mut tuner = Tuner::tune_in(air.program(), 17, LossModel::iid(0.3), 4);
    let got_k = air.knn_query(&mut tuner, q, 5, KnnStrategy::Conservative);
    let (full, events) = hotpath::counters();
    assert_eq!(full, 0, "incremental path must not recompute from scratch");
    assert!(events > 0, "incremental path must apply deltas");

    // The from-scratch baseline answers identically but recomputes the
    // cleared regions on every loop iteration.
    hotpath::with_state_path(StatePath::FromScratch, || {
        hotpath::reset_counters();
        let mut tuner = Tuner::tune_in(air.program(), 17, LossModel::iid(0.3), 3);
        assert_eq!(air.window_query(&mut tuner, &w), got_w);
        let mut tuner = Tuner::tune_in(air.program(), 17, LossModel::iid(0.3), 4);
        assert_eq!(
            air.knn_query(&mut tuner, q, 5, KnnStrategy::Conservative),
            got_k
        );
        let (full, _) = hotpath::counters();
        assert!(full > 0, "baseline recomputes every iteration");
    });
    assert_eq!(got_w, ds.brute_window(&w));
    assert_eq!(got_k, ds.brute_knn(q, 5));
}

/// Explicit (optimizer-shaped) placements change scheduling only: a
/// deliberately scrambled unit→channel assignment — reverse round-robin,
/// destroying every adjacency the analytic placements preserve — keeps
/// DSI's window and kNN answers equal to brute force under loss and any
/// antenna count.
#[test]
fn explicit_placement_preserves_answers() {
    use dsi_broadcast::{AntennaConfig, ChannelConfig, Placement};
    let ds = SpatialDataset::build(&uniform(220, 7), 8);
    let cfg = DsiConfig::paper_reorganized().with_capacity(64);
    let single = DsiAir::build(&ds, cfg);
    let units = single
        .program()
        .unit_starts()
        .iter()
        .filter(|&&s| s)
        .count();
    const C: u32 = 3;
    assert!(units >= C as usize);
    let assignment: Vec<u32> = (0..units).map(|u| (C - 1) - (u as u32 % C)).collect();
    let air = DsiAir::build_channels(
        &ds,
        cfg,
        ChannelConfig {
            channels: C,
            placement: Placement::Explicit(assignment),
            switch_cost: 3,
        },
    );
    let w = Rect::new(0.15, 0.2, 0.6, 0.7);
    let q = Point::new(0.4, 0.5);
    for antennas in [1u32, 2, 3] {
        for loss in [LossModel::None, LossModel::iid(0.2)] {
            let ant = AntennaConfig::new(antennas);
            let mut tuner = Tuner::tune_in_with(air.program(), 11, loss.clone(), 5, ant);
            assert_eq!(air.window_query(&mut tuner, &w), ds.brute_window(&w));
            let mut tuner = Tuner::tune_in_with(air.program(), 23, loss, 9, ant);
            assert_eq!(
                air.knn_query(&mut tuner, q, 5, KnnStrategy::Conservative),
                ds.brute_knn(q, 5)
            );
        }
    }
}
