//! The bulk-loaded B+-tree over HC values.

use dsi_datagen::Object;

/// On-air size of a B+-tree entry: HC key (16 bytes) + pointer (2 bytes).
pub const BP_ENTRY_BYTES: u32 = 18;
/// Per-node header (entry count).
pub const BP_NODE_HEADER_BYTES: u32 = 2;

/// What a node points at.
#[derive(Debug, Clone)]
pub enum BpChildren {
    /// Indices into the next-lower level.
    Nodes(Vec<u32>),
    /// A contiguous run of the HC-sorted object array (leaves).
    Objects {
        /// First object index.
        start: u32,
        /// Number of objects.
        count: u32,
    },
}

/// One B+-tree node.
#[derive(Debug, Clone)]
pub struct BpNode {
    /// Smallest HC value under this node (its separator key).
    pub min_hc: u64,
    /// Children.
    pub children: BpChildren,
}

impl BpNode {
    /// Number of entries (defines the on-air size).
    pub fn entry_count(&self) -> u32 {
        match &self.children {
            BpChildren::Nodes(v) => v.len() as u32,
            BpChildren::Objects { count, .. } => *count,
        }
    }
}

/// A bulk-loaded B+-tree. `levels[0]` are the leaves; the last level holds
/// the single root. Objects are kept in ascending HC order (the broadcast
/// order of HCI).
#[derive(Debug, Clone)]
pub struct BpTree {
    /// Nodes per level, leaves first.
    pub levels: Vec<Vec<BpNode>>,
    /// Objects in ascending HC order.
    pub objects: Vec<Object>,
}

/// Bulk-loads a B+-tree by chunking the HC-sorted objects into leaves of
/// `fanout` entries and stacking levels until a single root remains.
///
/// # Panics
///
/// Panics if `objects` is empty, unsorted, or `fanout < 2`.
pub fn bulk_load(objects: &[Object], fanout: u32) -> BpTree {
    assert!(!objects.is_empty(), "cannot load an empty B+-tree");
    assert!(fanout >= 2, "fanout must be >= 2");
    assert!(
        objects.windows(2).all(|w| w[0].hc < w[1].hc),
        "objects must be strictly ascending in HC"
    );
    let mut leaves = Vec::with_capacity(objects.len().div_ceil(fanout as usize));
    let mut at = 0u32;
    for chunk in objects.chunks(fanout as usize) {
        leaves.push(BpNode {
            min_hc: chunk[0].hc,
            children: BpChildren::Objects {
                start: at,
                count: chunk.len() as u32,
            },
        });
        at += chunk.len() as u32;
    }
    let mut levels = vec![leaves];
    while levels.last().expect("non-empty").len() > 1 {
        let below = levels.last().expect("non-empty");
        let mut parents = Vec::with_capacity(below.len().div_ceil(fanout as usize));
        let mut idx = 0u32;
        for chunk in below.chunks(fanout as usize) {
            parents.push(BpNode {
                min_hc: chunk[0].min_hc,
                children: BpChildren::Nodes((idx..idx + chunk.len() as u32).collect()),
            });
            idx += chunk.len() as u32;
        }
        levels.push(parents);
    }
    BpTree {
        levels,
        objects: objects.to_vec(),
    }
}

impl BpTree {
    /// Height in node levels.
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// The root node.
    pub fn root(&self) -> &BpNode {
        &self.levels[self.height() - 1][0]
    }

    /// Exclusive upper bound of the key interval of child `c` within a
    /// node: the next sibling's separator, or the parent's own bound.
    pub fn child_upper(
        &self,
        level: usize,
        node: &BpNode,
        child_pos: usize,
        parent_ub: u64,
    ) -> u64 {
        let BpChildren::Nodes(kids) = &node.children else {
            panic!("child_upper on a leaf");
        };
        kids.get(child_pos + 1)
            .map(|&k| self.levels[level - 1][k as usize].min_hc)
            .unwrap_or(parent_ub)
    }

    /// Checks structural invariants (tests / debug builds).
    ///
    /// # Panics
    ///
    /// Panics when an invariant is violated.
    pub fn validate(&self) {
        assert_eq!(self.levels.last().expect("non-empty").len(), 1);
        let mut at = 0u32;
        for leaf in &self.levels[0] {
            let BpChildren::Objects { start, count } = leaf.children else {
                panic!("leaf without objects");
            };
            assert_eq!(start, at);
            assert_eq!(leaf.min_hc, self.objects[start as usize].hc);
            at += count;
        }
        assert_eq!(at as usize, self.objects.len());
        for lv in 1..self.levels.len() {
            let mut at = 0u32;
            for node in &self.levels[lv] {
                let BpChildren::Nodes(kids) = &node.children else {
                    panic!("internal node without node children");
                };
                assert_eq!(kids[0], at);
                assert_eq!(node.min_hc, self.levels[lv - 1][at as usize].min_hc);
                at += kids.len() as u32;
            }
            assert_eq!(at as usize, self.levels[lv - 1].len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_datagen::{uniform, SpatialDataset};

    fn objects(n: usize) -> Vec<Object> {
        SpatialDataset::build(&uniform(n, 3), 10).objects().to_vec()
    }

    #[test]
    fn bulk_load_validates() {
        for fanout in [2u32, 3, 7, 50] {
            let t = bulk_load(&objects(300), fanout);
            t.validate();
        }
    }

    #[test]
    fn single_object_tree() {
        let t = bulk_load(&objects(1), 4);
        t.validate();
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn separators_bound_subtrees() {
        let t = bulk_load(&objects(200), 5);
        // Every leaf's objects lie in [min_hc, next leaf's min_hc).
        for (i, leaf) in t.levels[0].iter().enumerate() {
            let ub = t.levels[0].get(i + 1).map(|n| n.min_hc).unwrap_or(u64::MAX);
            let BpChildren::Objects { start, count } = leaf.children else {
                unreachable!()
            };
            for o in &t.objects[start as usize..(start + count) as usize] {
                assert!(o.hc >= leaf.min_hc && o.hc < ub);
            }
        }
    }

    #[test]
    fn child_upper_uses_sibling_or_parent() {
        let t = bulk_load(&objects(100), 4);
        let lv = t.height() - 1;
        let root = t.root();
        let BpChildren::Nodes(kids) = &root.children else {
            unreachable!()
        };
        let ub = t.child_upper(lv, root, kids.len() - 1, u64::MAX);
        assert_eq!(ub, u64::MAX);
        if kids.len() >= 2 {
            let ub0 = t.child_upper(lv, root, 0, u64::MAX);
            assert_eq!(ub0, t.levels[lv - 1][kids[1] as usize].min_hc);
        }
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_objects_rejected() {
        let mut objs = objects(10);
        objs.swap(0, 5);
        let _ = bulk_load(&objs, 4);
    }
}
