//! HCI baseline: a B+-tree over Hilbert-curve values on the air.
//!
//! The paper's second baseline (Zheng et al., PerCom'03 "Spatial index on
//! air") broadcasts data objects in Hilbert order and indexes them with a
//! bulk-loaded B+-tree over the HC values, laid out with the same
//! distributed indexing scheme as the R-tree. Window queries decompose the
//! window into HC ranges and descend the tree for each; kNN queries are
//! two-phase: locate the query point's HC position and bound a search
//! radius from the k index-nearest objects, then run a window-style
//! retrieval over the bounding box of that circle — the second pass is
//! what makes HCI kNN pay one-to-two extra broadcast cycles compared to
//! DSI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod air;
mod client;
mod tree;
mod verify;

pub use air::{BpAir, BpAirConfig, BpPacket};
pub use tree::{bulk_load, BpChildren, BpNode, BpTree, BP_ENTRY_BYTES, BP_NODE_HEADER_BYTES};
