//! [`Verifiable`] for the HCI B+-tree broadcast; structurally the same
//! extraction as the R-tree's (see `dsi-rtree`'s `verify` module): node
//! copies with `Covers` edges over contiguous data-ordinal ranges,
//! `Local` edges at the leaves, segment starts as entries.

use dsi_verify::{Edge, EdgeClaim, StaticModel, Verifiable};

use crate::air::{BpAir, NodeWhere};
use crate::tree::{BpChildren, BpTree};

/// Data-ordinal range `[lo, hi)` of the subtree at `(level, idx)`; bulk
/// loading hands leaves consecutive ranges, so subtrees are contiguous.
fn subtree_range(tree: &BpTree, level: usize, idx: u32) -> (u64, u64) {
    match &tree.levels[level][idx as usize].children {
        BpChildren::Objects { start, count } => (*start as u64, (*start + *count) as u64),
        BpChildren::Nodes(kids) => {
            let mut lo = u64::MAX;
            let mut hi = 0;
            for &k in kids {
                let (l, h) = subtree_range(tree, level - 1, k);
                lo = lo.min(l);
                hi = hi.max(h);
            }
            (lo, hi)
        }
    }
}

/// Flat positions of every on-air copy of node `(level, idx)`.
fn copies(air: &BpAir, level: usize, idx: u32) -> Vec<u64> {
    match &air.node_where[level][idx as usize] {
        NodeWhere::Single(pos) => vec![*pos],
        NodeWhere::PerSegment {
            first,
            last,
            path_offset,
        } => (*first..=*last)
            .map(|s| air.segment_starts[s as usize] + path_offset)
            .collect(),
    }
}

impl BpAir {
    /// The static model of this broadcast (see the module docs).
    pub fn static_model(&self) -> StaticModel {
        let mut m = StaticModel::from_program("HCI", self.program());
        m.sweep_passes = self.tree.height() as u32 + 2;
        for (obj, &pos) in self.object_pos.iter().enumerate() {
            let u = m.unit_at(pos).expect("object header is a unit start");
            m.units[u].key = obj as u64;
        }
        for level in 0..self.tree.height() {
            for idx in 0..self.tree.levels[level].len() as u32 {
                for copy in copies(self, level, idx) {
                    let u = m.unit_at(copy).expect("node copy is a unit start");
                    match &self.tree.levels[level][idx as usize].children {
                        BpChildren::Nodes(kids) => {
                            for &k in kids {
                                let (lo, hi) = subtree_range(&self.tree, level - 1, k);
                                for kc in copies(self, level - 1, k) {
                                    m.edges[u].push(Edge {
                                        target: kc,
                                        claim: EdgeClaim::Covers { lo, hi },
                                    });
                                }
                            }
                        }
                        BpChildren::Objects { start, count } => {
                            for obj in *start..*start + *count {
                                m.edges[u].push(Edge {
                                    target: self.object_pos[obj as usize],
                                    claim: EdgeClaim::Local,
                                });
                            }
                        }
                    }
                }
            }
        }
        for &s in &self.segment_starts {
            let u = m.unit_at(s).expect("segment start is a unit start");
            m.entries.push(u as u32);
        }
        m
    }
}

impl Verifiable for BpAir {
    fn static_model(&self) -> StaticModel {
        BpAir::static_model(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::air::BpAirConfig;
    use dsi_broadcast::ChannelConfig;
    use dsi_datagen::SpatialDataset;

    #[test]
    fn grid_valid_hci_programs_verify_clean() {
        let ds = SpatialDataset::build(&dsi_datagen::uniform(220, 42), 10);
        for chan in [
            ChannelConfig::single(),
            ChannelConfig::blocked(2, 1),
            ChannelConfig::striped(2, 1),
            ChannelConfig::striped_frames(4, 1),
            ChannelConfig::index_data(2, 1, 2),
        ] {
            let air = BpAir::build_channels(&ds, BpAirConfig::new(64), chan.clone());
            let model = air.static_model();
            let report = dsi_verify::verify(&model).unwrap_or_else(|v| panic!("{chan:?}: {v:?}"));
            assert_eq!(report.n_data_units, 220);
        }
    }
}
