//! Distributed air layout for the HCI B+-tree.
//!
//! Identical in structure to the R-tree layout (see `dsi-rtree`): the
//! cycle is a sequence of segments (subtrees at a cut level), each headed
//! by a replicated root-path copy, followed by the segment's nodes
//! (depth-first, once per cycle) and its data objects in HC order.

use dsi_broadcast::{ChannelConfig, LayoutError, PacketClass, Payload, Program, Tuner};
use dsi_datagen::SpatialDataset;
use dsi_geom::GridMapper;
use dsi_hilbert::HilbertCurve;

use crate::tree::{bulk_load, BpChildren, BpTree, BP_ENTRY_BYTES, BP_NODE_HEADER_BYTES};

/// Per-packet header, as for DSI.
const PACKET_HEADER_BYTES: u32 = 2;
/// Data object size (paper §4).
const OBJECT_BYTES: u32 = 1024;

/// Air-layout configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpAirConfig {
    /// Packet capacity in bytes.
    pub capacity: u32,
    /// Upper bound on data segments per cycle.
    pub max_segments: u32,
}

impl BpAirConfig {
    /// Default used by the evaluation.
    pub fn new(capacity: u32) -> Self {
        Self {
            capacity,
            max_segments: 128,
        }
    }

    /// Node fanout at this capacity (leaf and internal entries are both 18
    /// bytes).
    pub fn fanout(&self) -> u32 {
        ((self
            .capacity
            .saturating_sub(PACKET_HEADER_BYTES + BP_NODE_HEADER_BYTES))
            / BP_ENTRY_BYTES)
            .max(2)
    }

    /// Packets per node slot.
    pub fn node_packets(&self) -> u32 {
        (BP_NODE_HEADER_BYTES + self.fanout() * BP_ENTRY_BYTES)
            .div_ceil(self.capacity - PACKET_HEADER_BYTES)
    }

    /// Packets per data object.
    pub fn object_packets(&self) -> u32 {
        OBJECT_BYTES.div_ceil(self.capacity)
    }
}

/// One packet of the HCI broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BpPacket {
    /// Part of a node slot (path copy or subtree node).
    Node {
        /// Tree level.
        level: u8,
        /// Node index within its level.
        idx: u32,
        /// Packet index within the slot.
        part: u16,
    },
    /// First packet of a data object.
    ObjHeader {
        /// Index into the HC-sorted object array.
        obj: u32,
    },
    /// Continuation packet of a data object.
    ObjPayload {
        /// Index into the HC-sorted object array.
        obj: u32,
        /// Sequence number (1-based).
        seq: u16,
    },
}

impl Payload for BpPacket {
    fn class(&self) -> PacketClass {
        match self {
            BpPacket::Node { .. } => PacketClass::Index,
            BpPacket::ObjHeader { .. } => PacketClass::ObjectHeader,
            BpPacket::ObjPayload { .. } => PacketClass::ObjectPayload,
        }
    }

    fn unit_start(&self) -> bool {
        match self {
            BpPacket::Node { part, .. } => *part == 0,
            BpPacket::ObjHeader { .. } => true,
            BpPacket::ObjPayload { .. } => false,
        }
    }
}

/// Where a node can be read.
#[derive(Debug, Clone)]
pub(crate) enum NodeWhere {
    /// One occurrence per cycle.
    Single(u64),
    /// A copy in every segment header of `[first, last]` at `path_offset`.
    PerSegment {
        /// First covering segment.
        first: u32,
        /// Last covering segment (inclusive).
        last: u32,
        /// Packet offset within the segment header.
        path_offset: u64,
    },
}

/// The built HCI broadcast.
#[derive(Debug, Clone)]
pub struct BpAir {
    pub(crate) tree: BpTree,
    pub(crate) config: BpAirConfig,
    pub(crate) program: Program<BpPacket>,
    pub(crate) node_where: Vec<Vec<NodeWhere>>,
    pub(crate) segment_starts: Vec<u64>,
    pub(crate) object_pos: Vec<u64>,
    pub(crate) curve: HilbertCurve,
    pub(crate) mapper: GridMapper,
}

impl BpAir {
    /// Builds the single-channel HCI broadcast for a dataset.
    pub fn build(dataset: &SpatialDataset, config: BpAirConfig) -> Self {
        Self::build_channels(dataset, config, ChannelConfig::single())
    }

    /// Builds the HCI broadcast scheduled over the channels of `channels`.
    ///
    /// Panics when the channel configuration cannot schedule this cycle;
    /// [`BpAir::try_build_channels`] reports the defect as a
    /// [`LayoutError`] instead.
    pub fn build_channels(
        dataset: &SpatialDataset,
        config: BpAirConfig,
        channels: ChannelConfig,
    ) -> Self {
        match Self::try_build_channels(dataset, config, channels) {
            Ok(air) => air,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`BpAir::build_channels`]: structural channel-layout
    /// defects come back as a [`LayoutError`] instead of a panic.
    pub fn try_build_channels(
        dataset: &SpatialDataset,
        config: BpAirConfig,
        channels: ChannelConfig,
    ) -> Result<Self, LayoutError> {
        let tree = bulk_load(dataset.objects(), config.fanout());
        let height = tree.height();
        let cut_level = (0..height)
            .find(|&lv| tree.levels[lv].len() as u32 <= config.max_segments)
            .unwrap_or(height - 1);

        // Segment roots in order (children are contiguous, so cut-level
        // nodes are already in HC order).
        let segments: Vec<u32> = (0..tree.levels[cut_level].len() as u32).collect();

        let mut node_where: Vec<Vec<NodeWhere>> = tree
            .levels
            .iter()
            .map(|lv| vec![NodeWhere::Single(0); lv.len()])
            .collect();

        let np = config.node_packets() as u64;
        let onp = config.object_packets() as u64;
        let path_levels: Vec<usize> = ((cut_level + 1)..height).rev().collect();

        let mut segment_starts = Vec::with_capacity(segments.len());
        let mut object_pos = vec![0u64; tree.objects.len()];
        let mut packets: Vec<BpPacket> = Vec::new();
        for &seg_root in &segments {
            let si = segment_starts.len() as u32;
            segment_starts.push(packets.len() as u64);
            for (pi, &lv) in path_levels.iter().enumerate() {
                let anc = ancestor_of(&tree, cut_level, seg_root, lv);
                for part in 0..np {
                    packets.push(BpPacket::Node {
                        level: lv as u8,
                        idx: anc,
                        part: part as u16,
                    });
                }
                let off = pi as u64 * np;
                match &mut node_where[lv][anc as usize] {
                    w @ NodeWhere::Single(_) => {
                        *w = NodeWhere::PerSegment {
                            first: si,
                            last: si,
                            path_offset: off,
                        };
                    }
                    NodeWhere::PerSegment { last, .. } => *last = si,
                }
            }
            let mut objs = Vec::new();
            emit_subtree(
                &tree,
                cut_level,
                seg_root,
                &mut packets,
                &mut node_where,
                np,
                &mut objs,
            );
            for obj in objs {
                object_pos[obj as usize] = packets.len() as u64;
                packets.push(BpPacket::ObjHeader { obj });
                for seq in 1..onp {
                    packets.push(BpPacket::ObjPayload {
                        obj,
                        seq: seq as u16,
                    });
                }
            }
        }

        // Frame granularity for `Placement::StripeFrames`: one frame per
        // segment (its path copies, subtree nodes and objects scan as one
        // run), passed explicitly since a replicated path copy looks the
        // same at every occurrence.
        let mut frame_starts = vec![false; packets.len()];
        for &s in &segment_starts {
            frame_starts[s as usize] = true;
        }
        let program =
            Program::try_with_channels_frames(config.capacity, packets, channels, &frame_starts)?;
        Ok(Self {
            tree,
            config,
            program,
            node_where,
            segment_starts,
            object_pos,
            curve: *dataset.curve(),
            mapper: *dataset.mapper(),
        })
    }

    /// Packets one queued read occupies the receiver for: an object
    /// record (`kind == u8::MAX`), or a node slot.
    pub(crate) fn unit_dur(&self, kind: u8) -> u64 {
        if kind == u8::MAX {
            self.config.object_packets() as u64
        } else {
            self.config.node_packets() as u64
        }
    }

    /// The broadcast packet program.
    pub fn program(&self) -> &Program<BpPacket> {
        &self.program
    }

    /// The loaded tree (server side).
    pub fn tree(&self) -> &BpTree {
        &self.tree
    }

    /// Air configuration.
    pub fn config(&self) -> &BpAirConfig {
        &self.config
    }

    /// The earliest instant at which node `(level, idx)` can be read by
    /// `tuner` (channel placement, antennas and switch cost included), and
    /// the flat position of the chosen copy.
    pub(crate) fn node_arrival(
        &self,
        tuner: &Tuner<'_, BpPacket>,
        level: u8,
        idx: u32,
    ) -> (u64, u64) {
        match &self.node_where[level as usize][idx as usize] {
            NodeWhere::Single(pos) => (tuner.arrival(*pos), *pos),
            NodeWhere::PerSegment {
                first,
                last,
                path_offset,
            } => {
                // Earliest readable copy among covered segments: per-copy
                // arrivals through the tuner's channel- and antenna-aware
                // planner, allocation-free.
                let mut best = (u64::MAX, 0u64);
                for s in *first..=*last {
                    let flat = self.segment_starts[s as usize] + path_offset;
                    let t = tuner.arrival(flat);
                    if t < best.0 {
                        best = (t, flat);
                    }
                }
                best
            }
        }
    }

    /// Next instant (≥ `from`) at which node `(level, idx)` can be read,
    /// in flat single-channel time.
    #[cfg(test)]
    pub(crate) fn node_next_occurrence(&self, from: u64, level: u8, idx: u32) -> u64 {
        match &self.node_where[level as usize][idx as usize] {
            NodeWhere::Single(pos) => self.program.next_occurrence(from, *pos),
            NodeWhere::PerSegment {
                first,
                last,
                path_offset,
            } => {
                let mut best = u64::MAX;
                for s in *first..=*last {
                    let abs = self
                        .program
                        .next_occurrence(from, self.segment_starts[s as usize] + path_offset);
                    best = best.min(abs);
                }
                best
            }
        }
    }
}

fn ancestor_of(tree: &BpTree, cut: usize, seg_root: u32, target_level: usize) -> u32 {
    // Children are contiguous ranges, so the ancestor is found by interval
    // containment walking down from the root.
    let mut level = tree.height() - 1;
    let mut idx = 0u32;
    loop {
        if level == target_level {
            return idx;
        }
        let BpChildren::Nodes(kids) = &tree.levels[level][idx as usize].children else {
            unreachable!("walk stays above leaves");
        };
        let next = kids
            .iter()
            .copied()
            .find(|&k| covers(tree, level - 1, k, cut, seg_root))
            .expect("segment under root");
        level -= 1;
        idx = next;
    }
}

fn covers(tree: &BpTree, level: usize, idx: u32, cut: usize, seg_root: u32) -> bool {
    if level == cut {
        return idx == seg_root;
    }
    let BpChildren::Nodes(kids) = &tree.levels[level][idx as usize].children else {
        return false;
    };
    kids.iter()
        .any(|&k| covers(tree, level - 1, k, cut, seg_root))
}

fn emit_subtree(
    tree: &BpTree,
    level: usize,
    idx: u32,
    packets: &mut Vec<BpPacket>,
    node_where: &mut [Vec<NodeWhere>],
    np: u64,
    objs: &mut Vec<u32>,
) {
    node_where[level][idx as usize] = NodeWhere::Single(packets.len() as u64);
    for part in 0..np {
        packets.push(BpPacket::Node {
            level: level as u8,
            idx,
            part: part as u16,
        });
    }
    match &tree.levels[level][idx as usize].children {
        BpChildren::Nodes(kids) => {
            for &k in kids {
                emit_subtree(tree, level - 1, k, packets, node_where, np, objs);
            }
        }
        BpChildren::Objects { start, count } => objs.extend(*start..*start + *count),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_datagen::uniform;

    #[test]
    fn fanout_matches_paper_accounting() {
        assert_eq!(BpAirConfig::new(64).fanout(), 3); // (64-4)/18
        assert_eq!(BpAirConfig::new(64).node_packets(), 1);
        assert_eq!(BpAirConfig::new(32).fanout(), 2); // forced minimum
        assert_eq!(BpAirConfig::new(32).node_packets(), 2);
        assert_eq!(BpAirConfig::new(512).fanout(), 28);
    }

    #[test]
    fn layout_positions_are_consistent() {
        let ds = SpatialDataset::build(&uniform(400, 5), 10);
        let air = BpAir::build(&ds, BpAirConfig::new(64));
        for (obj, &pos) in air.object_pos.iter().enumerate() {
            match air.program().get(pos) {
                BpPacket::ObjHeader { obj: o } => assert_eq!(*o as usize, obj),
                p => panic!("expected header of {obj}, found {p:?}"),
            }
        }
        for level in 0..air.tree.height() {
            for idx in 0..air.tree.levels[level].len() as u32 {
                let at = air.node_next_occurrence(0, level as u8, idx);
                match air.program().get(at) {
                    BpPacket::Node {
                        level: l,
                        idx: i,
                        part: 0,
                    } => {
                        assert_eq!((*l as usize, *i), (level, idx));
                    }
                    p => panic!("expected node ({level},{idx}), found {p:?}"),
                }
            }
        }
    }

    #[test]
    fn data_is_broadcast_in_hc_order() {
        let ds = SpatialDataset::build(&uniform(300, 9), 10);
        let air = BpAir::build(&ds, BpAirConfig::new(128));
        let mut last = None;
        for p in air.program().iter() {
            if let BpPacket::ObjHeader { obj } = p {
                let hc = air.tree.objects[*obj as usize].hc;
                if let Some(prev) = last {
                    assert!(hc > prev, "HC order violated");
                }
                last = Some(hc);
            }
        }
    }
}
